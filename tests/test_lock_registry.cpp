// Lock-rank deadlock checker tests.
//
// The checker's contract: acquiring a lock whose rank is <= any rank
// already held by the same thread is a potential deadlock cycle and
// must abort immediately with the held-lock chain. The registry API is
// always compiled, so the core negative tests run in every build type;
// the spinlock-integrated hooks are additionally exercised when
// MINIHPX_LOCK_RANKS is on (Debug, or -DMINIHPX_LOCK_RANKS=ON).
#include <minihpx/minihpx.hpp>
#include <minihpx/util/lock_registry.hpp>
#include <minihpx/util/spinlock.hpp>

#include <gtest/gtest.h>

#include <mutex>

using minihpx::util::lock_registry;
using minihpx::util::spinlock;
namespace lock_rank = minihpx::util::lock_rank;

namespace {

TEST(LockRegistry, MonotoneChainIsAccepted)
{
    int a = 0, b = 0, c = 0;
    lock_registry::on_acquire(&a, lock_rank::sync_guard, "outer");
    lock_registry::on_acquire(&b, lock_rank::sched_freelist, "middle");
    lock_registry::on_acquire(&c, lock_rank::thread_queue, "leaf");
    EXPECT_EQ(lock_registry::held_count(), 3u);
    lock_registry::on_release(&c);
    lock_registry::on_release(&b);
    lock_registry::on_release(&a);
    EXPECT_EQ(lock_registry::held_count(), 0u);
}

TEST(LockRegistry, OutOfOrderReleaseIsAccepted)
{
    int a = 0, b = 0;
    lock_registry::on_acquire(&a, lock_rank::sync_guard, "outer");
    lock_registry::on_acquire(&b, lock_rank::thread_queue, "leaf");
    lock_registry::on_release(&a);    // unique_lock-style early unlock
    lock_registry::on_release(&b);
    EXPECT_EQ(lock_registry::held_count(), 0u);
}

TEST(LockRegistry, UnrankedLocksAreExempt)
{
    int a = 0, b = 0, c = 0;
    lock_registry::on_acquire(&a, lock_rank::thread_queue, "leaf");
    // An unranked lock nests freely in both directions.
    lock_registry::on_acquire(&b, lock_rank::unranked, "legacy");
    lock_registry::on_acquire(&c, lock_rank::unranked, "legacy2");
    lock_registry::on_release(&c);
    lock_registry::on_release(&b);
    lock_registry::on_release(&a);
    EXPECT_EQ(lock_registry::held_count(), 0u);
}

TEST(LockRegistry, TryAcquireSkipsOrderCheck)
{
    int a = 0, b = 0;
    lock_registry::on_acquire(&a, lock_rank::thread_queue, "leaf");
    // A successful try_lock cannot complete a deadlock cycle, so a
    // lower rank is recorded without aborting.
    lock_registry::on_try_acquire(&b, lock_rank::sync_guard, "stolen");
    lock_registry::on_release(&b);
    lock_registry::on_release(&a);
    EXPECT_EQ(lock_registry::held_count(), 0u);
}

// The required negative test: two locks acquired in inverted rank
// order must abort with the lock chains in the report.
TEST(LockRegistryDeathTest, InvertedOrderAborts)
{
    auto const invert = [] {
        int queue_lock = 0;
        int guard_lock = 0;
        lock_registry::on_acquire(
            &queue_lock, lock_rank::thread_queue, "thread_queue");
        lock_registry::on_acquire(
            &guard_lock, lock_rank::sync_guard, "minihpx::mutex");
    };
    EXPECT_DEATH(
        invert(), "LOCK RANK INVERSION.*minihpx::mutex.*thread_queue");
}

TEST(LockRegistryDeathTest, EqualRankAborts)
{
    auto const same_rank_nest = [] {
        int a = 0;
        int b = 0;
        lock_registry::on_acquire(&a, lock_rank::sync_guard, "guard-a");
        lock_registry::on_acquire(&b, lock_rank::sync_guard, "guard-b");
    };
    EXPECT_DEATH(same_rank_nest(), "LOCK RANK INVERSION");
}

TEST(LockRegistryDeathTest, RecursiveAcquireAborts)
{
    auto const reacquire = [] {
        int a = 0;
        lock_registry::on_acquire(&a, lock_rank::sync_guard, "self");
        lock_registry::on_acquire(&a, lock_rank::sync_guard, "self");
    };
    EXPECT_DEATH(reacquire(), "LOCK RANK INVERSION");
}

// Same inversion through the real spinlock hooks; active when the
// debug checker is compiled in (Debug builds / -DMINIHPX_LOCK_RANKS=ON).
TEST(LockRegistryDeathTest, RankedSpinlocksInvertedOrderAborts)
{
#if MINIHPX_LOCK_RANKS
    auto const invert = [] {
        spinlock inner(minihpx::util::lock_rank::thread_queue, "inner-queue");
        spinlock outer(minihpx::util::lock_rank::sync_guard, "outer-guard");
        std::lock_guard hold_inner(inner);
        std::lock_guard hold_outer(outer);    // inversion: 300 under 500
    };
    EXPECT_DEATH(invert(), "LOCK RANK INVERSION.*outer-guard.*inner-queue");
#else
    GTEST_SKIP()
        << "lock-rank spinlock hooks are compiled out (NDEBUG build "
           "without MINIHPX_LOCK_RANKS=ON)";
#endif
}

TEST(LockRegistry, RankedSpinlocksNormalNestingIsClean)
{
    spinlock outer(minihpx::util::lock_rank::sync_guard, "outer-guard");
    spinlock inner(minihpx::util::lock_rank::thread_queue, "inner-queue");
    {
        std::lock_guard hold_outer(outer);
        std::lock_guard hold_inner(inner);
    }
#if MINIHPX_LOCK_RANKS
    EXPECT_EQ(lock_registry::held_count(), 0u);
#endif
}

// End-to-end: the runtime's own documented hierarchy (sync guard ->
// thread_queue on the resume-while-publishing path) never fires the
// checker in a debug test run.
TEST(LockRegistry, RuntimeHierarchyIsRankMonotone)
{
    minihpx::runtime_config config;
    config.sched.num_workers = 2;
    minihpx::runtime rt(config);

    minihpx::mutex m;
    minihpx::condition_variable cv;
    bool flag = false;

    auto waiter = minihpx::async([&] {
        std::unique_lock lock(m);
        cv.wait(lock, [&] { return flag; });
    });
    auto setter = minihpx::async([&] {
        {
            std::unique_lock lock(m);
            flag = true;
        }
        cv.notify_one();
    });
    setter.get();
    waiter.get();
    SUCCEED();
}

}    // namespace
