// Race-reproduction stress tests.
//
// These tests drive the runtime's cross-thread handoff paths hard
// enough that a synchronization bug becomes a *detectable* event:
// under -DMINIHPX_SANITIZE=thread every interleaving TSan observes is
// checked against the declared happens-before protocol (see
// util/sanitizers.hpp and docs/SANITIZERS.md), and in plain builds the
// tests still assert the observable invariants (conservation of tasks,
// exactly-once value delivery). Iteration counts are sized for the
// ~10x TSan slowdown.
#include <minihpx/minihpx.hpp>
#include <minihpx/threads/thread_queue.hpp>
#include <minihpx/util/eventcount.hpp>
#include <minihpx/util/spsc_ring.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

using namespace minihpx;

namespace {

// Owner pushes and pops while thieves hammer steal(): every descriptor
// must be handed out exactly once, and the contents written before the
// push must be visible to whichever thread receives it.
TEST(QueueRaces, PushPopStealConservation)
{
    constexpr int tasks_n = 4000;
    constexpr int thieves_n = 3;

    threads::thread_queue queue;
    std::vector<std::unique_ptr<threads::thread_data>> descriptors;
    descriptors.reserve(tasks_n);
    for (int i = 0; i < tasks_n; ++i)
        descriptors.push_back(std::make_unique<threads::thread_data>());

    // origin_worker doubles as a payload written before publication;
    // receivers read it to give TSan a non-atomic access to check.
    std::atomic<int> received{0};
    std::atomic<std::uint64_t> payload_sum{0};
    std::atomic<bool> done{false};

    auto consume = [&](threads::thread_data* task) {
        payload_sum.fetch_add(task->origin_worker, std::memory_order_relaxed);
        received.fetch_add(1, std::memory_order_relaxed);
    };

    std::vector<std::thread> thieves;
    for (int t = 0; t < thieves_n; ++t)
    {
        thieves.emplace_back([&] {
            while (!done.load(std::memory_order_acquire))
            {
                if (threads::thread_data* task = queue.steal())
                    consume(task);
            }
            // Final sweep so nothing is stranded.
            while (threads::thread_data* task = queue.steal())
                consume(task);
        });
    }

    std::uint64_t expected_sum = 0;
    for (int i = 0; i < tasks_n; ++i)
    {
        descriptors[i]->origin_worker = static_cast<std::uint32_t>(i % 97);
        expected_sum += descriptors[i]->origin_worker;
        queue.push(descriptors[i].get(), /*front=*/(i % 5 == 0));
        if (i % 3 == 0)
        {
            if (threads::thread_data* task = queue.pop())
                consume(task);
        }
    }
    while (threads::thread_data* task = queue.pop())
        consume(task);
    done.store(true, std::memory_order_release);
    for (auto& t : thieves)
        t.join();

    EXPECT_EQ(received.load(), tasks_n);
    EXPECT_EQ(payload_sum.load(), expected_sum);
    EXPECT_EQ(queue.length(), 0);
    EXPECT_EQ(queue.enqueued(), static_cast<std::uint64_t>(tasks_n));
    EXPECT_EQ(queue.dequeued() + queue.stolen_from(),
        static_cast<std::uint64_t>(tasks_n));
}

// Raw promise/future handoff between OS threads: the value written by
// the producer must be visible to the consumer through the shared
// state's publication protocol alone.
TEST(FutureRaces, SetGetHandoffAcrossOsThreads)
{
    constexpr int rounds = 400;
    for (int i = 0; i < rounds; ++i)
    {
        promise<std::vector<int>> p;
        auto f = p.get_future();
        std::thread producer([&p, i] {
            std::vector<int> payload(8, i);    // non-atomic payload
            p.set_value(std::move(payload));
        });
        auto const got = f.get();
        ASSERT_EQ(got.size(), 8u);
        EXPECT_EQ(got.front(), i);
        producer.join();
    }
}

// Task-context handoff under work stealing: waiters suspend their
// user-level context and are resumed by set_value from another task,
// potentially on a different worker. Exercises the two-phase suspend
// handshake and cross-worker stack migration under TSan's fiber model.
TEST(FutureRaces, TaskHandoffUnderStealing)
{
    runtime_config config;
    config.sched.num_workers = 4;
    runtime rt(config);

    constexpr int chains = 64;
    constexpr int depth = 8;

    std::atomic<int> total{0};
    std::vector<future<void>> roots;
    roots.reserve(chains);
    for (int c = 0; c < chains; ++c)
    {
        roots.push_back(async([&total, c] {
            int acc = c;
            for (int d = 0; d < depth; ++d)
            {
                // Each level writes a non-trivial payload on its own
                // stack, passes it through a future, and the parent
                // task suspends on the result.
                auto child = async([acc, d] {
                    std::vector<int> scratch(16, acc + d);
                    int s = 0;
                    for (int v : scratch)
                        s += v;
                    return s;
                });
                acc = child.get() % 1000;
            }
            total.fetch_add(acc, std::memory_order_relaxed);
        }));
    }
    wait_all(roots);
    SUCCEED();    // invariant: no sanitizer report, no deadlock
}

// Yield/steal churn: tasks repeatedly yield, migrating across worker
// queues, while other tasks block on a shared latch. Stresses the
// staged->pending publication and steal paths concurrently.
TEST(SchedulerRaces, YieldAndLatchChurn)
{
    runtime_config config;
    config.sched.num_workers = 4;
    runtime rt(config);

    constexpr int tasks_n = 48;
    latch gate(tasks_n);
    std::atomic<int> finished{0};

    std::vector<future<void>> fs;
    fs.reserve(tasks_n);
    for (int i = 0; i < tasks_n; ++i)
    {
        fs.push_back(async([&, i] {
            for (int y = 0; y < 8; ++y)
                this_task::yield();
            gate.count_down();
            gate.wait();    // everyone parks until the last arrives
            for (int y = 0; y < (i % 4); ++y)
                this_task::yield();
            finished.fetch_add(1, std::memory_order_relaxed);
        }));
    }
    wait_all(fs);
    EXPECT_EQ(finished.load(), tasks_n);
}

// Many producers satisfying many consumers through shared_future:
// multiple readers take the value concurrently after one set_value.
TEST(FutureRaces, SharedFutureFanOut)
{
    runtime_config config;
    config.sched.num_workers = 2;
    runtime rt(config);

    constexpr int rounds = 40;
    constexpr int readers_n = 8;
    for (int r = 0; r < rounds; ++r)
    {
        promise<int> p;
        shared_future<int> sf = p.get_future().share();
        std::atomic<int> sum{0};
        std::vector<future<void>> readers;
        readers.reserve(readers_n);
        for (int i = 0; i < readers_n; ++i)
        {
            readers.push_back(async([&sum, sf] {
                sum.fetch_add(sf.get(), std::memory_order_relaxed);
            }));
        }
        async([&p, r] { p.set_value(r); }).get();
        wait_all(readers);
        EXPECT_EQ(sum.load(), r * readers_n);
    }
}

// Frame and descriptor recycling under cross-worker churn: blocks are
// allocated on one thread's cache and released on another's, flowing
// through the global pool in batches. An ABA or ordering bug in the
// freelists shows up as a torn frame (wrong value delivered) or as a
// TSan report on the recycled memory. OS threads join the churn so the
// off-worker acquire/release paths race the worker caches too.
TEST(PoolRaces, FrameAndDescriptorChurnAcrossCaches)
{
    runtime_config config;
    config.sched.num_workers = 4;
    config.sched.descriptor_cache.worker_capacity = 8;
    config.sched.descriptor_cache.refill_batch = 4;
    config.sched.descriptor_cache.global_capacity = 16;
    runtime rt(config);

    constexpr int os_threads_n = 3;
    constexpr int rounds = 30;
    constexpr int burst = 24;

    std::vector<std::thread> os_threads;
    os_threads.reserve(os_threads_n);
    for (int t = 0; t < os_threads_n; ++t)
    {
        os_threads.emplace_back([t] {
            for (int r = 0; r < rounds; ++r)
            {
                std::vector<future<int>> fs;
                fs.reserve(burst);
                for (int i = 0; i < burst; ++i)
                    fs.push_back(async([t, r, i] { return t + r + i; }));
                int expected = 0, got = 0;
                for (int i = 0; i < burst; ++i)
                {
                    expected += t + r + i;
                    got += fs[static_cast<std::size_t>(i)].get();
                }
                EXPECT_EQ(got, expected);
            }
        });
    }
    for (auto& t : os_threads)
        t.join();
}

// Stress twin of the mc `eventcount_wakeup` litmus (tests/test_mc.cpp
// checks the same protocol exhaustively on the model policy): waiters
// run the scan / prepare / re-scan / park sequence at full speed while
// the producer races publish-then-notify against them. A lost wakeup —
// the Dekker race the seq_cst epoch bump closes — strands a waiter in
// park() and hangs the test; TSan additionally checks the park/notify
// mutex-and-cv protocol on every interleaving reached.
TEST(EventcountRaces, PublishNotifyNeverLosesAWakeup)
{
    constexpr std::uint64_t rounds = 1000;
    constexpr int waiters_n = 2;

    util::eventcount ec;
    std::atomic<std::uint64_t> published{0};
    // Non-atomic payload published before the bump: receivers read it
    // after waking, giving TSan a plain access to validate against the
    // eventcount's happens-before edges.
    std::vector<std::uint64_t> payload(rounds, 0);

    std::vector<std::thread> waiters;
    waiters.reserve(waiters_n);
    std::atomic<std::uint64_t> sum{0};
    for (int w = 0; w < waiters_n; ++w)
    {
        waiters.emplace_back([&] {
            for (std::uint64_t round = 1; round <= rounds; ++round)
            {
                while (published.load(std::memory_order_acquire) < round)
                {
                    std::uint64_t const epoch0 = ec.prepare();
                    if (published.load(std::memory_order_acquire) >= round)
                        break;    // re-scan saw it; skip the park
                    ec.park(epoch0, [&] {
                        return published.load(
                                   std::memory_order_acquire) >= round;
                    });
                }
                sum.fetch_add(
                    payload[round - 1], std::memory_order_relaxed);
            }
        });
    }

    for (std::uint64_t round = 1; round <= rounds; ++round)
    {
        payload[round - 1] = round;
        published.store(round, std::memory_order_release);
        ec.notify_all();
    }
    for (auto& t : waiters)
        t.join();
    EXPECT_EQ(sum.load(), waiters_n * rounds * (rounds + 1) / 2);
}

// Stress twin of the mc `spsc_fifo` litmus: a capacity-2 ring forces a
// wraparound every other push, so the producer's slot writes reuse
// cells the consumer has just vacated. The tail release edge (mutated
// by spsc_mutation::pop_release_relaxed in the model suite) is what
// keeps that reuse race-free — under TSan every slot access is a plain
// (non-atomic) memory access checked against it.
TEST(SpscRaces, WraparoundAtCapacityKeepsFifoAndCounts)
{
    constexpr std::uint64_t pushes = 20000;

    util::spsc_ring<std::uint64_t> ring(2);
    std::atomic<bool> done{false};
    std::uint64_t accepted = 0;

    std::thread consumer([&] {
        std::uint64_t popped = 0;
        std::uint64_t last = 0;
        for (;;)
        {
            std::uint64_t v;
            if (ring.pop(v))
            {
                ++popped;
                EXPECT_LT(last, v);    // strict FIFO, no torn slot
                last = v;
            }
            else if (done.load(std::memory_order_acquire))
            {
                if (!ring.pop(v))
                    break;
                ++popped;
                EXPECT_LT(last, v);
                last = v;
            }
            else
            {
                std::this_thread::yield();
            }
        }
        // Every accepted entry came out; drops are accounted, not lost.
        EXPECT_EQ(popped + ring.dropped(), pushes);
    });

    for (std::uint64_t v = 1; v <= pushes; ++v)
        accepted += ring.push(v) ? 1 : 0;
    done.store(true, std::memory_order_release);
    consumer.join();
    EXPECT_EQ(accepted + ring.dropped(), pushes);
}

}    // namespace
