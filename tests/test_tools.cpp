// Tests for the external-tool models (Table I mechanisms) and the
// std-baseline engine instrumentation.
#include <inncabs/engine.hpp>
#include <minihpx/tools/tool_model.hpp>

#include <gtest/gtest.h>

using namespace minihpx;
using namespace minihpx::tools;

namespace {

sim::sim_report make_baseline(
    std::uint64_t tasks, double time_s, unsigned cores = 20)
{
    sim::sim_report r;
    r.tasks_created = tasks;
    r.tasks_executed = tasks;
    r.exec_time_s = time_s;
    r.cores = cores;
    return r;
}

}    // namespace

TEST(TauModel, SmallThreadCountCompletesWithHugeOverhead)
{
    // Alignment-shaped: 4950 tasks, 0.971 s baseline (Table I row 1).
    auto const outcome = apply_tool(
        tool_kind::tau_like, tool_config{}, make_baseline(4950, 0.971));
    ASSERT_EQ(outcome.result, tool_outcome::status::completed);
    // Paper: ~113 s, 11516% overhead; we check the magnitude class.
    EXPECT_GT(outcome.time_s, 20.0);
    EXPECT_LT(outcome.time_s, 500.0);
    EXPECT_GT(outcome.overhead_pct, 1000.0);
}

TEST(TauModel, TableOverflowSegfaults)
{
    // FFT-shaped: 294k tasks > 64k table.
    auto const outcome = apply_tool(
        tool_kind::tau_like, tool_config{}, make_baseline(294000, 48.4));
    EXPECT_EQ(outcome.result, tool_outcome::status::segv);
    EXPECT_NE(outcome.detail.find("measurement table"), std::string::npos);
}

TEST(TauModel, MemoryExhaustionAborts)
{
    tool_config config;
    config.tau_thread_table = 1 << 20;
    config.tau_table_bytes_per_thread = 1 << 20;
    config.ram_bytes = 1ull << 30;    // 1 GiB: 60k x 1 MiB overflows
    auto const outcome = apply_tool(
        tool_kind::tau_like, config, make_baseline(60000, 1.0));
    EXPECT_EQ(outcome.result, tool_outcome::status::aborted);
}

TEST(HpctModel, FdExhaustionCrashes)
{
    auto const outcome = apply_tool(tool_kind::hpctoolkit_like,
        tool_config{}, make_baseline(112344, 2.148));
    EXPECT_EQ(outcome.result, tool_outcome::status::segv);
    EXPECT_NE(outcome.detail.find("fd limit"), std::string::npos);
}

TEST(HpctModel, SmallRunCompletesWithOverhead)
{
    // Round-shaped: 512 tasks, 0.155 s (paper: 5588 ms, 3505%).
    auto const outcome = apply_tool(tool_kind::hpctoolkit_like,
        tool_config{}, make_baseline(512, 0.155));
    ASSERT_EQ(outcome.result, tool_outcome::status::completed);
    EXPECT_GT(outcome.overhead_pct, 300.0);
}

TEST(ToolModel, FailedBaselinePropagatesAbort)
{
    sim::sim_report failed;
    failed.failed = true;
    failed.failure_reason = "resource exhaustion: 90000 live pthreads";
    auto const outcome =
        apply_tool(tool_kind::tau_like, tool_config{}, failed);
    EXPECT_EQ(outcome.result, tool_outcome::status::aborted);
}

TEST(ToolModel, TimeoutDetected)
{
    tool_config config;
    config.timeout_s = 10.0;
    // 20k threads fit the table and memory, but 20k x 8 ms of
    // registration blows the 10 s limit.
    auto const outcome = apply_tool(
        tool_kind::tau_like, config, make_baseline(20000, 5.0));
    EXPECT_EQ(outcome.result, tool_outcome::status::timed_out);
}

TEST(ToolModel, NoneToolIsTransparent)
{
    auto const outcome = apply_tool(
        tool_kind::none, tool_config{}, make_baseline(1000, 2.0));
    EXPECT_EQ(outcome.result, tool_outcome::status::completed);
    EXPECT_DOUBLE_EQ(outcome.time_s, 2.0);
    EXPECT_DOUBLE_EQ(outcome.overhead_pct, 0.0);
}

TEST(ToolOutcome, CellRendering)
{
    tool_outcome ok;
    ok.time_s = 1.5;
    EXPECT_EQ(ok.cell(), "1500");
    tool_outcome bad;
    bad.result = tool_outcome::status::segv;
    EXPECT_EQ(bad.cell(), "SegV");
    EXPECT_TRUE(bad.crashed());
    EXPECT_FALSE(ok.crashed());
}

// ------------------------------------------------------ std baseline engine

TEST(StdEngine, CountsLaunchedTasks)
{
    auto& stats = baseline::get_std_engine_stats();
    stats.reset();
    std::vector<std::future<int>> fs;
    for (int i = 0; i < 8; ++i)
        fs.push_back(
            inncabs::std_engine::async([i] { return i; }));
    int sum = 0;
    for (auto& f : fs)
        sum += f.get();
    EXPECT_EQ(sum, 28);
    EXPECT_EQ(stats.tasks_launched.load(), 8u);
    EXPECT_GE(stats.threads_live_peak.load(), 1);
}

TEST(StdEngine, DeferredAndSyncDontSpawnThreads)
{
    auto& stats = baseline::get_std_engine_stats();
    stats.reset();
    auto d = inncabs::std_engine::async(
        inncabs::std_engine::launch::deferred, [] { return 1; });
    auto s = inncabs::std_engine::async(
        inncabs::std_engine::launch::sync, [] { return 2; });
    EXPECT_EQ(d.get() + s.get(), 3);
    EXPECT_EQ(stats.tasks_launched.load(), 0u);
}

TEST(StdEngine, LiveCensusReturnsToZero)
{
    auto& stats = baseline::get_std_engine_stats();
    stats.reset();
    inncabs::std_engine::async([] {}).get();
    // get() joins the thread-per-task future; allow the guard to run.
    for (int i = 0; i < 1000 && stats.threads_live.load() != 0; ++i)
        std::this_thread::yield();
    EXPECT_EQ(stats.threads_live.load(), 0);
}
