// Runtime semantics: async/future in all launch policies, suspension,
// task-aware sync primitives, scheduler accounting invariants.
#include <minihpx/detail/frame_pool.hpp>
#include <minihpx/minihpx.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

using namespace minihpx;

namespace {

// Fresh runtime per fixture; most tests use a few workers even on a
// single-core host (correctness must not depend on real parallelism).
class RuntimeTest : public ::testing::TestWithParam<unsigned>
{
protected:
    void SetUp() override
    {
        runtime_config config;
        config.sched.num_workers = GetParam();
        rt_ = std::make_unique<runtime>(config);
    }

    void TearDown() override { rt_.reset(); }

    std::unique_ptr<runtime> rt_;
};

// Accounting counters are finalized by the worker *after* set_value
// unblocks the waiter; spin until the scheduler is quiescent before
// asserting on them.
void drain(scheduler& sched)
{
    while (sched.tasks_alive() != 0)
        std::this_thread::yield();
}

}    // namespace

INSTANTIATE_TEST_SUITE_P(Workers, RuntimeTest, ::testing::Values(1u, 2u, 4u),
    [](auto const& info) { return "w" + std::to_string(info.param); });

TEST_P(RuntimeTest, AsyncReturnsValue)
{
    auto f = async([] { return 21 * 2; });
    EXPECT_EQ(f.get(), 42);
}

TEST_P(RuntimeTest, AsyncVoid)
{
    std::atomic<bool> ran{false};
    auto f = async([&] { ran = true; });
    f.get();
    EXPECT_TRUE(ran);
}

TEST_P(RuntimeTest, AsyncForwardsArguments)
{
    auto f = async([](int a, std::string s) { return s.size() + a; }, 10,
        std::string("abc"));
    EXPECT_EQ(f.get(), 13u);
}

TEST_P(RuntimeTest, AsyncPropagatesException)
{
    auto f = async([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_P(RuntimeTest, DeferredRunsInWaiter)
{
    std::atomic<std::uint32_t> runner_worker{1234};
    auto f = async(launch::deferred, [&] {
        runner_worker = scheduler::current_worker_id();
        return 5;
    });
    EXPECT_EQ(f.get(), 5);
    // get() happened on the main thread => deferred ran off-worker.
    EXPECT_EQ(runner_worker.load(), scheduler::npos_worker);
}

TEST_P(RuntimeTest, SyncPolicyRunsInline)
{
    bool ran = false;
    auto f = async(launch::sync, [&] {
        ran = true;
        return 9;
    });
    EXPECT_TRUE(ran);    // before get()
    EXPECT_TRUE(f.is_ready());
    EXPECT_EQ(f.get(), 9);
}

TEST_P(RuntimeTest, ForkPolicyComputes)
{
    // fork from non-task context behaves like async; from task context
    // it runs the child eagerly. Both must produce correct results.
    auto outer = async([] {
        auto c1 = async(launch::fork, [] { return 1; });
        auto c2 = async(launch::fork, [] { return 2; });
        return c1.get() + c2.get();
    });
    EXPECT_EQ(outer.get(), 3);
}

TEST_P(RuntimeTest, NestedAsyncTree)
{
    // Recursive fib exercises deep suspension chains.
    struct fib
    {
        static int run(int n)
        {
            if (n < 2)
                return n;
            auto left = async([n] { return run(n - 1); });
            int const right = run(n - 2);
            return left.get() + right;
        }
    };
    auto f = async([] { return fib::run(16); });
    EXPECT_EQ(f.get(), 987);
}

TEST_P(RuntimeTest, ManySmallTasks)
{
    constexpr int n = 2000;
    std::vector<future<int>> futures;
    futures.reserve(n);
    for (int i = 0; i < n; ++i)
        futures.push_back(async([i] { return i; }));
    long sum = 0;
    for (auto& f : futures)
        sum += f.get();
    EXPECT_EQ(sum, static_cast<long>(n) * (n - 1) / 2);
}

TEST_P(RuntimeTest, WhenAllCollects)
{
    std::vector<future<int>> futures;
    for (int i = 0; i < 50; ++i)
        futures.push_back(async([i] { return i * i; }));
    auto all = when_all(std::move(futures)).get();
    long sum = 0;
    for (auto& f : all)
        sum += f.get();
    long expect = 0;
    for (int i = 0; i < 50; ++i)
        expect += i * i;
    EXPECT_EQ(sum, expect);
}

TEST_P(RuntimeTest, ThenContinuation)
{
    auto f = async([] { return 4; }).then([](future<int> g) {
        return g.get() + 1;
    });
    EXPECT_EQ(f.get(), 5);
}

TEST_P(RuntimeTest, ThenChain)
{
    auto f = make_ready_future(1)
                 .then([](future<int> g) { return g.get() * 2; })
                 .then([](future<int> g) { return g.get() + 3; });
    EXPECT_EQ(f.get(), 5);
}

TEST_P(RuntimeTest, SharedFutureMultipleGets)
{
    shared_future<int> sf = async([] { return 7; }).share();
    EXPECT_EQ(sf.get(), 7);
    EXPECT_EQ(sf.get(), 7);
}

TEST_P(RuntimeTest, MakeReadyFuture)
{
    auto f = make_ready_future(std::string("hi"));
    EXPECT_TRUE(f.is_ready());
    EXPECT_EQ(f.get(), "hi");
}

TEST_P(RuntimeTest, PromiseSatisfiedFromOtherTask)
{
    promise<int> p;
    auto f = p.get_future();
    auto setter = async([&p] { p.set_value(77); });
    EXPECT_EQ(f.get(), 77);
    setter.get();
}

// -------------------------------------------------------- sync primitives

TEST_P(RuntimeTest, MutexProtectsCounter)
{
    mutex m;
    long counter = 0;
    constexpr int tasks = 64, iters = 100;
    std::vector<future<void>> futures;
    for (int t = 0; t < tasks; ++t)
    {
        futures.push_back(async([&] {
            for (int i = 0; i < iters; ++i)
            {
                std::lock_guard lock(m);
                ++counter;
            }
        }));
    }
    wait_all(futures);
    for (auto& f : futures)
        f.get();
    EXPECT_EQ(counter, static_cast<long>(tasks) * iters);
}

TEST_P(RuntimeTest, MutexTryLock)
{
    mutex m;
    EXPECT_TRUE(m.try_lock());
    EXPECT_FALSE(m.try_lock());
    m.unlock();
    EXPECT_TRUE(m.try_lock());
    m.unlock();
}

TEST_P(RuntimeTest, ConditionVariableHandsOff)
{
    mutex m;
    condition_variable cv;
    int stage = 0;

    auto consumer = async([&] {
        std::unique_lock lock(m);
        cv.wait(lock, [&] { return stage == 1; });
        stage = 2;
        cv.notify_all();
    });
    auto producer = async([&] {
        {
            std::unique_lock lock(m);
            stage = 1;
        }
        cv.notify_all();
        std::unique_lock lock(m);
        cv.wait(lock, [&] { return stage == 2; });
    });
    consumer.get();
    producer.get();
    EXPECT_EQ(stage, 2);
}

TEST_P(RuntimeTest, LatchReleasesAllWaiters)
{
    latch done(3);
    std::atomic<int> through{0};
    std::vector<future<void>> waiters;
    for (int i = 0; i < 4; ++i)
    {
        waiters.push_back(async([&] {
            done.wait();
            ++through;
        }));
    }
    std::vector<future<void>> arrivers;
    for (int i = 0; i < 3; ++i)
        arrivers.push_back(async([&] { done.count_down(); }));
    wait_all(waiters);
    wait_all(arrivers);
    EXPECT_EQ(through.load(), 4);
    EXPECT_TRUE(done.try_wait());
}

TEST_P(RuntimeTest, BarrierRounds)
{
    constexpr int parties = 4, rounds = 5;
    barrier bar(parties);
    std::atomic<int> checksum{0};
    std::vector<future<void>> futures;
    for (int p = 0; p < parties; ++p)
    {
        futures.push_back(async([&] {
            for (int r = 0; r < rounds; ++r)
            {
                checksum.fetch_add(1);
                bar.arrive_and_wait();
                // After the barrier every party of this round arrived.
                EXPECT_GE(checksum.load(), (r + 1) * parties);
            }
        }));
    }
    wait_all(futures);
    for (auto& f : futures)
        f.get();
    EXPECT_EQ(checksum.load(), parties * rounds);
}

TEST_P(RuntimeTest, SemaphoreLimitsConcurrency)
{
    counting_semaphore sem(2);
    std::atomic<int> inside{0};
    std::atomic<int> peak{0};
    std::vector<future<void>> futures;
    for (int i = 0; i < 16; ++i)
    {
        futures.push_back(async([&] {
            sem.acquire();
            int const now = ++inside;
            int prev = peak.load();
            while (prev < now && !peak.compare_exchange_weak(prev, now)) {}
            this_task::yield();
            --inside;
            sem.release();
        }));
    }
    wait_all(futures);
    for (auto& f : futures)
        f.get();
    EXPECT_LE(peak.load(), 2);
    EXPECT_GE(peak.load(), 1);
}

TEST_P(RuntimeTest, ThreadJoin)
{
    std::atomic<bool> ran{false};
    thread t([&] { ran = true; });
    t.join();
    EXPECT_TRUE(ran);
    EXPECT_FALSE(t.joinable());
}

// ------------------------------------------------------------ accounting

TEST_P(RuntimeTest, SchedulerCountsTasks)
{
    auto& sched = rt_->get_scheduler();
    auto const before = sched.aggregate();
    constexpr int n = 100;
    std::vector<future<void>> futures;
    for (int i = 0; i < n; ++i)
        futures.push_back(async([] {}));
    wait_all(futures);
    drain(sched);
    // All spawned tasks terminated; executed grew by exactly n (the
    // waiting happens on the main thread, not on a task).
    auto const after = sched.aggregate();
    EXPECT_EQ(after.tasks_executed - before.tasks_executed,
        static_cast<std::uint64_t>(n));
    EXPECT_EQ(sched.tasks_alive(), 0u);
}

// The /threads{...} counters must keep their meaning regardless of the
// queue implementation: run the same workload under both policies and
// assert the transition-point invariants.
class QueuePolicyRuntime
  : public ::testing::TestWithParam<threads::queue_policy>
{
};

INSTANTIATE_TEST_SUITE_P(Policies, QueuePolicyRuntime,
    ::testing::Values(
        threads::queue_policy::mutex_deque, threads::queue_policy::chase_lev),
    [](auto const& info) {
        return info.param == threads::queue_policy::mutex_deque ?
            "Mutex" :
            "ChaseLev";
    });

TEST_P(QueuePolicyRuntime, CounterSemanticsMatchAcrossPolicies)
{
    runtime_config config;
    config.sched.num_workers = 4;
    config.sched.queue = GetParam();
    runtime rt(config);
    auto& sched = rt.get_scheduler();

    constexpr int n = 500;
    std::vector<future<void>> futures;
    for (int i = 0; i < n; ++i)
        futures.push_back(async([] {
            volatile int x = 0;
            for (int j = 0; j < 100; ++j)
                x += j;
        }));
    wait_all(futures);
    drain(sched);

    auto const agg = sched.aggregate();
    EXPECT_EQ(agg.tasks_executed, static_cast<std::uint64_t>(n));
    EXPECT_EQ(sched.tasks_alive(), 0u);

    // Queue-level conservation: everything enqueued left through a
    // dequeue or a steal, and nothing is pending.
    std::uint64_t enq = 0, deq = 0, stolen = 0;
    std::int64_t len = 0;
    for (std::uint32_t w = 0; w < sched.num_workers(); ++w)
    {
        auto const& q = sched.get_worker(w).queue();
        enq += q.enqueued();
        deq += q.dequeued();
        stolen += q.stolen_from();
        len += q.length();
    }
    EXPECT_EQ(enq, deq + stolen);
    EXPECT_EQ(len, 0);
    EXPECT_GE(enq, static_cast<std::uint64_t>(n));
}

TEST_P(QueuePolicyRuntime, ForkPolicyAndNestedTreesComplete)
{
    runtime_config config;
    config.sched.num_workers = 4;
    config.sched.queue = GetParam();
    runtime rt(config);

    // Nested spawns exercise the owner-push path (launch::fork "run
    // next" lands at the hot end under both policies).
    std::function<int(int)> fib = [&](int k) -> int {
        if (k < 2)
            return k;
        auto left =
            async(launch::fork, [&fib, k] { return fib(k - 1); });
        int const right = fib(k - 2);
        return left.get() + right;
    };
    auto f = async([&] { return fib(12); });
    EXPECT_EQ(f.get(), 144);
}

TEST_P(RuntimeTest, ExecTimeAccumulates)
{
    auto& sched = rt_->get_scheduler();
    auto const before = sched.aggregate();
    async([] {
        volatile double x = 1.0;
        for (int i = 0; i < 200000; ++i)
            x = x * 1.0000001 + 0.5;
    }).get();
    drain(sched);
    auto const after = sched.aggregate();
    EXPECT_GT(after.exec_time_ns, before.exec_time_ns);
}

TEST_P(RuntimeTest, DurationHistogramFills)
{
    auto& sched = rt_->get_scheduler();
    auto const before = sched.duration_histogram().total();
    std::vector<future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(async([] {}));
    wait_all(futures);
    drain(sched);
    EXPECT_GE(sched.duration_histogram().total(), before + 32);
}

TEST_P(RuntimeTest, TasksRunOnWorkers)
{
    std::set<std::uint32_t> seen;
    mutex m;
    std::vector<future<void>> futures;
    for (int i = 0; i < 200; ++i)
    {
        futures.push_back(async([&] {
            auto const id = scheduler::current_worker_id();
            std::lock_guard lock(m);
            seen.insert(id);
        }));
    }
    wait_all(futures);
    EXPECT_FALSE(seen.contains(scheduler::npos_worker));
    EXPECT_GE(seen.size(), 1u);
    EXPECT_LE(seen.size(), GetParam());
}

TEST_P(RuntimeTest, YieldReturnsToTask)
{
    auto f = async([] {
        int x = 41;
        this_task::yield();
        return x + 1;
    });
    EXPECT_EQ(f.get(), 42);
}

TEST_P(RuntimeTest, InTaskDetection)
{
    EXPECT_FALSE(this_task::in_task());
    auto f = async([] { return this_task::in_task(); });
    EXPECT_TRUE(f.get());
}

TEST_P(RuntimeTest, ThisTaskIdentityInsideTask)
{
    EXPECT_EQ(this_task::get_id(), threads::invalid_thread_id);
    EXPECT_EQ(this_task::worker_id(), scheduler::npos_worker);

    auto f = async([] {
        EXPECT_NE(this_task::get_id(), threads::invalid_thread_id);
        EXPECT_NE(this_task::worker_id(), scheduler::npos_worker);
        // Identity is stable across a yield (even if the task migrates
        // to a different worker, its id does not change).
        auto const id = this_task::get_id();
        this_task::yield();
        EXPECT_EQ(this_task::get_id(), id);
        return id;
    });
    EXPECT_NE(f.get(), threads::invalid_thread_id);
}

TEST_P(RuntimeTest, ParentIdLinksSpawnTree)
{
    // Spawned from the main (non-task) thread: no parent.
    EXPECT_EQ(this_task::parent_id(), threads::invalid_thread_id);
    auto root = async([] {
        EXPECT_EQ(this_task::parent_id(), threads::invalid_thread_id);
        auto const my_id = this_task::get_id();
        auto child = async([my_id] {
            // The child's parent edge is the task that called async().
            EXPECT_EQ(this_task::parent_id(), my_id);
            auto grandchild =
                async([] { return this_task::parent_id(); });
            EXPECT_EQ(grandchild.get(), this_task::get_id());
            return true;
        });
        return child.get();
    });
    EXPECT_TRUE(root.get());
}

TEST_P(RuntimeTest, AnnotateOffTraceIsNoOp)
{
    // With no trace session installed, annotate must be safe anywhere.
    this_task::annotate("off-task");
    auto f = async([] {
        this_task::annotate("in-task");
        return 1;
    });
    EXPECT_EQ(f.get(), 1);
}

TEST(RuntimeConfig, FromCliParsesOptions)
{
    char const* argv[] = {"prog", "--mh:threads=3", "--mh:stack-size=131072",
        "--mh:bind", "--mh:steal-seed=99"};
    util::cli_args args(5, argv);
    auto config = runtime_config::from_cli(args);
    EXPECT_EQ(config.sched.num_workers, 3u);
    EXPECT_EQ(config.sched.stack_size, 131072u);
    EXPECT_TRUE(config.sched.bind_workers);
    EXPECT_EQ(config.sched.steal.seed, 99u);
}

TEST(RuntimeConfig, FromCliParsesStealParams)
{
    char const* argv[] = {"prog", "--mh:steal-rounds=5", "--mh:steal-batch=16",
        "--mh:steal-spin=1000", "--mh:steal-sleep-us=250",
        "--mh:steal-park=timed"};
    util::cli_args args(6, argv);
    auto config = runtime_config::from_cli(args);
    EXPECT_EQ(config.sched.steal.rounds, 5u);
    EXPECT_EQ(config.sched.steal.batch, 16u);
    EXPECT_EQ(config.sched.steal.spin_iters, 1000u);
    EXPECT_EQ(config.sched.steal.sleep_us, 250u);
    EXPECT_EQ(config.sched.steal.park,
        scheduler_config::steal_params::park_policy::timed);
}

TEST(RuntimeConfig, FromCliLegacySleepAlias)
{
    // --mh:sleep-us is the pre-steal_params spelling; deprecated but
    // still honored (with a once-per-process stderr warning).
    char const* argv[] = {"prog", "--mh:sleep-us=75"};
    util::cli_args args(2, argv);
    auto config = runtime_config::from_cli(args);
    EXPECT_EQ(config.sched.steal.sleep_us, 75u);
}

TEST(RuntimeConfig, FromCliCanonicalSpellingBeatsLegacyAlias)
{
    char const* argv[] = {
        "prog", "--mh:sleep-us=75", "--mh:steal-sleep-us=33"};
    util::cli_args args(3, argv);
    auto config = runtime_config::from_cli(args);
    EXPECT_EQ(config.sched.steal.sleep_us, 33u);
}

TEST(RuntimeConfig, FromCliParsesQueuePolicy)
{
    char const* argv_mutex[] = {"prog", "--mh:queue-policy=mutex"};
    util::cli_args args_mutex(2, argv_mutex);
    EXPECT_EQ(runtime_config::from_cli(args_mutex).sched.queue,
        threads::queue_policy::mutex_deque);

    char const* argv_cl[] = {"prog", "--mh:queue-policy=chase-lev"};
    util::cli_args args_cl(2, argv_cl);
    EXPECT_EQ(runtime_config::from_cli(args_cl).sched.queue,
        threads::queue_policy::chase_lev);

    char const* argv_bad[] = {"prog", "--mh:queue-policy=bogus"};
    util::cli_args args_bad(2, argv_bad);
    EXPECT_THROW(runtime_config::from_cli(args_bad), std::runtime_error);
}

TEST(RuntimeConfig, FromCliParsesVictimPolicyAndDomains)
{
    // Locality-aware stealing is the default on multi-domain machines.
    EXPECT_EQ(scheduler_config{}.steal.victim, threads::victim_policy::numa);

    char const* argv[] = {
        "prog", "--mh:steal-victim-policy=random", "--mh:numa-domains=2"};
    util::cli_args args(3, argv);
    auto config = runtime_config::from_cli(args);
    EXPECT_EQ(config.sched.steal.victim, threads::victim_policy::random);
    EXPECT_EQ(config.sched.numa_domains, 2u);

    char const* argv_numa[] = {"prog", "--mh:steal-victim-policy=numa"};
    util::cli_args args_numa(2, argv_numa);
    EXPECT_EQ(runtime_config::from_cli(args_numa).sched.steal.victim,
        threads::victim_policy::numa);

    char const* argv_bad[] = {"prog", "--mh:steal-victim-policy=closest"};
    util::cli_args args_bad(2, argv_bad);
    EXPECT_THROW(runtime_config::from_cli(args_bad), std::runtime_error);
}

namespace {

    // Single producer: every task spawns at the bottom of one worker's
    // queue, so the other workers only make progress by stealing.
    struct steal_totals
    {
        std::uint64_t steals = 0, same = 0, cross = 0;
    };

    steal_totals run_steal_storm(
        threads::victim_policy victim, unsigned domains)
    {
        runtime_config config;
        config.sched.num_workers = 4;
        config.sched.steal.victim = victim;
        config.sched.numa_domains = domains;
        runtime rt(config);
        async([] {
            std::vector<future<void>> fs;
            for (int i = 0; i < 4000; ++i)
                fs.push_back(async([] {
                    volatile int x = 0;
                    for (int j = 0; j < 64; ++j)
                        x += j;
                }));
            wait_all(fs);
        }).get();

        steal_totals t;
        auto& sched = rt.get_scheduler();
        for (unsigned i = 0; i < sched.num_workers(); ++i)
        {
            auto const& s = sched.get_worker(i).get_stats();
            t.steals += s.steals.load(std::memory_order_relaxed);
            t.same +=
                s.steals_same_domain.load(std::memory_order_relaxed);
            t.cross +=
                s.steals_cross_domain.load(std::memory_order_relaxed);
        }
        return t;
    }

}    // namespace

TEST(Scheduler, NumaPolicyStealSplitSumsToTotal)
{
    auto const t =
        run_steal_storm(threads::victim_policy::numa, /*domains=*/2);
    EXPECT_GT(t.steals, 0u);
    EXPECT_EQ(t.same + t.cross, t.steals);
    // Tasks originate in one domain; the other domain's workers can
    // only reach them across the boundary.
    EXPECT_GT(t.cross, 0u);
}

TEST(Scheduler, SingleDomainCountsAllStealsSameDomain)
{
    auto const t =
        run_steal_storm(threads::victim_policy::numa, /*domains=*/1);
    EXPECT_GT(t.steals, 0u);
    EXPECT_EQ(t.cross, 0u);
    EXPECT_EQ(t.same, t.steals);
}

TEST(Scheduler, RandomPolicyStillSplitsByDomain)
{
    // The split counters are accounting, not policy: they populate
    // under random victim selection too.
    auto const t =
        run_steal_storm(threads::victim_policy::random, /*domains=*/2);
    EXPECT_EQ(t.same + t.cross, t.steals);
}

TEST(RuntimeConfig, FromCliRejectsInvalidStealParams)
{
    char const* argv_batch[] = {"prog", "--mh:steal-batch=0"};
    util::cli_args args_batch(2, argv_batch);
    EXPECT_THROW(runtime_config::from_cli(args_batch), std::runtime_error);

    char const* argv_rounds[] = {"prog", "--mh:steal-rounds=0"};
    util::cli_args args_rounds(2, argv_rounds);
    EXPECT_THROW(runtime_config::from_cli(args_rounds), std::runtime_error);

    // timed park with a zero timeout would busy-spin the condvar.
    char const* argv_sleep[] = {
        "prog", "--mh:steal-park=timed", "--mh:steal-sleep-us=0"};
    util::cli_args args_sleep(3, argv_sleep);
    EXPECT_THROW(runtime_config::from_cli(args_sleep), std::runtime_error);

    char const* argv_park[] = {"prog", "--mh:steal-park=nonsense"};
    util::cli_args args_park(2, argv_park);
    EXPECT_THROW(runtime_config::from_cli(args_park), std::runtime_error);
}

TEST(RuntimeConfig, SchedulerCtorValidatesStealParams)
{
    scheduler_config config;
    config.num_workers = 1;
    config.steal.batch = 0;
    EXPECT_THROW(scheduler{config}, std::invalid_argument);

    config.steal = {};
    config.steal.rounds = 0;
    EXPECT_THROW(scheduler{config}, std::invalid_argument);

    config.steal = {};
    config.steal.park = scheduler_config::steal_params::park_policy::timed;
    config.steal.sleep_us = 0;
    EXPECT_THROW(scheduler{config}, std::invalid_argument);
}

TEST(RuntimeSingleton, GetPtrReflectsLifetime)
{
    EXPECT_EQ(runtime::get_ptr(), nullptr);
    {
        runtime rt;
        EXPECT_EQ(runtime::get_ptr(), &rt);
    }
    EXPECT_EQ(runtime::get_ptr(), nullptr);
}

// ------------------------------------------------ spawn-path A/B

namespace {

// Same semantics on both spawn paths: the pooled single-block frame and
// the legacy heap shared state must be observably identical.
class SpawnPathTest
  : public ::testing::TestWithParam<scheduler_config::spawn_path>
{
protected:
    void SetUp() override
    {
        runtime_config config;
        config.sched.num_workers = 2;
        config.sched.spawn = GetParam();
        rt_ = std::make_unique<runtime>(config);
    }

    std::unique_ptr<runtime> rt_;
};

}    // namespace

INSTANTIATE_TEST_SUITE_P(Paths, SpawnPathTest,
    ::testing::Values(scheduler_config::spawn_path::pooled_frame,
        scheduler_config::spawn_path::legacy),
    [](auto const& info) {
        return info.param == scheduler_config::spawn_path::pooled_frame ?
            "pooled" :
            "legacy";
    });

TEST_P(SpawnPathTest, ValueAndArguments)
{
    auto f = async([](int a, int b) { return a * b; }, 6, 7);
    EXPECT_EQ(f.get(), 42);
    EXPECT_EQ(async([] { return std::string("ok"); }).get(), "ok");
}

TEST_P(SpawnPathTest, ExceptionPropagates)
{
    auto f = async([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_P(SpawnPathTest, AllPoliciesCompute)
{
    EXPECT_EQ(async(launch::sync, [] { return 1; }).get(), 1);
    EXPECT_EQ(async(launch::deferred, [] { return 2; }).get(), 2);
    EXPECT_EQ(async(launch::async, [] { return 3; }).get(), 3);
    auto outer = async([] {
        auto c = async(launch::fork, [] { return 4; });
        return c.get();
    });
    EXPECT_EQ(outer.get(), 4);
}

TEST_P(SpawnPathTest, DroppedDeferredDoesNotRun)
{
    // A deferred future abandoned without get(): the closure must be
    // destroyed, not run, and the frame must not leak (ASan/LSan jobs
    // verify the latter).
    bool ran = false;
    {
        auto f = async(launch::deferred, [&ran] { ran = true; });
        (void) f;
    }
    EXPECT_FALSE(ran);
}

TEST_P(SpawnPathTest, WhenAllAndSharedFutureRefcounts)
{
    std::vector<future<int>> fs;
    for (int i = 0; i < 8; ++i)
        fs.push_back(async([i] { return i; }));
    auto all = when_all(std::move(fs)).get();
    int sum = 0;
    for (auto& f : all)
        sum += f.get();
    EXPECT_EQ(sum, 28);

    // shared_future copies add and release refs on one shared frame.
    shared_future<int> s = async([] { return 11; }).share();
    shared_future<int> s2 = s;
    auto s3 = s2;
    EXPECT_EQ(s.get() + s2.get() + s3.get(), 33);
}

TEST_P(SpawnPathTest, FutureOutlivesRuntimeResult)
{
    // The frame's lifetime follows the last reference, not the task:
    // read the value well after the task completed and recycle churned.
    auto keeper = async([] { return 123; });
    for (int i = 0; i < 64; ++i)
        async([] {}).get();
    EXPECT_EQ(keeper.get(), 123);
}

TEST_P(SpawnPathTest, OsWaiterStress)
{
    // Every get() here blocks an OS thread (the test body is not a
    // task): the stack-resident os_waiter must be safe against the
    // notifying worker racing with waiter destruction.
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(async([i] { return i; }).get(), i);
}

TEST(FramePool, RecycleHitsPlateauAfterWarmup)
{
    runtime_config config;
    config.sched.num_workers = 2;
    runtime rt(config);

    async([] {
        for (int i = 0; i < 128; ++i)
            async([] {}).get();
    }).get();
    auto const warm = detail::frame_pool_totals();

    async([] {
        for (int i = 0; i < 256; ++i)
            async([] {}).get();
    }).get();
    auto const after = detail::frame_pool_totals();

    // Steady state: the second burst is served from caches — hits grow,
    // fresh allocations stay far below one-per-spawn (any residue is
    // cross-cache rebalancing, bounded by the cache geometry).
    EXPECT_GT(after.cache_hits, warm.cache_hits);
    EXPECT_LE(after.allocations - warm.allocations, 64u);
}

TEST(DescriptorCache, GlobalFreelistBoundedByTrim)
{
    // Tiny global capacity: recycling past it must destroy descriptors
    // instead of hoarding them, so alive stays bounded by
    // in-flight + worker caches + global cap.
    runtime_config config;
    config.sched.num_workers = 2;
    config.sched.descriptor_cache.worker_capacity = 4;
    config.sched.descriptor_cache.refill_batch = 2;
    config.sched.descriptor_cache.global_capacity = 8;
    runtime rt(config);
    auto& sched = rt.get_scheduler();

    for (int burst = 0; burst < 4; ++burst)
    {
        std::vector<future<void>> fs;
        for (int i = 0; i < 64; ++i)
            fs.push_back(async([] {}));
        wait_all(fs);
    }
    while (sched.tasks_alive() != 0)
        std::this_thread::yield();

    EXPECT_GT(sched.descriptors_created(), 0u);
    EXPECT_LE(sched.descriptors_cached_global(), 8u);
    // 64 in flight + 2 workers * 4 cached + 8 global + slack for
    // descriptors mid-recycle.
    EXPECT_LE(sched.descriptors_alive(), 64u + 8u + 8u + 8u);
    // Trim actually destroyed surplus descriptors at least once.
    EXPECT_GT(sched.descriptors_destroyed(), 0u);
}

TEST(DescriptorCache, WorkerFastPathHits)
{
    runtime_config config;
    config.sched.num_workers = 2;
    runtime rt(config);
    auto& sched = rt.get_scheduler();

    async([] {
        for (int i = 0; i < 128; ++i)
            async([] {}).get();
    }).get();
    while (sched.tasks_alive() != 0)
        std::this_thread::yield();

    std::uint64_t hits = 0;
    for (unsigned i = 0; i < sched.num_workers(); ++i)
        hits += sched.get_worker(i)
                    .get_stats()
                    .descriptor_hits.load(std::memory_order_relaxed);
    EXPECT_GT(hits, 0u);
}

TEST(RuntimeConfig, FromCliParsesSpawnPathAndDescriptorCache)
{
    char const* argv[] = {"prog", "--mh:spawn-path=legacy",
        "--mh:descriptor-cache=32", "--mh:descriptor-refill=8",
        "--mh:descriptor-global=256"};
    util::cli_args args(5, argv);
    auto config = runtime_config::from_cli(args);
    EXPECT_EQ(config.sched.spawn, scheduler_config::spawn_path::legacy);
    EXPECT_EQ(config.sched.descriptor_cache.worker_capacity, 32u);
    EXPECT_EQ(config.sched.descriptor_cache.refill_batch, 8u);
    EXPECT_EQ(config.sched.descriptor_cache.global_capacity, 256u);

    char const* argv_pooled[] = {"prog", "--mh:spawn-path=pooled"};
    util::cli_args args_pooled(2, argv_pooled);
    EXPECT_EQ(runtime_config::from_cli(args_pooled).sched.spawn,
        scheduler_config::spawn_path::pooled_frame);

    char const* argv_bad[] = {"prog", "--mh:spawn-path=bogus"};
    util::cli_args args_bad(2, argv_bad);
    EXPECT_THROW(runtime_config::from_cli(args_bad), std::runtime_error);

    // refill larger than the worker cache can never fit a batch.
    char const* argv_refill[] = {
        "prog", "--mh:descriptor-cache=4", "--mh:descriptor-refill=8"};
    util::cli_args args_refill(3, argv_refill);
    EXPECT_THROW(runtime_config::from_cli(args_refill), std::runtime_error);
}

TEST(WorkSink, DispatchesWhenInstalled)
{
    static thread_local std::uint64_t seen_cpu_ns;
    seen_cpu_ns = 0;
    auto prev = set_work_sink(
        [](work_annotation const& w) { seen_cpu_ns += w.cpu_ns; });
    EXPECT_EQ(prev, nullptr);
    annotate_work({.cpu_ns = 123});
    annotate_work({.cpu_ns = 7});
    EXPECT_EQ(seen_cpu_ns, 130u);
    set_work_sink(nullptr);
    annotate_work({.cpu_ns = 1000});
    EXPECT_EQ(seen_cpu_ns, 130u);
}
