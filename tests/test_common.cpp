// Tests for the shared utility layer: statistics, strings, CLI
// parsing, the log2 histogram, PRNGs, and the spinlock.
#include <minihpx/util/cli.hpp>
#include <minihpx/util/histogram.hpp>
#include <minihpx/util/rng.hpp>
#include <minihpx/util/spinlock.hpp>
#include <minihpx/util/stats.hpp>
#include <minihpx/util/strings.hpp>

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace minihpx::util;

// ------------------------------------------------------------------ stats

TEST(RunningStats, MeanVarianceMinMax)
{
    running_stats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential)
{
    running_stats a, b, all;
    for (int i = 0; i < 50; ++i)
    {
        double const x = std::sin(i) * 10.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, EmptyAndReset)
{
    running_stats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(SampleSet, MedianAndPercentiles)
{
    sample_set s;
    for (double x : {9.0, 1.0, 8.0, 2.0, 7.0, 3.0, 6.0, 4.0, 5.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.median(), 5.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 9.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(SampleSet, EvenCountMedianInterpolates)
{
    sample_set s;
    s.add(1.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.median(), 1.5);
}

TEST(SampleSet, SingleAndEmpty)
{
    sample_set s;
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

// ----------------------------------------------------------------- strings

TEST(Strings, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y  "), "x y");
    EXPECT_EQ(trim("\t\n"), "");
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, CaseInsensitiveEquals)
{
    EXPECT_TRUE(iequals("TrUe", "true"));
    EXPECT_FALSE(iequals("true", "tru"));
}

TEST(Strings, Humanization)
{
    EXPECT_EQ(format_bytes(1536), "1.50 KiB");
    EXPECT_EQ(format_bytes_per_sec(2.5e9), "2.50 GB/s");
    EXPECT_EQ(format_duration_ns(1250), "1.25 us");
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

// --------------------------------------------------------------------- cli

TEST(Cli, ParsesFormsAndPositionals)
{
    char const* argv[] = {"prog", "--a=1", "--b=2", "--flag", "pos1",
        "--", "--pos2"};
    cli_args args(7, argv);
    EXPECT_EQ(args.int_or("a", 0), 1);
    EXPECT_EQ(args.value_or("b", ""), "2");
    EXPECT_TRUE(args.flag("flag"));
    EXPECT_FALSE(args.flag("missing"));
    ASSERT_EQ(args.positionals().size(), 2u);
    EXPECT_EQ(args.positionals()[1], "--pos2");
    EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, RepeatableAndLastWins)
{
    char const* argv[] = {"p", "--k=1", "--k=2", "--k=3"};
    cli_args args(4, argv);
    EXPECT_EQ(args.value_or("k", ""), "3");
    auto all = args.values("k");
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0], "1");
}

TEST(Cli, NumericParsing)
{
    char const* argv[] = {"p", "--i=0x10", "--d=2.5", "--neg=-7"};
    cli_args args(4, argv);
    EXPECT_EQ(args.int_or("i", 0), 16);
    EXPECT_DOUBLE_EQ(args.double_or("d", 0), 2.5);
    EXPECT_EQ(args.int_or("neg", 0), -7);
    EXPECT_EQ(args.int_or("missing", 42), 42);
}

TEST(OptionTable, StringRowStoresAcceptedValue)
{
    char const* argv[] = {"p", "--mh:policy=numa"};
    cli_args args(2, argv);
    std::string got = "random";
    option_table table;
    table.add_string("mh:policy",
        [&](std::string const& v) {
            got = v;
            return true;
        },
        "'random' or 'numa'");
    table.apply(args);
    EXPECT_EQ(got, "numa");
}

TEST(OptionTable, StringRowRejectionThrowsWithExpectedText)
{
    char const* argv[] = {"p", "--mh:policy=closest"};
    cli_args args(2, argv);
    option_table table;
    table.add_string("mh:policy",
        [](std::string const&) { return false; }, "'random' or 'numa'");
    try
    {
        table.apply(args);
        FAIL() << "apply() accepted a rejected string value";
    }
    catch (std::runtime_error const& e)
    {
        std::string const what = e.what();
        EXPECT_NE(what.find("mh:policy"), std::string::npos) << what;
        EXPECT_NE(what.find("closest"), std::string::npos) << what;
        EXPECT_NE(what.find("'random' or 'numa'"), std::string::npos)
            << what;
    }
}

TEST(OptionTable, StringRowHonorsDeprecatedAlias)
{
    char const* argv[] = {"p", "--mh:old-policy=numa"};
    cli_args args(2, argv);
    std::string got;
    option_table table;
    table.add_string("mh:policy",
        [&](std::string const& v) {
            got = v;
            return true;
        },
        "'random' or 'numa'", "mh:old-policy");
    table.apply(args);    // warns on stderr once, still stores
    EXPECT_EQ(got, "numa");
}

TEST(OptionTable, CanonicalSpellingWinsOverAlias)
{
    char const* argv[] = {"p", "--mh:old-policy=random", "--mh:policy=numa"};
    cli_args args(3, argv);
    std::string got;
    option_table table;
    table.add_string("mh:policy",
        [&](std::string const& v) {
            got = v;
            return true;
        },
        "'random' or 'numa'", "mh:old-policy");
    table.apply(args);
    EXPECT_EQ(got, "numa");
}

// --------------------------------------------------------------- histogram

TEST(Histogram, BucketIndexing)
{
    using H = log2_histogram<64>;
    EXPECT_EQ(H::bucket_index(0), 0u);
    EXPECT_EQ(H::bucket_index(1), 0u);
    EXPECT_EQ(H::bucket_index(2), 1u);
    EXPECT_EQ(H::bucket_index(1024), 10u);
    EXPECT_EQ(H::bucket_index(1025), 10u);
    EXPECT_EQ(H::bucket_floor(10), 1024u);
}

TEST(Histogram, CountsAndMean)
{
    log2_histogram<> h;
    h.add(100);
    h.add(200);
    h.add(300);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.sum(), 600u);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, ApproxQuantile)
{
    log2_histogram<> h;
    for (int i = 0; i < 90; ++i)
        h.add(1000);    // bucket floor 512
    for (int i = 0; i < 10; ++i)
        h.add(1 << 20);
    EXPECT_EQ(h.approx_quantile(0.5), 512u);
    EXPECT_EQ(h.approx_quantile(0.99), 1u << 20);
}

TEST(Histogram, InterpolatedQuantileEmpty)
{
    log2_histogram<> h;
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.summary().p99, 0u);
}

TEST(Histogram, InterpolatedQuantileUniform)
{
    // Uniform 1..1000: the true quantiles are known exactly; the
    // interpolated estimate must land within the enclosing log2 bucket
    // *and* much closer than the bucket floor alone would.
    log2_histogram<> h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.add(v);
    auto within = [](std::uint64_t est, double truth, double rel) {
        EXPECT_GE(static_cast<double>(est), truth * (1.0 - rel));
        EXPECT_LE(static_cast<double>(est), truth * (1.0 + rel));
    };
    within(h.quantile(0.50), 500.0, 0.15);
    within(h.quantile(0.95), 950.0, 0.15);
    within(h.quantile(0.99), 990.0, 0.15);
    // Monotone in q.
    EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
    EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(Histogram, InterpolatedQuantileBimodal)
{
    // 90% fast ops at ~1us, 10% slow at ~1ms (the task-duration shape
    // rollups exist for): p50 must sit in the fast mode, p95/p99 in
    // the slow mode.
    log2_histogram<> h;
    for (int i = 0; i < 900; ++i)
        h.add(1000);
    for (int i = 0; i < 100; ++i)
        h.add(1000000);
    auto const s = h.summary();
    EXPECT_GE(s.p50, 512u);
    EXPECT_LT(s.p50, 2048u);
    EXPECT_GE(s.p95, 524288u);    // within the 1e6 bucket [2^19, 2^20)
    EXPECT_LT(s.p95, 2097152u);
    EXPECT_GE(s.p99, s.p95);
}

TEST(Histogram, InterpolatedQuantileSingleValue)
{
    log2_histogram<> h;
    for (int i = 0; i < 50; ++i)
        h.add(777);
    // Everything is in bucket [512,1024); every quantile must be too.
    for (double q : {0.0, 0.5, 0.9, 1.0})
    {
        EXPECT_GE(h.quantile(q), 512u);
        EXPECT_LT(h.quantile(q), 1024u);
    }
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed)
{
    xoshiro256ss a(42), b(42), c(43);
    EXPECT_EQ(a(), b());
    EXPECT_NE(a(), c());
}

TEST(Rng, BelowIsInRange)
{
    xoshiro256ss rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, Uniform01Range)
{
    xoshiro256ss rng(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i)
    {
        double const x = rng.uniform01();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// ---------------------------------------------------------------- spinlock

TEST(Spinlock, MutualExclusionUnderThreads)
{
    spinlock lock;
    long counter = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
    {
        threads.emplace_back([&] {
            for (int i = 0; i < 20000; ++i)
            {
                std::lock_guard guard(lock);
                ++counter;
            }
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(counter, 80000);
}

TEST(Spinlock, TryLock)
{
    spinlock lock;
    EXPECT_TRUE(lock.try_lock());
    EXPECT_FALSE(lock.try_lock());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}
