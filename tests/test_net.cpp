// minihpx::net tests: serialization round trips and truncation safety,
// wire framing (versioned header rejection), the action registry,
// remote invocation over the deterministic sim fabric and the real TCP
// mesh, failure propagation (remote exceptions, dead peers), counter
// federation (wildcard expansion, remote proxies, cross-locality
// aggregates), and byte-deterministic fabric delivery.
#include <minihpx/minihpx.hpp>
#include <minihpx/net/net.hpp>
#include <minihpx/perf/perf.hpp>

#include <gtest/gtest.h>

#include "test_env.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace minihpx;
using namespace minihpx::net;

namespace {

// ---- shared test actions (registered once; the global action table
// is process-wide and snapshotted per locality) -----------------------

std::int64_t add_action(std::int64_t a, std::int64_t b)
{
    return a + b;
}

std::string greet_action(std::string name, std::uint32_t times)
{
    std::string out;
    for (std::uint32_t i = 0; i < times; ++i)
        out += name;
    return out;
}

std::int64_t throwing_action(std::int64_t)
{
    throw std::runtime_error("boom from the remote side");
}

// Never replies: parks the reply future forever so callers can test
// what happens when the peer dies with a request outstanding.
future<std::int64_t> never_action()
{
    static auto* parked = new std::vector<promise<std::int64_t>>();
    parked->emplace_back();
    return parked->back().get_future();
}

std::uint32_t whoami_action()
{
    return locality::current()->id();
}

void register_test_actions()
{
    auto& global = action_registry::global();
    if (global.contains("test/add"))
        return;
    register_action("test/add", &add_action);
    register_action("test/greet", &greet_action);
    register_action("test/throw", &throwing_action);
    register_action("test/never", &never_action);
    register_action("test/whoami", &whoami_action);
    register_distributed_fib();
}

// Registers "/test/value" in `registry`: total = base, worker-thread#i
// = base + i + 1, with `instances` indexable instances.
void register_value_counter(
    perf::counter_registry& registry, double base, std::uint64_t instances)
{
    perf::counter_registry::type_info t;
    t.type_key = "/test/value";
    t.kind = perf::counter_kind::raw;
    t.create = [base](perf::counter_path const& path) -> perf::counter_ptr {
        perf::counter_info info;
        info.full_name = path.full_name();
        info.kind = perf::counter_kind::raw;
        double const value = path.instance_index < 0 ?
            base :
            base + static_cast<double>(path.instance_index) + 1.0;
        return std::make_shared<perf::gauge_counter>(
            std::move(info), [value] { return value; });
    };
    if (instances > 0)
        t.instance_count = [instances] { return instances; };
    registry.register_type(std::move(t));
}

// ---- serialization ------------------------------------------------------

TEST(NetSerialize, ScalarRoundTrip)
{
    output_archive out;
    save(out, std::uint8_t{0xab});
    save(out, std::int32_t{-12345});
    save(out, std::uint64_t{0xdeadbeefcafef00dull});
    save(out, 3.25);
    save(out, true);

    input_archive in(out.data());
    EXPECT_EQ(load<std::uint8_t>(in), 0xab);
    EXPECT_EQ(load<std::int32_t>(in), -12345);
    EXPECT_EQ(load<std::uint64_t>(in), 0xdeadbeefcafef00dull);
    EXPECT_EQ(load<double>(in), 3.25);
    EXPECT_EQ(load<bool>(in), true);
    EXPECT_TRUE(in.exhausted());
}

TEST(NetSerialize, ContainersRoundTrip)
{
    output_archive out;
    save(out, std::string("federated counters"));
    save(out, std::vector<std::uint32_t>{1, 2, 3});
    save(out, std::make_pair(std::string("k"), 7.5));
    save(out, std::make_tuple(std::uint64_t{9}, std::string("t"), -1.0));
    save(out, std::optional<std::int32_t>{42});
    save(out, std::optional<std::int32_t>{});

    input_archive in(out.data());
    EXPECT_EQ(load<std::string>(in), "federated counters");
    EXPECT_EQ(
        (load<std::vector<std::uint32_t>>(in)),
        (std::vector<std::uint32_t>{1, 2, 3}));
    auto const p = load<std::pair<std::string, double>>(in);
    EXPECT_EQ(p.first, "k");
    EXPECT_EQ(p.second, 7.5);
    auto const t =
        load<std::tuple<std::uint64_t, std::string, double>>(in);
    EXPECT_EQ(std::get<0>(t), 9u);
    EXPECT_EQ(std::get<1>(t), "t");
    EXPECT_EQ(std::get<2>(t), -1.0);
    EXPECT_EQ(load<std::optional<std::int32_t>>(in), 42);
    EXPECT_EQ(load<std::optional<std::int32_t>>(in), std::nullopt);
    EXPECT_TRUE(in.exhausted());
}

TEST(NetSerialize, TruncationThrowsInsteadOfOverreading)
{
    output_archive out;
    save(out, std::string("a long enough payload"));
    std::vector<std::uint8_t> bytes = out.take();
    bytes.resize(bytes.size() / 2);

    input_archive in(bytes);
    EXPECT_THROW(load<std::string>(in), serialization_error);

    // A hostile length prefix must not read past the end either.
    output_archive evil;
    evil.write_le(std::uint32_t{0xffffffff});
    input_archive evil_in(evil.data());
    EXPECT_THROW(load<std::vector<std::uint64_t>>(evil_in),
        serialization_error);
}

// ---- wire framing -------------------------------------------------------

TEST(NetWire, HeaderRoundTrip)
{
    message m;
    m.type = message_type::invoke;
    m.source = 3;
    m.dest = 7;
    m.request_id = 0x1122334455667788ull;
    m.action_id = fnv1a64("test/add");
    m.payload.assign(10, 0xee);

    wire_header const h = encode_header(m);
    message decoded;
    std::uint32_t payload_size = 0;
    std::string error;
    ASSERT_TRUE(decode_header(h, decoded, &payload_size, &error)) << error;
    EXPECT_EQ(decoded.type, message_type::invoke);
    EXPECT_EQ(decoded.source, 3u);
    EXPECT_EQ(decoded.dest, 7u);
    EXPECT_EQ(decoded.request_id, m.request_id);
    EXPECT_EQ(decoded.action_id, m.action_id);
    EXPECT_EQ(payload_size, 10u);
}

TEST(NetWire, RejectsForeignAndFutureFrames)
{
    message m;
    wire_header h = encode_header(m);

    wire_header bad_magic = h;
    bad_magic[0] = 'X';
    message out;
    std::string error;
    EXPECT_FALSE(decode_header(bad_magic, out, nullptr, &error));
    EXPECT_NE(error.find("magic"), std::string::npos);

    wire_header bad_version = h;
    bad_version[4] = 99;    // little-endian low byte of the version
    EXPECT_FALSE(decode_header(bad_version, out, nullptr, &error));
    EXPECT_NE(error.find("version"), std::string::npos);

    wire_header huge = h;
    huge[32] = huge[33] = huge[34] = huge[35] = 0xff;
    EXPECT_FALSE(decode_header(huge, out, nullptr, &error));
    EXPECT_NE(error.find("frame limit"), std::string::npos);
}

TEST(NetWire, ActionIdsAreStable)
{
    // FNV-1a 64 reference value: both sides of a connection must agree
    // across processes and builds.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_NE(fnv1a64("test/add"), fnv1a64("test/greet"));
}

// ---- action registry ----------------------------------------------------

TEST(NetAction, DuplicateRegistrationThrows)
{
    action_registry reg;
    reg.add("dup", &add_action);
    EXPECT_THROW(reg.add("dup", &add_action), std::invalid_argument);
}

TEST(NetAction, TypedDispatchAndErrors)
{
    action_registry reg;
    reg.add("sum", &add_action);

    output_archive args;
    save(args, std::int64_t{40});
    save(args, std::int64_t{2});

    std::vector<std::uint8_t> result_bytes;
    std::string error_text;
    auto run = [&](std::vector<std::uint8_t> const& payload) {
        result_bytes.clear();
        error_text.clear();
        input_archive in(payload);
        reg.find(fnv1a64("sum"))
            ->handler(in,
                result_sender(
                    [&](std::vector<std::uint8_t> b) {
                        result_bytes = std::move(b);
                    },
                    [&](std::string w) { error_text = std::move(w); }));
    };

    run(args.data());
    ASSERT_TRUE(error_text.empty()) << error_text;
    input_archive in(result_bytes);
    EXPECT_EQ(load<std::int64_t>(in), 42);

    // Truncated arguments surface as an error reply, not a crash.
    std::vector<std::uint8_t> truncated(args.data());
    truncated.resize(3);
    run(truncated);
    EXPECT_NE(error_text.find("argument decode failed"), std::string::npos);
}

// ---- sim fabric ---------------------------------------------------------

TEST(NetFabric, RoundTripAndLoopback)
{
    register_test_actions();
    sim_fabric fabric(2);

    auto f = fabric.at(0).async<std::int64_t>(1, "test/add",
        std::int64_t{20}, std::int64_t{22});
    auto who = fabric.at(0).async<std::uint32_t>(1, "test/whoami");
    fabric.run();
    ASSERT_TRUE(f.is_ready());
    EXPECT_EQ(f.get(), 42);
    EXPECT_EQ(who.get(), 1u);

    // Loopback to self never touches the fabric queue.
    auto self = fabric.at(0).async<std::uint32_t>(0, "test/whoami");
    ASSERT_TRUE(self.is_ready());
    EXPECT_EQ(self.get(), 0u);

    EXPECT_GT(fabric.at(1).stats().invokes_executed.load(), 0u);
    EXPECT_GT(fabric.now_ns(), 0u);
}

TEST(NetFabric, RemoteExceptionPropagates)
{
    register_test_actions();
    sim_fabric fabric(2);

    auto f = fabric.at(0).async<std::int64_t>(1, "test/throw",
        std::int64_t{1});
    fabric.run();
    try
    {
        f.get();
        FAIL() << "expected remote_error";
    }
    catch (remote_error const& e)
    {
        EXPECT_EQ(e.origin(), 1u);
        EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    }
    EXPECT_EQ(fabric.at(0).stats().errors_received.load(), 1u);
}

TEST(NetFabric, DeadPeerFailsPendingAndFutureSends)
{
    register_test_actions();
    sim_fabric fabric(3);

    auto pending = fabric.at(0).async<std::int64_t>(2, "test/never");
    fabric.partition(2);
    ASSERT_TRUE(pending.is_ready());
    EXPECT_THROW(pending.get(), peer_unreachable);

    // New sends to the dead peer fail immediately.
    auto refused = fabric.at(0).async<std::int64_t>(2, "test/add",
        std::int64_t{1}, std::int64_t{2});
    ASSERT_TRUE(refused.is_ready());
    EXPECT_THROW(refused.get(), peer_unreachable);

    // Survivors keep talking.
    auto ok = fabric.at(0).async<std::int64_t>(1, "test/add",
        std::int64_t{1}, std::int64_t{2});
    fabric.run();
    EXPECT_EQ(ok.get(), 3);
    EXPECT_EQ(fabric.at(0).alive_localities(),
        (std::vector<std::uint32_t>{0, 1}));
}

TEST(NetFabric, DistributedFibMatchesSequential)
{
    register_test_actions();
    sim_fabric fabric(3);

    auto f = distributed_fib(fabric.at(0), 18, 10);
    fabric.run();
    ASSERT_TRUE(f.is_ready());
    EXPECT_EQ(f.get(), fib_sequential(18));

    // The work actually spread: every locality executed something.
    for (std::uint32_t i = 1; i < fabric.count(); ++i)
        EXPECT_GT(fabric.at(i).stats().invokes_executed.load(), 0u) << i;
}

TEST(NetFabric, DeliveryLogIsByteDeterministic)
{
    register_test_actions();
    auto run_once = [] {
        sim_fabric fabric(2);
        auto f = distributed_fib(fabric.at(0), 16, 8);
        fabric.run();
        EXPECT_EQ(f.get(), fib_sequential(16));
        return fabric.delivery_log();
    };
    std::string const first = run_once();
    std::string const second = run_once();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

// ---- counter federation -------------------------------------------------

TEST(NetFederation, WildcardExpandsAcrossLocalities)
{
    register_test_actions();
    sim_fabric fabric(2);
    register_value_counter(fabric.registry_at(0), 10.0, 2);
    register_value_counter(fabric.registry_at(1), 20.0, 2);
    counter_federation fed0(fabric.at(0));
    counter_federation fed1(fabric.at(1));

    std::vector<std::string> errors;
    auto handles = fabric.registry_at(0).resolve_all(
        "/test{locality#*/total}/value", &errors);
    ASSERT_TRUE(errors.empty()) << errors.front();
    ASSERT_EQ(handles.size(), 2u);
    EXPECT_EQ(handles[0].evaluate().get(), 10.0);
    EXPECT_EQ(handles[1].evaluate().get(), 20.0);
    EXPECT_EQ(handles[1].info().full_name,
        "/test{locality#1/total}/value");
}

TEST(NetFederation, RemoteInstanceWildcardExpandsOnHomeLocality)
{
    register_test_actions();
    sim_fabric fabric(2);
    register_value_counter(fabric.registry_at(0), 10.0, 2);
    register_value_counter(fabric.registry_at(1), 20.0, 3);
    counter_federation fed0(fabric.at(0));
    counter_federation fed1(fabric.at(1));

    // Only locality#1's registry knows it has three instances.
    std::vector<std::string> errors;
    auto handles = fabric.registry_at(0).resolve_all(
        "/test{locality#1/worker-thread#*}/value", &errors);
    ASSERT_TRUE(errors.empty()) << errors.front();
    ASSERT_EQ(handles.size(), 3u);
    double sum = 0;
    for (auto const& h : handles)
        sum += h.evaluate().get();
    EXPECT_EQ(sum, (20.0 + 1) + (20.0 + 2) + (20.0 + 3));
}

TEST(NetFederation, AggregateSpansLocalities)
{
    register_test_actions();
    sim_fabric fabric(2);
    register_value_counter(fabric.registry_at(0), 10.0, 0);
    register_value_counter(fabric.registry_at(1), 20.0, 0);
    counter_federation fed0(fabric.at(0));
    counter_federation fed1(fabric.at(1));

    std::string error;
    auto handle = fabric.registry_at(0).resolve(
        "/arithmetics/add@/test{locality#*/total}/value", &error);
    ASSERT_TRUE(handle) << error;
    EXPECT_EQ(handle.evaluate().get(), 30.0);
}

TEST(NetFederation, DeadPeerReportsNotAvailable)
{
    register_test_actions();
    sim_fabric fabric(2);
    register_value_counter(fabric.registry_at(0), 10.0, 0);
    register_value_counter(fabric.registry_at(1), 20.0, 0);
    counter_federation fed0(fabric.at(0));
    counter_federation fed1(fabric.at(1));

    std::string error;
    auto handle = fabric.registry_at(0).resolve(
        "/test{locality#1/total}/value", &error);
    ASSERT_TRUE(handle) << error;
    EXPECT_EQ(handle.evaluate().get(), 20.0);

    std::uint64_t const version_before = fabric.registry_at(0).version();
    fabric.partition(1);
    EXPECT_EQ(handle.evaluate().status,
        perf::counter_status::not_available);
    // The topology change bumped the version so wildcard consumers
    // (sampler, active_counters) re-expand without the dead peer.
    EXPECT_GT(fabric.registry_at(0).version(), version_before);
    auto paths = fabric.registry_at(0).expand(
        *perf::parse_counter_name("/test{locality#*/total}/value"));
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].parent_index, 0);
}

TEST(NetFederation, NetCountersAreRegistered)
{
    register_test_actions();
    sim_fabric fabric(2);
    counter_federation fed0(fabric.at(0));
    counter_federation fed1(fabric.at(1));

    auto f = fabric.at(0).async<std::int64_t>(1, "test/add",
        std::int64_t{2}, std::int64_t{3});
    fabric.run();
    EXPECT_EQ(f.get(), 5);

    std::string error;
    auto sent = fabric.registry_at(0).resolve(
        "/net{locality#0/total}/count/invokes-sent", &error);
    ASSERT_TRUE(sent) << error;
    EXPECT_GE(sent.evaluate().get(), 1.0);

    // The remote side's executed count, read through the federation.
    auto executed = fabric.registry_at(0).resolve(
        "/net{locality#1/total}/count/invokes-executed", &error);
    ASSERT_TRUE(executed) << error;
    EXPECT_GE(executed.evaluate().get(), 1.0);

    auto alive = fabric.registry_at(0).resolve(
        "/net{locality#0/total}/peers-alive", &error);
    ASSERT_TRUE(alive) << error;
    EXPECT_EQ(alive.evaluate().get(), 1.0);
}

// ---- TCP mesh -----------------------------------------------------------

struct tcp_pair
{
    perf::counter_registry registry0, registry1;
    std::unique_ptr<locality> loc0, loc1;
    std::unique_ptr<tcp_mesh> mesh0, mesh1;

    explicit tcp_pair(std::uint64_t heartbeat_ms = 0)
    {
        register_test_actions();

        net_config c0;
        c0.id = 0;
        c0.num_localities = 2;
        c0.heartbeat_interval_ms = heartbeat_ms;
        c0.registry = &registry0;
        net_config c1 = c0;
        c1.id = 1;
        c1.registry = &registry1;

        loc0 = std::make_unique<locality>(c0);
        loc1 = std::make_unique<locality>(c1);
        mesh0 = std::make_unique<tcp_mesh>(*loc0);
        mesh1 = std::make_unique<tcp_mesh>(*loc1);

        std::vector<std::uint16_t> const ports{
            mesh0->listen(0), mesh1->listen(0)};
        mesh1->connect(ports);
        mesh0->connect(ports);
    }

    ~tcp_pair()
    {
        loc0->stop();
        loc1->stop();
    }
};

TEST(NetTcp, RoundTripOverRealSockets)
{
    tcp_pair net;
    ASSERT_TRUE(net.loc0->peer_alive(1));
    ASSERT_TRUE(net.loc1->peer_alive(0));

    EXPECT_EQ(net.loc0->async<std::int64_t>(1, "test/add", std::int64_t{19},
                     std::int64_t{23})
                  .get(),
        42);
    EXPECT_EQ(
        net.loc1
            ->async<std::string>(0, "test/greet", std::string("hi"), 3u)
            .get(),
        "hihihi");
    EXPECT_GT(net.loc0->stats().bytes_sent.load(), 0u);
    EXPECT_GT(net.loc0->stats().bytes_received.load(), 0u);
}

TEST(NetTcp, RemoteExceptionCarriesOrigin)
{
    tcp_pair net;
    auto f = net.loc0->async<std::int64_t>(1, "test/throw", std::int64_t{0});
    try
    {
        f.get();
        FAIL() << "expected remote_error";
    }
    catch (remote_error const& e)
    {
        EXPECT_EQ(e.origin(), 1u);
        EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    }
}

TEST(NetTcp, AbruptPeerDeathFailsPendingRequests)
{
    tcp_pair net;
    auto pending = net.loc0->async<std::int64_t>(1, "test/never");
    EXPECT_FALSE(pending.is_ready());

    net.loc1->kill();    // no goodbye: loc0 learns via EOF

    EXPECT_THROW(pending.get(), peer_unreachable);
    auto refused = net.loc0->async<std::int64_t>(1, "test/add",
        std::int64_t{1}, std::int64_t{1});
    EXPECT_THROW(refused.get(), peer_unreachable);
    EXPECT_EQ(net.loc0->stats().peers_lost.load(), 1u);
}

TEST(NetTcp, OrderlyGoodbyeReportsPeerDown)
{
    tcp_pair net;
    net.loc1->stop();
    // The goodbye frame races only against this thread; wait for it.
    for (int i = 0; i < 200 && net.loc0->peer_alive(1); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_FALSE(net.loc0->peer_alive(1));
}

TEST(NetTcp, HeartbeatsFlow)
{
    tcp_pair net(/*heartbeat_ms=*/10);
    net.loc0->start_heartbeats();
    net.loc1->start_heartbeats();
    for (int i = 0; i < 200; ++i)
    {
        if (net.loc0->stats().heartbeats_received.load() > 0 &&
            net.loc1->stats().heartbeats_received.load() > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_GT(net.loc0->stats().heartbeats_sent.load(), 0u);
    EXPECT_GT(net.loc0->stats().heartbeats_received.load(), 0u);
    EXPECT_GT(net.loc1->stats().heartbeats_received.load(), 0u);
}

TEST(NetTcp, DistributedFibWithRuntimeDispatch)
{
    runtime_config config;
    config.sched.num_workers = 2;
    runtime rt(config);

    tcp_pair net;
    auto f = distributed_fib(*net.loc0, 16, 8);
    EXPECT_EQ(f.get(), fib_sequential(16));
    EXPECT_GT(net.loc1->stats().invokes_executed.load(), 0u);
}

TEST(NetTcp, FederatedCountersOverSockets)
{
    tcp_pair net;
    register_value_counter(net.registry0, 5.0, 0);
    register_value_counter(net.registry1, 7.0, 0);
    counter_federation fed0(*net.loc0);
    counter_federation fed1(*net.loc1);

    std::string error;
    auto handle = net.registry0.resolve(
        "/arithmetics/add@/test{locality#*/total}/value", &error);
    ASSERT_TRUE(handle) << error;
    EXPECT_EQ(handle.evaluate().get(), 12.0);
}

}    // namespace
