// Tests for the simulated PAPI layer: event catalogue, the virtual PMU
// fed by work annotations, and the /papi{...}/EVENT counter bindings.
#include <minihpx/minihpx.hpp>
#include <minihpx/papi/native.hpp>
#include <minihpx/papi/papi_engine.hpp>
#include <minihpx/perf/perf.hpp>

#include <gtest/gtest.h>

#include <string>
#include <string_view>

using namespace minihpx;
using namespace minihpx::papi;

TEST(PapiEvents, CatalogueComplete)
{
    for (std::size_t i = 0; i < num_events; ++i)
    {
        auto const& info = get_event_info(static_cast<event>(i));
        EXPECT_EQ(info.id, static_cast<event>(i));
        EXPECT_NE(info.name, nullptr);
        EXPECT_NE(info.description, nullptr);
    }
}

TEST(PapiEvents, LookupBySpelling)
{
    EXPECT_EQ(find_event("OFFCORE_REQUESTS:ALL_DATA_RD"),
        event::offcore_requests_all_data_rd);
    EXPECT_EQ(find_event("PAPI_TOT_INS"), event::tot_ins);
    EXPECT_EQ(find_event("NOPE"), std::nullopt);
}

TEST(PapiEngine, RecordConvertsBytesToLines)
{
    papi_engine engine(2, 2.5);
    engine.record(0,
        {.cpu_ns = 1000,
            .data_rd_bytes = 640,      // 10 lines
            .rfo_bytes = 65,           // 2 lines (rounded up)
            .code_rd_bytes = 64,       // 1 line
            .instructions = 500});
    EXPECT_EQ(engine.count(event::offcore_requests_all_data_rd, 0), 10u);
    EXPECT_EQ(engine.count(event::offcore_requests_demand_rfo, 0), 2u);
    EXPECT_EQ(engine.count(event::offcore_requests_demand_code_rd, 0), 1u);
    EXPECT_EQ(engine.count(event::tot_ins, 0), 500u);
    EXPECT_EQ(engine.count(event::tot_cyc, 0), 2500u);    // 1 us @ 2.5 GHz
    EXPECT_EQ(engine.count(event::l3_tcm, 0), 12u);
    EXPECT_EQ(engine.total(event::offcore_requests_all_data_rd), 10u);
    EXPECT_EQ(engine.count(event::offcore_requests_all_data_rd, 1), 0u);
}

TEST(PapiEngine, OverflowSlotForNonWorkers)
{
    papi_engine engine(2);
    engine.record(~0u, {.data_rd_bytes = 128});
    EXPECT_EQ(engine.count(event::offcore_requests_all_data_rd, 0), 0u);
    EXPECT_EQ(engine.count(event::offcore_requests_all_data_rd, 1), 0u);
    EXPECT_EQ(engine.total(event::offcore_requests_all_data_rd), 2u);
}

TEST(PapiEngine, InstallRoutesAnnotations)
{
    papi_engine engine(1);
    engine.install();
    EXPECT_EQ(papi_engine::installed(), &engine);
    annotate_work({.data_rd_bytes = 6400});
    EXPECT_EQ(engine.total(event::offcore_requests_all_data_rd), 100u);
    engine.uninstall();
    EXPECT_EQ(papi_engine::installed(), nullptr);
    annotate_work({.data_rd_bytes = 6400});
    EXPECT_EQ(engine.total(event::offcore_requests_all_data_rd), 100u);
}

TEST(PapiEngine, TasksAttributeToWorkers)
{
    runtime_config config;
    config.sched.num_workers = 2;
    runtime rt(config);
    papi_engine engine(2);
    engine.install();

    std::vector<future<void>> fs;
    for (int i = 0; i < 32; ++i)
        fs.push_back(async([] {
            annotate_work({.data_rd_bytes = 64, .instructions = 10});
        }));
    wait_all(fs);

    EXPECT_EQ(engine.total(event::offcore_requests_all_data_rd), 32u);
    EXPECT_EQ(engine.total(event::tot_ins), 320u);
    engine.uninstall();
}

TEST(PapiCounters, RegisteredAndEvaluable)
{
    runtime_config config;
    config.sched.num_workers = 2;
    runtime rt(config);
    papi_engine engine(2);
    engine.install();
    perf::counter_registry registry;
    engine.register_counters(registry);

    EXPECT_TRUE(registry.contains("/papi/OFFCORE_REQUESTS:ALL_DATA_RD"));
    EXPECT_TRUE(registry.contains("/papi/PAPI_TOT_CYC"));

    auto c = registry.create(
        "/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD");
    ASSERT_TRUE(c);
    c->reset();
    async([] { annotate_work({.data_rd_bytes = 640}); }).get();
    EXPECT_DOUBLE_EQ(c->get_value().get(), 10.0);

    // The paper's bandwidth derivation: sum the three OFFCORE events
    // through an arithmetic counter.
    auto sum = registry.create(
        "/arithmetics/add@"
        "/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD,"
        "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_CODE_RD,"
        "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_RFO");
    ASSERT_TRUE(sum);
    sum->reset();
    async([] {
        annotate_work({.data_rd_bytes = 640,
            .rfo_bytes = 320,
            .code_rd_bytes = 128});
    }).get();
    EXPECT_DOUBLE_EQ(sum->get_value().get(), 10.0 + 5.0 + 2.0);

    papi_engine::remove_counters(registry);
    EXPECT_FALSE(registry.contains("/papi/PAPI_TOT_CYC"));
    engine.uninstall();
}

TEST(PapiCounters, PerWorkerWildcard)
{
    runtime_config config;
    config.sched.num_workers = 3;
    runtime rt(config);
    papi_engine engine(3);
    engine.install();
    perf::counter_registry registry;
    engine.register_counters(registry);

    auto p = perf::parse_counter_name(
        "/papi{locality#0/worker-thread#*}/PAPI_TOT_INS");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(registry.expand(*p).size(), 3u);
    engine.uninstall();
}

TEST(PapiEvents, MemoryLocalityEventsInCatalogue)
{
    EXPECT_EQ(find_event("dtlb/loads"), event::dtlb_loads);
    EXPECT_EQ(find_event("dtlb/misses"), event::dtlb_misses);
    EXPECT_EQ(find_event("llc/loads"), event::llc_loads);
    EXPECT_EQ(find_event("llc/misses"), event::llc_misses);
    // Every modeled event carries a native PAPI spelling for the
    // hardware backend's translation table.
    EXPECT_STREQ(get_event_info(event::dtlb_misses).papi_name,
        "PAPI_TLB_DM");
    EXPECT_EQ(num_events, 11u);
}

TEST(PapiEngine, ModelsTlbMissesFromFootprint)
{
    papi_engine engine(2);
    // 64-page working set inside the 512-entry STLB reach: compulsory
    // walks only, one per page.
    engine.record(0,
        {.footprint_bytes = 64 * 4096, .mem_accesses = 1000});
    EXPECT_EQ(engine.count(event::dtlb_loads, 0), 1000u);
    EXPECT_EQ(engine.count(event::dtlb_misses, 0), 64u);
    EXPECT_EQ(engine.count(event::llc_loads, 0), 1000u);

    // 1024-page working set thrashes the STLB: compulsory walks plus
    // accesses * ((1024-512)/1024)/8 = 6250 capacity walks.
    engine.record(1,
        {.footprint_bytes = 1024 * 4096, .mem_accesses = 100000});
    EXPECT_EQ(engine.count(event::dtlb_misses, 1), 1024u + 6250u);
}

TEST(PapiEngine, NoFootprintMeansNoModeledLocalityMisses)
{
    papi_engine engine(1);
    engine.record(0, {.data_rd_bytes = 640, .mem_accesses = 500});
    EXPECT_EQ(engine.count(event::dtlb_loads, 0), 500u);
    EXPECT_EQ(engine.count(event::dtlb_misses, 0), 0u);
    EXPECT_EQ(engine.count(event::llc_misses, 0), 0u);
}

TEST(PapiCounters, DtlbMissRateDerivedCounter)
{
    runtime_config config;
    config.sched.num_workers = 2;
    runtime rt(config);
    papi_engine engine(2);
    engine.install();
    perf::counter_registry registry;
    engine.register_counters(registry);

    EXPECT_TRUE(registry.contains("/papi/dtlb/misses"));
    EXPECT_TRUE(registry.contains("/papi/llc/loads"));

    // The miss-rate derivation bench/matmul_tiling reports.
    auto rate = registry.create(
        "/arithmetics/divide@"
        "/papi{locality#0/total}/dtlb/misses,"
        "/papi{locality#0/total}/dtlb/loads");
    ASSERT_TRUE(rate);
    rate->reset();
    async([] {
        annotate_work(
            {.footprint_bytes = 64 * 4096, .mem_accesses = 1000});
    }).get();
    EXPECT_DOUBLE_EQ(rate->get_value().get(), 64.0 / 1000.0);

    papi_engine::remove_counters(registry);
    engine.uninstall();
}

TEST(PapiNative, DegradesGracefullyWithoutHardware)
{
    // The container has no PMU (and usually no libpapi); assert the
    // shim's contract rather than a particular backend.
    char const* const b = native::backend();
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(std::string_view(b) == "papi" ||
        std::string_view(b) == "model");
    if (!native::available())
    {
        EXPECT_STREQ(b, "model");
        EXPECT_FALSE(native::begin(event::dtlb_misses).has_value());
    }
    else
    {
        auto h = native::begin(event::dtlb_misses);
        if (h)
            EXPECT_TRUE(native::end(*h).has_value());
    }
}
