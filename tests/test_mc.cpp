// Tests for minihpx::mc, the exhaustive interleaving model checker.
//
// Three layers:
//   1. Engine semantics: classic two-thread litmus shapes (store
//      buffering, message passing) run directly on mc::atomic must
//      exhibit exactly the outcome sets the C++ memory model allows —
//      including the relaxed behaviors a naive
//      sequentially-consistent-interleaving checker cannot produce.
//   2. Detection machinery: data races on nonatomic cells, deadlocks,
//      and MC_CHECK failures are reported, and a reported failure's
//      schedule replays to the same failure deterministically.
//   3. The shipped litmus registry: every production case passes and
//      every fence-weakening mutant is detected (mutation validation —
//      proof the checker has teeth, not just green lights).
#include <minihpx/mc/atomic.hpp>
#include <minihpx/mc/engine.hpp>
#include <minihpx/mc/litmus.hpp>

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

namespace mc = minihpx::mc;

namespace {

mc::options bounded(int preemptions = 2)
{
    mc::options o;
    o.preemption_bound = preemptions;
    return o;
}

// ---------------------------------------------------------------------
// 1. Engine semantics
// ---------------------------------------------------------------------

// Store buffering (SB): with relaxed operations both threads may read
// the other's flag as 0 — a weak-memory outcome impossible under plain
// interleaving of the statements. The checker must enumerate it.
TEST(McEngine, StoreBufferingExhibitsRelaxedOutcome)
{
    std::set<std::pair<int, int>> outcomes;
    mc::result res = mc::check(bounded(), [&] {
        mc::atomic<int> x{0};
        mc::atomic<int> y{0};
        int r1 = -1;
        int r2 = -1;
        mc::thread t1([&] {
            x.store(1, std::memory_order_relaxed);
            r1 = y.load(std::memory_order_relaxed);
        });
        mc::thread t2([&] {
            y.store(1, std::memory_order_relaxed);
            r2 = x.load(std::memory_order_relaxed);
        });
        t1.join();
        t2.join();
        outcomes.insert({r1, r2});
    });
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.complete);
    // All four outcomes are allowed; {0,0} is the weak one.
    EXPECT_TRUE(outcomes.count({0, 0}));
    EXPECT_TRUE(outcomes.count({1, 1}));
    EXPECT_TRUE(outcomes.count({0, 1}));
    EXPECT_TRUE(outcomes.count({1, 0}));
}

// With seq_cst operations the {0,0} outcome is forbidden: the checker
// must NOT report it even while exploring weak memory elsewhere.
TEST(McEngine, StoreBufferingSeqCstForbidsBothZero)
{
    std::set<std::pair<int, int>> outcomes;
    mc::result res = mc::check(bounded(), [&] {
        mc::atomic<int> x{0};
        mc::atomic<int> y{0};
        int r1 = -1;
        int r2 = -1;
        mc::thread t1([&] {
            x.store(1, std::memory_order_seq_cst);
            r1 = y.load(std::memory_order_seq_cst);
        });
        mc::thread t2([&] {
            y.store(1, std::memory_order_seq_cst);
            r2 = x.load(std::memory_order_seq_cst);
        });
        t1.join();
        t2.join();
        outcomes.insert({r1, r2});
    });
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_FALSE(outcomes.count({0, 0}));
    EXPECT_TRUE(outcomes.count({1, 1}));
}

// Message passing (MP) with a release/acquire flag: once the consumer
// sees the flag it must see the payload, on every schedule.
TEST(McEngine, MessagePassingReleaseAcquireHolds)
{
    mc::result res = mc::check(bounded(), [] {
        mc::atomic<int> data{0};
        mc::atomic<int> flag{0};
        mc::thread producer([&] {
            data.store(42, std::memory_order_relaxed);
            flag.store(1, std::memory_order_release);
        });
        mc::thread consumer([&] {
            if (flag.load(std::memory_order_acquire) == 1)
                MC_CHECK(data.load(std::memory_order_relaxed) == 42);
        });
        producer.join();
        consumer.join();
    });
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.complete);
}

// MP with a relaxed flag store: the stale-payload behavior exists and
// the checker must find it (this is exactly the shape of every fence
// mutant in the suite).
TEST(McEngine, MessagePassingRelaxedFlagIsCaught)
{
    mc::result res = mc::check(bounded(), [] {
        mc::atomic<int> data{0};
        mc::atomic<int> flag{0};
        mc::thread producer([&] {
            data.store(42, std::memory_order_relaxed);
            flag.store(1, std::memory_order_relaxed);    // bug
        });
        mc::thread consumer([&] {
            if (flag.load(std::memory_order_acquire) == 1)
                MC_CHECK(data.load(std::memory_order_relaxed) == 42);
        });
        producer.join();
        consumer.join();
    });
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.schedule.empty());
    EXPECT_NE(res.error.find("MC_CHECK"), std::string::npos) << res.error;
}

// Release/acquire *fences* restore the MP guarantee with relaxed ops.
TEST(McEngine, MessagePassingViaFencesHolds)
{
    mc::result res = mc::check(bounded(), [] {
        mc::atomic<int> data{0};
        mc::atomic<int> flag{0};
        mc::thread producer([&] {
            data.store(42, std::memory_order_relaxed);
            mc::atomic_fence(std::memory_order_release);
            flag.store(1, std::memory_order_relaxed);
        });
        mc::thread consumer([&] {
            if (flag.load(std::memory_order_relaxed) == 1)
            {
                mc::atomic_fence(std::memory_order_acquire);
                MC_CHECK(data.load(std::memory_order_relaxed) == 42);
            }
        });
        producer.join();
        consumer.join();
    });
    EXPECT_TRUE(res.ok) << res.error;
}

// RMWs continue release sequences: a relaxed fetch_add between the
// release store and the acquire load must not break the edge.
TEST(McEngine, RmwContinuesReleaseSequence)
{
    mc::result res = mc::check(bounded(), [] {
        mc::atomic<int> data{0};
        mc::atomic<int> flag{0};
        mc::thread producer([&] {
            data.store(7, std::memory_order_relaxed);
            flag.store(1, std::memory_order_release);
        });
        mc::thread bumper([&] {
            flag.fetch_add(1, std::memory_order_relaxed);
        });
        mc::thread consumer([&] {
            if (flag.load(std::memory_order_acquire) == 2)
                MC_CHECK(data.load(std::memory_order_relaxed) == 7);
        });
        producer.join();
        bumper.join();
        consumer.join();
    });
    EXPECT_TRUE(res.ok) << res.error;
}

// ---------------------------------------------------------------------
// 2. Detection machinery
// ---------------------------------------------------------------------

TEST(McDetect, UnsynchronizedNonatomicWriteIsADataRace)
{
    mc::result res = mc::check(bounded(), [] {
        mc::nonatomic<int> cell;
        cell.store(0);
        mc::thread t1([&] { cell.store(1); });
        mc::thread t2([&] { cell.store(2); });
        t1.join();
        t2.join();
    });
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("race"), std::string::npos) << res.error;
}

TEST(McDetect, MutexGuardedWritesAreNotARace)
{
    mc::result res = mc::check(bounded(), [] {
        mc::mutex_shim m;
        mc::nonatomic<int> cell;
        cell.store(0);
        auto work = [&] {
            m.lock();
            cell.store(cell.load() + 1);
            m.unlock();
        };
        mc::thread t1(work);
        mc::thread t2(work);
        t1.join();
        t2.join();
        MC_CHECK(cell.load() == 2);
    });
    EXPECT_TRUE(res.ok) << res.error;
}

TEST(McDetect, LockOrderInversionDeadlocks)
{
    mc::result res = mc::check(bounded(), [] {
        mc::mutex_shim a;
        mc::mutex_shim b;
        mc::thread t1([&] {
            a.lock();
            b.lock();
            b.unlock();
            a.unlock();
        });
        mc::thread t2([&] {
            b.lock();
            a.lock();
            a.unlock();
            b.unlock();
        });
        t1.join();
        t2.join();
    });
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("deadlock"), std::string::npos) << res.error;
}

// A reported failure must replay: re-running with the recorded
// schedule reproduces the same failure in a single execution.
TEST(McDetect, FailingScheduleReplaysDeterministically)
{
    auto body = [] {
        mc::atomic<int> data{0};
        mc::atomic<int> flag{0};
        mc::thread producer([&] {
            data.store(42, std::memory_order_relaxed);
            flag.store(1, std::memory_order_relaxed);    // bug
        });
        mc::thread consumer([&] {
            if (flag.load(std::memory_order_acquire) == 1)
                MC_CHECK(data.load(std::memory_order_relaxed) == 42);
        });
        producer.join();
        consumer.join();
    };
    mc::result first = mc::check(bounded(), body);
    ASSERT_FALSE(first.ok);
    ASSERT_FALSE(first.schedule.empty());

    mc::options replay = bounded();
    replay.replay = first.schedule;
    mc::result second = mc::check(replay, body);
    EXPECT_FALSE(second.ok);
    EXPECT_EQ(second.executions, 1u);
    EXPECT_EQ(second.error, first.error);
}

// The preemption bound is honored as a coverage dial: bound 0 explores
// only cooperative (run-to-block) schedules, which hides the MP bug;
// bound >= 1 finds it.
TEST(McDetect, PreemptionBoundControlsCoverage)
{
    auto body = [] {
        // seq_cst everywhere: no weak-memory value choices, so the only
        // way to refute the claim below is a *preemptive* switch to the
        // reader between spawn and the parent's store.
        mc::atomic<int> flag{0};
        int seen = -1;
        mc::thread reader(
            [&] { seen = flag.load(std::memory_order_seq_cst); });
        flag.store(1, std::memory_order_seq_cst);
        reader.join();
        MC_CHECK(seen == 1);
    };
    mc::result tight = mc::check(bounded(0), body);
    mc::result loose = mc::check(bounded(2), body);
    EXPECT_TRUE(tight.ok) << tight.error;
    EXPECT_FALSE(loose.ok);
}

// ---------------------------------------------------------------------
// 3. The shipped litmus registry (mutation validation included)
// ---------------------------------------------------------------------

TEST(McLitmus, RegistryNamesAreUniqueAndFindable)
{
    std::set<std::string> names;
    for (mc::litmus_case const& c : mc::litmus_suite())
    {
        EXPECT_TRUE(names.insert(c.name).second)
            << "duplicate litmus name " << c.name;
        EXPECT_EQ(mc::find_litmus(c.name), &c);
    }
    EXPECT_EQ(mc::find_litmus("no_such_case"), nullptr);
    // The ISSUE's four protocol families are all present.
    EXPECT_NE(mc::find_litmus("chase_lev_3t"), nullptr);
    EXPECT_NE(mc::find_litmus("spsc_fifo"), nullptr);
    EXPECT_NE(mc::find_litmus("eventcount_wakeup"), nullptr);
    EXPECT_NE(mc::find_litmus("refcount_dispose"), nullptr);
}

TEST(McLitmus, EveryProductionCasePassesExhaustively)
{
    for (mc::litmus_case const& c : mc::litmus_suite())
    {
        if (c.expect_fail)
            continue;
        mc::result res;
        EXPECT_TRUE(mc::run_litmus(c, res))
            << c.name << ": " << res.error
            << " schedule=" << res.schedule;
        EXPECT_TRUE(res.complete)
            << c.name << " was truncated, not exhaustively checked";
        EXPECT_GT(res.executions, 1u) << c.name;
    }
}

TEST(McLitmus, EveryFenceMutantIsDetected)
{
    for (mc::litmus_case const& c : mc::litmus_suite())
    {
        if (!c.expect_fail)
            continue;
        mc::result res;
        EXPECT_TRUE(mc::run_litmus(c, res))
            << c.name << ": mutant survived (" << res.executions
            << " executions, complete=" << res.complete << ")";
        EXPECT_FALSE(res.error.empty()) << c.name;
    }
}

// Mutant failures replay through the public litmus entry points — the
// workflow the CI artifact upload and docs/MODEL_CHECKING.md describe.
TEST(McLitmus, MutantScheduleReplaysThroughRegistry)
{
    mc::litmus_case const* c =
        mc::find_litmus("chase_lev_2t.pop_bottom_relaxed");
    ASSERT_NE(c, nullptr);
    mc::result first;
    ASSERT_TRUE(mc::run_litmus(*c, first));
    ASSERT_FALSE(first.schedule.empty());

    mc::litmus_case replay = *c;
    replay.opts.replay = first.schedule;
    mc::result second;
    EXPECT_TRUE(mc::run_litmus(replay, second));
    EXPECT_EQ(second.executions, 1u);
    EXPECT_EQ(second.error, first.error);
}

}    // namespace
