// Environment gates shared by the test suite.
#pragma once

#include <minihpx/util/sanitizers.hpp>

#include <gtest/gtest.h>

// libtsan hard-caps the number of live threads — and every live task
// context announced via __tsan_create_fiber counts — at 8128. The
// paper-scale simulator workloads intentionally hold tens of thousands
// of live suspended tasks, so under TSan the tool itself dies ("Thread
// limit (8128 threads) exceeded") before any assertion runs. That is a
// checker capacity limit, not a finding; the same workloads run under
// ASan/UBSan and plain builds, and the TSan preset still covers the
// runtime through every other test.
#if MINIHPX_TSAN
#define MINIHPX_SKIP_IF_TSAN_FIBER_LIMIT()                                     \
    GTEST_SKIP() << "workload exceeds libtsan's 8128 live-thread/fiber cap"
#else
#define MINIHPX_SKIP_IF_TSAN_FIBER_LIMIT()                                     \
    do                                                                         \
    {                                                                          \
    } while (0)
#endif
