// Engine concept (v2) conformance: every backend — minihpx runtime,
// thread-per-task std baseline, virtual-time simulator — satisfies the
// same static interface and the same runtime contract for the
// dependency-graph surface (share / when_all / then / sync_wait) that
// Task Bench graphs are written against.
//
// The compile-time half is engine_traits static_asserts: a backend that
// drifts from the concept fails here with the name of the missing
// member, not at template-instantiation depth inside a workload. The
// runtime half drives the identical templated body through all three
// engines, each under its own harness (live runtime / bare threads /
// simulator).
#include <inncabs/engine.hpp>
#include <minihpx/engine/engine.hpp>
#include <minihpx/sim/simulator.hpp>

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace engine = minihpx::engine;

// ---- compile-time conformance ---------------------------------------------

static_assert(engine::concept_version == 2);

template <typename E>
constexpr void assert_conforms()
{
    using traits = engine::engine_traits<E>;
    static_assert(traits::has_future);
    static_assert(traits::has_shared_future);
    static_assert(traits::has_mutex);
    static_assert(traits::has_launch);
    static_assert(traits::has_async);
    static_assert(traits::has_policy_async);
    static_assert(traits::has_share);
    static_assert(traits::has_when_all);
    static_assert(traits::has_then);
    static_assert(traits::has_sync_wait);
    static_assert(traits::has_annotate_work);
    static_assert(traits::has_trace_label);
    static_assert(traits::has_skip_compute);
    static_assert(traits::has_name);
    static_assert(engine::is_engine_v<E>);
}

template void assert_conforms<engine::minihpx_engine>();
template void assert_conforms<engine::std_engine>();
template void assert_conforms<engine::sim_engine>();

// A v1-style engine (fork/join only) must be rejected by name.
struct fork_join_only
{
    template <typename T>
    using future = minihpx::future<T>;
    using mutex = minihpx::mutex;
    template <typename F>
    static auto async(F&& f)
    {
        return minihpx::async(std::forward<F>(f));
    }
};
static_assert(!engine::is_engine_v<fork_join_only>);
static_assert(!engine::engine_traits<fork_join_only>::has_when_all);
static_assert(!engine::engine_traits<fork_join_only>::has_then);

// ---- runtime contract -----------------------------------------------------

namespace {

// The portable body: value transport, fan-in gating with visible
// producer writes, empty-gate readiness, then() result propagation,
// and the annotation hooks. Runs unchanged on all three engines.
template <typename E>
void check_engine_contract()
{
    // async returns a value, with and without a launch policy.
    EXPECT_EQ(E::sync_wait(E::async([] { return 17; })), 17);
    EXPECT_EQ(
        E::sync_wait(E::async(E::launch::async, [] { return 21; })), 21);

    // share + when_all: the gate fires only after every producer's
    // write is visible to the consumer.
    auto data = std::make_shared<std::array<int, 4>>();
    std::vector<typename E::template shared_future<void>> producers;
    for (int i = 0; i != 4; ++i)
        producers.push_back(E::share(E::async([data, i] {
            E::trace_label("producer");
            E::annotate_work({.cpu_ns = 1000});
            (*data)[static_cast<std::size_t>(i)] = i + 1;
        })));
    auto sum = E::then(E::when_all(producers), [data] {
        return std::accumulate(data->begin(), data->end(), 0);
    });
    EXPECT_EQ(E::sync_wait(std::move(sum)), 1 + 2 + 3 + 4);

    // An empty dependency list is an already-satisfied gate.
    std::vector<typename E::template shared_future<int>> none;
    bool fired = false;
    auto tail =
        E::then(E::when_all(none), [&fired] { fired = true; return 7; });
    EXPECT_EQ(E::sync_wait(std::move(tail)), 7);
    EXPECT_TRUE(fired);

    // then() chains: a continuation's future can gate the next stage.
    auto first = E::share(E::async([] {}));
    std::vector<typename E::template shared_future<void>> one{first};
    auto second = E::share(E::then(E::when_all(one), [] {}));
    std::vector<typename E::template shared_future<void>> two{second};
    EXPECT_EQ(E::sync_wait(E::then(E::when_all(two), [] { return 3; })), 3);
}

}    // namespace

TEST(EngineConcept, MinihpxEngineContract)
{
    minihpx::runtime_config config;
    config.sched.num_workers = 2;
    minihpx::runtime rt(config);
    check_engine_contract<engine::minihpx_engine>();
}

TEST(EngineConcept, StdEngineContract)
{
    check_engine_contract<engine::std_engine>();
}

TEST(EngineConcept, SimEngineContract)
{
    minihpx::sim::sim_config config;
    config.cores = 2;
    minihpx::sim::simulator sim(config);
    auto const report = sim.run([] {
        check_engine_contract<engine::sim_engine>();
    });
    EXPECT_FALSE(report.failed) << report.failure_reason;
}

TEST(EngineConcept, Names)
{
    EXPECT_STREQ(engine::minihpx_engine::name(), "minihpx");
    EXPECT_FALSE(engine::minihpx_engine::skip_compute());
    // The other two engines report themselves too; exact strings are
    // their own contract, pinned where those engines are tested.
    EXPECT_NE(engine::std_engine::name(), nullptr);
    EXPECT_NE(engine::sim_engine::name(), nullptr);
}

TEST(EngineConcept, InncabsShimReexportsTheSameTypes)
{
    // The Inncabs header is now a pure re-export of the shared concept:
    // zero per-benchmark migration, byte-identical types.
    static_assert(
        std::is_same_v<inncabs::minihpx_engine, engine::minihpx_engine>);
    static_assert(std::is_same_v<inncabs::std_engine, engine::std_engine>);
    static_assert(std::is_same_v<inncabs::sim_engine, engine::sim_engine>);
    static_assert(std::is_same_v<inncabs::efuture<inncabs::std_engine, int>,
        engine::efuture<engine::std_engine, int>>);
    SUCCEED();
}
