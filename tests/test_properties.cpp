// Property-style parameterized sweeps: invariants that must hold for
// every (scheduler model × core count × benchmark) combination and for
// generated counter-name corpora — the safety net under the figure
// harnesses.
#include <inncabs/harness.hpp>
#include <inncabs/inncabs.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/sim/engine.hpp>

#include <gtest/gtest.h>

#include <tuple>

using namespace inncabs;
namespace ms = minihpx::sim;
namespace mp = minihpx::perf;

// ------------------------------------------------- simulator invariants

struct sim_case
{
    ms::sched_model model;
    unsigned cores;
};

class SimInvariants : public ::testing::TestWithParam<sim_case>
{
protected:
    // A mixed workload: fork/join tree + futures + a mutex.
    static void workload()
    {
        ms::sim_mutex m;
        long shared = 0;
        std::vector<ms::sim_future<long>> fs;
        for (int i = 0; i < 24; ++i)
        {
            fs.push_back(ms::sim_engine::async([&m, &shared, i] {
                ms::sim_engine::annotate_work(
                    {.cpu_ns = 4000 + 100ull * i,
                        .data_rd_bytes = 2048,
                        .rfo_bytes = 512});
                m.lock();
                ++shared;
                m.unlock();
                return static_cast<long>(i);
            }));
        }
        long sum = 0;
        for (auto& f : fs)
            sum += f.get();
        EXPECT_EQ(sum, 24 * 23 / 2);
        EXPECT_EQ(shared, 24);
    }

    ms::sim_report run()
    {
        ms::sim_config config;
        config.model = GetParam().model;
        config.cores = GetParam().cores;
        ms::simulator sim(config);
        return sim.run([] { workload(); });
    }
};

INSTANTIATE_TEST_SUITE_P(Sweep, SimInvariants,
    ::testing::Values(sim_case{ms::sched_model::hpx_like, 1},
        sim_case{ms::sched_model::hpx_like, 2},
        sim_case{ms::sched_model::hpx_like, 5},
        sim_case{ms::sched_model::hpx_like, 10},
        sim_case{ms::sched_model::hpx_like, 13},
        sim_case{ms::sched_model::hpx_like, 20},
        sim_case{ms::sched_model::std_like, 1},
        sim_case{ms::sched_model::std_like, 4},
        sim_case{ms::sched_model::std_like, 10},
        sim_case{ms::sched_model::std_like, 20}),
    [](auto const& info) {
        return std::string(info.param.model == ms::sched_model::hpx_like ?
                   "hpx" :
                   "std") +
            "_c" + std::to_string(info.param.cores);
    });

TEST_P(SimInvariants, WorkConservation)
{
    auto const r = run();
    ASSERT_FALSE(r.failed);
    // Every created task executed exactly once.
    EXPECT_EQ(r.tasks_created, r.tasks_executed);
    EXPECT_EQ(r.tasks_executed, 25u);    // 24 + root
}

TEST_P(SimInvariants, MakespanBounds)
{
    auto const r = run();
    ASSERT_FALSE(r.failed);
    // Makespan at least the critical work divided by cores, and never
    // more than all work + all overhead serialized.
    EXPECT_GE(r.exec_time_s + 1e-12,
        r.task_time_s / static_cast<double>(r.cores));
    EXPECT_LE(r.exec_time_s, r.task_time_s + r.sched_overhead_s + 1e-3);
}

TEST_P(SimInvariants, TaskTimeCoversAnnotations)
{
    auto const r = run();
    ASSERT_FALSE(r.failed);
    // Pure cpu annotations alone: 24 tasks x >=4 us.
    EXPECT_GE(r.task_time_s, 24 * 4e-6);
}

TEST_P(SimInvariants, PmuTotalsExact)
{
    auto const r = run();
    ASSERT_FALSE(r.failed);
    EXPECT_EQ(r.offcore_data_rd, 24u * (2048 / 64));
    EXPECT_EQ(r.offcore_rfo, 24u * (512 / 64));
}

TEST_P(SimInvariants, NoRemoteStealsWithinOneSocket)
{
    auto const r = run();
    ASSERT_FALSE(r.failed);
    if (GetParam().cores <= 10)
        EXPECT_EQ(r.remote_steals, 0u);
    EXPECT_LE(r.remote_steals, r.steals);
}

TEST_P(SimInvariants, RepeatIsIdentical)
{
    auto const a = run();
    auto const b = run();
    EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_EQ(a.suspensions, b.suspensions);
}

// ------------------------------------------- suite-wide sim equivalence

// Every benchmark must produce its serial result under *any* core
// count (schedule independence of results).
class SuiteScheduleIndependence
  : public ::testing::TestWithParam<std::tuple<char const*, unsigned>>
{
};

INSTANTIATE_TEST_SUITE_P(Sweep, SuiteScheduleIndependence,
    ::testing::Combine(
        ::testing::Values("fib", "sort", "floorplan", "intersim", "health"),
        ::testing::Values(1u, 3u, 12u)),
    [](auto const& info) {
        return std::string(std::get<0>(info.param)) + "_c" +
            std::to_string(std::get<1>(info.param));
    });

TEST_P(SuiteScheduleIndependence, ResultMatchesSerial)
{
    auto const* entry = find_benchmark(std::get<0>(GetParam()));
    ASSERT_NE(entry, nullptr);
    ms::sim_config config;
    config.cores = std::get<1>(GetParam());
    config.skip_compute = false;
    ms::simulator sim(config);
    double result = 0;
    auto report =
        sim.run([&] { result = entry->run_sim_body(input_scale::tiny); });
    ASSERT_FALSE(report.failed);
    double const serial = entry->run_serial(input_scale::tiny);
    EXPECT_NEAR(result, serial, std::abs(serial) * 1e-9 + 1e-9);
}

// --------------------------------------------- counter-name round trips

// Generated corpus: every combination of instance forms and counter
// shapes must round-trip through the grammar.
class GeneratedNames
  : public ::testing::TestWithParam<std::tuple<char const*, char const*>>
{
};

INSTANTIATE_TEST_SUITE_P(Corpus, GeneratedNames,
    ::testing::Combine(
        ::testing::Values("", "{locality#0/total}", "{locality#2/total}",
            "{locality#0/worker-thread#0}", "{locality#0/worker-thread#15}",
            "{locality#1/worker-thread#*}", "{node#3/pool#7}"),
        ::testing::Values("time/average", "count/cumulative",
            "count/instantaneous/pending", "idle-rate",
            "OFFCORE_REQUESTS:DEMAND_RFO", "a/b/c/d")),
    [](auto const& info) {
        std::string inst(std::get<0>(info.param));
        std::string name(std::get<1>(info.param));
        for (auto& s : {&inst, &name})
            for (auto& c : *s)
                if (!std::isalnum(static_cast<unsigned char>(c)))
                    c = '_';
        return inst.empty() ? "plain_" + name : inst + "_" + name;
    });

TEST_P(GeneratedNames, ParseFormatParseIsStable)
{
    std::string const name =
        std::string("/obj") + std::get<0>(GetParam()) + "/" +
        std::get<1>(GetParam());
    std::string error;
    auto p1 = mp::parse_counter_name(name, &error);
    ASSERT_TRUE(p1.has_value()) << name << ": " << error;
    auto p2 = mp::parse_counter_name(p1->full_name(), &error);
    ASSERT_TRUE(p2.has_value()) << p1->full_name() << ": " << error;
    EXPECT_EQ(*p1, *p2);
    EXPECT_EQ(p1->full_name(), p2->full_name());
}

// ------------------------------------------- counter reset independence

// Two counters over the same source must keep independent reset epochs
// (the framework's core contract: instrumentation is never cleared).
TEST(CounterEpochs, IndependentResets)
{
    double cumulative = 0.0;
    auto make = [&] {
        return mp::delta_counter(
            mp::counter_info{.full_name = "/t/x"}, [&] { return cumulative; });
    };
    auto a = make();
    auto b = make();
    cumulative = 100;
    EXPECT_DOUBLE_EQ(a.get_value(true).get(), 100.0);    // a resets
    EXPECT_DOUBLE_EQ(b.get_value().get(), 100.0);        // b unaffected
    cumulative = 150;
    EXPECT_DOUBLE_EQ(a.get_value().get(), 50.0);
    EXPECT_DOUBLE_EQ(b.get_value().get(), 150.0);
}

// Statistics counter window sweep: mean of a linear ramp over any
// window w equals the mean of the last w samples.
class StatsWindow : public ::testing::TestWithParam<std::size_t>
{
};

INSTANTIATE_TEST_SUITE_P(
    Windows, StatsWindow, ::testing::Values(1u, 2u, 5u, 16u, 64u));

TEST_P(StatsWindow, RollingMeanOfRamp)
{
    std::size_t const w = GetParam();
    double v = 0.0;
    auto underlying = std::make_shared<mp::gauge_counter>(
        mp::counter_info{.full_name = "/t/u"}, [&] { return v; });
    mp::statistics_counter avg(
        mp::counter_info{.full_name = "/t/s"}, mp::statistic::average,
        underlying, w);
    constexpr int total = 100;
    for (int i = 1; i <= total; ++i)
    {
        v = static_cast<double>(i);
        avg.sample();
    }
    // Mean of {total-w+1 .. total}.
    double const lo = static_cast<double>(total) -
        static_cast<double>(std::min<std::size_t>(w, total)) + 1.0;
    double const expect = (lo + total) / 2.0;
    EXPECT_DOUBLE_EQ(avg.get_value().get(), expect);
}
