// Tests for the performance-counter framework: name grammar, counter
// implementations, derived counters, registry, active counters, and
// the scheduler-backed thread counters.
#include <minihpx/minihpx.hpp>
#include <minihpx/perf/perf.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <span>
#include <sstream>
#include <thread>

using namespace minihpx;
using namespace minihpx::perf;

// ------------------------------------------------------------ name grammar

TEST(CounterName, FullFormParses)
{
    auto p = parse_counter_name(
        "/threads{locality#0/worker-thread#1}/count/cumulative");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->object, "threads");
    EXPECT_EQ(p->parent_instance, "locality");
    EXPECT_EQ(p->parent_index, 0);
    EXPECT_EQ(p->instance, "worker-thread");
    EXPECT_EQ(p->instance_index, 1);
    EXPECT_FALSE(p->instance_wildcard);
    EXPECT_EQ(p->counter, "count/cumulative");
    EXPECT_TRUE(p->parameters.empty());
}

TEST(CounterName, DefaultsWithoutBraces)
{
    auto p = parse_counter_name("/threads/time/average");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->parent_instance, "locality");
    EXPECT_EQ(p->parent_index, 0);
    EXPECT_EQ(p->instance, "total");
    EXPECT_EQ(p->instance_index, -1);
    EXPECT_EQ(p->counter, "time/average");
}

TEST(CounterName, PapiColonNames)
{
    auto p = parse_counter_name(
        "/papi{locality#0/total}/OFFCORE_REQUESTS:ALL_DATA_RD");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->object, "papi");
    EXPECT_EQ(p->counter, "OFFCORE_REQUESTS:ALL_DATA_RD");
}

TEST(CounterName, WildcardInstance)
{
    auto p = parse_counter_name(
        "/threads{locality#0/worker-thread#*}/time/average");
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(p->instance_wildcard);
}

TEST(CounterName, ParametersVerbatim)
{
    auto p = parse_counter_name(
        "/arithmetics/add@/threads{locality#0/total}/time/average,"
        "/threads{locality#0/total}/time/average-overhead");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->object, "arithmetics");
    EXPECT_EQ(p->counter, "add");
    EXPECT_EQ(p->parameters,
        "/threads{locality#0/total}/time/average,"
        "/threads{locality#0/total}/time/average-overhead");
}

TEST(CounterName, TypeKey)
{
    auto p = parse_counter_name("/threads{locality#0/total}/time/average");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->type_key(), "/threads/time/average");
}

struct bad_name_case
{
    char const* name;
};

class BadCounterNames : public ::testing::TestWithParam<bad_name_case>
{
};

TEST_P(BadCounterNames, Rejected)
{
    std::string error;
    auto p = parse_counter_name(GetParam().name, &error);
    EXPECT_FALSE(p.has_value()) << GetParam().name;
    EXPECT_FALSE(error.empty());
}

INSTANTIATE_TEST_SUITE_P(Grammar, BadCounterNames,
    ::testing::Values(bad_name_case{""}, bad_name_case{"threads/x"},
        bad_name_case{"/"}, bad_name_case{"//x"},
        bad_name_case{"/threads{locality#0/total/time/average"},
        bad_name_case{"/threads{}/time/average"},
        bad_name_case{"/threads{locality#abc/total}/x"},
        bad_name_case{"/threads{locality#0/total}"},
        bad_name_case{"/threads{locality#0/total}/"},
        bad_name_case{"/threads{locality#0/worker-thread#}/x"},
        bad_name_case{"/thr eads/x"},
        bad_name_case{"/threads{locality#-2/total}/x"}));

// Round-trip property: parse(full_name(parse(x))) == parse(x).
class RoundTripNames : public ::testing::TestWithParam<char const*>
{
};

TEST_P(RoundTripNames, ParseFormatParse)
{
    auto p1 = parse_counter_name(GetParam());
    ASSERT_TRUE(p1.has_value());
    auto p2 = parse_counter_name(p1->full_name());
    ASSERT_TRUE(p2.has_value()) << p1->full_name();
    EXPECT_EQ(*p1, *p2);
}

INSTANTIATE_TEST_SUITE_P(Grammar, RoundTripNames,
    ::testing::Values("/threads/time/average",
        "/threads{locality#0/total}/time/average",
        "/threads{locality#0/worker-thread#7}/count/cumulative",
        "/threads{locality#3/worker-thread#*}/idle-rate",
        "/papi{locality#0/total}/OFFCORE_REQUESTS:DEMAND_RFO",
        "/runtime/uptime",
        "/statistics/average@/threads{locality#0/total}/idle-rate,32",
        "/arithmetics/add@/a{locality#0/total}/x,/b{locality#0/total}/y"));

// ---------------------------------------------------------- basic counters

TEST(GaugeCounter, ReturnsCurrentValue)
{
    double v = 1.5;
    gauge_counter g({.full_name = "/test/g"}, [&] { return v; });
    EXPECT_DOUBLE_EQ(g.get_value().get(), 1.5);
    v = 3.0;
    EXPECT_DOUBLE_EQ(g.get_value().get(), 3.0);
    EXPECT_EQ(g.get_value().count, 3);
}

TEST(DeltaCounter, ReportsSinceReset)
{
    double cumulative = 100.0;
    delta_counter c({.full_name = "/test/d"}, [&] { return cumulative; });
    EXPECT_DOUBLE_EQ(c.get_value().get(), 100.0);
    cumulative = 150.0;
    auto v = c.get_value(/*reset=*/true);
    EXPECT_DOUBLE_EQ(v.get(), 150.0);
    EXPECT_EQ(v.status, counter_status::new_data);
    cumulative = 170.0;
    EXPECT_DOUBLE_EQ(c.get_value().get(), 20.0);    // since reset
    c.reset();
    EXPECT_DOUBLE_EQ(c.get_value().get(), 0.0);
}

TEST(RatioCounter, AverageOfDeltas)
{
    double sum = 0.0;
    double count = 0.0;
    ratio_counter c({.full_name = "/test/avg"}, [&] { return sum; },
        [&] { return count; });
    sum = 100.0;
    count = 4.0;
    EXPECT_DOUBLE_EQ(c.get_value(true).get(), 25.0);
    // After reset only new work counts.
    sum = 130.0;
    count = 5.0;
    EXPECT_DOUBLE_EQ(c.get_value().get(), 30.0);
}

TEST(RatioCounter, ZeroDenominatorInvalid)
{
    ratio_counter c({.full_name = "/test/avg"}, [] { return 1.0; },
        [] { return 0.0; });
    EXPECT_EQ(c.get_value().status, counter_status::invalid_data);
}

TEST(RatioCounter, ScaleApplies)
{
    ratio_counter c({.full_name = "/test/idle"}, [] { return 1.0; },
        [] { return 4.0; }, 10000.0);
    EXPECT_DOUBLE_EQ(c.get_value().get(), 2500.0);    // 25% in 0.01% units
}

TEST(ElapsedTimeCounter, GrowsAndResets)
{
    elapsed_time_counter c({.full_name = "/test/uptime"});
    auto const v1 = c.get_value().get();
    EXPECT_GE(v1, 0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    auto const v2 = c.get_value(true).get();
    EXPECT_GT(v2, v1);
    EXPECT_LT(c.get_value().get(), v2);
}

// -------------------------------------------------------- derived counters

namespace {

counter_ptr constant_counter(double v, char const* name = "/test/const")
{
    return std::make_shared<gauge_counter>(
        counter_info{.full_name = name}, [v] { return v; });
}

}    // namespace

TEST(ArithmeticCounter, AllOps)
{
    auto make = [](arithmetic_op op, std::vector<double> vals) {
        std::vector<counter_ptr> in;
        for (double v : vals)
            in.push_back(constant_counter(v));
        return arithmetic_counter({.full_name = "/t/a"}, op, std::move(in));
    };
    EXPECT_DOUBLE_EQ(
        make(arithmetic_op::add, {1, 2, 3}).get_value().get(), 6.0);
    EXPECT_DOUBLE_EQ(
        make(arithmetic_op::subtract, {10, 3, 2}).get_value().get(), 5.0);
    EXPECT_DOUBLE_EQ(
        make(arithmetic_op::multiply, {2, 3, 4}).get_value().get(), 24.0);
    EXPECT_DOUBLE_EQ(
        make(arithmetic_op::divide, {100, 4}).get_value().get(), 25.0);
    EXPECT_DOUBLE_EQ(
        make(arithmetic_op::min, {5, 2, 9}).get_value().get(), 2.0);
    EXPECT_DOUBLE_EQ(
        make(arithmetic_op::max, {5, 2, 9}).get_value().get(), 9.0);
    EXPECT_DOUBLE_EQ(
        make(arithmetic_op::mean, {2, 4, 6}).get_value().get(), 4.0);
}

TEST(ArithmeticCounter, DivideByZeroInvalid)
{
    std::vector<counter_ptr> in{constant_counter(1), constant_counter(0)};
    arithmetic_counter c(
        {.full_name = "/t/a"}, arithmetic_op::divide, std::move(in));
    EXPECT_EQ(c.get_value().status, counter_status::invalid_data);
}

TEST(StatisticsCounter, WindowedStats)
{
    double v = 0.0;
    auto underlying = std::make_shared<gauge_counter>(
        counter_info{.full_name = "/t/u"}, [&] { return v; });
    statistics_counter avg(
        {.full_name = "/t/s"}, statistic::average, underlying, 3);
    for (double x : {1.0, 2.0, 3.0, 4.0})    // window keeps 2,3,4
    {
        v = x;
        avg.sample();
    }
    EXPECT_DOUBLE_EQ(avg.get_value().get(), 3.0);

    statistics_counter med(
        {.full_name = "/t/m"}, statistic::median, underlying, 10);
    for (double x : {5.0, 1.0, 9.0})
    {
        v = x;
        med.sample();
    }
    EXPECT_DOUBLE_EQ(med.get_value().get(), 5.0);
}

TEST(StatisticsCounter, EmptyWindowInvalid)
{
    statistics_counter c({.full_name = "/t/s"}, statistic::min,
        constant_counter(1), 4);
    EXPECT_EQ(c.get_value().status, counter_status::invalid_data);
}

TEST(StatisticsCounter, ResetClearsWindow)
{
    statistics_counter c({.full_name = "/t/s"}, statistic::max,
        constant_counter(7), 4);
    c.sample();
    EXPECT_TRUE(c.get_value().valid());
    c.reset();
    EXPECT_EQ(c.get_value().status, counter_status::invalid_data);
}

// ----------------------------------------------------------------- registry

namespace {

void add_test_gauge(counter_registry& registry, double* cell)
{
    counter_registry::type_info t;
    t.type_key = "/test/value";
    t.kind = counter_kind::raw;
    t.create = [cell](counter_path const& path) -> counter_ptr {
        return std::make_shared<gauge_counter>(
            counter_info{.full_name = path.full_name()},
            [cell] { return *cell; });
    };
    t.instance_count = [] { return std::uint64_t(3); };
    registry.register_type(std::move(t));
}

}    // namespace

TEST(Registry, CreateByName)
{
    double cell = 42.0;
    counter_registry registry;
    add_test_gauge(registry, &cell);
    std::string error;
    auto c = registry.create("/test{locality#0/total}/value", &error);
    ASSERT_TRUE(c) << error;
    EXPECT_DOUBLE_EQ(c->get_value().get(), 42.0);
    EXPECT_EQ(
        c->info().full_name, "/test{locality#0/total}/value");
}

TEST(Registry, UnknownTypeFails)
{
    counter_registry registry;
    std::string error;
    EXPECT_EQ(registry.create("/nope/value", &error), nullptr);
    EXPECT_NE(error.find("unknown counter type"), std::string::npos);
}

TEST(Registry, WildcardExpansion)
{
    double cell = 0.0;
    counter_registry registry;
    add_test_gauge(registry, &cell);
    auto p =
        parse_counter_name("/test{locality#0/worker-thread#*}/value");
    ASSERT_TRUE(p.has_value());
    auto expanded = registry.expand(*p);
    ASSERT_EQ(expanded.size(), 3u);
    for (std::int64_t i = 0; i < 3; ++i)
    {
        EXPECT_EQ(expanded[static_cast<std::size_t>(i)].instance_index, i);
        EXPECT_FALSE(expanded[static_cast<std::size_t>(i)].instance_wildcard);
    }
}

TEST(Registry, NonWildcardExpandIsIdentity)
{
    counter_registry registry;
    auto p = parse_counter_name("/x{locality#0/total}/y");
    auto expanded = registry.expand(*p);
    ASSERT_EQ(expanded.size(), 1u);
    EXPECT_EQ(expanded[0], *p);
}

TEST(Registry, ArithmeticOverRegisteredCounters)
{
    double cell = 10.0;
    counter_registry registry;
    add_test_gauge(registry, &cell);
    std::string error;
    auto c = registry.create(
        "/arithmetics/add@/test{locality#0/total}/value,"
        "/test{locality#0/total}/value",
        &error);
    ASSERT_TRUE(c) << error;
    EXPECT_DOUBLE_EQ(c->get_value().get(), 20.0);
}

TEST(Registry, StatisticsOverRegisteredCounter)
{
    double cell = 4.0;
    counter_registry registry;
    add_test_gauge(registry, &cell);
    std::string error;
    auto c = registry.create(
        "/statistics/average@/test{locality#0/total}/value,8", &error);
    ASSERT_TRUE(c) << error;
    auto* stats = dynamic_cast<statistics_counter*>(c.get());
    ASSERT_NE(stats, nullptr);
    stats->sample();
    cell = 8.0;
    stats->sample();
    EXPECT_DOUBLE_EQ(c->get_value().get(), 6.0);
}

TEST(Registry, ListAndContains)
{
    double cell = 0.0;
    counter_registry registry;
    add_test_gauge(registry, &cell);
    EXPECT_TRUE(registry.contains("/test/value"));
    EXPECT_TRUE(registry.contains("/arithmetics/add"));
    EXPECT_FALSE(registry.contains("/test/other"));
    auto types = registry.list();
    EXPECT_GE(types.size(), 13u);    // 7 arithmetics + 5 statistics + 1
    EXPECT_TRUE(registry.unregister_type("/test/value"));
    EXPECT_FALSE(registry.contains("/test/value"));
}

TEST(Registry, VersionBumpsOnMutation)
{
    counter_registry registry;
    auto const v0 = registry.version();
    counter_registry::type_info t;
    t.type_key = "/test/value";
    t.create = [](counter_path const& path) -> counter_ptr {
        return std::make_shared<gauge_counter>(
            counter_info{path.full_name(), counter_kind::raw, "", ""},
            [] { return 1.0; });
    };
    registry.register_type(std::move(t));
    auto const v1 = registry.version();
    EXPECT_GT(v1, v0);
    EXPECT_EQ(registry.version(), v1);    // reads don't bump
    registry.unregister_type("/test/value");
    EXPECT_GT(registry.version(), v1);
    registry.unregister_type("/test/value");    // absent: no bump
    EXPECT_EQ(registry.version(), v1 + 1);
}

// ------------------------------------------------------------ thread counters

namespace {

class ThreadCounterTest : public ::testing::Test
{
protected:
    void SetUp() override
    {
        runtime_config config;
        config.sched.num_workers = 2;
        rt_ = std::make_unique<runtime>(config);
        register_all_runtime_counters(registry_, *rt_);
    }

    void drain()
    {
        while (rt_->get_scheduler().tasks_alive() != 0)
            std::this_thread::yield();
    }

    counter_registry registry_;
    std::unique_ptr<runtime> rt_;
};

}    // namespace

TEST_F(ThreadCounterTest, CumulativeCountsExecutedTasks)
{
    auto c = registry_.create("/threads{locality#0/total}/count/cumulative");
    ASSERT_TRUE(c);
    c->reset();
    std::vector<future<void>> fs;
    for (int i = 0; i < 25; ++i)
        fs.push_back(async([] {}));
    wait_all(fs);
    drain();
    EXPECT_DOUBLE_EQ(c->get_value().get(), 25.0);
}

TEST_F(ThreadCounterTest, AverageDurationReflectsWork)
{
    auto c = registry_.create("/threads{locality#0/total}/time/average");
    ASSERT_TRUE(c);
    c->reset();
    // One task with measurable busy-work.
    async([] {
        volatile double x = 1.0;
        for (int i = 0; i < 2000000; ++i)
            x = x * 1.0000001 + 0.5;
    }).get();
    drain();
    auto const v = c->get_value();
    ASSERT_TRUE(v.valid());
    EXPECT_GT(v.get(), 100000.0);    // > 100 us of busy-work, in ns
}

TEST_F(ThreadCounterTest, OverheadCounterValid)
{
    auto avg_overhead = registry_.create(
        "/threads{locality#0/total}/time/average-overhead");
    auto cum_overhead = registry_.create(
        "/threads{locality#0/total}/time/cumulative-overhead");
    ASSERT_TRUE(avg_overhead && cum_overhead);
    avg_overhead->reset();
    cum_overhead->reset();
    std::vector<future<void>> fs;
    for (int i = 0; i < 50; ++i)
        fs.push_back(async([] {}));
    wait_all(fs);
    drain();
    auto const avg = avg_overhead->get_value();
    auto const cum = cum_overhead->get_value();
    ASSERT_TRUE(avg.valid());
    EXPECT_GT(avg.get(), 0.0);
    EXPECT_LT(avg.get(), 1e8);    // sane: < 0.1 s per task
    EXPECT_GT(cum.get(), 0.0);
}

TEST_F(ThreadCounterTest, PerWorkerWildcardInstances)
{
    auto p = parse_counter_name(
        "/threads{locality#0/worker-thread#*}/count/cumulative");
    ASSERT_TRUE(p.has_value());
    auto expanded = registry_.expand(*p);
    ASSERT_EQ(expanded.size(), 2u);    // two workers
    std::vector<counter_ptr> per_worker;
    for (auto const& path : expanded)
    {
        auto c = registry_.create(path);
        ASSERT_TRUE(c);
        c->reset();
        per_worker.push_back(std::move(c));
    }
    std::vector<future<void>> fs;
    for (int i = 0; i < 40; ++i)
        fs.push_back(async([] {}));
    wait_all(fs);
    drain();
    double total = 0;
    for (auto const& c : per_worker)
        total += c->get_value().get();
    EXPECT_DOUBLE_EQ(total, 40.0);
}

TEST_F(ThreadCounterTest, IdleRateWithinRange)
{
    auto c = registry_.create("/threads{locality#0/total}/idle-rate");
    ASSERT_TRUE(c);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto const v = c->get_value();
    if (v.valid())
    {
        EXPECT_GE(v.get(), 0.0);
        EXPECT_LE(v.get(), 10000.0);    // 0.01% units
    }
}

TEST_F(ThreadCounterTest, UptimeGrows)
{
    auto c = registry_.create("/runtime{locality#0/total}/uptime");
    ASSERT_TRUE(c);
    double const v1 = c->get_value().get();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GT(c->get_value().get(), v1);
}

TEST_F(ThreadCounterTest, MemoryCountersPositive)
{
    auto rss = registry_.create("/runtime{locality#0/total}/memory/resident");
    auto vsz = registry_.create("/runtime{locality#0/total}/memory/virtual");
    ASSERT_TRUE(rss && vsz);
    EXPECT_GT(rss->get_value().get(), 0.0);
    EXPECT_GE(vsz->get_value().get(), rss->get_value().get());
}

TEST_F(ThreadCounterTest, ObjectCountsQueryable)
{
    // Total: descriptors alive in the scheduler (cached or running).
    auto total = registry_.create("/threads{locality#0/total}/count/objects");
    ASSERT_TRUE(total);
    std::vector<future<void>> fs;
    for (int i = 0; i < 32; ++i)
        fs.push_back(async([] {}));
    wait_all(fs);
    drain();
    auto const v = total->get_value();
    ASSERT_TRUE(v.valid());
    EXPECT_GT(v.get(), 0.0);

    // Per-worker: that worker's recycle cache; never exceeds the total.
    auto p =
        parse_counter_name("/threads{locality#0/worker-thread#*}/count/objects");
    ASSERT_TRUE(p.has_value());
    auto expanded = registry_.expand(*p);
    ASSERT_EQ(expanded.size(), 2u);
    double cached = 0;
    for (auto const& path : expanded)
    {
        auto c = registry_.create(path);
        ASSERT_TRUE(c);
        cached += c->get_value().get();
    }
    EXPECT_LE(cached, total->get_value().get());
}

TEST_F(ThreadCounterTest, SpawnMemoryCountersTrackFramePool)
{
    auto hits = registry_.create(
        "/runtime{locality#0/total}/memory/frame-recycle-hits");
    auto allocs =
        registry_.create("/runtime{locality#0/total}/memory/allocations");
    ASSERT_TRUE(hits && allocs);
    hits->reset();
    allocs->reset();
    // Churn from inside a producer task so frames and descriptors flow
    // between worker caches (spawner and recycler are both workers).
    constexpr int iterations = 512;
    async([] {
        for (int i = 0; i < iterations; ++i)
            async([] {}).get();
    }).get();
    drain();
    auto const h = hits->get_value();
    auto const a = allocs->get_value();
    ASSERT_TRUE(h.valid());
    ASSERT_TRUE(a.valid());
    EXPECT_GT(h.get(), 0.0);
    EXPECT_GE(a.get(), 0.0);
    // Recycling must dominate: far fewer fresh allocations than spawns.
    EXPECT_LT(a.get(), static_cast<double>(iterations));
}

TEST_F(ThreadCounterTest, EvaluateAndResetSemantics)
{
    // The paper's per-sample protocol: evaluate(reset=true) between
    // samples must isolate each sample's counts.
    auto c = registry_.create("/threads{locality#0/total}/count/cumulative");
    ASSERT_TRUE(c);
    c->reset();
    std::vector<future<void>> fs;
    for (int i = 0; i < 10; ++i)
        fs.push_back(async([] {}));
    wait_all(fs);
    drain();
    EXPECT_DOUBLE_EQ(c->get_value(true).get(), 10.0);
    fs.clear();
    for (int i = 0; i < 7; ++i)
        fs.push_back(async([] {}));
    wait_all(fs);
    drain();
    EXPECT_DOUBLE_EQ(c->get_value(true).get(), 7.0);
}

// ----------------------------------------------------------- active counters

TEST_F(ThreadCounterTest, ActiveCountersEvaluate)
{
    active_counters active(registry_,
        {"/threads{locality#0/total}/count/cumulative",
            "/threads{locality#0/worker-thread#*}/count/cumulative",
            "/runtime{locality#0/total}/uptime"});
    EXPECT_TRUE(active.errors().empty());
    EXPECT_EQ(active.size(), 4u);    // 1 + 2 (expanded) + 1
    active.reset();
    std::vector<future<void>> fs;
    for (int i = 0; i < 12; ++i)
        fs.push_back(async([] {}));
    wait_all(fs);
    drain();
    auto evals = active.evaluate();
    ASSERT_EQ(evals.size(), 4u);
    EXPECT_DOUBLE_EQ(evals[0].value.get(), 12.0);
    EXPECT_DOUBLE_EQ(
        evals[1].value.get() + evals[2].value.get(), 12.0);
}

TEST_F(ThreadCounterTest, ActiveCountersRecordErrors)
{
    active_counters active(registry_, {"/nope/x", "not-a-name"});
    EXPECT_EQ(active.size(), 0u);
    EXPECT_EQ(active.errors().size(), 2u);
}

TEST_F(ThreadCounterTest, PrintTextFormat)
{
    active_counters active(
        registry_, {"/threads{locality#0/total}/count/cumulative"});
    std::ostringstream os;
    active.print(os, /*csv=*/false, /*reset=*/false, "sample-1");
    auto const text = os.str();
    EXPECT_NE(text.find("# sample-1"), std::string::npos);
    EXPECT_NE(
        text.find("/threads{locality#0/total}/count/cumulative"),
        std::string::npos);
}

TEST_F(ThreadCounterTest, PrintCsvFormat)
{
    active_counters active(
        registry_, {"/threads{locality#0/total}/count/cumulative",
                       "/runtime{locality#0/total}/uptime"});
    std::ostringstream os;
    active.print_csv_header(os);
    active.print(os, /*csv=*/true, false, "s0");
    auto const text = os.str();
    EXPECT_NE(text.find("time[s],annotation,"), std::string::npos);
    EXPECT_NE(text.find(",s0,"), std::string::npos);
}

TEST_F(ThreadCounterTest, SessionGlobalEvaluate)
{
    session_options options;
    options.counter_names = {
        "/threads{locality#0/total}/count/cumulative"};
    options.destination = "/tmp/minihpx_test_counters.txt";
    options.print_at_shutdown = false;
    {
        counter_session session(registry_, options);
        EXPECT_EQ(counter_session::global(), &session);
        async([] {}).get();
        drain();
        evaluate_active_counters(true, "phase-1");
        reset_active_counters();
    }
    EXPECT_EQ(counter_session::global(), nullptr);
    std::ifstream in("/tmp/minihpx_test_counters.txt");
    std::string contents(std::istreambuf_iterator<char>(in), {});
    EXPECT_NE(contents.find("phase-1"), std::string::npos);
}

TEST_F(ThreadCounterTest, EvaluateIntoMatchesEvaluate)
{
    active_counters active(
        registry_, {"/threads{locality#0/total}/count/cumulative",
                       "/runtime{locality#0/total}/uptime"});
    ASSERT_EQ(active.size(), 2u);
    std::vector<future<void>> fs;
    for (int i = 0; i < 10; ++i)
        fs.push_back(async([] {}));
    wait_all(fs);
    drain();
    std::vector<counter_value> values(active.size());
    active.evaluate_into(std::span(values));
    auto const reference = active.evaluate();
    ASSERT_EQ(reference.size(), 2u);
    EXPECT_TRUE(values[0].valid());
    // Counter 0 is cumulative task count: stable between the calls.
    EXPECT_DOUBLE_EQ(values[0].get(), reference[0].value.get());
}

// --------------------------------------------------------- counter handles

TEST_F(ThreadCounterTest, ResolveReturnsWorkingHandle)
{
    counter_handle h =
        registry_.resolve("/threads{locality#0/total}/count/cumulative");
    ASSERT_TRUE(h);
    h.reset();
    std::vector<future<void>> fs;
    for (int i = 0; i < 12; ++i)
        fs.push_back(async([] {}));
    wait_all(fs);
    drain();
    // Evaluate through the handle: no string parse, no registry lookup.
    EXPECT_DOUBLE_EQ(h.evaluate().get(), 12.0);
    EXPECT_EQ(h.info().full_name, "/threads{locality#0/total}/count/cumulative");
}

TEST_F(ThreadCounterTest, ResolveReportsUnknownCounter)
{
    std::string error;
    counter_handle h = registry_.resolve("/no/such{thing}/counter", &error);
    EXPECT_FALSE(h);
    EXPECT_FALSE(error.empty());
}

TEST_F(ThreadCounterTest, ResolveAllExpandsWildcards)
{
    auto handles = registry_.resolve_all(
        "/threads{locality#0/worker-thread#*}/count/cumulative");
    ASSERT_EQ(handles.size(), 2u);    // two workers
    for (auto const& h : handles)
        EXPECT_TRUE(h);

    std::vector<std::string> errors;
    auto bad = registry_.resolve_all("/bogus{locality#0/total}/x", &errors);
    EXPECT_TRUE(bad.empty());
    EXPECT_EQ(errors.size(), 1u);
}

TEST_F(ThreadCounterTest, HandleCachesStatisticsInterface)
{
    // A statistics-kind counter: sample_statistics() works through the
    // cached interface pointer — no RTTI on the hot path.
    counter_handle h = registry_.resolve(
        "/statistics/average@/threads{locality#0/total}/count/cumulative,8");
    ASSERT_TRUE(h);
    EXPECT_TRUE(h.is_statistics());
    std::vector<future<void>> fs;
    for (int i = 0; i < 8; ++i)
        fs.push_back(async([] {}));
    wait_all(fs);
    drain();
    h.sample_statistics();
    h.sample_statistics();
    EXPECT_TRUE(h.evaluate().valid());

    // Raw counters report not-statistics and sample as a no-op.
    counter_handle raw =
        registry_.resolve("/threads{locality#0/total}/count/cumulative");
    ASSERT_TRUE(raw);
    EXPECT_FALSE(raw.is_statistics());
    raw.sample_statistics();
}

TEST_F(ThreadCounterTest, ActiveCountersRefreshPicksUpLateCounters)
{
    // A set constructed before a counter type exists resolves what it
    // can; refresh() after registration appends the newcomers without
    // disturbing existing positions.
    active_counters active(
        registry_, {"/threads{locality#0/total}/count/cumulative",
                       "/late{locality#0/total}/value"});
    ASSERT_EQ(active.size(), 1u);
    EXPECT_EQ(active.errors().size(), 1u);

    counter_registry::type_info t;
    t.type_key = "/late/value";
    t.create = [](counter_path const& path) -> counter_ptr {
        counter_info info;
        info.full_name = path.full_name();
        return std::make_shared<gauge_counter>(
            std::move(info), [] { return 5.0; });
    };
    registry_.register_type(std::move(t));

    EXPECT_EQ(active.refresh(registry_), 1u);
    ASSERT_EQ(active.size(), 2u);
    EXPECT_EQ(active.handles()[0].info().full_name,
        "/threads{locality#0/total}/count/cumulative");
    EXPECT_DOUBLE_EQ(active.handles()[1].evaluate().get(), 5.0);

    // Idempotent: nothing new, nothing duplicated.
    EXPECT_EQ(active.refresh(registry_), 0u);
    EXPECT_EQ(active.size(), 2u);
}

// Regression: a counter_session with background sampling used to race
// runtime teardown — the sampler thread could evaluate scheduler-backed
// counters while workers were being destroyed. The session now
// quiesces (stop sampler, final flush) via runtime::at_shutdown before
// worker teardown starts, even when the session outlives the runtime.
TEST(SessionShutdownOrdering, SessionOutlivesRuntime)
{
    std::string const path = ::testing::TempDir() + "minihpx_shutdown.csv";
    {
        runtime_config config;
        config.sched.num_workers = 2;
        auto rt = std::make_unique<runtime>(config);
        counter_registry registry;
        register_all_runtime_counters(registry, *rt);

        session_options options;
        options.counter_names = {
            "/threads{locality#0/total}/count/cumulative",
            "/threads{locality#0/total}/idle-rate"};
        options.interval_ms = 0.5;
        options.destination = path;
        options.csv = true;
        counter_session session(registry, options);

        std::vector<future<void>> fs;
        for (int i = 0; i < 50; ++i)
            fs.push_back(async([] {}));
        wait_all(fs);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

        // Destroy the runtime *while the session still samples* (the
        // bad order). The shutdown hook must stop the sampler and
        // flush before worker teardown.
        rt.reset();

        // After quiesce the session must be inert, not crash.
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        session.evaluate("after-death");
    }
    std::ifstream in(path);
    std::string const contents(std::istreambuf_iterator<char>(in), {});
    EXPECT_NE(contents.find("shutdown"), std::string::npos);
    EXPECT_EQ(contents.find("after-death"), std::string::npos);
}

TEST(SessionShutdownOrdering, NormalOrderStillPrintsOnce)
{
    std::string const path = ::testing::TempDir() + "minihpx_shutdown2.csv";
    {
        runtime_config config;
        config.sched.num_workers = 2;
        runtime rt(config);
        counter_registry registry;
        register_all_runtime_counters(registry, rt);
        session_options options;
        options.counter_names = {
            "/threads{locality#0/total}/count/cumulative"};
        options.destination = path;
        options.csv = true;
        counter_session session(registry, options);
        async([] {}).get();
    }    // session first, then runtime: the hook must deregister
    std::ifstream in(path);
    std::string const contents(std::istreambuf_iterator<char>(in), {});
    std::size_t first = contents.find("shutdown");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(contents.find("shutdown", first + 1), std::string::npos);
}

TEST(SessionOptions, FromCli)
{
    char const* argv[] = {"prog", "--mh:print-counter=/threads/time/average",
        "--mh:print-counter=/threads/idle-rate",
        "--mh:print-counter-interval=50",
        "--mh:print-counter-destination=out.csv",
        "--mh:print-counter-format=csv", "--mh:list-counters"};
    util::cli_args args(7, argv);
    auto options = session_options::from_cli(args);
    ASSERT_EQ(options.counter_names.size(), 2u);
    EXPECT_EQ(options.counter_names[1], "/threads/idle-rate");
    EXPECT_DOUBLE_EQ(options.interval_ms, 50.0);
    EXPECT_EQ(options.destination, "out.csv");
    EXPECT_TRUE(options.csv);
    EXPECT_TRUE(options.list_counters);
}

TEST(SessionListing, ListsTypes)
{
    counter_registry registry;
    std::ostringstream os;
    counter_session::list_counter_types(registry, os);
    EXPECT_NE(os.str().find("/arithmetics/add"), std::string::npos);
    EXPECT_NE(os.str().find("/statistics/median"), std::string::npos);
}

// ------------------------------------------------ locality-aware names

TEST(CounterName, ParentWildcardParses)
{
    auto p = parse_counter_name("/threads{locality#*/total}/count/cumulative");
    ASSERT_TRUE(p);
    EXPECT_EQ(p->parent_instance, "locality");
    EXPECT_TRUE(p->parent_wildcard);
    EXPECT_FALSE(p->instance_wildcard);
    EXPECT_EQ(p->full_name(),
        "/threads{locality#*/total}/count/cumulative");

    // Both wildcards at once: per-worker columns on every locality.
    auto q = parse_counter_name(
        "/threads{locality#*/worker-thread#*}/count/cumulative");
    ASSERT_TRUE(q);
    EXPECT_TRUE(q->parent_wildcard);
    EXPECT_TRUE(q->instance_wildcard);
    EXPECT_EQ(q->full_name(),
        "/threads{locality#*/worker-thread#*}/count/cumulative");
}

TEST(CounterName, LocalityPrefixHelpers)
{
    EXPECT_EQ(locality_prefix(0), "locality#0");
    EXPECT_EQ(locality_prefix(17), "locality#17");
    EXPECT_EQ(locality_instance(3), "{locality#3/total}");
    EXPECT_EQ(
        locality_instance(2, "worker-thread#1"), "{locality#2/worker-thread#1}");
}

TEST(CounterName, BracelessNamesDefaultToThisLocality)
{
    // Parsing without braces homes the counter on this_locality() —
    // locality#0 on single-node processes, the claimed id once
    // minihpx::net assigns one.
    std::uint32_t const saved = this_locality();
    set_this_locality(4);
    auto p = parse_counter_name("/threads/time/average");
    set_this_locality(saved);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->parent_index, 4);
    EXPECT_EQ(p->full_name(), "/threads{locality#4/total}/time/average");

    // Explicit braces always win over the process default.
    auto q = parse_counter_name("/threads{locality#0/total}/time/average");
    ASSERT_TRUE(q);
    EXPECT_EQ(q->parent_index, 0);
}

TEST(Registry, NonLocalCounterWithoutFederationIsAnError)
{
    counter_registry registry;
    std::string error;
    EXPECT_EQ(registry.create(
                  "/threads{locality#9/total}/count/cumulative", &error),
        nullptr);
    EXPECT_NE(error.find("no counter federation"), std::string::npos);
}

TEST(Registry, ParentWildcardWithoutProviderExpandsLocallyOnly)
{
    counter_registry registry;
    counter_registry::type_info t;
    t.type_key = "/solo/value";
    t.create = [](counter_path const& path) -> counter_ptr {
        counter_info info;
        info.full_name = path.full_name();
        return std::make_shared<gauge_counter>(
            std::move(info), [] { return 1.0; });
    };
    registry.register_type(std::move(t));

    auto parsed = parse_counter_name("/solo{locality#*/total}/value");
    ASSERT_TRUE(parsed);
    auto paths = registry.expand(*parsed);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_FALSE(paths[0].parent_wildcard);
    EXPECT_EQ(paths[0].parent_index,
        static_cast<std::int64_t>(registry.local_locality()));
}
