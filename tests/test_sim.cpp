// Simulator tests: DES correctness, determinism, both scheduler
// models, the cost model's qualitative properties (the mechanisms the
// paper's figures rely on).
#include <minihpx/sim/engine.hpp>
#include <minihpx/sim/simulator.hpp>

#include <gtest/gtest.h>

#include "test_env.hpp"

#include <vector>

using namespace minihpx;
using namespace minihpx::sim;

namespace {

sim_config make_config(unsigned cores, sched_model model = sched_model::hpx_like)
{
    sim_config config;
    config.cores = cores;
    config.model = model;
    return config;
}

// A balanced fork/join tree: 2^depth leaves, each `leaf_us` of compute
// and `leaf_bytes` of off-core reads.
void tree(int depth, std::uint64_t leaf_us, std::uint64_t leaf_bytes)
{
    if (depth == 0)
    {
        sim_engine::annotate_work({.cpu_ns = leaf_us * 1000,
            .data_rd_bytes = leaf_bytes});
        return;
    }
    auto left = sim_engine::async(
        [=] { tree(depth - 1, leaf_us, leaf_bytes); });
    tree(depth - 1, leaf_us, leaf_bytes);
    left.get();
}

sim_report run_tree(sim_config config, int depth, std::uint64_t leaf_us,
    std::uint64_t leaf_bytes = 0)
{
    simulator sim(config);
    return sim.run([=] { tree(depth, leaf_us, leaf_bytes); });
}

}    // namespace

TEST(Simulator, RootOnlyRun)
{
    simulator sim(make_config(1));
    auto report = sim.run([] {
        sim_engine::annotate_work({.cpu_ns = 1'000'000});
    });
    EXPECT_FALSE(report.failed);
    EXPECT_EQ(report.tasks_executed, 1u);
    EXPECT_GE(report.exec_time_s, 1e-3);
    EXPECT_LT(report.exec_time_s, 2e-3);
}

TEST(Simulator, FutureValueRoundTrip)
{
    simulator sim(make_config(2));
    int result = 0;
    auto report = sim.run([&] {
        auto f = sim_engine::async([] { return 6 * 7; });
        result = f.get();
    });
    EXPECT_FALSE(report.failed);
    EXPECT_EQ(result, 42);
    EXPECT_EQ(report.tasks_executed, 2u);
}

TEST(Simulator, LaunchPolicies)
{
    simulator sim(make_config(2));
    int sum = 0;
    auto report = sim.run([&] {
        auto a = sim_engine::async(
            sim_engine::launch::async, [] { return 1; });
        auto d = sim_engine::async(
            sim_engine::launch::deferred, [] { return 2; });
        auto s = sim_engine::async(
            sim_engine::launch::sync, [] { return 4; });
        auto f = sim_engine::async(
            sim_engine::launch::fork, [] { return 8; });
        sum = a.get() + d.get() + s.get() + f.get();
    });
    EXPECT_FALSE(report.failed);
    EXPECT_EQ(sum, 15);
}

TEST(Simulator, TreeExecutesAllTasks)
{
    auto report = run_tree(make_config(4), 6, 50);
    EXPECT_FALSE(report.failed);
    // 2^6 = 64 leaves; spawned tasks = 63 internal asyncs? Each tree()
    // spawns one child per level => tasks = 2^depth - 1 asyncs + root.
    EXPECT_EQ(report.tasks_executed, 64u);
    EXPECT_EQ(report.tasks_created, 64u);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    auto r1 = run_tree(make_config(8), 8, 20, 4096);
    auto r2 = run_tree(make_config(8), 8, 20, 4096);
    EXPECT_DOUBLE_EQ(r1.exec_time_s, r2.exec_time_s);
    EXPECT_EQ(r1.steals, r2.steals);
    EXPECT_DOUBLE_EQ(r1.sched_overhead_s, r2.sched_overhead_s);
    EXPECT_EQ(r1.offcore_data_rd, r2.offcore_data_rd);
}

TEST(Simulator, QueuePolicyKnobIsBookkeepingOnly)
{
    // The knob is recorded in the report for provenance but must not
    // enter the cost model: virtual results are identical across queue
    // policies (machine_desc stays the source of truth for figures).
    auto config = make_config(8);
    config.queue = threads::queue_policy::mutex_deque;
    auto r1 = run_tree(config, 8, 20, 4096);
    config.queue = threads::queue_policy::chase_lev;
    auto r2 = run_tree(config, 8, 20, 4096);

    EXPECT_EQ(r1.queue, threads::queue_policy::mutex_deque);
    EXPECT_EQ(r2.queue, threads::queue_policy::chase_lev);
    EXPECT_DOUBLE_EQ(r1.exec_time_s, r2.exec_time_s);
    EXPECT_EQ(r1.steals, r2.steals);
    EXPECT_EQ(r1.tasks_executed, r2.tasks_executed);
    EXPECT_DOUBLE_EQ(r1.sched_overhead_s, r2.sched_overhead_s);
    EXPECT_EQ(r1.offcore_data_rd, r2.offcore_data_rd);
}

TEST(Simulator, SeedChangesStealPattern)
{
    auto config = make_config(8);
    auto r1 = run_tree(config, 8, 20);
    config.seed = 999;
    auto r2 = run_tree(config, 8, 20);
    // Work conservation holds regardless of seed.
    EXPECT_EQ(r1.tasks_executed, r2.tasks_executed);
}

TEST(Simulator, StrongScalingSpeedsUpCoarseTasks)
{
    // 256 x 1 ms tasks: near-linear speedup expected 1 -> 8 cores.
    auto const t1 = run_tree(make_config(1), 8, 1000).exec_time_s;
    auto const t4 = run_tree(make_config(4), 8, 1000).exec_time_s;
    auto const t8 = run_tree(make_config(8), 8, 1000).exec_time_s;
    EXPECT_GT(t1 / t4, 3.0);
    EXPECT_GT(t1 / t8, 5.5);
    EXPECT_LE(t1 / t8, 8.5);
}

TEST(Simulator, FineTasksScalePoorly)
{
    // 4096 x 1 us tasks: overhead-bound; speedup well below linear.
    auto const t1 = run_tree(make_config(1), 12, 1).exec_time_s;
    auto const t16 = run_tree(make_config(16), 12, 1).exec_time_s;
    double const speedup = t1 / t16;
    EXPECT_LT(speedup, 10.0);
    EXPECT_GT(speedup, 0.5);
}

TEST(Simulator, StdModelSlowerForFineTasks)
{
    // Thread-per-task spawn (~16 us) dwarfs 1 us tasks.
    auto const hpx =
        run_tree(make_config(4, sched_model::hpx_like), 10, 1);
    auto const std_like =
        run_tree(make_config(4, sched_model::std_like), 10, 1);
    ASSERT_FALSE(hpx.failed);
    ASSERT_FALSE(std_like.failed);
    EXPECT_GT(std_like.exec_time_s, 3.0 * hpx.exec_time_s);
}

TEST(Simulator, StdModelComparableForCoarseTasks)
{
    auto const hpx =
        run_tree(make_config(8, sched_model::hpx_like), 6, 2000);
    auto const std_like =
        run_tree(make_config(8, sched_model::std_like), 6, 2000);
    ASSERT_FALSE(std_like.failed);
    // Coarse grain: the two runtimes are within ~50% of each other
    // (paper Fig 1: Alignment/SparseLU/Round scale well for both).
    EXPECT_LT(std_like.exec_time_s, 1.5 * hpx.exec_time_s);
    EXPECT_GT(std_like.exec_time_s, 0.5 * hpx.exec_time_s);
}

TEST(Simulator, StdModelFailsOnThreadExplosion)
{
    // A wide shallow fan-out of blocked parents exceeding the pthread
    // limit (Table I / §VI: Fib, Health, UTS, NQueens abort).
    sim_config config = make_config(8, sched_model::std_like);
    config.machine.std_thread_limit = 3000;
    simulator sim(config);
    auto report = sim.run([] { tree(13, 1, 0); });    // 8192 leaves
    EXPECT_TRUE(report.failed);
    EXPECT_NE(report.failure_reason.find("pthread"), std::string::npos);
    EXPECT_GE(report.peak_live_threads, 3000u);
}

TEST(Simulator, HpxModelSurvivesSameWorkload)
{
    MINIHPX_SKIP_IF_TSAN_FIBER_LIMIT();
    sim_config config = make_config(8, sched_model::hpx_like);
    simulator sim(config);
    auto report = sim.run([] { tree(13, 1, 0); });
    EXPECT_FALSE(report.failed);
    EXPECT_EQ(report.tasks_executed, 1u << 13);
}

TEST(Simulator, BandwidthSaturates)
{
    // Memory-bound tasks: per-core 7.5 GB/s until the 42 GB/s socket
    // cap binds; bandwidth at 16 cores is below 16x single core.
    auto const r1 = run_tree(make_config(1), 6, 0, 4 << 20);
    auto const r16 = run_tree(make_config(16), 8, 0, 4 << 20);
    double const bw1 = r1.offcore_bandwidth_gbs();
    double const bw16 = r16.offcore_bandwidth_gbs();
    EXPECT_GT(bw1, 3.0);
    EXPECT_LT(bw1, 9.0);
    EXPECT_GT(bw16, bw1);
    EXPECT_LT(bw16, 46.0);    // never exceeds the socket cap by much
}

TEST(Simulator, TaskDurationInflatesWithCores)
{
    // Memory contention stretches individual task durations as cores
    // are added (paper: "increase in task duration indicates execution
    // is delayed due to contention for shared resources").
    auto const r1 = run_tree(make_config(1), 8, 10, 1 << 20);
    auto const r16 = run_tree(make_config(16), 8, 10, 1 << 20);
    EXPECT_GT(r16.avg_task_duration_us(),
        1.15 * r1.avg_task_duration_us());
}

TEST(Simulator, MutexSerializes)
{
    simulator sim(make_config(4));
    int counter = 0;
    auto report = sim.run([&] {
        sim_mutex m;
        std::vector<sim_future<void>> fs;
        for (int i = 0; i < 32; ++i)
        {
            fs.push_back(sim_engine::async([&] {
                m.lock();
                sim_engine::annotate_work({.cpu_ns = 5000});
                ++counter;
                m.unlock();
            }));
        }
        for (auto& f : fs)
            f.get();
    });
    EXPECT_FALSE(report.failed);
    EXPECT_EQ(counter, 32);
    // 32 x 5 us of serialized critical sections bound the makespan.
    EXPECT_GE(report.exec_time_s, 32 * 5e-6);
}

TEST(Simulator, YieldRoundRobins)
{
    simulator sim(make_config(1));
    std::vector<int> order;
    auto report = sim.run([&] {
        auto a = sim_engine::async([&] {
            order.push_back(1);
            simulator::current()->yield();
            order.push_back(3);
        });
        auto b = sim_engine::async([&] { order.push_back(2); });
        a.get();
        b.get();
    });
    EXPECT_FALSE(report.failed);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[2], 3);    // yielded task finishes last
}

TEST(Simulator, RemoteStealsAppearPastSocketBoundary)
{
    auto const r8 = run_tree(make_config(8), 10, 5);
    auto const r16 = run_tree(make_config(16), 10, 5);
    EXPECT_EQ(r8.remote_steals, 0u);    // 8 cores = one socket
    EXPECT_GT(r16.steals, 0u);
}

TEST(Simulator, OverheadScalesWithTaskCount)
{
    auto const small = run_tree(make_config(2), 4, 10);    // 16 tasks
    auto const large = run_tree(make_config(2), 8, 10);    // 256 tasks
    EXPECT_GT(large.sched_overhead_s, small.sched_overhead_s * 8);
}

TEST(Simulator, TaskBudgetAborts)
{
    sim_config config = make_config(2);
    config.max_tasks = 100;
    simulator sim(config);
    auto report = sim.run([] { tree(10, 1, 0); });
    EXPECT_TRUE(report.failed);
    EXPECT_NE(report.failure_reason.find("budget"), std::string::npos);
}

TEST(Simulator, SkipComputeFlagVisible)
{
    sim_config config = make_config(1);
    config.skip_compute = false;
    simulator sim(config);
    bool skip = true;
    sim.run([&] { skip = sim_engine::skip_compute(); });
    EXPECT_FALSE(skip);
}

TEST(Simulator, TlbModelDerivesMissesFromFootprint)
{
    // 64 pages fit the 512-entry STLB: compulsory walks only.
    simulator fits(make_config(1));
    auto const r1 = fits.run([] {
        sim_engine::annotate_work({.data_rd_bytes = 1 << 20,
            .footprint_bytes = 64 * 4096,
            .mem_accesses = 100'000});
    });
    EXPECT_EQ(r1.dtlb_loads, 100'000u);
    EXPECT_EQ(r1.dtlb_misses, 64u);
    EXPECT_EQ(r1.llc_loads, 100'000u);

    // 1024 pages thrash: compulsory + accesses * ((1024-512)/1024)/8.
    simulator thrashes(make_config(1));
    auto const r2 = thrashes.run([] {
        sim_engine::annotate_work({.data_rd_bytes = 1 << 20,
            .footprint_bytes = 1024 * 4096,
            .mem_accesses = 100'000});
    });
    EXPECT_EQ(r2.dtlb_misses, 1024u + 100'000u / 2u / 8u);
    EXPECT_GT(r2.dtlb_miss_rate(), 10.0 * r1.dtlb_miss_rate());
}

TEST(Simulator, NoFootprintMeansNoModeledTlbMisses)
{
    // Pre-existing workloads annotate traffic but no working set; the
    // model must not invent misses for them (counter readings stay put).
    simulator sim(make_config(1));
    auto const report = sim.run([] {
        sim_engine::annotate_work(
            {.cpu_ns = 10'000, .data_rd_bytes = 1 << 20});
    });
    EXPECT_GT(report.dtlb_loads, 0u);    // line-granular traffic
    EXPECT_EQ(report.dtlb_misses, 0u);
    EXPECT_EQ(report.llc_misses, 0u);
}

TEST(Simulator, TlbWalksPriceIntoVirtualTime)
{
    auto exec_s = [](std::uint64_t footprint) {
        simulator sim(make_config(1));
        return sim
            .run([=] {
                sim_engine::annotate_work({.cpu_ns = 1'000'000,
                    .footprint_bytes = footprint,
                    .mem_accesses = 1'000'000});
            })
            .exec_time_s;
    };
    // Thrashing run pays ~63.5k walks x 12 ns on top of the same cpu_ns.
    EXPECT_GT(exec_s(1024 * 4096), exec_s(64 * 4096) + 5e-4);
}

namespace {

// Single producer, flat spawn: every task starts on core 0's queue, so
// the victim policy fully determines how the other 19 cores find work.
sim_report run_flat(threads::victim_policy victim, unsigned cores = 20)
{
    sim_config config = make_config(cores);
    config.victim = victim;
    simulator sim(config);
    return sim.run([] {
        std::vector<decltype(sim_engine::async([] {}))> fs;
        for (int i = 0; i < 400; ++i)
            fs.push_back(sim_engine::async(
                [] { sim_engine::annotate_work({.cpu_ns = 20'000}); }));
        for (auto& f : fs)
            f.get();
    });
}

}    // namespace

TEST(Simulator, VictimPolicyDefaultIsRandomAndByteStable)
{
    EXPECT_EQ(sim_config{}.victim, threads::victim_policy::random);
    // Explicit random must match the default exactly (the pre-locality
    // results every byte-pinned test in this repo relies on).
    auto const a = run_flat(threads::victim_policy::random);
    sim_config config = make_config(20);
    simulator sim(config);
    auto const b = sim.run([] {
        std::vector<decltype(sim_engine::async([] {}))> fs;
        for (int i = 0; i < 400; ++i)
            fs.push_back(sim_engine::async(
                [] { sim_engine::annotate_work({.cpu_ns = 20'000}); }));
        for (auto& f : fs)
            f.get();
    });
    EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_EQ(a.remote_steals, b.remote_steals);
}

TEST(Simulator, NumaVictimPolicyIsDeterministicPerConfig)
{
    auto const a = run_flat(threads::victim_policy::numa);
    auto const b = run_flat(threads::victim_policy::numa);
    EXPECT_FALSE(a.failed);
    EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_EQ(a.remote_steals, b.remote_steals);
    EXPECT_EQ(a.tasks_executed, 401u);
}

TEST(Simulator, NumaVictimPolicyLowersRemoteStealShare)
{
    auto const random = run_flat(threads::victim_policy::random);
    auto const numa = run_flat(threads::victim_policy::numa);
    ASSERT_GT(random.steals, 0u);
    ASSERT_GT(numa.steals, 0u);
    double const random_share = static_cast<double>(random.remote_steals) /
        static_cast<double>(random.steals);
    double const numa_share = static_cast<double>(numa.remote_steals) /
        static_cast<double>(numa.steals);
    // Same-socket-first probing: fewer cross-socket raids per steal.
    EXPECT_LT(numa_share, random_share);
    // On a single socket the policies are identical by construction.
    auto const one_socket_a = run_flat(threads::victim_policy::numa, 8);
    auto const one_socket_b = run_flat(threads::victim_policy::random, 8);
    EXPECT_DOUBLE_EQ(one_socket_a.exec_time_s, one_socket_b.exec_time_s);
    EXPECT_EQ(one_socket_a.steals, one_socket_b.steals);
}

TEST(MachineDesc, TableIIIDefaults)
{
    auto const m = machine_desc::ivy_bridge_2s_20c();
    EXPECT_EQ(m.total_cores(), 20u);
    EXPECT_EQ(m.socket_of(9), 0u);
    EXPECT_EQ(m.socket_of(10), 1u);
    EXPECT_DOUBLE_EQ(m.ghz, 2.5);
    EXPECT_NE(m.describe().find("2 socket(s) x 10 cores"),
        std::string::npos);
}
