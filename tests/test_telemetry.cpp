// minihpx::telemetry tests: ring semantics, schema construction
// (including rollup quantile columns), sink formats, subscription
// backpressure, the TCP scrape endpoint, wildcard discovery stability
// (real registry and under the sim engine), virtual-time sampling
// determinism, and session/runtime shutdown ordering.
#include <minihpx/minihpx.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/sim/engine.hpp>
#include <minihpx/net/net.hpp>
#include <minihpx/telemetry/telemetry.hpp>

#include <gtest/gtest.h>

#include "test_env.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace minihpx;
using namespace minihpx::telemetry;

namespace {

// Registers a gauge-backed counter type reading `source`; instances >
// 0 makes "worker-thread#*" expand to that many concrete counters.
void register_test_gauge(perf::counter_registry& registry, std::string key,
    perf::value_source source, std::uint64_t instances = 0,
    perf::counter_kind kind = perf::counter_kind::raw)
{
    perf::counter_registry::type_info t;
    t.type_key = std::move(key);
    t.kind = kind;
    t.create = [source, kind](
                   perf::counter_path const& path) -> perf::counter_ptr {
        perf::counter_info info;
        info.full_name = path.full_name();
        info.kind = kind;
        return std::make_shared<perf::gauge_counter>(std::move(info), source);
    };
    if (instances > 0)
        t.instance_count = [instances] { return instances; };
    registry.register_type(std::move(t));
}

sample_record make_row(
    std::uint64_t t_ns, std::uint64_t seq, std::vector<double> values)
{
    sample_record r;
    r.t_ns = t_ns;
    r.seq = seq;
    for (double v : values)
        r.slots.push_back(slot{v, true});
    return r;
}

}    // namespace

// -------------------------------------------------------------------- ring

TEST(SampleRing, PushPopRoundTrip)
{
    sample_ring ring(4, 2);
    for (std::uint64_t i = 0; i < 3; ++i)
    {
        slot* row = ring.begin_push(100 * i, i);
        ASSERT_NE(row, nullptr);
        row[0] = {static_cast<double>(i), true};
        row[1] = {static_cast<double>(2 * i), true};
        ring.commit_push();
    }
    EXPECT_EQ(ring.size(), 3u);

    for (std::uint64_t i = 0; i < 3; ++i)
    {
        sample_view v;
        ASSERT_TRUE(ring.front(v));
        EXPECT_EQ(v.t_ns, 100 * i);
        EXPECT_EQ(v.seq, i);
        ASSERT_EQ(v.width, 2u);
        EXPECT_DOUBLE_EQ(v.slots[1].value, static_cast<double>(2 * i));
        ring.pop();
    }
    sample_view v;
    EXPECT_FALSE(ring.front(v));
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SampleRing, OverflowDropsAndCounts)
{
    sample_ring ring(2, 1);
    for (std::uint64_t i = 0; i < 2; ++i)
    {
        slot* row = ring.begin_push(i, i);
        ASSERT_NE(row, nullptr);
        ring.commit_push();
    }
    // Full: the next push is refused and counted, existing rows intact.
    EXPECT_EQ(ring.begin_push(99, 99), nullptr);
    EXPECT_EQ(ring.dropped(), 1u);
    EXPECT_EQ(ring.size(), 2u);

    sample_view v;
    ASSERT_TRUE(ring.front(v));
    EXPECT_EQ(v.seq, 0u);
    ring.pop();
    // Space again after the pop.
    EXPECT_NE(ring.begin_push(3, 3), nullptr);
    ring.commit_push();
}

TEST(SampleRing, WrapAroundKeepsOrder)
{
    sample_ring ring(3, 1);
    std::uint64_t next_pop = 0;
    for (std::uint64_t i = 0; i < 20; ++i)
    {
        slot* row = ring.begin_push(i, i);
        ASSERT_NE(row, nullptr);
        row[0] = {static_cast<double>(i), true};
        ring.commit_push();
        if (i % 2 == 1)    // drain two rows every other push
        {
            for (int k = 0; k < 2; ++k)
            {
                sample_view v;
                ASSERT_TRUE(ring.front(v));
                EXPECT_EQ(v.seq, next_pop++);
                ring.pop();
            }
        }
    }
    EXPECT_EQ(ring.pushed(), 20u);
    EXPECT_EQ(ring.dropped(), 0u);
}

// ------------------------------------------------------ sampler and schema

TEST(Sampler, SchemaOneColumnPerCounter)
{
    perf::counter_registry registry;
    double x = 1.0;
    register_test_gauge(registry, "/test/x", [&] { return x; });
    register_test_gauge(registry, "/test/y", [&] { return 2 * x; });

    sampler_config config;
    config.counter_names = {"/test{locality#0/total}/x",
        "/test{locality#0/total}/y"};
    sampler s(registry, config);
    ASSERT_TRUE(s.errors().empty());
    ASSERT_EQ(s.schema().width(), 2u);
    EXPECT_EQ(s.schema().columns[0].name, "/test{locality#0/total}/x");
    EXPECT_EQ(s.schema().columns[1].name, "/test{locality#0/total}/y");
}

TEST(Sampler, RollupCounterEmitsQuantileTriple)
{
    perf::counter_registry registry;
    double v = 0.0;
    register_test_gauge(registry, "/test/lat", [&] { return v; });

    sampler_config config;
    config.rollup_names = {"/test{locality#0/total}/lat"};
    sampler s(registry, config);
    ASSERT_TRUE(s.errors().empty());
    ASSERT_EQ(s.schema().width(), 3u);
    EXPECT_EQ(s.schema().columns[0].name, "/test{locality#0/total}/lat/p50");
    EXPECT_EQ(s.schema().columns[1].name, "/test{locality#0/total}/lat/p95");
    EXPECT_EQ(s.schema().columns[2].name, "/test{locality#0/total}/lat/p99");

    std::ostringstream csv;
    s.add_sink(std::make_shared<csv_sink>(csv));
    // Feed a known distribution: 1..100. p50 ~ 50, p99 ~ 99 (log2
    // buckets: within a factor of 2).
    for (int i = 1; i <= 100; ++i)
    {
        v = static_cast<double>(i);
        s.tick(static_cast<std::uint64_t>(i) * 1000);
    }
    s.stop();

    std::istringstream in(csv.str());
    std::string line, last;
    std::getline(in, line);
    EXPECT_NE(line.find("/p50"), std::string::npos);
    while (std::getline(in, line))
        last = line;
    double t, seq, p50, p95, p99;
    char c;
    std::istringstream row(last);
    row >> t >> c >> seq >> c >> p50 >> c >> p95 >> c >> p99;
    EXPECT_GE(p50, 25.0);
    EXPECT_LE(p50, 100.0);
    EXPECT_GE(p99, 50.0);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p50, p95);
}

TEST(Sampler, ManualTickStreamsToCsv)
{
    perf::counter_registry registry;
    double x = 10.0;
    register_test_gauge(registry, "/test/x", [&] { return x; });

    sampler_config config;
    config.counter_names = {"/test{locality#0/total}/x"};
    sampler s(registry, config);

    std::ostringstream csv;
    s.add_sink(std::make_shared<csv_sink>(csv));
    s.tick(1000);
    x = 20.0;
    s.tick(2000);
    s.stop();

    EXPECT_EQ(csv.str(),
        "t_ns,seq,/test{locality#0/total}/x\n"
        "1000,0,10\n"
        "2000,1,20\n");
    EXPECT_EQ(s.samples(), 2u);
    EXPECT_EQ(s.flushed(), 2u);
    EXPECT_EQ(s.dropped(), 0u);
}

TEST(Sampler, JsonlSchemaLineAndRows)
{
    perf::counter_registry registry;
    register_test_gauge(registry, "/test/x", [] { return 1.5; });

    sampler_config config;
    config.counter_names = {"/test{locality#0/total}/x"};
    sampler s(registry, config);

    std::ostringstream jsonl;
    s.add_sink(std::make_shared<jsonl_sink>(jsonl));
    s.tick(5);
    s.stop();

    std::istringstream in(jsonl.str());
    std::string schema_line, row_line;
    ASSERT_TRUE(std::getline(in, schema_line));
    ASSERT_TRUE(std::getline(in, row_line));
    EXPECT_NE(schema_line.find("\"schema\""), std::string::npos);
    EXPECT_NE(schema_line.find("\"/test{locality#0/total}/x\""),
        std::string::npos);
    EXPECT_EQ(row_line, "{\"t_ns\":5,\"seq\":0,\"v\":[1.5]}");
}

TEST(Sampler, RealTimeModeSamplesPeriodically)
{
    perf::counter_registry registry;
    std::atomic<double> x{1.0};
    register_test_gauge(registry, "/test/x", [&] { return x.load(); });

    sampler_config config;
    config.counter_names = {"/test{locality#0/total}/x"};
    config.period_ns = 500'000;    // 0.5 ms
    sampler s(registry, config);

    std::ostringstream csv;
    s.add_sink(std::make_shared<csv_sink>(csv));
    s.start();
    EXPECT_TRUE(s.running());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    s.stop();
    EXPECT_FALSE(s.running());

    EXPECT_GE(s.samples(), 2u);
    EXPECT_EQ(s.flushed() + s.dropped(), s.samples());
    // Stop drains: every surviving row reached the sink.
    std::istringstream in(csv.str());
    std::string line;
    std::getline(in, line);    // header
    std::uint64_t rows = 0;
    while (std::getline(in, line))
        ++rows;
    EXPECT_EQ(rows, s.flushed());
}

TEST(Sampler, UnknownCounterReportedNotFatal)
{
    perf::counter_registry registry;
    sampler_config config;
    config.counter_names = {"/nonexistent{locality#0/total}/x"};
    sampler s(registry, config);
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.errors().empty());
}

// ------------------------------------------------------------ subscription

TEST(SubscriptionSink, DeliversInOrder)
{
    std::vector<std::uint64_t> seen;
    subscription_sink sink(
        [&](sample_view const& v) {
            seen.push_back(v.seq);
            return true;
        },
        4);
    for (std::uint64_t i = 0; i < 5; ++i)
    {
        auto r = make_row(i, i, {1.0});
        sink.consume(r.view());
    }
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
    EXPECT_EQ(sink.delivered(), 5u);
    EXPECT_EQ(sink.dropped(), 0u);
}

TEST(SubscriptionSink, BackpressureQueuesAndRedelivers)
{
    bool accept = false;
    std::vector<std::uint64_t> seen;
    subscription_sink sink(
        [&](sample_view const& v) {
            if (!accept)
                return false;
            seen.push_back(v.seq);
            return true;
        },
        8);

    for (std::uint64_t i = 0; i < 3; ++i)
    {
        auto r = make_row(i, i, {1.0});
        sink.consume(r.view());
    }
    EXPECT_EQ(sink.pending(), 3u);
    EXPECT_TRUE(seen.empty());

    // Consumer recovers: pending rows are redelivered first, in order.
    accept = true;
    auto r = make_row(3, 3, {1.0});
    sink.consume(r.view());
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3}));
    EXPECT_EQ(sink.pending(), 0u);
}

TEST(SubscriptionSink, OverflowDropsOldest)
{
    bool accept = false;
    std::vector<std::uint64_t> seen;
    subscription_sink sink(
        [&](sample_view const& v) {
            if (!accept)
                return false;
            seen.push_back(v.seq);
            return true;
        },
        2);
    for (std::uint64_t i = 0; i < 5; ++i)
    {
        auto r = make_row(i, i, {1.0});
        sink.consume(r.view());
    }
    EXPECT_EQ(sink.pending(), 2u);
    EXPECT_EQ(sink.dropped(), 3u);

    // Only the two newest rows survived the overflow.
    accept = true;
    sink.flush();
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{3, 4}));
}

// --------------------------------------------------------- scrape endpoint

namespace {

std::string http_get(std::uint16_t port, std::string const& request)
{
    int const fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)),
        0);
    EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
}

}    // namespace

TEST(ScrapeEndpoint, ServesLatestSampleAsTextExposition)
{
    scrape_endpoint endpoint(0);    // ephemeral port
    ASSERT_GT(endpoint.port(), 0);

    record_schema schema;
    schema.columns.push_back(
        {"/test{locality#0/total}/x", "ns", perf::counter_kind::raw});
    endpoint.open(schema);
    auto row = make_row(1000, 7, {42.5});
    endpoint.consume(row.view());

    std::string const response = http_get(endpoint.port(),
        "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(
        response.find("Content-Type: text/plain; version=0.0.4"),
        std::string::npos);
    EXPECT_NE(response.find("minihpx_counter{path=\"/test{locality#0/"
                            "total}/x\",unit=\"ns\"} 42.5"),
        std::string::npos);
    EXPECT_NE(
        response.find("minihpx_sample_age_seq 7"), std::string::npos);
    EXPECT_EQ(endpoint.scrapes(), 1u);
}

TEST(ScrapeEndpoint, BeforeFirstSampleServesMetaOnly)
{
    scrape_endpoint endpoint(0);
    std::string const body = endpoint.render();
    EXPECT_EQ(body.find("minihpx_counter{"), std::string::npos);
    EXPECT_NE(body.find("minihpx_scrapes_total"), std::string::npos);
}

TEST(ScrapeEndpoint, RejectsNonGet)
{
    scrape_endpoint endpoint(0);
    std::string const response = http_get(endpoint.port(),
        "POST /metrics HTTP/1.0\r\n\r\n");
    EXPECT_EQ(response.find("200 OK"), std::string::npos);
}

TEST(ScrapeEndpoint, StatsSourceRendered)
{
    scrape_endpoint endpoint(0);
    endpoint.set_stats_source(
        [] { return scrape_endpoint::stats{10, 2, 8}; });
    std::string const body = endpoint.render();
    EXPECT_NE(body.find("minihpx_telemetry_samples_total 10"),
        std::string::npos);
    EXPECT_NE(body.find("minihpx_telemetry_dropped_total 2"),
        std::string::npos);
    EXPECT_NE(body.find("minihpx_telemetry_flushed_total 8"),
        std::string::npos);
}

// -------------------------------------------------- discovery stability

TEST(Discovery, WildcardExpansionStableAcrossSamplers)
{
    perf::counter_registry registry;
    register_test_gauge(
        registry, "/test/x", [] { return 1.0; }, /*instances=*/3);

    sampler_config config;
    config.counter_names = {"/test{locality#0/worker-thread#*}/x"};

    sampler a(registry, config);
    sampler b(registry, config);
    ASSERT_EQ(a.schema().width(), 3u);
    ASSERT_EQ(b.schema().width(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(a.schema().columns[i].name, b.schema().columns[i].name);
    EXPECT_EQ(a.discovery_version(), b.discovery_version());
}

TEST(Discovery, RegistryMutationChangesVersion)
{
    perf::counter_registry registry;
    register_test_gauge(registry, "/test/x", [] { return 1.0; });

    sampler_config config;
    config.counter_names = {"/test{locality#0/total}/x"};
    sampler a(registry, config);

    register_test_gauge(registry, "/test/late", [] { return 2.0; });
    sampler b(registry, config);
    // A consumer can detect that re-expansion might differ.
    EXPECT_NE(a.discovery_version(), b.discovery_version());
}

TEST(Discovery, RuntimeCountersExpandPerWorker)
{
    runtime_config rc;
    rc.sched.num_workers = 3;
    runtime rt(rc);
    perf::counter_registry registry;
    perf::register_all_runtime_counters(registry, rt);

    sampler_config config;
    config.counter_names = {
        "/threads{locality#0/worker-thread#*}/count/cumulative"};
    sampler s(registry, config);
    ASSERT_TRUE(s.errors().empty());
    EXPECT_EQ(s.schema().width(), 3u);
    for (std::size_t i = 0; i < s.schema().width(); ++i)
        EXPECT_NE(s.schema().columns[i].name.find("worker-thread#"),
            std::string::npos);
}

TEST(Discovery, ObjectAndPoolCountersSampleThroughPipeline)
{
    runtime_config rc;
    rc.sched.num_workers = 2;
    runtime rt(rc);
    perf::counter_registry registry;
    perf::register_all_runtime_counters(registry, rt);

    sampler_config config;
    config.counter_names = {
        "/threads{locality#0/worker-thread#*}/count/objects",
        "/threads{locality#0/total}/count/objects",
        "/runtime{locality#0/total}/memory/frame-recycle-hits",
        "/runtime{locality#0/total}/memory/allocations"};
    sampler s(registry, config);
    ASSERT_TRUE(s.errors().empty());
    // Wildcard expands per worker; the three scalars add one column each.
    EXPECT_EQ(s.schema().width(), 5u);

    for (int i = 0; i < 16; ++i)
        minihpx::async([] {}).get();
    while (rt.get_scheduler().tasks_alive() != 0)
        std::this_thread::yield();

    std::ostringstream csv;
    s.add_sink(std::make_shared<csv_sink>(csv));
    s.tick(100);
    s.stop();

    std::istringstream in(csv.str());
    std::string header, row;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_NE(header.find("/threads{locality#0/total}/count/objects"),
        std::string::npos);
    EXPECT_NE(
        header.find("/runtime{locality#0/total}/memory/frame-recycle-hits"),
        std::string::npos);
    ASSERT_TRUE(std::getline(in, row));
    // t_ns, seq, then 5 counter columns.
    EXPECT_EQ(std::count(row.begin(), row.end(), ','), 6);
}

TEST(Discovery, LateRegisteredCounterJoinsRunningSession)
{
    // Regression: counters registered after the sampler started (a PAPI
    // engine brought up mid-run) must join the stream. The sampler
    // compares registry.version() per sample and re-expands on a bump;
    // schema growth is append-only and sinks re-emit their header.
    perf::counter_registry registry;
    register_test_gauge(registry, "/test/x", [] { return 1.0; });

    sampler_config config;
    config.counter_names = {
        "/test{locality#0/total}/x", "/late{locality#0/total}/y"};
    std::ostringstream csv;   // must outlive the sampler: sinks flush on stop
    sampler s(registry, config);

    // /late/y is unknown at construction: one column, one error.
    ASSERT_EQ(s.schema().width(), 1u);
    ASSERT_EQ(s.errors().size(), 1u);
    s.add_sink(std::make_shared<csv_sink>(csv));
    s.tick(100);

    // The missing counter type arrives (version bump)...
    register_test_gauge(registry, "/late/y", [] { return 7.0; });
    auto const before = s.discovery_version();
    s.tick(200);
    s.tick(300);

    // ...and the next sample picked it up: new column appended, the
    // existing column keeps its position.
    EXPECT_NE(s.discovery_version(), before);
    ASSERT_EQ(s.schema().width(), 2u);
    EXPECT_EQ(s.schema().columns[0].name, "/test{locality#0/total}/x");
    EXPECT_EQ(s.schema().columns[1].name, "/late{locality#0/total}/y");

    // The CSV stream shows both schemas: old header, old-width row,
    // new header, then new-width rows carrying the late counter.
    std::istringstream in(csv.str());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 5u);
    EXPECT_EQ(lines[0], "t_ns,seq,/test{locality#0/total}/x");
    EXPECT_EQ(lines[1].substr(0, 4), "100,");
    EXPECT_EQ(lines[2],
        "t_ns,seq,/test{locality#0/total}/x,/late{locality#0/total}/y");
    EXPECT_EQ(lines[3].substr(0, 4), "200,");
    EXPECT_NE(lines[3].find(",7"), std::string::npos);
    EXPECT_EQ(lines[4].substr(0, 4), "300,");
}

TEST(Discovery, NoRegistryChangeNoRediscovery)
{
    perf::counter_registry registry;
    register_test_gauge(registry, "/test/x", [] { return 1.0; });

    sampler_config config;
    config.counter_names = {"/test{locality#0/total}/x"};
    sampler s(registry, config);
    auto const v = s.discovery_version();
    s.tick(100);
    s.tick(200);
    EXPECT_EQ(s.discovery_version(), v);
    EXPECT_EQ(s.schema().width(), 1u);
}

// ----------------------------------------------------- virtual-time (sim)

TEST(SimTelemetry, VirtualTimeSamplingIsDeterministic)
{
    auto run_once = [] {
        sim::sim_config config;
        config.cores = 2;
        sim::simulator sim(config);

        perf::counter_registry registry;
        register_sim_counters(registry, sim);

        sampler_config sc;
        sc.counter_names = {"/sim{locality#0/total}/time/virtual",
            "/sim{locality#0/total}/count/tasks-executed",
            "/sim{locality#0/total}/count/tasks-alive"};
        sc.period_ns = 100'000;    // 0.1 ms virtual
        sim_sampler ts(sim, registry, sc);

        auto csv = std::make_shared<std::ostringstream>();
        ts.add_sink(std::make_shared<csv_sink>(*csv));

        auto report = sim.run([] {
            for (int i = 0; i < 8; ++i)
            {
                auto f = sim::sim_engine::async([] {
                    sim::sim_engine::annotate_work({.cpu_ns = 200'000});
                });
                f.get();
            }
        });
        EXPECT_FALSE(report.failed);
        ts.finish();
        return csv->str();
    };

    std::string const first = run_once();
    std::string const second = run_once();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);    // same config -> identical byte stream

    // Rows are stamped with virtual boundary times: strict multiples
    // of the period, strictly increasing.
    std::istringstream in(first);
    std::string line;
    std::getline(in, line);    // header
    std::uint64_t prev = 0;
    std::size_t rows = 0;
    while (std::getline(in, line))
    {
        std::uint64_t const t = std::stoull(line.substr(0, line.find(',')));
        EXPECT_EQ(t % 100'000, 0u);
        EXPECT_GT(t, prev);
        prev = t;
        ++rows;
    }
    EXPECT_GE(rows, 2u);
}

TEST(SimTelemetry, CsvByteIdenticalAcrossQueuePolicies)
{
    // The queue-policy knob is bookkeeping-only in the simulator: the
    // steal-cost model (machine_desc) is the source of truth for paper
    // figures, so the full telemetry byte stream must not change when
    // the real runtime's deque implementation is swapped.
    auto run_once = [](threads::queue_policy queue) {
        sim::sim_config config;
        config.cores = 2;
        config.queue = queue;
        sim::simulator sim(config);

        perf::counter_registry registry;
        register_sim_counters(registry, sim);

        sampler_config sc;
        sc.counter_names = {"/sim{locality#0/total}/time/virtual",
            "/sim{locality#0/total}/count/tasks-executed"};
        sc.period_ns = 100'000;
        sim_sampler ts(sim, registry, sc);

        auto csv = std::make_shared<std::ostringstream>();
        ts.add_sink(std::make_shared<csv_sink>(*csv));

        auto report = sim.run([] {
            for (int i = 0; i < 8; ++i)
            {
                auto f = sim::sim_engine::async([] {
                    sim::sim_engine::annotate_work({.cpu_ns = 200'000});
                });
                f.get();
            }
        });
        EXPECT_FALSE(report.failed);
        EXPECT_EQ(report.queue, queue);    // knob recorded in the report
        ts.finish();
        return csv->str();
    };

    std::string const with_mutex = run_once(threads::queue_policy::mutex_deque);
    std::string const with_cl = run_once(threads::queue_policy::chase_lev);
    EXPECT_FALSE(with_mutex.empty());
    EXPECT_EQ(with_mutex, with_cl);
}

TEST(SimTelemetry, SameSchemaAsRealTimeSampling)
{
    sim::sim_config config;
    config.cores = 1;
    sim::simulator sim(config);
    perf::counter_registry registry;
    register_sim_counters(registry, sim);

    sampler_config sc;
    sc.counter_names = {"/sim{locality#0/total}/count/tasks-created"};
    sim_sampler ts(sim, registry, sc);

    // Virtual-time records use the exact record_schema every sink
    // understands; CSV header shape matches the real-time pipeline.
    std::ostringstream csv;
    ts.add_sink(std::make_shared<csv_sink>(csv));
    (void) sim.run(
        [] { sim::sim_engine::annotate_work({.cpu_ns = 500'000}); });
    ts.finish();

    std::istringstream in(csv.str());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header,
        "t_ns,seq,/sim{locality#0/total}/count/tasks-created");
}

// ------------------------------------------------------- session plumbing

TEST(TelemetrySession, OptionsFromCli)
{
    char const* argv[] = {"prog",
        "--mh:print-counter=/threads{locality#0/total}/idle-rate",
        "--mh:print-counter=/threads{locality#0/total}/time/average",
        "--mh:telemetry-interval=2.5",
        "--mh:telemetry-destination=jsonl:/tmp/out.jsonl",
        "--mh:telemetry-endpoint=0", "--mh:telemetry-ring=64",
        "--mh:telemetry-rollup=/threads{locality#0/total}/time/average"};
    util::cli_args args(static_cast<int>(std::size(argv)), argv);
    auto const options = telemetry_options::from_cli(args);
    EXPECT_EQ(options.counter_names.size(), 2u);
    EXPECT_EQ(options.rollup_names.size(), 1u);
    EXPECT_DOUBLE_EQ(options.interval_ms, 2.5);
    EXPECT_EQ(options.destination, "jsonl:/tmp/out.jsonl");
    EXPECT_EQ(options.endpoint_port, 0);
    EXPECT_EQ(options.ring_capacity, 64u);
}

TEST(TelemetrySession, SubscriptionReceivesSamples)
{
    perf::counter_registry registry;
    register_test_gauge(registry, "/test/x", [] { return 3.0; });

    telemetry_options options;
    options.counter_names = {"/test{locality#0/total}/x"};
    options.interval_ms = 0.5;
    options.autostart = false;

    session s(registry, options);
    std::atomic<std::uint64_t> received{0};
    s.subscribe([&](sample_view const& v) {
        EXPECT_EQ(v.width, 1u);
        received.fetch_add(1);
        return true;
    });
    s.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    s.stop();
    EXPECT_GE(received.load(), 1u);
}

TEST(TelemetrySession, SelfCountersObserveThePipeline)
{
    perf::counter_registry registry;
    register_test_gauge(registry, "/test/x", [] { return 1.0; });

    sampler_config config;
    config.counter_names = {"/test{locality#0/total}/x"};
    config.ring_capacity = 32;
    sampler s(registry, config);
    register_telemetry_counters(registry, s);

    s.tick(1);
    s.tick(2);

    std::string error;
    auto samples_counter = registry.create(
        "/telemetry{locality#0/total}/count/samples", &error);
    ASSERT_NE(samples_counter, nullptr) << error;
    EXPECT_DOUBLE_EQ(samples_counter->get_value().get(), 2.0);

    auto capacity_counter = registry.create(
        "/telemetry{locality#0/total}/buffer/capacity", &error);
    ASSERT_NE(capacity_counter, nullptr) << error;
    EXPECT_DOUBLE_EQ(capacity_counter->get_value().get(), 32.0);

    remove_telemetry_counters(registry);
    EXPECT_EQ(
        registry.create("/telemetry{locality#0/total}/count/samples"),
        nullptr);
    s.stop();
}

// Regression: telemetry sampling must quiesce before the runtime tears
// down its workers, even when the session outlives the runtime — same
// ordering contract as perf::counter_session, via runtime::at_shutdown.
TEST(TelemetryShutdownOrdering, SessionOutlivesRuntime)
{
    std::string const path =
        ::testing::TempDir() + "minihpx_telemetry_shutdown.csv";
    {
        runtime_config rc;
        rc.sched.num_workers = 2;
        auto rt = std::make_unique<runtime>(rc);
        perf::counter_registry registry;
        perf::register_all_runtime_counters(registry, *rt);

        telemetry_options options;
        options.counter_names = {
            "/threads{locality#0/total}/count/cumulative",
            "/threads{locality#0/total}/idle-rate"};
        options.interval_ms = 0.5;
        options.destination = "csv:" + path;
        session s(registry, options);

        std::vector<future<void>> fs;
        for (int i = 0; i < 50; ++i)
            fs.push_back(async([] {}));
        wait_all(fs);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

        // Destroy the runtime while the sampler is live (the bad
        // order). The shutdown hook must stop sampling and flush
        // before worker teardown.
        rt.reset();
        EXPECT_FALSE(s.get_sampler().running());
        std::uint64_t const samples_at_death = s.get_sampler().samples();
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        EXPECT_EQ(s.get_sampler().samples(), samples_at_death);
    }
    std::ifstream in(path);
    std::string const contents(std::istreambuf_iterator<char>(in), {});
    // Flushed on quiesce: header plus at least one row made it out.
    EXPECT_NE(contents.find("t_ns,seq,"), std::string::npos);
}

TEST(TelemetryShutdownOrdering, NormalOrderDrainsEverything)
{
    runtime_config rc;
    rc.sched.num_workers = 2;
    runtime rt(rc);
    perf::counter_registry registry;
    perf::register_all_runtime_counters(registry, rt);

    std::string const path =
        ::testing::TempDir() + "minihpx_telemetry_normal.csv";
    {
        telemetry_options options;
        options.counter_names = {
            "/threads{locality#0/total}/count/cumulative"};
        options.interval_ms = 0.5;
        options.destination = "csv:" + path;
        session s(registry, options);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::ifstream in(path);
    std::string line;
    std::size_t rows = 0;
    std::getline(in, line);
    EXPECT_NE(line.find("count/cumulative"), std::string::npos);
    while (std::getline(in, line))
        ++rows;
    EXPECT_GE(rows, 1u);
}

// ------------------------------------------------- federation (late join)

TEST(Discovery, LateJoiningLocalityEntersWildcardStream)
{
    // Satellite of the minihpx::net federation work: a sampler holding
    // a `locality#*` wildcard must pick up a locality that boots and
    // dials in *mid-session*. The join bumps the registry version via
    // the topology callback, the next tick re-expands the wildcard
    // across known_localities(), and the csv sink re-emits its header
    // (on_schema_change) with the new remote column appended.
    perf::counter_registry registry0, registry1;
    register_test_gauge(registry0, "/test/value", [] { return 1.0; });
    register_test_gauge(registry1, "/test/value", [] { return 2.0; });

    net::net_config c0;
    c0.id = 0;
    c0.num_localities = 2;
    c0.registry = &registry0;
    net::locality loc0(c0);
    net::tcp_mesh mesh0(loc0);
    std::uint16_t const port0 = mesh0.listen(0);
    net::counter_federation fed0(loc0);

    sampler_config config;
    config.counter_names = {"/test{locality#*/total}/value"};
    std::ostringstream csv;
    sampler s(registry0, config);
    ASSERT_TRUE(s.errors().empty());
    ASSERT_EQ(s.schema().width(), 1u);
    EXPECT_EQ(s.schema().columns[0].name, "/test{locality#0/total}/value");
    s.add_sink(std::make_shared<csv_sink>(csv));
    s.tick(100);

    // locality#1 boots late and dials in.
    net::net_config c1 = c0;
    c1.id = 1;
    c1.registry = &registry1;
    net::locality loc1(c1);
    net::tcp_mesh mesh1(loc1);
    mesh1.listen(0);
    net::counter_federation fed1(loc1);
    mesh1.connect({port0});

    for (int i = 0; i < 400 && !loc0.peer_alive(1); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(loc0.peer_alive(1));

    s.tick(200);
    s.tick(300);
    s.stop();

    // The wildcard re-expanded: locality#1's gauge joined the stream
    // as an appended column, sampled through the remote proxy.
    ASSERT_EQ(s.schema().width(), 2u);
    EXPECT_EQ(s.schema().columns[0].name, "/test{locality#0/total}/value");
    EXPECT_EQ(s.schema().columns[1].name, "/test{locality#1/total}/value");

    std::istringstream in(csv.str());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 5u);
    EXPECT_EQ(lines[0], "t_ns,seq,/test{locality#0/total}/value");
    EXPECT_EQ(lines[2],
        "t_ns,seq,/test{locality#0/total}/value,"
        "/test{locality#1/total}/value");
    EXPECT_NE(lines[3].find(",2"), std::string::npos);

    loc1.stop();
    loc0.stop();
}
