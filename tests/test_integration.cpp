// Cross-module integration tests: the paper's qualitative claims, as
// executable assertions over the same pipeline the bench harnesses use
// (suite -> simulator -> counters/tool models), plus the real-runtime
// counter session measuring a real Inncabs run.
#include <inncabs/harness.hpp>
#include <inncabs/inncabs.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/tools/tool_model.hpp>

#include <gtest/gtest.h>

#include "test_env.hpp"

#include <fstream>

using namespace inncabs;
namespace ms = minihpx::sim;
namespace mt = minihpx::tools;

namespace {

ms::sim_report sim_run(char const* name, ms::sched_model model,
    unsigned cores, input_scale scale = input_scale::bench_default)
{
    auto const* entry = find_benchmark(name);
    EXPECT_NE(entry, nullptr);
    ms::sim_config config;
    config.model = model;
    config.cores = cores;
    ms::simulator sim(config);
    return sim.run([&] { entry->run_sim_body(scale); });
}

}    // namespace

// Paper claim (Figs 1, Table V): coarse-grained benchmarks scale well
// on BOTH runtimes.
TEST(PaperShape, CoarseScalesOnBothRuntimes)
{
    MINIHPX_SKIP_IF_TSAN_FIBER_LIMIT();
    // Paper-scale inputs: the claim is about the coarse (~1-3 ms)
    // grain, which the reduced default inputs do not reach for
    // sparselu (bs=32 -> ~125 us).
    for (char const* name : {"alignment", "sparselu"})
    {
        auto const hpx1 =
            sim_run(name, ms::sched_model::hpx_like, 1, input_scale::paper);
        auto const hpx16 =
            sim_run(name, ms::sched_model::hpx_like, 16, input_scale::paper);
        auto const std16 =
            sim_run(name, ms::sched_model::std_like, 16, input_scale::paper);
        ASSERT_FALSE(hpx16.failed);
        ASSERT_FALSE(std16.failed);
        EXPECT_GT(hpx1.exec_time_s / hpx16.exec_time_s, 8.0) << name;
        // std within ~1.5x of hpx for coarse grain.
        EXPECT_LT(std16.exec_time_s, hpx16.exec_time_s * 1.5) << name;
    }
}

// Paper claim (Figs 5-7): very fine grain makes std::async far slower.
TEST(PaperShape, VeryFineStdFarSlower)
{
    MINIHPX_SKIP_IF_TSAN_FIBER_LIMIT();
    for (char const* name : {"fib", "health"})
    {
        auto const hpx = sim_run(name, ms::sched_model::hpx_like, 8);
        auto const stdr = sim_run(name, ms::sched_model::std_like, 8);
        ASSERT_FALSE(hpx.failed) << name;
        if (!stdr.failed)
            EXPECT_GT(stdr.exec_time_s, 3.0 * hpx.exec_time_s) << name;
    }
}

// Paper claim (§VI): std::async exhausts pthreads at paper scale for
// the recursive very fine benchmarks; HPX-style tasks survive.
TEST(PaperShape, PaperScaleStdFailsWhereHpxSurvives)
{
    MINIHPX_SKIP_IF_TSAN_FIBER_LIMIT();
    // Environment gate: the std-like model really creates ~90k live
    // thread stacks, and each guard-paged stack costs two VM mappings
    // (stack.cpp mprotects the guard page). Below ~250k map slots the
    // mmap/mprotect calls themselves fail — an artifact of the host
    // limit, not the runtime behavior under test.
    if (std::ifstream map_count("/proc/sys/vm/max_map_count");
        map_count.is_open())
    {
        long max_maps = 0;
        map_count >> max_maps;
        if (max_maps > 0 && max_maps < 250000)
            GTEST_SKIP() << "vm.max_map_count=" << max_maps
                         << " cannot hold ~90k guard-paged stacks "
                            "(needs ~250000)";
    }

    for (char const* name : {"fib", "nqueens", "uts"})
    {
        auto const stdr = sim_run(
            name, ms::sched_model::std_like, 20, input_scale::paper);
        EXPECT_TRUE(stdr.failed) << name;
        EXPECT_GE(stdr.peak_live_threads, 80000u) << name;
        EXPECT_LE(stdr.peak_live_threads, 97000u) << name;
    }
    auto const hpx =
        sim_run("fib", ms::sched_model::hpx_like, 20, input_scale::paper);
    EXPECT_FALSE(hpx.failed);
}

// Paper claim (Fig 11/12): for very fine tasks the scheduling overhead
// is a large fraction of task time (50-100%); for coarse tasks it is
// negligible.
TEST(PaperShape, OverheadFractionTracksGranularity)
{
    MINIHPX_SKIP_IF_TSAN_FIBER_LIMIT();
    auto const fine = sim_run("fib", ms::sched_model::hpx_like, 4);
    double const fine_ratio = fine.sched_overhead_s / fine.task_time_s;
    EXPECT_GT(fine_ratio, 0.3);

    auto const coarse = sim_run("alignment", ms::sched_model::hpx_like, 4);
    double const coarse_ratio =
        coarse.sched_overhead_s / coarse.task_time_s;
    EXPECT_LT(coarse_ratio, 0.02);
}

// Paper claim (Fig 13/14 mechanism): bandwidth grows with cores and is
// bounded by the socket ceiling.
TEST(PaperShape, BandwidthGrowsAndSaturates)
{
    auto const bw1 =
        sim_run("pyramids", ms::sched_model::hpx_like, 1)
            .offcore_bandwidth_gbs();
    auto const bw16 =
        sim_run("pyramids", ms::sched_model::hpx_like, 16)
            .offcore_bandwidth_gbs();
    EXPECT_GT(bw16, bw1 * 1.5);
    EXPECT_LT(bw16, 45.0);
}

// Table I pipeline: baseline -> tool models, end to end via the suite.
TEST(PaperShape, ExternalToolsFailOrBurden)
{
    MINIHPX_SKIP_IF_TSAN_FIBER_LIMIT();
    mt::tool_config config;
    // strassen at paper scale: >64k tasks crash the TAU-like table.
    auto const strassen = sim_run(
        "strassen", ms::sched_model::std_like, 20, input_scale::paper);
    ASSERT_FALSE(strassen.failed);
    auto const tau = mt::apply_tool(mt::tool_kind::tau_like, config, strassen);
    EXPECT_TRUE(tau.crashed() ||
        tau.result == mt::tool_outcome::status::timed_out);

    // round (512 tasks) completes under both tools but with huge cost.
    auto const round = sim_run(
        "round", ms::sched_model::std_like, 20, input_scale::paper);
    ASSERT_FALSE(round.failed);
    auto const hpct =
        mt::apply_tool(mt::tool_kind::hpctoolkit_like, config, round);
    ASSERT_EQ(hpct.result, mt::tool_outcome::status::completed);
    EXPECT_GT(hpct.overhead_pct, 100.0);
}

// The intrinsic alternative: the same measurement on the real runtime
// through a counter session, with the harness protocol, writing CSV.
TEST(Intrinsic, SessionMeasuresRealInncabsRun)
{
    minihpx::runtime_config rc;
    rc.sched.num_workers = 2;
    minihpx::runtime rt(rc);

    minihpx::perf::counter_registry registry;
    minihpx::perf::register_all_runtime_counters(registry, rt);

    char const* path = "/tmp/minihpx_integration_counters.csv";
    {
        minihpx::perf::session_options options;
        options.counter_names = {
            "/threads{locality#0/total}/count/cumulative",
            "/threads{locality#0/total}/time/average",
            "/threads{locality#0/total}/time/average-overhead",
        };
        options.csv = true;
        options.destination = path;
        options.print_at_shutdown = false;
        minihpx::perf::counter_session session(registry, options);

        auto const* entry = find_benchmark("sort");
        ASSERT_NE(entry, nullptr);
        auto const timing = run_samples("sort", 3,
            [&] { (void) entry->run_minihpx(input_scale::tiny); });
        EXPECT_EQ(timing.times_ms.size(), 3u);
        EXPECT_GT(timing.median_ms(), 0.0);
    }

    std::ifstream in(path);
    std::string header, row;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_NE(header.find("/threads{locality#0/total}/count/cumulative"),
        std::string::npos);
    int rows = 0;
    while (std::getline(in, row))
        ++rows;
    EXPECT_EQ(rows, 3);    // one evaluation per sample
}

// Determinism across the whole pipeline: identical virtual results on
// repeated runs (the property every figure harness relies on).
TEST(Pipeline, SuiteRunsAreDeterministic)
{
    for (char const* name : {"sort", "intersim", "uts"})
    {
        auto const a = sim_run(name, ms::sched_model::hpx_like, 8);
        auto const b = sim_run(name, ms::sched_model::hpx_like, 8);
        EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s) << name;
        EXPECT_EQ(a.tasks_executed, b.tasks_executed) << name;
        EXPECT_EQ(a.offcore_data_rd, b.offcore_data_rd) << name;
    }
}

// fork (continuation stealing) must preserve results on the sim too.
TEST(Pipeline, ForkPolicyEquivalence)
{
    ms::sim_config config;
    config.cores = 4;
    config.skip_compute = false;
    ms::simulator sim(config);
    std::uint64_t forked = 0;
    auto report = sim.run([&] {
        struct fibf
        {
            static std::uint64_t run(int n)
            {
                if (n < 2)
                    return static_cast<std::uint64_t>(n);
                auto left = sim_engine::async(
                    sim_engine::launch::fork, [n] { return run(n - 1); });
                auto const right = run(n - 2);
                return left.get() + right;
            }
        };
        forked = fibf::run(15);
    });
    EXPECT_FALSE(report.failed);
    EXPECT_EQ(forked, 610u);
}
