// minihpx::causal tests: per-label profile attribution on hand-built
// traces, what-if curve properties, analyze() edge cases, the
// annotate_scope RAII, and — the core of the subsystem — verification
// of causal predictions against the simulator: scale a label's cost
// with sim_config::cost_scales, genuinely re-run the workload, and the
// measured speedup must agree with the trace-only prediction.
#include <inncabs/fib.hpp>
#include <inncabs/sort.hpp>
#include <minihpx/causal/causal.hpp>
#include <minihpx/engine/engine.hpp>
#include <minihpx/minihpx.hpp>
#include <minihpx/sim/engine.hpp>
#include <minihpx/sim/simulator.hpp>
#include <minihpx/taskbench/taskbench.hpp>
#include <minihpx/this_task.hpp>
#include <minihpx/trace/trace.hpp>

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace minihpx;
namespace tb = minihpx::taskbench;

namespace {

trace::event make_event(trace::event_kind kind, std::uint64_t t,
    std::uint64_t task, std::uint64_t aux = 0, std::uint32_t worker = 0)
{
    trace::event e{};
    e.t_ns = t;
    e.task = task;
    e.aux = aux;
    e.worker = worker;
    e.kind = static_cast<std::uint16_t>(kind);
    return e;
}

causal::label_row const* row_of(
    causal::profile_result const& prof, std::string const& label)
{
    for (auto const& row : prof.labels)
        if (row.label == label)
            return &row;
    return nullptr;
}

// Two labeled tasks: parent under "alpha" spawns a child that runs
// 5 ns unlabeled, then 10 ns under "beta".
//
//   task 1: begin@0  label alpha@0  spawn 2@10  end@20     (20 ns alpha)
//   task 2: begin@20 label beta@25  end@35      (5 ns <unlabeled>,
//                                                10 ns beta)
trace::trace_data two_label_trace()
{
    trace::trace_data data;
    data.strings = {"", "alpha", "beta"};
    data.events = {
        make_event(trace::event_kind::spawn, 0, 1, 0),
        make_event(trace::event_kind::begin, 0, 1),
        make_event(trace::event_kind::label, 0, 1, 1),
        make_event(trace::event_kind::spawn, 10, 2, 1),
        make_event(trace::event_kind::end, 20, 1),
        make_event(trace::event_kind::begin, 20, 2, 0, 1),
        make_event(trace::event_kind::label, 25, 2, 2, 1),
        make_event(trace::event_kind::end, 35, 2, 0, 1),
    };
    return data;
}

}    // namespace

// ----------------------------------------------------- profile pass

TEST(CausalProfile, ExclusiveInclusiveAndUnlabeledBuckets)
{
    auto const data = two_label_trace();
    causal::profile_result const prof = causal::profile(data);

    EXPECT_EQ(prof.tasks, 2u);
    EXPECT_EQ(prof.work_ns, 35u);

    auto const* alpha = row_of(prof, "alpha");
    auto const* beta = row_of(prof, "beta");
    auto const* none = row_of(prof, causal::unlabeled_name);
    ASSERT_NE(alpha, nullptr);
    ASSERT_NE(beta, nullptr);
    ASSERT_NE(none, nullptr);

    EXPECT_EQ(alpha->exclusive_ns, 20u);
    EXPECT_EQ(beta->exclusive_ns, 10u);
    EXPECT_EQ(none->exclusive_ns, 5u);
    EXPECT_EQ(alpha->tasks, 1u);
    EXPECT_EQ(beta->tasks, 1u);

    // Inclusive: the child was spawned while the parent held "alpha",
    // so all 15 ns of the child roll up into alpha's inclusive total.
    EXPECT_EQ(alpha->inclusive_ns, 35u);
    EXPECT_EQ(beta->inclusive_ns, 10u);

    // Exclusive rows always sum to the work.
    std::uint64_t sum = 0;
    for (auto const& row : prof.labels)
        sum += row.exclusive_ns;
    EXPECT_EQ(sum, prof.work_ns);
}

TEST(CausalProfile, CriticalResidencyCoversThePathTasks)
{
    auto const data = two_label_trace();
    causal::profile_result const prof = causal::profile(data);

    // Both tasks sit on the (only) chain, so every label has critical
    // residency equal to its exclusive time.
    for (auto const& row : prof.labels)
        EXPECT_EQ(row.critical_ns, row.exclusive_ns) << row.label;
    EXPECT_EQ(prof.critical_exec_ns, prof.work_ns);

    double share = 0.0;
    for (auto const& row : prof.labels)
        share += row.critical_share;
    EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(CausalProfile, EqualLabelTextUnderDistinctIdsIsOneRow)
{
    // The string table interns by pointer, so the same spelling can
    // appear under two ids; attribution must fold them.
    trace::trace_data data;
    data.strings = {"", "hot", "hot"};
    data.events = {
        make_event(trace::event_kind::begin, 0, 1),
        make_event(trace::event_kind::label, 0, 1, 1),
        make_event(trace::event_kind::end, 10, 1),
        make_event(trace::event_kind::begin, 10, 2, 0, 1),
        make_event(trace::event_kind::label, 10, 2, 2, 1),
        make_event(trace::event_kind::end, 30, 2, 0, 1),
    };
    causal::profile_result const prof = causal::profile(data);
    auto const* hot = row_of(prof, "hot");
    ASSERT_NE(hot, nullptr);
    EXPECT_EQ(hot->exclusive_ns, 30u);
    EXPECT_EQ(hot->tasks, 2u);
}

// ----------------------------------------------- analyze() edge cases

TEST(AnalyzeEdgeCases, EmptyTraceYieldsZeros)
{
    trace::trace_data data;
    trace::analysis_result const r = trace::analyze(data);
    EXPECT_EQ(r.events, 0u);
    EXPECT_EQ(r.tasks, 0u);
    EXPECT_EQ(r.work_ns, 0u);
    EXPECT_EQ(r.span_ns, 0u);
    EXPECT_TRUE(r.critical_path.empty());
    EXPECT_TRUE(r.worker_busy.empty());

    causal::profile_result const prof = causal::profile(data);
    EXPECT_EQ(prof.work_ns, 0u);
    EXPECT_TRUE(
        causal::causal_whatif(data).curves.empty());
}

TEST(AnalyzeEdgeCases, SingleTaskTrace)
{
    trace::trace_data data;
    data.events = {
        make_event(trace::event_kind::spawn, 0, 7, 0),
        make_event(trace::event_kind::begin, 5, 7),
        make_event(trace::event_kind::end, 30, 7),
    };
    trace::analysis_result const r = trace::analyze(data);
    EXPECT_EQ(r.tasks, 1u);
    EXPECT_EQ(r.tasks_ended, 1u);
    EXPECT_EQ(r.work_ns, 25u);
    EXPECT_EQ(r.span_ns, 25u);
    EXPECT_DOUBLE_EQ(r.parallelism, 1.0);
    ASSERT_EQ(r.critical_path.size(), 1u);
    EXPECT_EQ(r.critical_path[0].task, 7u);
}

TEST(AnalyzeEdgeCases, DroppedExecutionEventsLeaveSpawnOnlyLanes)
{
    // A lane that dropped all begin/end records contributes structure
    // (spawn edges) but no execution time; the sweep must not charge
    // phantom slices or crash reconstructing the path.
    trace::trace_data data;
    data.events = {
        make_event(trace::event_kind::spawn, 0, 1, 0),
        make_event(trace::event_kind::spawn, 1, 2, 1),
        make_event(trace::event_kind::spawn, 2, 3, 1),
    };
    trace::analysis_result const r = trace::analyze(data);
    EXPECT_EQ(r.tasks, 3u);
    EXPECT_EQ(r.tasks_ended, 0u);
    EXPECT_EQ(r.work_ns, 0u);
    EXPECT_EQ(r.span_ns, 0u);
    EXPECT_TRUE(r.worker_busy.empty());

    causal::profile_result const prof = causal::profile(data);
    EXPECT_EQ(prof.work_ns, 0u);
}

TEST(AnalyzeEdgeCases, CriticalPathEntirelyOneLabel)
{
    // Serial chain of three tasks, every slice under "only": the whole
    // span belongs to one label and optimizing it is pure span time.
    trace::trace_data data;
    data.strings = {"", "only"};
    data.events = {
        make_event(trace::event_kind::begin, 0, 1),
        make_event(trace::event_kind::label, 0, 1, 1),
        make_event(trace::event_kind::spawn, 10, 2, 1),
        make_event(trace::event_kind::end, 10, 1),
        make_event(trace::event_kind::begin, 10, 2),
        make_event(trace::event_kind::label, 10, 2, 1),
        make_event(trace::event_kind::spawn, 25, 3, 2),
        make_event(trace::event_kind::end, 25, 2),
        make_event(trace::event_kind::begin, 25, 3),
        make_event(trace::event_kind::label, 25, 3, 1),
        make_event(trace::event_kind::end, 40, 3),
    };
    trace::analysis_result const r = trace::analyze(data);
    EXPECT_EQ(r.span_ns, 40u);
    for (auto const& step : r.critical_path)
        EXPECT_EQ(step.label, "only");

    causal::profile_result const prof = causal::profile(data);
    auto const* only = row_of(prof, "only");
    ASSERT_NE(only, nullptr);
    EXPECT_EQ(only->critical_ns, 40u);
    EXPECT_NEAR(only->critical_share, 1.0, 1e-9);

    // A fully serial region scaled by half must halve the projection
    // (work and span shrink together; P=1).
    double const s = causal::predicted_speedup(data, "only", 50.0, 1);
    EXPECT_NEAR(s, 2.0, 1e-6);
}

// ------------------------------------------------- what-if properties

TEST(CausalWhatif, CurvesAreMonotonicAndRanked)
{
    auto const data = two_label_trace();
    causal::whatif_report const w = causal::causal_whatif(data);

    ASSERT_EQ(w.curves.size(), 2u);    // alpha, beta; never <unlabeled>
    for (auto const& curve : w.curves)
    {
        ASSERT_FALSE(curve.points.empty());
        for (std::size_t i = 1; i < curve.points.size(); ++i)
        {
            EXPECT_GE(curve.points[i].optimized_pct,
                curve.points[i - 1].optimized_pct);
            EXPECT_GE(curve.points[i].projected_speedup,
                curve.points[i - 1].projected_speedup - 1e-12)
                << curve.label;
        }
    }
    // alpha has 2x beta's time everywhere on the chain: it must rank
    // first, and at equal grid depth promise at least beta's speedup.
    EXPECT_EQ(w.curves[0].label, "alpha");
    EXPECT_GE(w.curves[0].points.back().projected_speedup,
        w.curves[1].points.back().projected_speedup);
}

TEST(CausalWhatif, MatchesLegacyProjectWhatifOnExactLabels)
{
    auto const data = two_label_trace();
    // K = 2 faster <=> 50% of the cost optimized away. "alpha" is a
    // unique spelling, so substring and exact matching coincide.
    trace::whatif_result const legacy =
        trace::project_whatif(data, "alpha", 2.0, 2);
    double const causal_pred =
        causal::predicted_speedup(data, "alpha", 50.0, 2);
    EXPECT_NEAR(legacy.projected_speedup, causal_pred, 1e-9);
}

TEST(CausalWhatif, UnknownLabelPredictsNoChange)
{
    auto const data = two_label_trace();
    EXPECT_DOUBLE_EQ(
        causal::predicted_speedup(data, "no-such-label", 50.0), 1.0);
}

TEST(CausalCounters, SelfObservationThroughTheRegistry)
{
    auto& registry = perf::counter_registry::instance();
    auto const before = causal::global_stats().whatif_sweeps.load();
    (void) causal::causal_whatif(two_label_trace());
    EXPECT_TRUE(registry.contains("/causal/profile/passes"));
    EXPECT_TRUE(registry.contains("/causal/profile/time/ns"));
    EXPECT_TRUE(registry.contains("/causal/whatif/sweeps"));
    // 2 labels x 7 default grid points.
    EXPECT_EQ(causal::global_stats().whatif_sweeps.load() - before, 14u);
}

// -------------------------------------------------- annotate_scope

TEST(AnnotateScope, NestedScopesRestoreOuterLabel)
{
    runtime_config config;
    config.sched.num_workers = 2;

    run_on_runtime(config, [] {
        EXPECT_EQ(this_task::current_label(), nullptr);
        {
            this_task::annotate_scope outer("phase-outer");
            EXPECT_STREQ(this_task::current_label(), "phase-outer");
            {
                this_task::annotate_scope inner("phase-inner");
                EXPECT_STREQ(this_task::current_label(), "phase-inner");
            }
            EXPECT_STREQ(this_task::current_label(), "phase-outer");
        }
        // Restored to unlabeled ("" stores as no label).
        char const* after = this_task::current_label();
        EXPECT_TRUE(after == nullptr) << after;
    });
}

TEST(AnnotateScope, LabelTravelsAcrossSuspension)
{
    // The label lives on the task descriptor, so it survives a
    // suspension and is intact when the task resumes — on whichever
    // worker picks it up.
    runtime_config config;
    config.sched.num_workers = 2;

    run_on_runtime(config, [] {
        this_task::annotate_scope scope("suspended-region");
        auto gate = async([] {
            // Unrelated task: its labels must not leak anywhere.
            this_task::annotate_scope other("other-task");
            return 1;
        });
        EXPECT_EQ(gate.get(), 1);    // suspends; resume may migrate
        EXPECT_STREQ(this_task::current_label(), "suspended-region");
    });
}

// --------------------------------------- simulator verification loop
//
// ISSUE acceptance: for >= 3 workloads x >= 2 labels, the predicted
// speedup of optimizing 50% of a label must match the *measured*
// speedup of re-simulating with that label's modeled cost halved, to
// within 10% relative error — byte-deterministically.

namespace {

struct sim_run
{
    trace::trace_data data;    // recorded trace (baseline runs)
    double exec_s = 0.0;       // measured virtual makespan
};

sim_run record_sim(std::function<void()> const& body, unsigned cores,
    std::vector<sim::sim_config::label_cost_scale> scales = {},
    bool with_trace = true)
{
    sim::sim_config config;
    config.cores = cores;
    config.cost_scales = std::move(scales);
    sim::simulator sim(config);

    sim_run out;
    if (with_trace)
    {
        trace::trace_options options;
        options.enabled = true;
        options.destination = "";
        trace::sim_session session(sim, options);
        auto memory = std::make_shared<trace::memory_sink>(
            trace::clock_kind::virtual_);
        session.add_sink(memory);
        auto const report = sim.run(body);
        EXPECT_FALSE(report.failed) << report.failure_reason;
        out.exec_s = report.exec_time_s;
        session.finish();
        EXPECT_EQ(session.get_recorder()->events_dropped(), 0u);
        out.data = memory->take();
    }
    else
    {
        auto const report = sim.run(body);
        EXPECT_FALSE(report.failed) << report.failure_reason;
        out.exec_s = report.exec_time_s;
    }
    return out;
}

// Predicted (trace-only) vs measured (re-simulated with the label's
// cost halved) speedup at 50%; both must agree within `tolerance`.
void verify_label(std::function<void()> const& body, unsigned cores,
    std::string const& label, double tolerance = 0.10)
{
    sim_run const base = record_sim(body, cores);
    double const predicted =
        causal::predicted_speedup(base.data, label, 50.0, cores);

    sim_run const scaled =
        record_sim(body, cores, {{label, 0.5}}, /*with_trace=*/false);
    ASSERT_GT(scaled.exec_s, 0.0);
    double const measured = base.exec_s / scaled.exec_s;

    EXPECT_GT(predicted, 1.0) << label;    // the label has real weight
    EXPECT_GT(measured, 1.0) << label;
    EXPECT_NEAR(predicted, measured, tolerance * measured)
        << label << ": predicted " << predicted << " measured "
        << measured;
}

tb::graph_spec verification_spec(tb::graph_type type)
{
    tb::graph_spec spec;
    spec.type = type;
    spec.width = 32;
    spec.steps = 8;
    spec.task_ns = 50'000;    // overheads < ~3% so Brent's bound holds
    return spec;
}

}    // namespace

TEST(SimVerification, TaskBenchStencilBothLabels)
{
    auto const spec = verification_spec(tb::graph_type::stencil_1d);
    auto const body = [spec] {
        (void) tb::run_graph<engine::sim_engine>(spec);
    };
    verify_label(body, 2, "taskbench/stencil-1d");
    verify_label(body, 2, "taskbench/stencil-1d@final");
}

TEST(SimVerification, TaskBenchFftBothLabels)
{
    auto const spec = verification_spec(tb::graph_type::fft);
    auto const body = [spec] {
        (void) tb::run_graph<engine::sim_engine>(spec);
    };
    verify_label(body, 2, "taskbench/fft");
    verify_label(body, 2, "taskbench/fft@final");
}

TEST(SimVerification, InncabsSortBothLabels)
{
    using sort = inncabs::sort_bench<engine::sim_engine>;
    typename sort::params params;
    params.n = 1 << 15;
    params.serial_cutoff = 2048;
    auto const body = [params] { (void) sort::run(params); };
    verify_label(body, 2, "sort-leaf");
    verify_label(body, 2, "sort-merge");
}

TEST(SimVerification, InncabsFibSingleLabel)
{
    using fib = inncabs::fib_bench<engine::sim_engine>;
    typename fib::params params = fib::params::tiny();
    // At the calibrated 1.1 us body the modeled scheduler overheads
    // (~1 us/task) are a large fraction of the runtime, and Brent's
    // bound knows nothing about them — the whole-program "fib" label
    // then overpredicts. Coarser bodies keep overhead under ~5%, the
    // regime the 10% acceptance tolerance is stated for.
    params.body_ns = 25'000;
    auto const body = [params] { (void) fib::run(params); };
    verify_label(body, 2, "fib");
}

TEST(SimVerification, TaskBenchTreeExtraGraph)
{
    auto const spec = verification_spec(tb::graph_type::binary_tree);
    auto const body = [spec] {
        (void) tb::run_graph<engine::sim_engine>(spec);
    };
    verify_label(body, 2, "taskbench/binary-tree");
}

TEST(SimVerification, PredictionsAreByteDeterministic)
{
    auto const spec = verification_spec(tb::graph_type::stencil_1d);
    auto const body = [spec] {
        (void) tb::run_graph<engine::sim_engine>(spec);
    };
    sim_run const a = record_sim(body, 2);
    sim_run const b = record_sim(body, 2);

    ASSERT_EQ(a.data.events.size(), b.data.events.size());
    EXPECT_EQ(std::memcmp(a.data.events.data(), b.data.events.data(),
                  a.data.events.size() * sizeof(trace::event)),
        0);
    EXPECT_EQ(a.data.strings, b.data.strings);
    EXPECT_DOUBLE_EQ(a.exec_s, b.exec_s);
    EXPECT_DOUBLE_EQ(
        causal::predicted_speedup(a.data, "taskbench/stencil-1d", 50.0),
        causal::predicted_speedup(b.data, "taskbench/stencil-1d", 50.0));
}

TEST(SimVerification, ScaledRunStillComputesTheSameAnswer)
{
    // The cost-scaling hook shrinks virtual time, never the program:
    // checksums are identical with and without the scale installed.
    auto const spec = verification_spec(tb::graph_type::fft);
    std::uint64_t base_sum = 0;
    std::uint64_t scaled_sum = 0;
    (void) record_sim(
        [&] { base_sum = tb::run_graph<engine::sim_engine>(spec).checksum; },
        2, {}, false);
    (void) record_sim(
        [&] {
            scaled_sum =
                tb::run_graph<engine::sim_engine>(spec).checksum;
        },
        2, {{"taskbench/fft", 0.5}}, false);
    EXPECT_EQ(base_sum, scaled_sum);
    EXPECT_NE(base_sum, 0u);
}

// ------------------------------------------------------ report shape

TEST(CausalReport, TableCarriesGrepStableRankingLines)
{
    auto const data = two_label_trace();
    causal::profile_result const prof = causal::profile(data);
    causal::whatif_report const w = causal::causal_whatif(data);

    std::ostringstream out;
    causal::render_table(out, prof, w, {.top = 2});
    std::string const text = out.str();
    EXPECT_NE(text.find("CAUSAL rank=1 label=alpha"), std::string::npos)
        << text;
    EXPECT_NE(text.find("CAUSAL rank=2 label=beta"), std::string::npos);
    EXPECT_NE(text.find("speedup@50%="), std::string::npos);
    EXPECT_NE(text.find("<unlabeled>"), std::string::npos);
}

TEST(CausalReport, JsonIsWellFormedEnoughToRoundTripNumbers)
{
    auto const data = two_label_trace();
    causal::profile_result const prof = causal::profile(data);
    causal::whatif_report const w = causal::causal_whatif(data);

    std::ostringstream out;
    causal::render_json(out, prof, w, {.top = 5});
    std::string const text = out.str();
    EXPECT_EQ(text.front(), '{');
    EXPECT_NE(text.find("\"profile\""), std::string::npos);
    EXPECT_NE(text.find("\"whatif\""), std::string::npos);
    EXPECT_NE(text.find("\"label\":\"alpha\""), std::string::npos);
    // Balanced braces/brackets (cheap structural check).
    long depth = 0;
    for (char c : text)
    {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}
