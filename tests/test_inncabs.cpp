// Inncabs suite tests: every benchmark's parallel result equals its
// serial reference on all three engines (real minihpx runtime, real
// thread-per-task baseline, virtual-time simulator with compute on),
// plus benchmark-specific known values and structural checks.
#include <inncabs/harness.hpp>
#include <inncabs/inncabs.hpp>
#include <minihpx/trace/trace.hpp>

#include <gtest/gtest.h>

#include "test_env.hpp"

#include <cstring>
#include <memory>

using namespace inncabs;
namespace ms = minihpx::sim;

namespace {

double run_in_sim(benchmark_entry const& entry, input_scale scale,
    ms::sim_report* report_out = nullptr, unsigned cores = 4)
{
    ms::sim_config config;
    config.cores = cores;
    config.skip_compute = false;    // full compute for correctness
    ms::simulator sim(config);
    double result = 0;
    auto report = sim.run([&] { result = entry.run_sim_body(scale); });
    EXPECT_FALSE(report.failed) << entry.name << ": "
                                << report.failure_reason;
    if (report_out)
        *report_out = report;
    return result;
}

class SuiteEquivalence : public ::testing::TestWithParam<char const*>
{
};

}    // namespace

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteEquivalence,
    ::testing::Values("alignment", "health", "sparselu", "fft", "fib",
        "pyramids", "sort", "strassen", "floorplan", "nqueens", "qap",
        "uts", "intersim", "round", "matmul"),
    [](auto const& info) { return std::string(info.param); });

TEST_P(SuiteEquivalence, SimMatchesSerial)
{
    auto const* entry = find_benchmark(GetParam());
    ASSERT_NE(entry, nullptr);
    double const serial = entry->run_serial(input_scale::tiny);
    double const sim = run_in_sim(*entry, input_scale::tiny);
    EXPECT_NEAR(sim, serial, std::abs(serial) * 1e-9 + 1e-9);
}

TEST_P(SuiteEquivalence, MinihpxMatchesSerial)
{
    auto const* entry = find_benchmark(GetParam());
    ASSERT_NE(entry, nullptr);
    minihpx::runtime_config config;
    config.sched.num_workers = 3;
    minihpx::runtime rt(config);
    double const serial = entry->run_serial(input_scale::tiny);
    double const parallel = entry->run_minihpx(input_scale::tiny);
    EXPECT_NEAR(parallel, serial, std::abs(serial) * 1e-9 + 1e-9);
}

TEST_P(SuiteEquivalence, StdBaselineMatchesSerial)
{
    auto const* entry = find_benchmark(GetParam());
    ASSERT_NE(entry, nullptr);
    double const serial = entry->run_serial(input_scale::tiny);
    double const parallel = entry->run_std(input_scale::tiny);
    EXPECT_NEAR(parallel, serial, std::abs(serial) * 1e-9 + 1e-9);
}

// -------------------------------------------------- benchmark specifics

TEST(SuiteRegistry, FifteenBenchmarksTableVOrderThenMatmul)
{
    ASSERT_EQ(suite().size(), 15u);
    EXPECT_EQ(suite().front().name, "alignment");
    EXPECT_EQ(suite().back().name, "matmul");
    EXPECT_NE(find_benchmark("uts"), nullptr);
    EXPECT_NE(find_benchmark("matmul"), nullptr);
    EXPECT_EQ(find_benchmark("nope"), nullptr);
}

TEST(Matmul, ChecksumIndependentOfTileSize)
{
    // Both task shapes accumulate every C(i,j) in ascending k, so the
    // result is bitwise identical: untiled bands, square tiles, ragged
    // tiles (t does not divide n), and the serial reference all agree.
    using M = matmul_bench<sim_engine>;
    typename M::params p;
    p.n = 96;
    double const serial = M::run_serial(p);

    for (std::size_t tile : {std::size_t{0}, std::size_t{16},
             std::size_t{32}, std::size_t{40}, std::size_t{96}})
    {
        p.tile = tile;
        ms::sim_config config;
        config.cores = 4;
        config.skip_compute = false;
        ms::simulator sim(config);
        double result = 0;
        auto report = sim.run([&] { result = M::run(p); });
        ASSERT_FALSE(report.failed);
        EXPECT_DOUBLE_EQ(result, serial) << "tile=" << tile;
    }
}

TEST(Matmul, ModeledDtlbMissRateDropsTenfoldWhenTiled)
{
    // The tentpole A/B: at n=512 an untiled 32-row band's working set
    // (576 pages) thrashes the modeled 512-entry STLB while a 64-square
    // tile (24 pages) pays only compulsory walks. Deterministic model,
    // so the exact rates are pinned to be reproducible run to run.
    using M = matmul_bench<sim_engine>;
    auto miss_rate = [](std::size_t tile) {
        typename M::params p;
        p.n = 512;
        p.tile = tile;
        p.band = 32;
        ms::sim_config config;
        config.cores = 8;    // skip_compute stays on: model-only run
        ms::simulator sim(config);
        auto report = sim.run([&] { M::run(p); });
        EXPECT_FALSE(report.failed);
        return report.dtlb_miss_rate();
    };
    double const untiled = miss_rate(0);
    double const tiled = miss_rate(64);
    EXPECT_GT(untiled, 10.0 * tiled);
    // Sanity band: percent-range untiled (SNIPPETS.md profiles measure
    // 7.4-7.7% at n=3000), compulsory-only tiled.
    EXPECT_GT(untiled, 0.001);
    EXPECT_LT(untiled, 0.15);
    EXPECT_LT(tiled, 0.001);
    EXPECT_DOUBLE_EQ(untiled, miss_rate(0));    // deterministic
}

TEST(Matmul, NumaVictimPolicyBeatsRandomOnNumaMachine)
{
    // 1024 tile tasks on the simulated dual-socket node: same-socket
    // probing plus batched cross-socket raids shorten the makespan.
    using M = matmul_bench<sim_engine>;
    auto makespan = [](minihpx::threads::victim_policy victim) {
        typename M::params p;
        p.n = 512;
        p.tile = 16;
        ms::sim_config config;
        config.cores = 20;
        config.victim = victim;
        ms::simulator sim(config);
        auto report = sim.run([&] { M::run(p); });
        EXPECT_FALSE(report.failed);
        return report.exec_time_s;
    };
    EXPECT_LT(makespan(minihpx::threads::victim_policy::numa),
        makespan(minihpx::threads::victim_policy::random));
}

TEST(Matmul, SimTraceByteDeterministicWithLabels)
{
    // The locality-aware steal path must not break trace determinism:
    // two identical numa-policy runs produce byte-identical virtual
    // traces, and the workload's task labels survive into them.
    using M = matmul_bench<sim_engine>;
    namespace trace = minihpx::trace;
    auto record = [] {
        ms::sim_config config;
        config.cores = 20;
        config.victim = minihpx::threads::victim_policy::numa;
        ms::simulator sim(config);
        trace::trace_options options;
        options.enabled = true;
        options.destination = "";
        trace::sim_session session(sim, options);
        auto memory = std::make_shared<trace::memory_sink>(
            trace::clock_kind::virtual_);
        session.add_sink(memory);
        auto report = sim.run([] { M::run(M::params::tiny()); });
        EXPECT_FALSE(report.failed);
        session.finish();
        return memory->take();
    };
    auto const a = record();
    auto const b = record();
    ASSERT_EQ(a.events.size(), b.events.size());
    EXPECT_EQ(std::memcmp(a.events.data(), b.events.data(),
                  a.events.size() * sizeof(trace::event)),
        0);
    bool labeled = false;
    for (auto const& s : a.strings)
        labeled |= s == "matmul-tile";
    EXPECT_TRUE(labeled);
}

TEST(Matmul, TileOverrideRedirectsSuiteEntry)
{
    // The --tile driver knob: overriding the tile changes the task
    // decomposition (8 untiled bands vs 16 tiles at tiny scale).
    using M = matmul_bench<sim_engine>;
    auto count_tasks = [](std::size_t override_tile) {
        inncabs::matmul_tile_override() = override_tile;
        ms::sim_config config;
        config.cores = 2;
        ms::simulator sim(config);
        auto report = sim.run([] { M::run(M::params::tiny()); });
        inncabs::matmul_tile_override() = static_cast<std::size_t>(-1);
        EXPECT_FALSE(report.failed);
        return report.tasks_created;
    };
    EXPECT_LT(count_tasks(0), count_tasks(16));
}

TEST(Fib, KnownValues)
{
    using F = fib_bench<sim_engine>;
    EXPECT_EQ(F::run_serial_n(10), 55u);
    EXPECT_EQ(F::run_serial_n(20), 6765u);
}

TEST(NQueens, KnownCounts)
{
    using Q = nqueens_bench<sim_engine>;
    typename Q::params p;
    p.n = 6;
    EXPECT_EQ(Q::run_serial(p), 4u);
    p.n = 8;
    EXPECT_EQ(Q::run_serial(p), 92u);
}

TEST(Sort, ProducesSortedData)
{
    using S = sort_bench<minihpx_engine>;
    minihpx::runtime rt;
    auto p = S::params::tiny();
    auto data = S::make_input(p.n, p.seed);
    std::vector<std::uint32_t> scratch(p.n);
    S::sort_task(data.data(), scratch.data(), p.n, p.serial_cutoff);
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(Floorplan, OptimumIndependentOfOrdering)
{
    // B&B converges to the optimum under any schedule; two different
    // sim seeds (different steal interleavings) must agree.
    auto const* entry = find_benchmark("floorplan");
    ms::sim_config config;
    config.cores = 8;
    config.skip_compute = false;
    double r1 = 0, r2 = 0;
    {
        ms::simulator sim(config);
        sim.run([&] { r1 = entry->run_sim_body(input_scale::tiny); });
    }
    config.seed = 777;
    {
        ms::simulator sim(config);
        sim.run([&] { r2 = entry->run_sim_body(input_scale::tiny); });
    }
    EXPECT_DOUBLE_EQ(r1, r2);
}

TEST(Uts, TreeSizeStableAcrossEngines)
{
    using U = uts_bench<sim_engine>;
    auto const p = U::params::tiny();
    auto const serial = U::run_serial(p);
    EXPECT_GT(serial, p.root_children);    // tree grew beyond the root
}

TEST(Health, TreeShape)
{
    using H = health_bench<sim_engine>;
    auto root = H::make_tree(3, 2, 1);
    ASSERT_EQ(root->children.size(), 2u);
    ASSERT_EQ(root->children[0]->children.size(), 2u);
    EXPECT_TRUE(root->children[0]->children[0]->children.empty());
}

TEST(Pyramids, GhostZoneMatchesGlobalSweeps)
{
    using P = pyramids_bench<sim_engine>;
    // Direct check of block_task vs full-width sweeps on a small grid.
    typename P::params p;
    p.width = 128;
    p.steps = 8;
    p.base_steps = 8;
    p.block = 32;

    auto serial = P::run_serial(p);

    // Manual parallel-equivalent (serial loop over block tasks).
    auto a = P::make_grid(p.width);
    std::vector<double> b(p.width);
    for (std::size_t lo = 0; lo < p.width; lo += p.block)
        P::block_task(
            a, b, lo, std::min(p.width, lo + p.block), p.steps, p.width);
    std::swap(a, b);
    double sum = 0;
    for (std::size_t i = 0; i < a.size(); i += a.size() / 101 + 1)
        sum += a[i];
    EXPECT_NEAR(sum, serial, 1e-12);
}

TEST(Intersim, ChecksumDeterministicAcrossCoreCounts)
{
    auto const* entry = find_benchmark("intersim");
    double const r1 = run_in_sim(*entry, input_scale::tiny, nullptr, 1);
    double const r8 = run_in_sim(*entry, input_scale::tiny, nullptr, 8);
    EXPECT_DOUBLE_EQ(r1, r8);
}

TEST(Round, TokenCountExact)
{
    auto const* entry = find_benchmark("round");
    double const result = run_in_sim(*entry, input_scale::tiny);
    EXPECT_DOUBLE_EQ(result, 4.0 * 2.0);    // participants * laps (tiny)
}

TEST(SparseLU, DiagonalDominanceKeepsFactorsFinite)
{
    using L = sparselu_bench<sim_engine>;
    auto const p = L::params::tiny();
    double const checksum = L::run_serial(p);
    EXPECT_TRUE(std::isfinite(checksum));
    EXPECT_NE(checksum, 0.0);
}

TEST(Alignment, ScoreSymmetry)
{
    using A = alignment_bench<sim_engine>;
    EXPECT_EQ(A::align_pair("ACDEFG", "ACDEFG"), 30);    // 6 matches x5
    EXPECT_EQ(
        A::align_pair("AAAA", "CCCC"), A::align_pair("CCCC", "AAAA"));
}

TEST(Qap, BoundNeverPrunesOptimum)
{
    using Q = qap_bench<sim_engine>;
    // Exhaustive optimum (task_depth=-1 disables spawning in serial;
    // compare against a brute-force permutation scan).
    auto p = Q::params::tiny();
    auto const inst = Q::make_instance(p);
    std::vector<int> perm(static_cast<std::size_t>(p.n));
    for (int i = 0; i < p.n; ++i)
        perm[static_cast<std::size_t>(i)] = i;
    int best = 1 << 30;
    auto const n = static_cast<std::size_t>(p.n);
    do
    {
        int cost = 0;
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                cost += inst.flow[i * n + j] *
                    inst.dist[static_cast<std::size_t>(
                                  perm[i]) * n +
                        static_cast<std::size_t>(perm[j])];
        best = std::min(best, cost);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(Q::run_serial(p), best);
}

// Grain-size sanity: at paper scale (in the simulator, compute skipped)
// each benchmark's average task duration lands in its Table V class.
TEST(TableV, GranularityClassesRoughlyMatch)
{
    MINIHPX_SKIP_IF_TSAN_FIBER_LIMIT();
    struct expectation
    {
        char const* name;
        double lo_us, hi_us;
    };
    // Generous bands around Table V (we check the *class*, not the
    // exact number; full reproduction happens in bench/table5).
    expectation const cases[] = {
        {"fib", 0.3, 8.0},          // very fine
        {"nqueens", 5.0, 80.0},     // fine
        {"sort", 10.0, 200.0},      // fine/variable
        {"strassen", 30.0, 300.0},  // fine
    };
    for (auto const& c : cases)
    {
        auto const* entry = find_benchmark(c.name);
        ASSERT_NE(entry, nullptr);
        ms::sim_config config;
        config.cores = 1;
        ms::simulator sim(config);
        auto report =
            sim.run([&] { entry->run_sim_body(input_scale::bench_default); });
        ASSERT_FALSE(report.failed) << c.name;
        EXPECT_GE(report.avg_task_duration_us(), c.lo_us) << c.name;
        EXPECT_LE(report.avg_task_duration_us(), c.hi_us) << c.name;
    }
}
