// Task Bench workload family: graph shapes, spec validation, engine-
// independent checksums, /taskbench self-counters, and byte-exact
// determinism of simulated Task Bench traces.
#include <minihpx/engine/engine.hpp>
#include <minihpx/sim/simulator.hpp>
#include <minihpx/taskbench/taskbench.hpp>
#include <minihpx/trace/analysis.hpp>
#include <minihpx/trace/session.hpp>
#include <minihpx/trace/sinks.hpp>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>

namespace tb = minihpx::taskbench;
namespace engine = minihpx::engine;

namespace {

tb::graph_spec small_spec(tb::graph_type type)
{
    tb::graph_spec spec;
    spec.type = type;
    spec.width = 8;
    spec.steps = 6;
    spec.task_ns = 200;    // tiny spin: tests exercise structure
    return spec;
}

}    // namespace

// ---- graph shapes ---------------------------------------------------------

TEST(TaskBenchGraph, FirstTimestepHasNoDependencies)
{
    for (auto type : tb::all_graph_types())
    {
        auto const spec = small_spec(type);
        for (unsigned x = 0; x != spec.width; ++x)
            EXPECT_EQ(tb::dependencies(spec, 0, x).count, 0u)
                << tb::graph_name(type) << " x=" << x;
    }
}

TEST(TaskBenchGraph, TrivialHasNoDependenciesAnywhere)
{
    auto const spec = small_spec(tb::graph_type::trivial);
    EXPECT_EQ(tb::total_edges(spec), 0u);
}

TEST(TaskBenchGraph, StencilIsClampedNearestNeighbor)
{
    auto const spec = small_spec(tb::graph_type::stencil_1d);

    auto const interior = tb::dependencies(spec, 3, 4);
    ASSERT_EQ(interior.count, 3u);
    EXPECT_EQ(interior.idx[0], 3u);
    EXPECT_EQ(interior.idx[1], 4u);
    EXPECT_EQ(interior.idx[2], 5u);

    // Edges clamp; the duplicate collapses.
    auto const left = tb::dependencies(spec, 3, 0);
    ASSERT_EQ(left.count, 2u);
    EXPECT_EQ(left.idx[0], 0u);
    EXPECT_EQ(left.idx[1], 1u);

    auto const right = tb::dependencies(spec, 3, spec.width - 1);
    ASSERT_EQ(right.count, 2u);
}

TEST(TaskBenchGraph, FftButterflyDistanceDoublesPerStep)
{
    auto spec = small_spec(tb::graph_type::fft);
    spec.width = 8;    // log2 = 3 levels

    // t=1: partner at distance 1; t=2: distance 2; t=3: distance 4.
    auto const t1 = tb::dependencies(spec, 1, 0);
    ASSERT_EQ(t1.count, 2u);
    EXPECT_EQ(t1.idx[0], 0u);
    EXPECT_EQ(t1.idx[1], 1u);

    auto const t2 = tb::dependencies(spec, 2, 0);
    ASSERT_EQ(t2.count, 2u);
    EXPECT_EQ(t2.idx[1], 2u);

    auto const t3 = tb::dependencies(spec, 3, 5);
    ASSERT_EQ(t3.count, 2u);
    EXPECT_EQ(t3.idx[0], 5u);
    EXPECT_EQ(t3.idx[1], 1u);    // 5 ^ 4
}

TEST(TaskBenchGraph, BinaryTreeContractsTowardZero)
{
    auto const spec = small_spec(tb::graph_type::binary_tree);

    auto const fan = tb::dependencies(spec, 1, 2);
    ASSERT_EQ(fan.count, 2u);
    EXPECT_EQ(fan.idx[0], 4u);
    EXPECT_EQ(fan.idx[1], 5u);

    // Children out of range: depend on self (keeps the chain alive).
    auto const tail = tb::dependencies(spec, 1, 6);
    ASSERT_EQ(tail.count, 1u);
    EXPECT_EQ(tail.idx[0], 6u);
}

TEST(TaskBenchGraph, RandomNearestIsDeterministicBoundedAndDeduped)
{
    auto spec = small_spec(tb::graph_type::random_nearest);
    spec.fan_in = 3;
    spec.window = 2;

    for (unsigned t = 1; t != spec.steps; ++t)
        for (unsigned x = 0; x != spec.width; ++x)
        {
            auto const a = tb::dependencies(spec, t, x);
            auto const b = tb::dependencies(spec, t, x);
            ASSERT_EQ(a.count, b.count);
            EXPECT_EQ(0,
                std::memcmp(a.idx, b.idx, sizeof(unsigned) * a.count));

            ASSERT_GE(a.count, 1u);
            ASSERT_LE(a.count, spec.fan_in);
            std::set<unsigned> seen;
            for (unsigned i = 0; i != a.count; ++i)
            {
                EXPECT_LT(a.idx[i], spec.width);
                EXPECT_LE(static_cast<int>(x) - static_cast<int>(a.idx[i]),
                    static_cast<int>(spec.window) + 0);
                EXPECT_LE(static_cast<int>(a.idx[i]) - static_cast<int>(x),
                    static_cast<int>(spec.window));
                EXPECT_TRUE(seen.insert(a.idx[i]).second)
                    << "duplicate dep";
            }
        }

    // A different seed draws a different graph (with overwhelming
    // probability over the whole grid).
    auto reseeded = spec;
    reseeded.seed = 777;
    unsigned differing = 0;
    for (unsigned t = 1; t != spec.steps; ++t)
        for (unsigned x = 0; x != spec.width; ++x)
        {
            auto const a = tb::dependencies(spec, t, x);
            auto const b = tb::dependencies(reseeded, t, x);
            differing += a.count != b.count ||
                std::memcmp(a.idx, b.idx, sizeof(unsigned) * a.count) != 0;
        }
    EXPECT_GT(differing, 0u);
}

TEST(TaskBenchGraph, SpecValidationRejectsNonsense)
{
    tb::graph_spec spec;
    EXPECT_FALSE(spec.validate().has_value());

    spec.width = 0;
    EXPECT_TRUE(spec.validate().has_value());

    spec = {};
    spec.fan_in = tb::dep_list::max_deps + 1;
    EXPECT_TRUE(spec.validate().has_value());

    spec = {};
    spec.payload_words = 0;
    EXPECT_TRUE(spec.validate().has_value());
}

TEST(TaskBenchGraph, NamesRoundTrip)
{
    for (auto type : tb::all_graph_types())
    {
        auto const parsed = tb::parse_graph_type(tb::graph_name(type));
        ASSERT_TRUE(parsed.has_value()) << tb::graph_name(type);
        EXPECT_EQ(*parsed, type);
    }
    EXPECT_FALSE(tb::parse_graph_type("nope").has_value());
    // Short spellings used on the bench command line.
    EXPECT_EQ(tb::parse_graph_type("stencil"),
        std::optional(tb::graph_type::stencil_1d));
    EXPECT_EQ(tb::parse_graph_type("tree"),
        std::optional(tb::graph_type::binary_tree));
    EXPECT_EQ(tb::parse_graph_type("random"),
        std::optional(tb::graph_type::random_nearest));
}

// ---- execution: checksums are engine-independent --------------------------

namespace {

tb::run_result run_on_sim(tb::graph_spec const& spec, unsigned cores = 2)
{
    minihpx::sim::sim_config config;
    config.cores = cores;
    minihpx::sim::simulator sim(config);
    tb::run_result result;
    auto const report = sim.run(
        [&] { result = tb::run_graph<engine::sim_engine>(spec); });
    EXPECT_FALSE(report.failed) << report.failure_reason;
    return result;
}

}    // namespace

TEST(TaskBenchExec, AllGraphsRunOnAllEnginesWithEqualChecksums)
{
    minihpx::runtime_config config;
    config.sched.num_workers = 2;
    minihpx::runtime rt(config);

    for (auto type : tb::all_graph_types())
    {
        auto const spec = small_spec(type);

        auto const real = tb::run_graph<engine::minihpx_engine>(spec);
        auto const std_r = tb::run_graph<engine::std_engine>(spec);
        auto const sim_r = run_on_sim(spec);

        EXPECT_EQ(real.points, spec.total_points());
        EXPECT_EQ(real.edges, tb::total_edges(spec));
        // One workload source, three engines, one answer — the
        // simulator skips the spin kernel and must still agree.
        EXPECT_EQ(real.checksum, std_r.checksum) << tb::graph_name(type);
        EXPECT_EQ(real.checksum, sim_r.checksum) << tb::graph_name(type);
        EXPECT_NE(real.checksum, 0u) << tb::graph_name(type);
    }
}

TEST(TaskBenchExec, ChecksumDependsOnSeedAndShape)
{
    auto const spec = small_spec(tb::graph_type::stencil_1d);
    auto reseeded = spec;
    reseeded.seed = 1234;
    auto wider = spec;
    wider.width = spec.width + 1;

    EXPECT_NE(run_on_sim(spec).checksum, run_on_sim(reseeded).checksum);
    EXPECT_NE(run_on_sim(spec).checksum, run_on_sim(wider).checksum);
    // ... but not on the granularity knob (compute feeds a sink).
    auto coarser = spec;
    coarser.task_ns = spec.task_ns * 64;
    EXPECT_EQ(run_on_sim(spec).checksum, run_on_sim(coarser).checksum);
}

TEST(TaskBenchCounters, SelfCountersTrackExecution)
{
    tb::register_counters();
    auto& registry = minihpx::perf::counter_registry::instance();
    EXPECT_TRUE(registry.contains("/taskbench/points/executed"));
    EXPECT_TRUE(registry.contains("/taskbench/deps/edges"));
    EXPECT_TRUE(registry.contains("/taskbench/graphs/completed"));

    std::string error;
    auto points = registry.create(
        "/taskbench{locality#0/total}/points/executed", &error);
    ASSERT_NE(points, nullptr) << error;
    auto graphs = registry.create(
        "/taskbench{locality#0/total}/graphs/completed", &error);
    ASSERT_NE(graphs, nullptr) << error;

    auto const points_before = points->get_value().get();
    auto const graphs_before = graphs->get_value().get();

    auto const spec = small_spec(tb::graph_type::stencil_1d);
    auto const r = run_on_sim(spec);

    EXPECT_EQ(points->get_value().get() - points_before,
        static_cast<double>(r.points));
    EXPECT_EQ(graphs->get_value().get() - graphs_before, 1.0);
}

// ---- simulated traces are byte-deterministic ------------------------------

namespace {

minihpx::trace::trace_data record_taskbench_sim(tb::graph_spec const& spec)
{
    namespace sim = minihpx::sim;
    namespace trace = minihpx::trace;

    sim::sim_config config;
    config.cores = 2;
    sim::simulator simulator(config);

    trace::trace_options options;
    options.enabled = true;
    options.destination = "";
    trace::sim_session session(simulator, options);
    auto memory =
        std::make_shared<trace::memory_sink>(trace::clock_kind::virtual_);
    session.add_sink(memory);

    auto const report = simulator.run(
        [&] { (void) tb::run_graph<engine::sim_engine>(spec); });
    EXPECT_FALSE(report.failed) << report.failure_reason;
    session.finish();
    return memory->take();
}

}    // namespace

TEST(TaskBenchTrace, SimTracesAreByteDeterministic)
{
    auto spec = small_spec(tb::graph_type::random_nearest);
    spec.task_ns = 5000;

    auto const a = record_taskbench_sim(spec);
    auto const b = record_taskbench_sim(spec);

    ASSERT_FALSE(a.events.empty());
    ASSERT_EQ(a.events.size(), b.events.size());
    EXPECT_EQ(std::memcmp(a.events.data(), b.events.data(),
                  a.events.size() * sizeof(minihpx::trace::event)),
        0);

    // The run's task labels include the workload's trace label.
    bool labeled = false;
    for (auto const& s : a.strings)
        labeled |= s == std::string("taskbench/random-nearest");
    EXPECT_TRUE(labeled);
}
