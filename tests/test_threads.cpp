// Unit tests for the user-level threading substrate: execution
// contexts (both implementations), guarded stacks, the stack pool,
// task descriptors, and the work-stealing queue.
#include <minihpx/threads/context.hpp>
#include <minihpx/threads/stack.hpp>
#include <minihpx/threads/thread_data.hpp>
#include <minihpx/threads/thread_queue.hpp>
#include <minihpx/threads/topology.hpp>
#include <minihpx/util/unique_function.hpp>

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

namespace mt = minihpx::threads;

// ---------------------------------------------------------------- stacks

TEST(Stack, AllocatesUsableMemory)
{
    mt::stack s(16 * 1024);
    ASSERT_TRUE(s.valid());
    EXPECT_GE(s.size(), 16u * 1024u);
    // Touch the whole usable range; the guard page is below base().
    std::memset(s.base(), 0xAB, s.size());
}

TEST(Stack, MoveTransfersOwnership)
{
    mt::stack a(8 * 1024);
    void* base = a.base();
    mt::stack b(std::move(a));
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_EQ(b.base(), base);
}

TEST(Stack, SizeRoundedToPages)
{
    mt::stack s(1);    // rounds up to one page
    EXPECT_GE(s.size(), 4096u);
    EXPECT_EQ(s.size() % 4096u, 0u);
}

TEST(StackPool, ReusesReleasedStacks)
{
    mt::stack_pool pool(16 * 1024);
    mt::stack s1 = pool.acquire();
    void* base = s1.base();
    pool.release(std::move(s1));
    EXPECT_EQ(pool.cached(), 1u);
    mt::stack s2 = pool.acquire();
    EXPECT_EQ(s2.base(), base);
    EXPECT_EQ(pool.cached(), 0u);
    EXPECT_EQ(pool.total_created(), 1u);
}

TEST(StackPool, TrimReleasesCache)
{
    mt::stack_pool pool(16 * 1024);
    pool.release(pool.acquire());
    pool.release(mt::stack(16 * 1024));
    EXPECT_EQ(pool.cached(), 2u);
    pool.trim();
    EXPECT_EQ(pool.cached(), 0u);
}

// -------------------------------------------------------------- contexts

// Generic ping-pong harness usable with any context implementation.
template <typename Context>
struct pingpong
{
    Context main_ctx;
    Context task_ctx;
    std::vector<int> trace;
    mt::stack stk{64 * 1024};

    static void entry(void* arg)
    {
        auto* self = static_cast<pingpong*>(arg);
        self->trace.push_back(1);
        Context::switch_to(self->task_ctx, self->main_ctx);
        self->trace.push_back(3);
        Context::switch_to(self->task_ctx, self->main_ctx);
        // never reached
    }

    void run()
    {
        task_ctx.create(stk.base(), stk.size(), &entry, this);
        trace.push_back(0);
        Context::switch_to(main_ctx, task_ctx);
        trace.push_back(2);
        Context::switch_to(main_ctx, task_ctx);
        trace.push_back(4);
    }
};

template <typename T>
class ContextImpl : public ::testing::Test
{
};

#if defined(MINIHPX_HAVE_FCONTEXT)
using context_impls = ::testing::Types<mt::fcontext, mt::ucontext_context>;
#else
using context_impls = ::testing::Types<mt::ucontext_context>;
#endif
TYPED_TEST_SUITE(ContextImpl, context_impls);

TYPED_TEST(ContextImpl, PingPongOrdering)
{
    pingpong<TypeParam> p;
    p.run();
    EXPECT_EQ(p.trace, (std::vector<int>{0, 1, 2, 3, 4}));
}

TYPED_TEST(ContextImpl, LocalsSurviveSuspension)
{
    struct fixture
    {
        TypeParam main_ctx, task_ctx;
        mt::stack stk{64 * 1024};
        long observed = 0;

        static void entry(void* arg)
        {
            auto* self = static_cast<fixture*>(arg);
            // Locals with distinctive values must survive the switch.
            long a = 0x1111, b = 0x2222, c = 0x3333;
            TypeParam::switch_to(self->task_ctx, self->main_ctx);
            self->observed = a + b + c;
            TypeParam::switch_to(self->task_ctx, self->main_ctx);
        }
    } f;

    f.task_ctx.create(f.stk.base(), f.stk.size(), &fixture::entry, &f);
    TypeParam::switch_to(f.main_ctx, f.task_ctx);
    TypeParam::switch_to(f.main_ctx, f.task_ctx);
    EXPECT_EQ(f.observed, 0x1111 + 0x2222 + 0x3333);
}

TYPED_TEST(ContextImpl, DeepStackUseWorks)
{
    struct fixture
    {
        TypeParam main_ctx, task_ctx;
        mt::stack stk{256 * 1024};
        unsigned long sum = 0;

        static unsigned long burn(int depth)
        {
            char pad[512];
            pad[0] = static_cast<char>(depth);
            if (depth == 0)
                return static_cast<unsigned long>(pad[0]);
            return burn(depth - 1) + static_cast<unsigned long>(depth);
        }

        static void entry(void* arg)
        {
            auto* self = static_cast<fixture*>(arg);
            self->sum = burn(300);    // ~150 KiB of stack
            TypeParam::switch_to(self->task_ctx, self->main_ctx);
        }
    } f;

    f.task_ctx.create(f.stk.base(), f.stk.size(), &fixture::entry, &f);
    TypeParam::switch_to(f.main_ctx, f.task_ctx);
    EXPECT_EQ(f.sum, 300ul * 301ul / 2ul);
}

// ------------------------------------------------------------ descriptors

TEST(ThreadData, InitSetsFields)
{
    mt::thread_data td;
    bool ran = false;
    td.init(42, [&] { ran = true; }, "mytask", mt::thread_priority::high);
    EXPECT_EQ(td.id(), 42u);
    EXPECT_STREQ(td.description(), "mytask");
    EXPECT_EQ(td.priority(), mt::thread_priority::high);
    EXPECT_EQ(td.state(), mt::thread_state::staged);
    EXPECT_FALSE(td.context().valid());
    td.function()();
    EXPECT_TRUE(ran);
}

TEST(ThreadData, TransitionCAS)
{
    mt::thread_data td;
    td.init(1, [] {}, "t", mt::thread_priority::normal);
    EXPECT_TRUE(
        td.transition(mt::thread_state::staged, mt::thread_state::pending));
    EXPECT_FALSE(
        td.transition(mt::thread_state::staged, mt::thread_state::active));
    EXPECT_EQ(td.state(), mt::thread_state::pending);
}

TEST(ThreadData, ReinitResetsTiming)
{
    mt::thread_data td;
    td.init(1, [] {}, "a", mt::thread_priority::normal);
    td.add_exec_time(1000);
    EXPECT_EQ(td.exec_time_ns(), 1000u);
    td.init(2, [] {}, "b", mt::thread_priority::normal);
    EXPECT_EQ(td.exec_time_ns(), 0u);
}

TEST(ThreadStateNames, AllDistinct)
{
    EXPECT_STREQ(to_string(mt::thread_state::pending), "pending");
    EXPECT_STREQ(to_string(mt::thread_state::active), "active");
    EXPECT_STREQ(to_string(mt::thread_state::suspended), "suspended");
    EXPECT_STREQ(to_string(mt::thread_state::terminated), "terminated");
    EXPECT_STREQ(to_string(mt::thread_state::staged), "staged");
}

// ---------------------------------------------------------------- queues

// Both policies must agree on everything except where push(front=true)
// lands (see the policy-specific tests below).
class ThreadQueuePolicy : public ::testing::TestWithParam<mt::queue_policy>
{
};

INSTANTIATE_TEST_SUITE_P(Policies, ThreadQueuePolicy,
    ::testing::Values(
        mt::queue_policy::mutex_deque, mt::queue_policy::chase_lev),
    [](auto const& info) {
        return info.param == mt::queue_policy::mutex_deque ? "Mutex" :
                                                             "ChaseLev";
    });

TEST_P(ThreadQueuePolicy, LifoForOwnerFifoForThief)
{
    mt::thread_queue q(GetParam());
    mt::thread_data a, b, c;
    q.push(&a);
    q.push(&b);
    q.push(&c);
    EXPECT_EQ(q.length(), 3);
    // Owner pops newest first.
    EXPECT_EQ(q.pop(), &c);
    // Thief steals oldest.
    EXPECT_EQ(q.steal(), &a);
    EXPECT_EQ(q.pop(), &b);
    EXPECT_EQ(q.pop(), nullptr);
    EXPECT_EQ(q.length(), 0);
}

TEST_P(ThreadQueuePolicy, CountsAreConsistent)
{
    mt::thread_queue q(GetParam());
    mt::thread_data tasks[10];
    for (auto& t : tasks)
        q.push(&t);
    for (int i = 0; i < 4; ++i)
        ASSERT_NE(q.pop(), nullptr);
    for (int i = 0; i < 3; ++i)
        ASSERT_NE(q.steal(), nullptr);
    (void) q.pop();
    (void) q.pop();
    (void) q.pop();
    EXPECT_EQ(q.pop(), nullptr);    // miss
    EXPECT_EQ(q.enqueued(), 10u);
    EXPECT_EQ(q.dequeued(), 7u);
    EXPECT_EQ(q.stolen_from(), 3u);
    EXPECT_EQ(q.misses(), 1u);
    EXPECT_EQ(q.length(), 0);
}

TEST_P(ThreadQueuePolicy, InjectMatchesPushOrdering)
{
    // Cross-thread submission must be order-equivalent to push():
    // owner pops newest-first, thieves take oldest — whichever backing
    // store (inbox vs locked deque) the policy routes it through.
    mt::thread_queue q(GetParam());
    mt::thread_data a, b, c;
    q.inject(&a);
    q.inject(&b);
    q.inject(&c);
    EXPECT_EQ(q.length(), 3);
    EXPECT_EQ(q.steal(), &a);    // oldest
    EXPECT_EQ(q.pop(), &c);      // newest
    EXPECT_EQ(q.pop(), &b);
    EXPECT_EQ(q.enqueued(), 3u);
    EXPECT_EQ(q.dequeued(), 2u);
    EXPECT_EQ(q.stolen_from(), 1u);
}

TEST_P(ThreadQueuePolicy, StealIntoTakesHalf)
{
    mt::thread_queue victim(GetParam());
    mt::thread_queue thief(GetParam());
    mt::thread_data tasks[8];
    for (auto& t : tasks)
        victim.push(&t);

    unsigned taken = 0;
    mt::thread_data* first = victim.steal_into(thief, 8, &taken);
    ASSERT_NE(first, nullptr);
    // A raid takes at most half of the victim (rounded up), first
    // element returned for immediate execution, rest parked in the
    // thief's queue.
    EXPECT_EQ(taken, 4u);
    EXPECT_EQ(thief.length(), 3);
    EXPECT_EQ(victim.length(), 4);
    EXPECT_EQ(victim.stolen_from(), 4u);
    EXPECT_EQ(thief.enqueued(), 3u);
}

TEST_P(ThreadQueuePolicy, StealIntoRespectsMaxTasks)
{
    mt::thread_queue victim(GetParam());
    mt::thread_queue thief(GetParam());
    mt::thread_data tasks[16];
    for (auto& t : tasks)
        victim.push(&t);

    unsigned taken = 0;
    ASSERT_NE(victim.steal_into(thief, 2, &taken), nullptr);
    EXPECT_EQ(taken, 2u);
    EXPECT_EQ(victim.length(), 14);

    // Single-element victim: the raid degrades to a plain steal.
    mt::thread_queue small(GetParam());
    mt::thread_data lone;
    small.push(&lone);
    taken = 0;
    EXPECT_EQ(small.steal_into(thief, 8, &taken), &lone);
    EXPECT_EQ(taken, 1u);
}

TEST_P(ThreadQueuePolicy, StealIntoEmptyVictim)
{
    mt::thread_queue victim(GetParam());
    mt::thread_queue thief(GetParam());
    unsigned taken = 123;
    EXPECT_EQ(victim.steal_into(thief, 8, &taken), nullptr);
    EXPECT_EQ(taken, 0u);
}

TEST(ThreadQueue, PushFrontMutexGoesToStealEnd)
{
    // Legacy mutex semantics: front=true lands at the steal end.
    mt::thread_queue q(mt::queue_policy::mutex_deque);
    mt::thread_data a, b;
    q.push(&a);
    q.push(&b, /*front=*/true);
    EXPECT_EQ(q.steal(), &b);    // front
    EXPECT_EQ(q.pop(), &a);
}

TEST(ThreadQueue, PushFrontChaseLevRunsNext)
{
    // Chase-Lev is owner-push-only at the bottom: front=true means
    // "run next" (the launch::fork intent), so the owner pops it first
    // and a thief would get the oldest task instead.
    mt::thread_queue q(mt::queue_policy::chase_lev);
    mt::thread_data a, b;
    q.push(&a);
    q.push(&b, /*front=*/true);
    EXPECT_EQ(q.pop(), &b);
    EXPECT_EQ(q.steal(), &a);
}

TEST(ThreadQueue, ChaseLevGrowsPastInitialCapacity)
{
    mt::thread_queue q(mt::queue_policy::chase_lev);
    constexpr int n = 3000;    // well past the 256-slot initial ring
    std::vector<std::unique_ptr<mt::thread_data>> tasks;
    tasks.reserve(n);
    for (int i = 0; i < n; ++i)
    {
        tasks.push_back(std::make_unique<mt::thread_data>());
        q.push(tasks.back().get());
    }
    EXPECT_EQ(q.length(), n);
    // FIFO from the steal end across every growth boundary.
    for (int i = 0; i < n; ++i)
        ASSERT_EQ(q.steal(), tasks[static_cast<std::size_t>(i)].get());
    EXPECT_EQ(q.steal(), nullptr);
}

// -------------------------------------------------------- unique_function

TEST(UniqueFunction, InvokesInlineClosure)
{
    int hits = 0;
    minihpx::util::unique_function<void()> f([&] { ++hits; });
    ASSERT_TRUE(static_cast<bool>(f));
    f();
    f();
    EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture)
{
    auto ptr = std::make_unique<int>(7);
    minihpx::util::unique_function<int()> f(
        [p = std::move(ptr)] { return *p; });
    EXPECT_EQ(f(), 7);
}

TEST(UniqueFunction, LargeClosureHeapFallback)
{
    char big[256];
    std::memset(big, 'x', sizeof(big));
    big[255] = '\0';
    minihpx::util::unique_function<std::size_t()> f(
        [big] { return std::strlen(big); });
    auto g = std::move(f);
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_EQ(g(), 255u);
}

TEST(UniqueFunction, MoveAssignReleasesOld)
{
    auto counter = std::make_shared<int>(0);
    struct bump_on_destroy
    {
        std::shared_ptr<int> c;
        ~bump_on_destroy()
        {
            if (c)
                ++*c;
        }
        bump_on_destroy(std::shared_ptr<int> c) : c(std::move(c)) {}
        bump_on_destroy(bump_on_destroy&&) noexcept = default;
        void operator()() {}
    };
    {
        minihpx::util::unique_function<void()> f(
            bump_on_destroy{counter});
        minihpx::util::unique_function<void()> g([] {});
        f = std::move(g);
        EXPECT_EQ(*counter, 1);    // old target destroyed exactly once
    }
    EXPECT_EQ(*counter, 1);
}

TEST(UniqueFunction, ArgumentsAndReturn)
{
    minihpx::util::unique_function<int(int, int)> f(
        [](int a, int b) { return a * 10 + b; });
    EXPECT_EQ(f(3, 4), 34);
}

// --------------------------------------------------------------- topology

TEST(Topology, ParseCpulistRangesAndSingles)
{
    auto const cpus = mt::parse_cpulist("0-3,8,10-11");
    EXPECT_EQ(cpus, (std::vector<unsigned>{0, 1, 2, 3, 8, 10, 11}));
}

TEST(Topology, ParseCpulistTrimsSysfsNewline)
{
    EXPECT_EQ(mt::parse_cpulist("4-5\n"), (std::vector<unsigned>{4, 5}));
}

TEST(Topology, ParseCpulistRejectsMalformedInput)
{
    EXPECT_TRUE(mt::parse_cpulist("").empty());
    EXPECT_TRUE(mt::parse_cpulist("a-b").empty());
    EXPECT_TRUE(mt::parse_cpulist("3-1").empty());    // descending range
    EXPECT_TRUE(mt::parse_cpulist("1,,2").empty());
    EXPECT_TRUE(mt::parse_cpulist("1-99999999").empty());    // sanity cap
}

TEST(Topology, DefaultIsSingleDomain)
{
    mt::topology const t;
    EXPECT_EQ(t.num_domains(), 1u);
    EXPECT_TRUE(t.same_domain(0, 17));
}

TEST(Topology, UniformStripesContiguousBlocks)
{
    // 8 workers over 2 domains: sockets filled first, like
    // machine_desc::socket_of.
    auto const t = mt::topology::uniform(8, 2);
    EXPECT_EQ(t.num_domains(), 2u);
    for (unsigned w = 0; w < 4; ++w)
        EXPECT_EQ(t.domain_of(w), 0u) << w;
    for (unsigned w = 4; w < 8; ++w)
        EXPECT_EQ(t.domain_of(w), 1u) << w;
    EXPECT_TRUE(t.same_domain(0, 3));
    EXPECT_FALSE(t.same_domain(3, 4));
}

TEST(Topology, UniformRoundsUpUnevenSplit)
{
    // 5 workers over 2 domains: ceil(5/2)=3 per block -> {0,0,0,1,1}.
    auto const t = mt::topology::uniform(5, 2);
    EXPECT_EQ(t.domain_of(2), 0u);
    EXPECT_EQ(t.domain_of(3), 1u);
    // domain_of wraps out-of-range worker ids by table size.
    EXPECT_EQ(t.domain_of(5), t.domain_of(0));
}

TEST(Topology, UniformClampsDegenerateShapes)
{
    EXPECT_EQ(mt::topology::uniform(4, 0).num_domains(), 1u);
    // More domains than workers: one worker per domain.
    auto const t = mt::topology::uniform(2, 8);
    EXPECT_EQ(t.num_domains(), 2u);
    EXPECT_FALSE(t.same_domain(0, 1));
}

TEST(Topology, ParseVictimPolicySpellings)
{
    using mt::victim_policy;
    EXPECT_EQ(mt::parse_victim_policy("random"), victim_policy::random);
    EXPECT_EQ(mt::parse_victim_policy("uniform"), victim_policy::random);
    EXPECT_EQ(mt::parse_victim_policy("numa"), victim_policy::numa);
    EXPECT_EQ(mt::parse_victim_policy("locality"), victim_policy::numa);
    EXPECT_EQ(mt::parse_victim_policy("local-first"), victim_policy::numa);
    EXPECT_FALSE(mt::parse_victim_policy("closest").has_value());
    EXPECT_FALSE(mt::parse_victim_policy("").has_value());
    EXPECT_STREQ(to_string(victim_policy::numa), "numa");
    EXPECT_STREQ(to_string(victim_policy::random), "random");
}

TEST(Topology, FromSysfsNeverFailsAndCoversAllWorkers)
{
    // Content depends on the host (containers usually collapse to one
    // node); assert the invariants instead of a specific shape.
    auto const t = mt::topology::from_sysfs(16);
    EXPECT_GE(t.num_domains(), 1u);
    for (unsigned w = 0; w < 16; ++w)
        EXPECT_LT(t.domain_of(w), t.num_domains()) << w;
}
