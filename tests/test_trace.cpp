// minihpx::trace tests: ring/recorder mechanics, the binary format,
// live recording on the real runtime, deterministic sim traces, and
// the analysis layer (critical path, what-if) against hand-checkable
// DAGs scheduled by the simulator.
#include <minihpx/minihpx.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/sim/engine.hpp>
#include <minihpx/sim/simulator.hpp>
#include <minihpx/this_task.hpp>
#include <minihpx/trace/trace.hpp>
#include <minihpx/util/spsc_ring.hpp>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace minihpx;

namespace {

trace::event make_event(trace::event_kind kind, std::uint64_t t,
    std::uint64_t task, std::uint64_t aux = 0, std::uint32_t worker = 0)
{
    trace::event e{};
    e.t_ns = t;
    e.task = task;
    e.aux = aux;
    e.worker = worker;
    e.kind = static_cast<std::uint16_t>(kind);
    return e;
}

std::vector<trace::event> drain_lane(trace::recorder& r, std::uint32_t lane)
{
    std::vector<trace::event> out;
    r.drain(lane, [&](trace::event const& e) { out.push_back(e); });
    return out;
}

}    // namespace

// ---------------------------------------------------------------- ring

TEST(SpscRing, FifoOrderAndCounts)
{
    util::spsc_ring<int> ring(4);
    EXPECT_TRUE(ring.push(1));
    EXPECT_TRUE(ring.push(2));
    EXPECT_TRUE(ring.push(3));
    EXPECT_EQ(ring.size(), 3u);

    int v = 0;
    EXPECT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 3);
    EXPECT_FALSE(ring.pop(v));
    EXPECT_EQ(ring.pushed(), 3u);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SpscRing, DropsAndCountsWhenFull)
{
    util::spsc_ring<int> ring(2);
    EXPECT_TRUE(ring.push(1));
    EXPECT_TRUE(ring.push(2));
    EXPECT_TRUE(ring.full());
    EXPECT_FALSE(ring.push(3));    // dropped, not overwritten
    EXPECT_EQ(ring.dropped(), 1u);

    int v = 0;
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(ring.push(4));    // slot freed
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 2);
    ASSERT_TRUE(ring.pop(v));
    EXPECT_EQ(v, 4);
}

// ------------------------------------------------------------ recorder

TEST(Recorder, EmitDrainRoundTrip)
{
    trace::recorder rec(2, 64, trace::detail_level::verbose);
    EXPECT_EQ(rec.worker_lanes(), 2u);
    EXPECT_EQ(rec.lanes(), 3u);    // + external lane

    rec.emit(0, make_event(trace::event_kind::spawn, 10, 1));
    rec.emit(0, make_event(trace::event_kind::begin, 20, 1));
    rec.emit(1, make_event(trace::event_kind::steal, 15, 1, 0, 1));
    rec.emit_external(make_event(trace::event_kind::resume, 30, 1, 0));

    auto const lane0 = drain_lane(rec, 0);
    ASSERT_EQ(lane0.size(), 2u);
    EXPECT_EQ(lane0[0].kind,
        static_cast<std::uint16_t>(trace::event_kind::spawn));
    EXPECT_EQ(lane0[1].t_ns, 20u);
    EXPECT_EQ(drain_lane(rec, 1).size(), 1u);

    auto const ext = drain_lane(rec, 2);
    ASSERT_EQ(ext.size(), 1u);
    EXPECT_EQ(ext[0].worker, trace::external_worker);

    EXPECT_EQ(rec.events_recorded(), 4u);
    EXPECT_EQ(rec.events_dropped(), 0u);
    EXPECT_EQ(rec.tasks_spawned(), 1u);
}

TEST(Recorder, DetailMaskFilters)
{
    // tasks detail keeps the task lifecycle, drops scheduler noise.
    trace::recorder rec(1, 64, trace::detail_level::tasks);
    EXPECT_TRUE(rec.wants(trace::event_kind::spawn));
    EXPECT_TRUE(rec.wants(trace::event_kind::begin));
    EXPECT_TRUE(rec.wants(trace::event_kind::end));
    EXPECT_TRUE(rec.wants(trace::event_kind::label));
    EXPECT_FALSE(rec.wants(trace::event_kind::steal));
    EXPECT_FALSE(rec.wants(trace::event_kind::yield));

    rec.emit(0, make_event(trace::event_kind::begin, 1, 1));
    rec.emit(0, make_event(trace::event_kind::steal, 2, 1));
    rec.emit(0, make_event(trace::event_kind::yield, 3, 1));
    EXPECT_EQ(drain_lane(rec, 0).size(), 1u);

    // sched (the default) adds suspend/resume/steal but not yield.
    trace::recorder sched(1, 64, trace::detail_level::sched);
    EXPECT_TRUE(sched.wants(trace::event_kind::steal));
    EXPECT_TRUE(sched.wants(trace::event_kind::suspend));
    EXPECT_FALSE(sched.wants(trace::event_kind::yield));
}

TEST(Recorder, DropCountingWhenLaneFull)
{
    trace::recorder rec(1, 4, trace::detail_level::verbose);
    for (int i = 0; i < 10; ++i)
        rec.emit(0, make_event(trace::event_kind::begin, i, 1));
    EXPECT_EQ(rec.events_recorded(), 4u);
    EXPECT_EQ(rec.events_dropped(), 6u);
}

TEST(Recorder, OverflowHandlerPreemptsDrop)
{
    trace::recorder rec(1, 4, trace::detail_level::verbose);
    std::vector<trace::event> spill;
    rec.set_overflow_handler([&] {
        rec.drain(0, [&](trace::event const& e) { spill.push_back(e); });
    });
    for (int i = 0; i < 100; ++i)
        rec.emit(0, make_event(trace::event_kind::begin, i, 1));
    rec.drain(0, [&](trace::event const& e) { spill.push_back(e); });
    EXPECT_EQ(spill.size(), 100u);
    EXPECT_EQ(rec.events_dropped(), 0u);
}

// ------------------------------------------------------ binary format

TEST(Format, MhtraceRoundTrip)
{
    static char const label_a[] = "alpha";
    static char const label_b[] = "beta";

    std::vector<trace::event> events = {
        make_event(trace::event_kind::spawn, 100, 1, 0, 0),
        make_event(trace::event_kind::begin, 200, 1, 0, 0),
        make_event(trace::event_kind::label, 210, 1,
            reinterpret_cast<std::uintptr_t>(label_a), 0),
        make_event(trace::event_kind::spawn, 300, 2, 1, 0),
        make_event(trace::event_kind::label, 310, 2,
            reinterpret_cast<std::uintptr_t>(label_b), 1),
        make_event(trace::event_kind::label, 320, 1,
            reinterpret_cast<std::uintptr_t>(label_a), 0),    // re-interned
        make_event(trace::event_kind::end, 400, 1, 0, 0),
    };

    std::ostringstream out;
    {
        trace::mhtrace_writer writer(out, trace::clock_kind::virtual_);
        for (auto const& e : events)
            writer.write(e);
        EXPECT_EQ(writer.events_written(), events.size());
    }

    std::istringstream in(out.str());
    trace::trace_data data;
    std::string error;
    ASSERT_TRUE(trace::load_mhtrace(in, data, &error)) << error;
    EXPECT_EQ(data.clock, trace::clock_kind::virtual_);
    ASSERT_EQ(data.events.size(), events.size());

    for (std::size_t i = 0; i < events.size(); ++i)
    {
        EXPECT_EQ(data.events[i].t_ns, events[i].t_ns);
        EXPECT_EQ(data.events[i].kind, events[i].kind);
        EXPECT_EQ(data.events[i].task, events[i].task);
        EXPECT_EQ(data.events[i].worker, events[i].worker);
    }
    // Labels were interned: same pointer -> same string id.
    EXPECT_STREQ(data.label(data.events[2].aux), "alpha");
    EXPECT_STREQ(data.label(data.events[4].aux), "beta");
    EXPECT_EQ(data.events[2].aux, data.events[5].aux);
    // Non-label aux passes through untouched.
    EXPECT_EQ(data.events[3].aux, 1u);
}

TEST(Format, LoaderRejectsGarbage)
{
    trace::trace_data data;
    std::string error;

    std::istringstream bad_magic("NOTTRACE rest");
    EXPECT_FALSE(trace::load_mhtrace(bad_magic, data, &error));
    EXPECT_FALSE(error.empty());

    std::ostringstream out;
    trace::mhtrace_writer writer(out, trace::clock_kind::steady);
    writer.write(make_event(trace::event_kind::begin, 1, 1));
    writer.flush();
    std::string bytes = out.str();
    bytes.resize(bytes.size() - 3);    // truncate mid-record
    std::istringstream truncated(bytes);
    EXPECT_FALSE(trace::load_mhtrace(truncated, data, &error));
}

TEST(Format, FinishWritesEndMarkerAndIsIdempotent)
{
    std::ostringstream out;
    trace::mhtrace_writer writer(out, trace::clock_kind::steady);
    writer.write(make_event(trace::event_kind::begin, 1, 1));
    writer.write(make_event(trace::event_kind::end, 5, 1));
    writer.finish();
    std::string const first = out.str();
    writer.finish();    // second call adds nothing
    EXPECT_EQ(out.str(), first);

    std::istringstream in(first);
    trace::trace_data data;
    std::string error;
    ASSERT_TRUE(trace::load_mhtrace(in, data, &error)) << error;
    EXPECT_EQ(data.events.size(), 2u);
}

TEST(Format, LoaderRejectsStreamCutBetweenRecords)
{
    // The dangerous truncation: the file ends exactly on a record
    // boundary, so every record parses — only the missing end marker
    // reveals that the writer died mid-run.
    std::ostringstream out;
    trace::mhtrace_writer writer(out, trace::clock_kind::steady);
    writer.write(make_event(trace::event_kind::begin, 1, 1));
    writer.write(make_event(trace::event_kind::end, 9, 1));
    writer.flush();    // deliberately no finish()

    std::istringstream in(out.str());
    trace::trace_data data;
    std::string error;
    EXPECT_FALSE(trace::load_mhtrace(in, data, &error));
    EXPECT_NE(error.find("truncated trace"), std::string::npos) << error;
}

TEST(Format, LoaderRejectsEndMarkerCountMismatch)
{
    std::ostringstream out;
    trace::mhtrace_writer writer(out, trace::clock_kind::steady);
    writer.write(make_event(trace::event_kind::begin, 1, 1));
    writer.finish();
    std::string bytes = out.str();
    // The footer's u64 event count starts right after the tag byte,
    // 12 bytes from the end; bump it so it disagrees with the stream.
    bytes[bytes.size() - 12] =
        static_cast<char>(bytes[bytes.size() - 12] + 1);

    std::istringstream in(bytes);
    trace::trace_data data;
    std::string error;
    EXPECT_FALSE(trace::load_mhtrace(in, data, &error));
    EXPECT_NE(error.find("end marker disagrees"), std::string::npos)
        << error;
}

TEST(Format, LoaderRejectsDataAfterEndMarker)
{
    std::ostringstream out;
    trace::mhtrace_writer writer(out, trace::clock_kind::steady);
    writer.write(make_event(trace::event_kind::begin, 1, 1));
    writer.finish();
    std::string bytes = out.str();
    bytes.push_back('\0');    // spliced/corrupt tail

    std::istringstream in(bytes);
    trace::trace_data data;
    std::string error;
    EXPECT_FALSE(trace::load_mhtrace(in, data, &error));
    EXPECT_NE(
        error.find("after end-of-stream marker"), std::string::npos)
        << error;
}

TEST(Format, LoaderRejectsLabelReferencingUndefinedString)
{
    // Hand-rolled stream: one label event referencing string id 9 that
    // no string record defines, with a self-consistent end marker.
    std::string bytes = "MHTRACE1";
    bytes.push_back('\0');    // clock: steady
    auto put = [&bytes](auto v, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            bytes.push_back(static_cast<char>(
                (static_cast<std::uint64_t>(v) >> (8 * i)) & 0xff));
    };
    bytes.push_back('\x01');    // tag: event
    put(static_cast<std::uint16_t>(trace::event_kind::label), 2);
    put(std::uint32_t{0}, 4);    // worker
    put(std::uint64_t{5}, 8);    // t_ns
    put(std::uint64_t{1}, 8);    // task
    put(std::uint64_t{9}, 8);    // aux: undefined string id
    bytes.push_back('\x03');     // tag: end marker
    put(std::uint64_t{1}, 8);    // events written
    put(std::uint32_t{0}, 4);    // strings written

    std::istringstream in(bytes);
    trace::trace_data data;
    std::string error;
    EXPECT_FALSE(trace::load_mhtrace(in, data, &error));
    EXPECT_NE(error.find("undefined string"), std::string::npos) << error;
}

// ----------------------------------------------- sinks (chrome, memory)

TEST(Sinks, ChromeJsonShapeAndBalance)
{
    static char const label[] = "worker-task";
    std::string const path = ::testing::TempDir() + "trace_chrome.json";
    {
        trace::chrome_sink sink(path);
        ASSERT_TRUE(sink.ok());
        sink.consume(make_event(trace::event_kind::spawn, 500, 7, 0, 0));
        sink.consume(make_event(trace::event_kind::label, 900, 7,
            reinterpret_cast<std::uintptr_t>(label), 1));
        sink.consume(make_event(trace::event_kind::begin, 1000, 7, 0, 1));
        sink.consume(make_event(trace::event_kind::suspend, 2500, 7, 0, 1));
        sink.consume(make_event(trace::event_kind::resume, 3000, 7, 9, 0));
        sink.consume(make_event(trace::event_kind::begin, 3500, 7, 0, 0));
        sink.consume(make_event(trace::event_kind::end, 4000, 7, 0, 0));
        sink.close();
    }

    std::ifstream in(path);
    std::string const text((std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    EXPECT_EQ(text.front(), '{');
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"worker-task\""), std::string::npos);

    auto count = [&](char const* needle) {
        std::size_t n = 0;
        for (std::size_t pos = 0;
            (pos = text.find(needle, pos)) != std::string::npos; ++pos)
            ++n;
        return n;
    };
    // Two slices -> balanced B/E pairs; spawn + resume instants.
    EXPECT_EQ(count("\"ph\":\"B\""), 2u);
    EXPECT_EQ(count("\"ph\":\"E\""), 2u);
    EXPECT_EQ(count("\"ph\":\"i\""), 2u);
    // 1000 ns -> "1.000" microseconds.
    EXPECT_NE(text.find("\"ts\":1.000"), std::string::npos);
}

TEST(Sinks, MemorySinkInternsLabels)
{
    static char const label[] = "interned";
    trace::memory_sink sink(trace::clock_kind::steady);
    sink.consume(make_event(trace::event_kind::label, 1, 1,
        reinterpret_cast<std::uintptr_t>(label)));
    sink.consume(make_event(trace::event_kind::label, 2, 2,
        reinterpret_cast<std::uintptr_t>(label)));
    auto const& data = sink.data();
    ASSERT_EQ(data.events.size(), 2u);
    EXPECT_EQ(data.events[0].aux, data.events[1].aux);
    EXPECT_STREQ(data.label(data.events[0].aux), "interned");
}

// ----------------------------------------------- live runtime recording

namespace {

int traced_fib(int n)
{
    if (n < 2)
        return n;
    this_task::annotate("fib");
    auto left = async([n] { return traced_fib(n - 1); });
    int const right = traced_fib(n - 2);
    return left.get() + right;
}

}    // namespace

TEST(LiveTrace, RecordsConsistentTaskGraph)
{
    runtime_config config;
    config.sched.num_workers = 2;
    runtime rt(config);

    perf::counter_registry registry;
    trace::trace_options options;
    options.enabled = true;
    options.destination = "";    // memory sink only
    options.detail = trace::detail_level::sched;
    options.autostart = false;
    trace::session session(registry, options);
    ASSERT_TRUE(session.active());

    auto memory = std::make_shared<trace::memory_sink>(
        trace::clock_kind::steady);
    session.add_sink(memory);
    session.start();

    EXPECT_EQ(async([] { return traced_fib(12); }).get(), 144);
    session.stop();

    EXPECT_EQ(session.events_dropped(), 0u);
    EXPECT_GT(session.tasks_spawned(), 100u);

    auto const& data = memory->data();
    trace::analysis_result const r = trace::analyze(data);
    EXPECT_EQ(r.events, data.events.size());
    EXPECT_GT(r.tasks, 100u);
    EXPECT_GT(r.work_ns, 0u);
    EXPECT_GT(r.span_ns, 0u);
    EXPECT_GE(r.work_ns, r.span_ns);
    EXPECT_GE(r.parallelism, 1.0);
    EXPECT_FALSE(r.critical_path.empty());

    // Every spawn's parent is itself a traced task (the one root task
    // spawned from the main thread excepted), and every begin/end
    // belongs to a spawned task: the graph is closed.
    std::set<std::uint64_t> spawned;
    for (auto const& e : data.events)
        if (static_cast<trace::event_kind>(e.kind) ==
            trace::event_kind::spawn)
            spawned.insert(e.task);
    std::size_t external_spawns = 0;
    for (auto const& e : data.events)
    {
        auto const kind = static_cast<trace::event_kind>(e.kind);
        if (kind == trace::event_kind::spawn && e.aux != 0)
            EXPECT_TRUE(spawned.count(e.aux)) << "orphan parent " << e.aux;
        if (kind == trace::event_kind::spawn && e.aux == 0)
            ++external_spawns;
        if (kind == trace::event_kind::begin ||
            kind == trace::event_kind::end)
            EXPECT_TRUE(spawned.count(e.task)) << "unspawned task";
    }
    EXPECT_GE(external_spawns, 1u);    // the async() from this thread

    // The fib labels made it through to the critical path machinery.
    bool labelled = false;
    for (auto const& s : data.strings)
        labelled |= s == "fib";
    EXPECT_TRUE(labelled);
}

TEST(LiveTrace, CountersRegisteredAndSane)
{
    runtime_config config;
    config.sched.num_workers = 2;
    runtime rt(config);

    perf::counter_registry registry;
    trace::trace_options options;
    options.enabled = true;
    options.destination = "";
    trace::session session(registry, options);
    ASSERT_TRUE(session.active());

    EXPECT_EQ(async([] { return traced_fib(10); }).get(), 55);

    perf::active_counters counters(registry,
        {"/trace{locality#0/total}/tasks/spawned",
            "/trace{locality#0/total}/events/recorded",
            "/trace{locality#0/total}/events/dropped",
            "/trace{locality#0/total}/overhead-pct"});
    ASSERT_TRUE(counters.errors().empty())
        << counters.errors().front();
    ASSERT_EQ(counters.size(), 4u);

    auto const values = counters.evaluate();
    EXPECT_GT(values[0].value.get(), 0.0);    // tasks spawned
    EXPECT_GT(values[1].value.get(), 0.0);    // events recorded
    EXPECT_EQ(values[2].value.get(), 0.0);    // no drops
    EXPECT_GE(values[3].value.get(), 0.0);    // overhead estimate
    EXPECT_LT(values[3].value.get(), 100.0);

    session.stop();
    // stop() unregisters the /trace types.
    perf::active_counters after(
        registry, {"/trace{locality#0/total}/tasks/spawned"});
    EXPECT_FALSE(after.errors().empty());
}

// --------------------------------------------------------- sim tracing

namespace {

// slow chain: 3 dependent 300 us tasks; fast sibling: one 50 us task.
// The critical path must run through the slow chain, and the span must
// match the work of that chain (the sim schedules it exactly).
void chain_dag()
{
    auto slow = sim::sim_engine::async([] {
        sim::sim_engine::trace_label("slow");
        sim::sim_engine::annotate_work({.cpu_ns = 300'000});
        auto inner = sim::sim_engine::async([] {
            sim::sim_engine::trace_label("slow");
            sim::sim_engine::annotate_work({.cpu_ns = 300'000});
            auto leaf = sim::sim_engine::async([] {
                sim::sim_engine::trace_label("slow");
                sim::sim_engine::annotate_work({.cpu_ns = 300'000});
            });
            leaf.get();
        });
        inner.get();
    });
    auto fast = sim::sim_engine::async([] {
        sim::sim_engine::trace_label("fast");
        sim::sim_engine::annotate_work({.cpu_ns = 50'000});
    });
    fast.get();
    slow.get();
}

trace::trace_data record_sim(std::function<void()> const& body,
    unsigned cores, std::uint64_t hot_ns = 0)
{
    sim::sim_config config;
    config.cores = cores;
    sim::simulator sim(config);

    trace::trace_options options;
    options.enabled = true;
    options.destination = "";
    options.ring_capacity = 256;    // force inline overflow drains
    trace::sim_session session(sim, options);
    auto memory = std::make_shared<trace::memory_sink>(
        trace::clock_kind::virtual_);
    session.add_sink(memory);

    (void) hot_ns;
    auto const report = sim.run(body);
    EXPECT_FALSE(report.failed) << report.failure_reason;
    session.finish();
    EXPECT_EQ(session.get_recorder()->events_dropped(), 0u);
    return memory->take();
}

std::string serialize(trace::trace_data const& data)
{
    std::ostringstream out;
    trace::mhtrace_writer writer(out, data.clock);
    for (auto e : data.events)
    {
        // memory_sink interned label pointers to string ids; map back
        // to stable pointers so the writer can re-intern them.
        if (static_cast<trace::event_kind>(e.kind) ==
                trace::event_kind::label &&
            e.aux < data.strings.size())
            e.aux = reinterpret_cast<std::uintptr_t>(
                data.strings[e.aux].c_str());
        writer.write(e);
    }
    writer.finish();    // loadable: footer included in the bytes
    return out.str();
}

}    // namespace

TEST(SimTrace, ByteDeterministicAcrossRuns)
{
    auto const a = record_sim(chain_dag, 4);
    auto const b = record_sim(chain_dag, 4);
    ASSERT_EQ(a.events.size(), b.events.size());
    EXPECT_EQ(std::memcmp(a.events.data(), b.events.data(),
                  a.events.size() * sizeof(trace::event)),
        0);
    EXPECT_EQ(serialize(a), serialize(b));
}

TEST(SimTrace, CriticalPathMatchesHandCheckableDag)
{
    trace::trace_data const data = record_sim(chain_dag, 4);
    trace::analysis_result const r = trace::analyze(data);

    // 5 tasks: root, 3 slow, 1 fast — all retired.
    EXPECT_EQ(r.tasks, 5u);
    EXPECT_EQ(r.tasks_ended, 5u);

    // The slow chain is strictly sequential, so the span must cover
    // its 3 x 300 us of work (plus small sim overheads) and the
    // makespan must match the span: with 4 cores the chain *is* the
    // schedule.
    EXPECT_GE(r.span_ns, 900'000u);
    EXPECT_LT(r.span_ns, 1'100'000u);
    EXPECT_GE(r.makespan_ns, r.span_ns);
    EXPECT_LT(static_cast<double>(r.makespan_ns),
        1.15 * static_cast<double>(r.span_ns));

    // Work = 3*300 + 50 us + root overhead.
    EXPECT_GE(r.work_ns, 950'000u);
    EXPECT_LT(r.work_ns, 1'200'000u);

    // The reported chain runs through all three slow tasks, and never
    // through the fast sibling.
    std::size_t slow_steps = 0;
    for (auto const& step : r.critical_path)
    {
        EXPECT_NE(step.label, "fast");
        slow_steps += step.label == "slow";
    }
    EXPECT_EQ(slow_steps, 3u);
}

TEST(SimTrace, WhatIfProjectionMatchesRerun)
{
    // Same DAG, but the slow chain's cost is a parameter: the what-if
    // projection from the 300 us trace must predict the 150 us rerun.
    auto dag_with = [](std::uint64_t slow_ns) {
        return [slow_ns] {
            auto slow = sim::sim_engine::async([slow_ns] {
                sim::sim_engine::trace_label("slow");
                sim::sim_engine::annotate_work({.cpu_ns = slow_ns});
                auto inner = sim::sim_engine::async([slow_ns] {
                    sim::sim_engine::trace_label("slow");
                    sim::sim_engine::annotate_work({.cpu_ns = slow_ns});
                    auto leaf = sim::sim_engine::async([slow_ns] {
                        sim::sim_engine::trace_label("slow");
                        sim::sim_engine::annotate_work({.cpu_ns = slow_ns});
                    });
                    leaf.get();
                });
                inner.get();
            });
            auto fast = sim::sim_engine::async([] {
                sim::sim_engine::trace_label("fast");
                sim::sim_engine::annotate_work({.cpu_ns = 50'000});
            });
            fast.get();
            slow.get();
        };
    };

    trace::trace_data const base = record_sim(dag_with(300'000), 4);
    trace::whatif_result const w =
        trace::project_whatif(base, "slow", 2.0);
    EXPECT_EQ(w.matched_tasks, 3u);
    EXPECT_GT(w.projected_speedup, 1.0);

    trace::trace_data const rerun = record_sim(dag_with(150'000), 4);
    trace::analysis_result const actual = trace::analyze(rerun);

    // Both the projection and the rerun are span-dominated; they agree
    // within tolerance (the projection cannot rescale the sim's fixed
    // per-task overheads, hence the slack).
    double const projected =
        static_cast<double>(w.projected_makespan_ns);
    double const observed = static_cast<double>(actual.makespan_ns);
    EXPECT_GT(projected, 0.8 * observed);
    EXPECT_LT(projected, 1.2 * observed);
}

TEST(SimTrace, AnalysisRequiresNoFileSystem)
{
    // memory-only round trip: record, analyze, project — no disk.
    trace::trace_data const data = record_sim(chain_dag, 2);
    EXPECT_GT(trace::analyze(data).events, 0u);
    EXPECT_GE(trace::project_whatif(data, "slow", 4.0).matched_tasks, 3u);
}
