// Randomized interleaving stress for the Chase-Lev deque and the
// thread_queue built on it. Meaningful in every build; decisive under
// -DMINIHPX_SANITIZE=thread (the C11-style orderings in
// chase_lev_deque.hpp are exactly what TSan checks) and =address
// (the growth path retires rings that thieves may still be reading).
//
// Every test uses the exactly-once invariant: tasks carry their index
// as the descriptor id, and whoever obtains a task (owner pop or thief
// steal) CAS-claims the matching flag. Duplicate hand-out, lost tasks,
// and phantom tasks all trip an EXPECT. Iteration counts are sized so
// the suite stays seconds-fast under TSan's ~10x slowdown.
#include <minihpx/threads/chase_lev_deque.hpp>
#include <minihpx/threads/thread_data.hpp>
#include <minihpx/threads/thread_queue.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

namespace mt = minihpx::threads;

namespace {

// A pool of inert descriptors (never executed — the deque only traffics
// in pointers) with one claim flag per task, indexed by descriptor id.
struct task_set
{
    std::vector<std::unique_ptr<mt::thread_data>> tasks;
    std::vector<std::atomic<bool>> claimed;

    explicit task_set(std::size_t n) : claimed(n)
    {
        tasks.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
        {
            tasks.push_back(std::make_unique<mt::thread_data>());
            tasks.back()->init(
                i, [] {}, "stress", mt::thread_priority::normal);
        }
    }

    mt::thread_data* operator[](std::size_t i) { return tasks[i].get(); }

    // True the first time a task is handed out, false on any repeat.
    bool claim(mt::thread_data* td)
    {
        bool expected = false;
        return claimed[td->id()].compare_exchange_strong(
            expected, true, std::memory_order_relaxed);
    }

    bool all_claimed() const
    {
        for (auto const& c : claimed)
            if (!c.load(std::memory_order_relaxed))
                return false;
        return true;
    }
};

}    // namespace

// Owner pushes and pops while thieves hammer steal(): every task is
// obtained exactly once, none invented, none lost.
TEST(ChaseLevStress, ConcurrentStealPopExactlyOnce)
{
    constexpr int total = 20000;
    constexpr int num_thieves = 3;

    mt::chase_lev_deque deque;
    task_set tasks(total);

    std::atomic<bool> done{false};
    std::atomic<int> obtained{0};

    std::vector<std::thread> thieves;
    for (int t = 0; t < num_thieves; ++t)
    {
        thieves.emplace_back([&] {
            while (!done.load(std::memory_order_acquire))
            {
                if (mt::thread_data* td = deque.steal())
                {
                    EXPECT_TRUE(tasks.claim(td));
                    obtained.fetch_add(1, std::memory_order_relaxed);
                }
            }
            // Final sweep: nothing the owner left behind may be lost.
            while (mt::thread_data* td = deque.steal())
            {
                EXPECT_TRUE(tasks.claim(td));
                obtained.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    // Owner: randomized push/pop mix, biased toward push so thieves
    // stay fed; pops race steals on the last element.
    std::mt19937 rng(0xC11);
    int pushed = 0;
    while (pushed < total)
    {
        if (rng() % 4 != 0)
        {
            deque.push(tasks[static_cast<std::size_t>(pushed++)]);
        }
        else if (mt::thread_data* td = deque.pop())
        {
            EXPECT_TRUE(tasks.claim(td));
            obtained.fetch_add(1, std::memory_order_relaxed);
        }
    }
    done.store(true, std::memory_order_release);
    for (auto& t : thieves)
        t.join();

    // Owner drains whatever survived the thieves' final sweep.
    while (mt::thread_data* td = deque.pop())
    {
        EXPECT_TRUE(tasks.claim(td));
        obtained.fetch_add(1, std::memory_order_relaxed);
    }

    EXPECT_EQ(obtained.load(), total);
    EXPECT_TRUE(tasks.all_claimed());
}

// The empty/last-element race: one task at a time, owner pop vs one
// thief steal. Exactly one side must win each round, never both.
TEST(ChaseLevStress, LastElementRaceNeverDoublesOrLoses)
{
    constexpr int rounds = 30000;

    mt::chase_lev_deque deque;
    mt::thread_data task;
    std::atomic<int> won_owner{0};
    std::atomic<int> won_thief{0};
    std::atomic<bool> done{false};
    std::atomic<int> phase{0};    // 0: pushed, 1: thief banked it

    std::thread thief([&] {
        while (!done.load(std::memory_order_acquire))
        {
            if (mt::thread_data* td = deque.steal())
            {
                EXPECT_EQ(td, &task);
                won_thief.fetch_add(1, std::memory_order_relaxed);
                phase.store(1, std::memory_order_release);
            }
        }
    });

    for (int r = 0; r < rounds; ++r)
    {
        phase.store(0, std::memory_order_relaxed);
        deque.push(&task);
        if (mt::thread_data* td = deque.pop())
        {
            EXPECT_EQ(td, &task);
            won_owner.fetch_add(1, std::memory_order_relaxed);
        }
        else
        {
            // Thief won; wait until it has banked the task so the next
            // push can't be confused with this round's.
            while (phase.load(std::memory_order_acquire) != 1)
                std::this_thread::yield();
        }
    }
    done.store(true, std::memory_order_release);
    thief.join();

    EXPECT_EQ(won_owner.load() + won_thief.load(), rounds);
    EXPECT_TRUE(deque.empty());
}

// Growth under fire: the owner pushes far past the initial ring
// capacity while thieves keep stealing from retiring arrays.
TEST(ChaseLevStress, GrowthUnderConcurrentSteals)
{
    constexpr int total = 50000;    // many doublings from 256 slots
    constexpr int num_thieves = 2;

    mt::chase_lev_deque deque;
    task_set tasks(total);

    std::atomic<bool> done{false};
    std::atomic<int> stolen{0};

    std::vector<std::thread> thieves;
    for (int t = 0; t < num_thieves; ++t)
    {
        thieves.emplace_back([&, t] {
            std::mt19937 rng(0xABBAu + static_cast<unsigned>(t));
            while (!done.load(std::memory_order_acquire))
            {
                if (mt::thread_data* td = deque.steal())
                {
                    EXPECT_TRUE(tasks.claim(td));
                    stolen.fetch_add(1, std::memory_order_relaxed);
                }
                // Occasionally back off so the queue depth (and thus
                // the ring size) swings.
                if (rng() % 64 == 0)
                    std::this_thread::yield();
            }
        });
    }

    for (int i = 0; i < total; ++i)
        deque.push(tasks[static_cast<std::size_t>(i)]);
    EXPECT_GE(deque.capacity(), 256u);

    // Drain the rest as the owner.
    int popped = 0;
    while (mt::thread_data* td = deque.pop())
    {
        EXPECT_TRUE(tasks.claim(td));
        ++popped;
    }
    done.store(true, std::memory_order_release);
    for (auto& t : thieves)
        t.join();

    EXPECT_EQ(deque.pop(), nullptr);
    EXPECT_EQ(popped + stolen.load(), total);
    EXPECT_TRUE(tasks.all_claimed());
}

// Batched raids through thread_queue::steal_into while the victim's
// owner pushes and pops: the half-queue cap plus per-element claiming
// must never double-deliver.
TEST(ChaseLevStress, BatchedRaidsExactlyOnce)
{
    constexpr int total = 20000;
    constexpr int num_thieves = 2;
    constexpr unsigned batch = 8;

    mt::thread_queue victim(mt::queue_policy::chase_lev);
    task_set tasks(total);

    std::atomic<bool> done{false};
    std::atomic<int> obtained{0};

    std::vector<std::thread> thieves;
    for (int t = 0; t < num_thieves; ++t)
    {
        thieves.emplace_back([&] {
            // Each thief owns its local queue, as in the scheduler.
            mt::thread_queue local(mt::queue_policy::chase_lev);
            auto bank = [&](mt::thread_data* td) {
                EXPECT_TRUE(tasks.claim(td));
                obtained.fetch_add(1, std::memory_order_relaxed);
            };
            auto drain_local = [&] {
                while (mt::thread_data* td = local.pop())
                    bank(td);
            };
            while (!done.load(std::memory_order_acquire))
            {
                unsigned taken = 0;
                if (mt::thread_data* first =
                        victim.steal_into(local, batch, &taken))
                {
                    bank(first);
                    drain_local();
                }
            }
            while (mt::thread_data* td = victim.steal())
                bank(td);
            drain_local();
        });
    }

    std::mt19937 rng(0x5711);
    int pushed = 0;
    while (pushed < total)
    {
        if (rng() % 4 != 0)
        {
            victim.push(tasks[static_cast<std::size_t>(pushed++)]);
        }
        else if (mt::thread_data* td = victim.pop())
        {
            EXPECT_TRUE(tasks.claim(td));
            obtained.fetch_add(1, std::memory_order_relaxed);
        }
    }
    done.store(true, std::memory_order_release);
    for (auto& t : thieves)
        t.join();
    while (mt::thread_data* td = victim.pop())
    {
        EXPECT_TRUE(tasks.claim(td));
        obtained.fetch_add(1, std::memory_order_relaxed);
    }

    EXPECT_EQ(obtained.load(), total);
    EXPECT_EQ(victim.length(), 0);
    EXPECT_EQ(victim.enqueued(), victim.dequeued() + victim.stolen_from());
}

// inject() from many threads while the owner pops: the MPSC inbox path
// delivers everything exactly once and the counters balance.
TEST(ChaseLevStress, InjectFromManyThreads)
{
    constexpr int per_thread = 5000;
    constexpr int num_injectors = 3;
    constexpr int total = per_thread * num_injectors;

    mt::thread_queue q(mt::queue_policy::chase_lev);
    task_set tasks(total);

    std::vector<std::thread> injectors;
    for (int t = 0; t < num_injectors; ++t)
    {
        injectors.emplace_back([&, t] {
            for (int i = 0; i < per_thread; ++i)
                q.inject(
                    tasks[static_cast<std::size_t>(t * per_thread + i)]);
        });
    }

    int obtained = 0;
    while (obtained < total)
    {
        if (mt::thread_data* td = q.pop())
        {
            EXPECT_TRUE(tasks.claim(td));
            ++obtained;
        }
    }
    for (auto& t : injectors)
        t.join();

    EXPECT_EQ(q.pop(), nullptr);
    EXPECT_EQ(q.enqueued(), static_cast<std::uint64_t>(total));
    EXPECT_EQ(q.dequeued(), static_cast<std::uint64_t>(total));
}
