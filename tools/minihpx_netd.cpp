// minihpx-netd: multi-locality launcher and federation smoke driver.
//
// Boots N localities, runs distributed fib across them, and proves the
// counter-federation contract: one aggregate query spanning
// `locality#*` must equal the sum of the per-locality queries, and a
// single Prometheus exposition must carry every locality's series.
//
//   --mh:mode=MODE         threads (default) | fork | sim
//   --mh:localities=N      number of localities (default 2)
//   --mh:fib=N             fib argument (default 18)
//   --mh:threshold=T       remote-spawn threshold (default 10)
//   --mh:threads=W         workers per runtime (default 2)
//   --mh:repeat=K          sim mode: rerun K times, fail on any
//                          delivery-log digest mismatch (default 1)
//   --mh:port-base=P       fork mode: locality i listens on P+i
//                          (default derived from the parent pid)
//
// Modes:
//   threads  N localities in one process, one shared runtime, real TCP
//            loopback sockets, one registry per locality.
//   fork     N processes (fork before any threads exist), one locality
//            each, the process-global registry, ports = base+id.
//   sim      N localities on the deterministic sim_fabric: no sockets,
//            no threads, virtual time; prints the delivery-log digest.
//
// Exit code 0 only if the workload result and every federation
// assertion hold — CI runs this binary as the multi-locality smoke.
#include <minihpx/minihpx.hpp>
#include <minihpx/net/net.hpp>
#include <minihpx/perf/perf.hpp>
#include <minihpx/telemetry/telemetry.hpp>
#include <minihpx/util/cli.hpp>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace minihpx;

namespace {

std::atomic<bool> shutdown_requested{false};

void netd_shutdown()
{
    shutdown_requested.store(true, std::memory_order_release);
}

void register_netd_actions()
{
    if (net::action_registry::global().contains("netd/shutdown"))
        return;
    net::register_action("netd/shutdown", &netd_shutdown);
    net::register_distributed_fib();
}

struct options
{
    std::string mode = "threads";
    std::uint32_t localities = 2;
    std::uint32_t fib_n = 18;
    std::uint32_t threshold = 10;
    std::uint32_t workers = 2;
    std::uint32_t repeat = 1;
    std::uint16_t port_base = 0;
};

bool check(bool condition, std::string const& what)
{
    if (condition)
    {
        std::cout << what << ": OK\n";
        return true;
    }
    std::cerr << what << ": FAILED\n";
    return false;
}

// Sum of the per-locality queries, each resolved and evaluated
// individually through the federation.
double per_locality_sum(perf::counter_registry& registry,
    std::string const& object_counter, std::uint32_t localities,
    bool print = false)
{
    double sum = 0.0;
    for (std::uint32_t i = 0; i < localities; ++i)
    {
        std::string const name = "/" +
            object_counter.substr(0, object_counter.find('/')) +
            perf::locality_instance(i) +
            object_counter.substr(object_counter.find('/'));
        std::string error;
        auto handle = registry.resolve(name, &error);
        if (!handle)
        {
            std::cerr << "resolve(" << name << "): " << error << "\n";
            return -1.0;
        }
        double const value = handle.evaluate().get();
        if (print)
            std::cout << "  " << name << " = " << value << "\n";
        sum += value;
    }
    return sum;
}

// The federation contract: one wildcard aggregate == sum of the
// per-locality queries. `object_counter` is "object/counter/leaf"
// without braces, e.g. "threads/count/cumulative".
bool verify_aggregate(perf::counter_registry& registry,
    std::string const& object_counter, std::uint32_t localities)
{
    std::string const wildcard = "/" +
        object_counter.substr(0, object_counter.find('/')) +
        "{locality#*/total}" +
        object_counter.substr(object_counter.find('/'));
    std::string const aggregate_name = "/arithmetics/add@" + wildcard;

    std::string error;
    auto aggregate = registry.resolve(aggregate_name, &error);
    if (!aggregate)
    {
        std::cerr << "resolve(" << aggregate_name << "): " << error << "\n";
        return false;
    }
    double const total = aggregate.evaluate().get();
    double const sum =
        per_locality_sum(registry, object_counter, localities, true);
    std::cout << "  " << aggregate_name << " = " << total << "\n";
    return check(sum >= 0.0 && total == sum,
        "aggregate-check " + wildcard + " (" + std::to_string(total) +
            " == per-locality sum " + std::to_string(sum) + ")");
}

// One Prometheus exposition carrying every locality's series, produced
// by a sampler holding `locality#*` wildcards behind a scrape sink.
bool print_exposition(
    perf::counter_registry& registry, std::uint32_t localities)
{
    telemetry::sampler_config config;
    config.counter_names = {
        "/threads{locality#*/total}/count/cumulative",
        "/net{locality#*/total}/count/invokes-executed",
        "/arithmetics/add@/threads{locality#*/total}/count/cumulative",
    };
    telemetry::sampler sampler(registry, config);
    for (auto const& e : sampler.errors())
        std::cerr << "sampler: " << e << "\n";
    auto endpoint = std::make_shared<telemetry::scrape_endpoint>(0);
    sampler.add_sink(endpoint);
    sampler.tick(1);
    std::string const body = endpoint->render();
    sampler.stop();

    std::cout << "--- prometheus exposition (single scrape) ---\n"
              << body << "---------------------------------------------\n";
    bool ok = true;
    for (std::uint32_t i = 0; i < localities; ++i)
        ok = ok &&
            body.find(perf::locality_prefix(i)) != std::string::npos;
    return check(ok, "scrape-spans-localities");
}

// Execute `count` trivial tasks on the active runtime so that the
// /threads counters carry nonzero, then-stable values: the federation
// serves counter queries inline (inline_handlers below), so scraping
// does not spawn tasks and cannot perturb the numbers it reads.
void warm_up_runtime(std::uint32_t count)
{
    std::vector<future<std::uint32_t>> warm;
    warm.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        warm.push_back(minihpx::async([i] { return i; }));
    for (auto& f : warm)
        f.get();
}

// ---- threads mode -------------------------------------------------------

int run_threads_mode(options const& opt)
{
    register_netd_actions();

    runtime_config rc;
    rc.sched.num_workers = opt.workers;
    runtime rt(rc);

    std::vector<std::unique_ptr<perf::counter_registry>> registries;
    std::vector<std::unique_ptr<net::locality>> localities;
    std::vector<std::unique_ptr<net::tcp_mesh>> meshes;
    std::vector<std::unique_ptr<net::counter_federation>> federations;
    std::vector<std::uint16_t> ports;

    for (std::uint32_t i = 0; i < opt.localities; ++i)
    {
        registries.push_back(std::make_unique<perf::counter_registry>());
        perf::register_all_runtime_counters(*registries.back(), rt);

        net::net_config config;
        config.id = i;
        config.num_localities = opt.localities;
        config.registry = registries.back().get();
        // Serve inbound actions (including the counter service) on the
        // delivering thread: a federated scrape then cannot spawn tasks
        // and perturb the /threads counters it is reading.
        config.inline_handlers = true;
        localities.push_back(
            std::make_unique<net::locality>(std::move(config)));
        meshes.push_back(std::make_unique<net::tcp_mesh>(*localities[i]));
        ports.push_back(meshes.back()->listen(0));
        federations.push_back(
            std::make_unique<net::counter_federation>(*localities[i]));
    }
    // Highest id first: each dials its lower-id peers, then locality 0
    // (which only accepts) completes instantly.
    for (std::uint32_t i = opt.localities; i-- > 0;)
        meshes[i]->connect(ports);
    for (auto& loc : localities)
        loc->start_heartbeats();

    warm_up_runtime(64);

    auto result =
        net::distributed_fib(*localities[0], opt.fib_n, opt.threshold);
    std::uint64_t const value = result.get();
    std::uint64_t const expected = net::fib_sequential(opt.fib_n);
    std::cout << "fib(" << opt.fib_n << ") = " << value << " (expected "
              << expected << ")\n";
    bool ok = check(value == expected, "fib-result");

    while (rt.get_scheduler().tasks_alive() != 0)
        std::this_thread::yield();

    ok = verify_aggregate(
             *registries[0], "threads/count/cumulative", opt.localities) &&
        ok;
    ok = verify_aggregate(
             *registries[0], "net/peers-alive", opt.localities) &&
        ok;
    // Live traffic counters move while being scraped (each federated
    // query executes an invoke on its home peer) — report, don't assert.
    per_locality_sum(
        *registries[0], "net/count/invokes-executed", opt.localities, true);
    ok = print_exposition(*registries[0], opt.localities) && ok;

    for (auto& loc : localities)
        loc->stop();
    return ok ? 0 : 1;
}

// ---- fork mode ----------------------------------------------------------

int run_one_forked_locality(options const& opt, std::uint32_t id,
    std::vector<std::uint16_t> const& ports)
{
    perf::set_this_locality(id);
    register_netd_actions();

    runtime_config rc;
    rc.sched.num_workers = opt.workers;
    runtime rt(rc);
    perf::counter_registry& registry = perf::counter_registry::instance();
    perf::register_all_runtime_counters(registry, rt);

    net::net_config config;
    config.id = id;
    config.num_localities = opt.localities;
    config.registry = &registry;
    config.inline_handlers = true;    // scrape must not perturb /threads
    net::locality loc(config);
    net::tcp_mesh mesh(loc);
    mesh.listen(ports[id]);
    net::counter_federation federation(loc);

    // Distinct per-process task counts, so the federated aggregate sums
    // genuinely different /threads values across the localities. Runs
    // before connect(): a peer only dials in once its warmup is done,
    // so connect() doubles as the "all /threads counters are stable"
    // barrier for the aggregate check below.
    warm_up_runtime((id + 1) * 16);

    mesh.connect(ports, 20'000);
    loc.start_heartbeats();

    if (id == 0)
    {
        auto result = net::distributed_fib(loc, opt.fib_n, opt.threshold);
        std::uint64_t const value = result.get();
        std::uint64_t const expected = net::fib_sequential(opt.fib_n);
        std::cout << "fib(" << opt.fib_n << ") = " << value
                  << " (expected " << expected << ")\n";
        bool ok = check(value == expected, "fib-result");

        while (rt.get_scheduler().tasks_alive() != 0)
            std::this_thread::yield();

        ok = verify_aggregate(
                 registry, "threads/count/cumulative", opt.localities) &&
            ok;
        ok = verify_aggregate(registry, "net/peers-alive", opt.localities) &&
            ok;
        ok = print_exposition(registry, opt.localities) && ok;

        for (std::uint32_t peer = 1; peer < opt.localities; ++peer)
            loc.async<void>(peer, "netd/shutdown").get();
        loc.stop();
        return ok ? 0 : 1;
    }

    // Workers serve until locality 0 says shutdown (or dies).
    while (!shutdown_requested.load(std::memory_order_acquire) &&
        loc.peer_alive(0))
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    loc.stop();
    return 0;
}

int run_fork_mode(options const& opt)
{
    std::uint16_t base = opt.port_base;
    if (base == 0)
        base = static_cast<std::uint16_t>(
            20'000 + (static_cast<std::uint32_t>(::getpid()) * 131) % 20'000);
    std::vector<std::uint16_t> ports;
    for (std::uint32_t i = 0; i < opt.localities; ++i)
        ports.push_back(static_cast<std::uint16_t>(base + i));

    // Fork before any thread exists; the parent becomes locality 0.
    std::vector<pid_t> children;
    for (std::uint32_t id = 1; id < opt.localities; ++id)
    {
        pid_t const pid = ::fork();
        if (pid < 0)
        {
            std::perror("fork");
            return 1;
        }
        if (pid == 0)
            ::_exit(run_one_forked_locality(opt, id, ports));
        children.push_back(pid);
    }

    int code = run_one_forked_locality(opt, 0, ports);
    for (pid_t pid : children)
    {
        int status = 0;
        ::waitpid(pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
        {
            std::cerr << "child " << pid << " failed\n";
            code = 1;
        }
    }
    return code;
}

// ---- sim mode -----------------------------------------------------------

int run_sim_mode(options const& opt)
{
    register_netd_actions();

    std::vector<std::uint64_t> digests;
    for (std::uint32_t round = 0; round < std::max(1u, opt.repeat); ++round)
    {
        net::sim_fabric fabric(opt.localities);
        std::vector<std::unique_ptr<net::counter_federation>> federations;
        for (std::uint32_t i = 0; i < opt.localities; ++i)
            federations.push_back(
                std::make_unique<net::counter_federation>(fabric.at(i)));

        auto result =
            net::distributed_fib(fabric.at(0), opt.fib_n, opt.threshold);
        fabric.run();
        std::uint64_t const value = result.get();
        std::uint64_t const expected = net::fib_sequential(opt.fib_n);

        // Hash the workload's delivery log before any federation query
        // adds its own (round-0-only) traffic to it.
        digests.push_back(net::fnv1a64(fabric.delivery_log()));

        if (round == 0)
        {
            std::cout << "fib(" << opt.fib_n << ") = " << value
                      << " (expected " << expected << ")\n";
            if (!check(value == expected, "fib-result"))
                return 1;
            if (!verify_aggregate(fabric.registry_at(0), "net/peers-alive",
                    opt.localities))
                return 1;
            // Live traffic counters move while being scraped (each
            // federated query executes an invoke on its home peer), so
            // they are reported rather than equality-checked.
            per_locality_sum(fabric.registry_at(0),
                "net/count/invokes-executed", opt.localities, true);
            std::cout << "virtual-time=" << fabric.now_ns() << "ns messages="
                      << fabric.messages_delivered() << "\n";
        }
        else if (value != expected)
        {
            std::cerr << "round " << round << ": wrong fib result\n";
            return 1;
        }

        std::cout << "round " << round << " delivery-digest=" << std::hex
                  << digests.back() << std::dec << "\n";
    }

    for (std::uint64_t d : digests)
        if (d != digests.front())
        {
            std::cerr << "determinism-check: FAILED (digest mismatch)\n";
            return 1;
        }
    if (digests.size() > 1)
        std::cout << "determinism-check: OK (" << digests.size()
                  << " identical runs)\n";
    return 0;
}

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args const args(argc, argv);
    options opt;
    opt.mode = args.value_or("mh:mode", "threads");
    opt.localities = static_cast<std::uint32_t>(
        args.int_or("mh:localities", 2));
    opt.fib_n = static_cast<std::uint32_t>(args.int_or("mh:fib", 18));
    opt.threshold =
        static_cast<std::uint32_t>(args.int_or("mh:threshold", 10));
    opt.workers = static_cast<std::uint32_t>(args.int_or("mh:threads", 2));
    opt.repeat = static_cast<std::uint32_t>(args.int_or("mh:repeat", 1));
    opt.port_base =
        static_cast<std::uint16_t>(args.int_or("mh:port-base", 0));

    if (opt.localities < 1 || opt.localities > 64)
    {
        std::cerr << "--mh:localities must be in [1, 64]\n";
        return 2;
    }

    std::cout << "minihpx-netd: mode=" << opt.mode << " localities="
              << opt.localities << " fib=" << opt.fib_n << " threshold="
              << opt.threshold << "\n";
    try
    {
        if (opt.mode == "threads")
            return run_threads_mode(opt);
        if (opt.mode == "fork")
            return run_fork_mode(opt);
        if (opt.mode == "sim")
            return run_sim_mode(opt);
        std::cerr << "unknown --mh:mode=" << opt.mode
                  << " (threads | fork | sim)\n";
        return 2;
    }
    catch (std::exception const& e)
    {
        std::cerr << "minihpx-netd: " << e.what() << "\n";
        return 1;
    }
}
