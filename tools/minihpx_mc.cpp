// minihpx-mc — run the model-checked litmus suite from the command
// line.
//
//   minihpx-mc list                    show all litmus cases
//   minihpx-mc run [names...]          run named cases (default: all)
//     --production-only | --mutants-only
//                                      filter by expectation (ctest
//                                      registers the suite as two jobs)
//     --preemption-bound N             override the CHESS budget
//     --max-steps N                    override the per-execution cap
//     --sc                             sequentially-consistent memory
//                                      (interleavings only)
//     --replay SCHEDULE                replay one recorded decision
//                                      string (requires exactly one
//                                      case name); prints the failure
//
// Exit code 0 when every selected case matches its expectation
// (production cases verify, mutants are detected), 1 otherwise, 2 on
// usage errors. A failing production case prints its replayable
// schedule — CI uploads it as the repro artifact.
#include <minihpx/mc/litmus.hpp>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

    int usage()
    {
        std::fprintf(stderr,
            "usage: minihpx-mc list\n"
            "       minihpx-mc run [names...] [--production-only|"
            "--mutants-only]\n"
            "                  [--preemption-bound N] [--max-steps N] "
            "[--sc]\n"
            "       minihpx-mc run NAME --replay SCHEDULE\n");
        return 2;
    }

}    // namespace

int main(int argc, char** argv)
{
    using namespace minihpx::mc;

    if (argc < 2)
        return usage();
    std::string const cmd = argv[1];

    if (cmd == "list")
    {
        for (litmus_case const& c : litmus_suite())
            std::printf("%-40s %s%s\n", c.name.c_str(),
                c.expect_fail ? "[mutant] " : "", c.description.c_str());
        return 0;
    }
    if (cmd != "run")
        return usage();

    std::vector<std::string> names;
    bool production_only = false;
    bool mutants_only = false;
    bool have_bound = false, have_steps = false, sc = false;
    unsigned bound = 0;
    std::uint64_t steps = 0;
    std::string replay;

    for (int i = 2; i < argc; ++i)
    {
        std::string const a = argv[i];
        if (a == "--production-only")
            production_only = true;
        else if (a == "--mutants-only")
            mutants_only = true;
        else if (a == "--sc")
            sc = true;
        else if (a == "--preemption-bound" && i + 1 < argc)
        {
            bound = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
            have_bound = true;
        }
        else if (a == "--max-steps" && i + 1 < argc)
        {
            steps = std::strtoull(argv[++i], nullptr, 10);
            have_steps = true;
        }
        else if (a == "--replay" && i + 1 < argc)
            replay = argv[++i];
        else if (!a.empty() && a[0] == '-')
            return usage();
        else
            names.push_back(a);
    }
    if (!replay.empty() && names.size() != 1)
        return usage();

    std::vector<litmus_case const*> selected;
    if (names.empty())
    {
        for (litmus_case const& c : litmus_suite())
            selected.push_back(&c);
    }
    else
    {
        for (std::string const& n : names)
        {
            litmus_case const* c = find_litmus(n);
            if (!c)
            {
                std::fprintf(stderr, "unknown litmus case: %s\n", n.c_str());
                return 2;
            }
            selected.push_back(c);
        }
    }

    int mismatches = 0;
    for (litmus_case const* c : selected)
    {
        if (production_only && c->expect_fail)
            continue;
        if (mutants_only && !c->expect_fail)
            continue;

        litmus_case run = *c;
        if (have_bound)
            run.opts.preemption_bound = bound;
        if (have_steps)
            run.opts.max_steps = steps;
        run.opts.weak_memory = !sc;
        run.opts.replay = replay;

        result r;
        bool const matched = run_litmus(run, r);
        std::printf("%-40s %-9s executions=%llu depth=%zu%s%s\n",
            run.name.c_str(),
            matched ? (run.expect_fail ? "DETECTED" : "PASS") :
                      (run.expect_fail ? "MISSED" : "FAIL"),
            static_cast<unsigned long long>(r.executions), r.max_depth,
            r.truncated ? " (truncated)" : "",
            r.complete ? "" : " (incomplete)");
        if (!r.ok)
        {
            std::printf("    error:    %s\n", r.error.c_str());
            std::printf("    schedule: %s\n", r.schedule.c_str());
            if (!matched)
                std::printf("    replay:   minihpx-mc run %s --replay "
                            "'%s'\n",
                    run.name.c_str(), r.schedule.c_str());
        }
        if (!matched)
            ++mismatches;
    }
    return mismatches == 0 ? 0 : 1;
}
