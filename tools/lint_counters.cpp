// minihpx-lint-counters: validate performance-counter names offline.
//
// Counter names are stringly-typed at every boundary (command lines,
// config files, docs, experiment scripts), so a typo like
// "/threads/time/avarage" is only discovered at runtime when the
// registry lookup fails mid-experiment. This tool front-loads that
// check: it parses each name with the runtime's own grammar
// (perf::parse_counter_name), verifies the canonical form round-trips
// through the parser, and — when given a known-types manifest — checks
// the /object/counter type key against the set the runtime actually
// registers, recursing into /arithmetics and /statistics parameters.
//
// Usage:
//   minihpx-lint-counters [--known-types FILE] [FILE...]
//
// Input files list one counter name per line; blank lines and lines
// starting with '#' are skipped. With no FILE, names are read from
// stdin. The known-types manifest lists one type key per line; a
// trailing '*' makes it a prefix match (for dynamic families such as
// "/papi/*"). Exit status: 0 clean, 1 lint errors, 2 usage/IO errors.
#include <minihpx/perf/counter_name.hpp>

#include <charconv>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

struct known_types
{
    std::vector<std::string> exact;
    std::vector<std::string> prefixes;    // from "key/*" entries
    bool loaded = false;

    bool contains(std::string const& type_key) const
    {
        for (auto const& k : exact)
            if (k == type_key)
                return true;
        for (auto const& p : prefixes)
            if (type_key.size() > p.size() &&
                type_key.compare(0, p.size(), p) == 0)
                return true;
        return false;
    }
};

std::string_view trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() &&
        (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

int g_errors = 0;

void report(std::string const& where, std::string_view name,
    std::string_view message)
{
    std::cerr << where << ": error: " << message << " in '" << name << "'\n";
    ++g_errors;
}

// Validate one counter name (recursing into derived-counter params).
void lint_name(std::string const& where, std::string_view name,
    known_types const& types, int depth)
{
    if (depth > 4)
    {
        report(where, name, "derived counters nested too deeply");
        return;
    }

    std::string error;
    auto const path = minihpx::perf::parse_counter_name(name, &error);
    if (!path)
    {
        report(where, name, error);
        return;
    }

    // Grammar-drift check: the canonical spelling must parse back to
    // the same path, or full_name()/parse_counter_name have diverged.
    auto const canonical = path->full_name();
    auto const reparsed = minihpx::perf::parse_counter_name(canonical);
    if (!reparsed || !(*reparsed == *path))
    {
        report(where, name,
            "canonical form '" + canonical + "' does not round-trip");
        return;
    }

    if (!types.loaded)
        return;

    auto const key = path->type_key();
    if (!types.contains(key))
    {
        report(where, name, "unknown counter type '" + key + "'");
        return;
    }

    // /arithmetics/op@name1,name2,... and /statistics/stat@name[,window]
    // embed further counter names in their parameters.
    if (path->object == "arithmetics" || path->object == "statistics")
    {
        if (path->parameters.empty())
        {
            report(where, name,
                "derived counter '" + key + "' requires '@' parameters");
            return;
        }
        std::stringstream params(path->parameters);
        std::string piece;
        while (std::getline(params, piece, ','))
        {
            std::string_view const sub = trim(piece);
            if (path->object == "statistics" && !sub.empty() &&
                sub.front() != '/')
            {
                // A trailing non-name parameter must be a window size.
                std::uint64_t window = 0;
                auto const [ptr, ec] = std::from_chars(
                    sub.data(), sub.data() + sub.size(), window);
                if (ec != std::errc() || ptr != sub.data() + sub.size())
                    report(where, name,
                        "statistics parameter '" + std::string(sub) +
                            "' is neither a counter name nor a window");
                continue;
            }
            lint_name(where, sub, types, depth + 1);
        }
    }
    else if (!path->parameters.empty())
    {
        report(where, name,
            "counter type '" + key + "' does not take '@' parameters");
    }
}

bool lint_stream(std::istream& in, std::string const& label,
    known_types const& types)
{
    std::string line;
    int lineno = 0;
    while (std::getline(in, line))
    {
        ++lineno;
        std::string_view const name = trim(line);
        if (name.empty() || name.front() == '#')
            continue;
        lint_name(label + ":" + std::to_string(lineno), name, types, 0);
    }
    return !in.bad();
}

bool load_known_types(std::string const& file, known_types& out)
{
    std::ifstream in(file);
    if (!in)
        return false;
    std::string line;
    while (std::getline(in, line))
    {
        std::string_view const entry = trim(line);
        if (entry.empty() || entry.front() == '#')
            continue;
        if (entry.back() == '*')
            out.prefixes.emplace_back(entry.substr(0, entry.size() - 1));
        else
            out.exact.emplace_back(entry);
    }
    out.loaded = true;
    return true;
}

}    // namespace

int main(int argc, char** argv)
{
    known_types types;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i)
    {
        std::string_view const arg = argv[i];
        if (arg == "--known-types")
        {
            if (i + 1 >= argc)
            {
                std::cerr << "minihpx-lint-counters: --known-types "
                             "requires a file argument\n";
                return 2;
            }
            if (!load_known_types(argv[++i], types))
            {
                std::cerr << "minihpx-lint-counters: cannot read '"
                          << argv[i] << "'\n";
                return 2;
            }
        }
        else if (arg == "--help" || arg == "-h")
        {
            std::cout
                << "usage: minihpx-lint-counters [--known-types FILE] "
                   "[FILE...]\n"
                   "Validates performance-counter names (one per line; "
                   "'#' comments)\nagainst the runtime's counter-name "
                   "grammar and, optionally, the\nset of registered "
                   "counter types.\n";
            return 0;
        }
        else if (!arg.empty() && arg.front() == '-')
        {
            std::cerr << "minihpx-lint-counters: unknown option '" << arg
                      << "'\n";
            return 2;
        }
        else
        {
            files.emplace_back(arg);
        }
    }

    if (files.empty())
    {
        if (!lint_stream(std::cin, "<stdin>", types))
        {
            std::cerr << "minihpx-lint-counters: read error on stdin\n";
            return 2;
        }
    }
    for (auto const& file : files)
    {
        std::ifstream in(file);
        if (!in)
        {
            std::cerr << "minihpx-lint-counters: cannot read '" << file
                      << "'\n";
            return 2;
        }
        lint_stream(in, file, types);
    }

    if (g_errors != 0)
    {
        std::cerr << "minihpx-lint-counters: " << g_errors << " error"
                  << (g_errors == 1 ? "" : "s") << "\n";
        return 1;
    }
    return 0;
}
