// minihpx-trace: offline analysis of .mhtrace files.
//
//   minihpx-trace summary FILE [--bins=N]
//       work / span / parallelism, worker utilization, critical path
//   minihpx-trace chrome FILE --out=OUT.json
//       convert to Chrome trace_event JSON (Perfetto, chrome://tracing)
//   minihpx-trace whatif FILE --match=LABEL --speedup=K [--workers=P]
//       project the makespan if tasks whose annotate() label contains
//       LABEL ran K× faster (Brent bound over the recorded DAG)
//   minihpx-trace causal FILE [--top=N] [--speedup-grid=P1,P2,...]
//       [--workers=P] [--curves] [--json[=OUT.json]]
//       per-label causal profile + ranked what-if speedup curves
//       ("CAUSAL rank=..." lines; see docs/CAUSAL.md)
//
// Exit status: 0 on success, 1 on usage errors or unreadable input —
// including truncated/corrupt traces: the loader requires the
// end-of-stream marker, so a partial file is an error, never a
// silently partial analysis.
#include <minihpx/causal/causal.hpp>
#include <minihpx/trace/analysis.hpp>
#include <minihpx/trace/format.hpp>
#include <minihpx/trace/sinks.hpp>
#include <minihpx/util/cli.hpp>

#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace minihpx;

namespace {

void print_ns(char const* label, std::uint64_t ns)
{
    if (ns >= 10'000'000)
        std::printf("  %-22s %12.3f ms\n", label,
            static_cast<double>(ns) / 1e6);
    else
        std::printf("  %-22s %12llu ns\n", label,
            static_cast<unsigned long long>(ns));
}

int cmd_summary(trace::trace_data const& data, util::cli_args const& args)
{
    unsigned const bins =
        static_cast<unsigned>(args.int_or("bins", 20));
    trace::analysis_result const r = trace::analyze(data, bins);

    std::printf("clock: %s\n",
        data.clock == trace::clock_kind::virtual_ ? "virtual (sim)" :
                                                    "steady");
    std::printf("  %-22s %12llu\n", "events",
        static_cast<unsigned long long>(r.events));
    std::printf("  %-22s %12llu (%llu ended)\n", "tasks",
        static_cast<unsigned long long>(r.tasks),
        static_cast<unsigned long long>(r.tasks_ended));
    std::printf("  %-22s %12llu\n", "steals",
        static_cast<unsigned long long>(r.steals));
    print_ns("makespan", r.makespan_ns);
    print_ns("work (T1)", r.work_ns);
    print_ns("span (Tinf)", r.span_ns);
    std::printf("  %-22s %12.2f\n", "parallelism (T1/Tinf)", r.parallelism);

    if (!r.worker_busy.empty())
    {
        std::printf("\nworker utilization (busy fraction, %u bins of ",
            bins);
        if (r.bin_ns >= 10'000'000)
            std::printf("%.3f ms):\n", static_cast<double>(r.bin_ns) / 1e6);
        else
            std::printf("%llu ns):\n",
                static_cast<unsigned long long>(r.bin_ns));
        for (std::size_t w = 0; w < r.worker_busy.size(); ++w)
        {
            std::printf("  worker %-3zu %5.1f%%  |", w,
                100.0 * r.worker_busy[w]);
            for (double const u : r.utilization[w])
            {
                // 0..8 -> ' ', light..full block approximated in ASCII
                static char const levels[] = " .:-=+*#@";
                int idx = static_cast<int>(u * 8.0 + 0.5);
                if (idx < 0)
                    idx = 0;
                if (idx > 8)
                    idx = 8;
                std::fputc(levels[idx], stdout);
            }
            std::printf("|\n");
        }
    }

    if (!r.critical_path.empty())
    {
        std::printf("\ncritical path (%zu tasks, root first):\n",
            r.critical_path.size());
        for (auto const& step : r.critical_path)
        {
            std::printf("  task#%-8llu exec %10.3f ms",
                static_cast<unsigned long long>(step.task),
                static_cast<double>(step.exec_ns) / 1e6);
            if (!step.label.empty())
                std::printf("  [%s]", step.label.c_str());
            std::printf("\n");
        }
    }
    return 0;
}

int cmd_chrome(trace::trace_data const& data, util::cli_args const& args)
{
    std::string const out = args.value_or("out", "");
    if (out.empty())
    {
        std::fprintf(stderr, "minihpx-trace: chrome needs --out=OUT.json\n");
        return 1;
    }
    trace::chrome_sink sink(out);
    if (!sink.ok())
    {
        std::fprintf(
            stderr, "minihpx-trace: cannot open '%s'\n", out.c_str());
        return 1;
    }
    for (trace::event e : data.events)
    {
        // In a loaded trace the label aux is a string-table index; the
        // live sink expects a character pointer, so point it back into
        // the (stable) loaded table.
        if (static_cast<trace::event_kind>(e.kind) ==
                trace::event_kind::label &&
            e.aux < data.strings.size())
            e.aux = static_cast<std::uint64_t>(
                reinterpret_cast<std::uintptr_t>(
                    data.strings[e.aux].c_str()));
        sink.consume(e);
    }
    sink.close();
    std::printf("wrote %s (%zu events)\n", out.c_str(), data.events.size());
    return 0;
}

int cmd_whatif(trace::trace_data const& data, util::cli_args const& args)
{
    std::string const match = args.value_or("match", "");
    double const speedup = args.double_or("speedup", 2.0);
    unsigned const workers =
        static_cast<unsigned>(args.int_or("workers", 0));
    if (match.empty())
    {
        std::fprintf(stderr, "minihpx-trace: whatif needs --match=LABEL\n");
        return 1;
    }

    trace::whatif_result const w =
        trace::project_whatif(data, match, speedup, workers);
    std::printf("what-if: tasks labelled *%s* run %.2fx faster on %u "
                "workers\n\n",
        match.c_str(), w.speedup_factor, w.workers);
    std::printf("  %-22s %12llu (%.3f ms execution)\n", "matched tasks",
        static_cast<unsigned long long>(w.matched_tasks),
        static_cast<double>(w.matched_exec_ns) / 1e6);
    print_ns("baseline makespan", w.baseline_makespan_ns);
    print_ns("projected makespan", w.projected_makespan_ns);
    std::printf("  %-22s %12.3fx\n", "projected speedup",
        w.projected_speedup);
    if (w.matched_tasks == 0)
        std::printf("\n(no task labels contain '%s' — annotate tasks with "
                    "minihpx::this_task::annotate)\n",
            match.c_str());
    return 0;
}

int cmd_causal(trace::trace_data const& data, util::cli_args const& args)
{
    causal::report_options opts;
    opts.top = static_cast<std::size_t>(args.int_or("top", 5));
    opts.show_curves = args.flag("curves");
    unsigned const workers =
        static_cast<unsigned>(args.int_or("workers", 0));

    std::vector<double> grid = causal::default_speedup_grid();
    if (auto const csv = args.value("speedup-grid"); csv && !csv->empty())
    {
        grid.clear();
        std::istringstream in(*csv);
        std::string item;
        while (std::getline(in, item, ','))
        {
            try
            {
                grid.push_back(std::stod(item));
            }
            catch (std::exception const&)
            {
                std::fprintf(stderr,
                    "minihpx-trace: bad --speedup-grid entry '%s'\n",
                    item.c_str());
                return 1;
            }
        }
        if (grid.empty())
        {
            std::fprintf(
                stderr, "minihpx-trace: empty --speedup-grid\n");
            return 1;
        }
    }

    causal::profile_result const prof = causal::profile(data);
    causal::whatif_report const whatif =
        causal::causal_whatif(data, grid, workers);

    if (args.has("json"))
    {
        std::string const out = args.value_or("json", "");
        if (out.empty() || out == "1" || out == "true")
            causal::render_json(std::cout, prof, whatif, opts);
        else
        {
            std::ofstream file(out);
            if (!file)
            {
                std::fprintf(stderr,
                    "minihpx-trace: cannot open '%s'\n", out.c_str());
                return 1;
            }
            causal::render_json(file, prof, whatif, opts);
            std::printf("wrote %s\n", out.c_str());
        }
        return 0;
    }
    causal::render_table(std::cout, prof, whatif, opts);
    return 0;
}

int usage()
{
    std::fprintf(stderr,
        "usage: minihpx-trace summary FILE [--bins=N]\n"
        "       minihpx-trace chrome  FILE --out=OUT.json\n"
        "       minihpx-trace whatif  FILE --match=LABEL --speedup=K "
        "[--workers=P]\n"
        "       minihpx-trace causal  FILE [--top=N] "
        "[--speedup-grid=P1,P2,...] [--workers=P] [--curves] "
        "[--json[=OUT.json]]\n");
    return 1;
}

}    // namespace

int main(int argc, char** argv)
{
    util::cli_args const args(argc, argv);
    if (args.positionals().size() < 2)
        return usage();
    std::string const& command = args.positionals()[0];
    std::string const& file = args.positionals()[1];

    trace::trace_data data;
    std::string error;
    if (!trace::load_mhtrace_file(file, data, &error))
    {
        std::fprintf(
            stderr, "minihpx-trace: %s: %s\n", file.c_str(), error.c_str());
        return 1;
    }

    if (command == "summary")
        return cmd_summary(data, args);
    if (command == "chrome")
        return cmd_chrome(data, args);
    if (command == "whatif")
        return cmd_whatif(data, args);
    if (command == "causal")
        return cmd_causal(data, args);
    return usage();
}
