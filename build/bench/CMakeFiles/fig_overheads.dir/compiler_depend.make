# Empty compiler generated dependencies file for fig_overheads.
# This may be replaced when dependencies are built.
