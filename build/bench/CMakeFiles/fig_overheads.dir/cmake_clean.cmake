file(REMOVE_RECURSE
  "CMakeFiles/fig_overheads.dir/fig_overheads.cpp.o"
  "CMakeFiles/fig_overheads.dir/fig_overheads.cpp.o.d"
  "fig_overheads"
  "fig_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
