file(REMOVE_RECURSE
  "CMakeFiles/table1_external_tools.dir/table1_external_tools.cpp.o"
  "CMakeFiles/table1_external_tools.dir/table1_external_tools.cpp.o.d"
  "table1_external_tools"
  "table1_external_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_external_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
