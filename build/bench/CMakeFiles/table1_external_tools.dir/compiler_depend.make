# Empty compiler generated dependencies file for table1_external_tools.
# This may be replaced when dependencies are built.
