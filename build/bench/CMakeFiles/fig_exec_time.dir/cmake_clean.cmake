file(REMOVE_RECURSE
  "CMakeFiles/fig_exec_time.dir/fig_exec_time.cpp.o"
  "CMakeFiles/fig_exec_time.dir/fig_exec_time.cpp.o.d"
  "fig_exec_time"
  "fig_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
