# Empty compiler generated dependencies file for counter_overhead.
# This may be replaced when dependencies are built.
