file(REMOVE_RECURSE
  "CMakeFiles/counter_overhead.dir/counter_overhead.cpp.o"
  "CMakeFiles/counter_overhead.dir/counter_overhead.cpp.o.d"
  "counter_overhead"
  "counter_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
