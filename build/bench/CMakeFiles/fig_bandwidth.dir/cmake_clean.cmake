file(REMOVE_RECURSE
  "CMakeFiles/fig_bandwidth.dir/fig_bandwidth.cpp.o"
  "CMakeFiles/fig_bandwidth.dir/fig_bandwidth.cpp.o.d"
  "fig_bandwidth"
  "fig_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
