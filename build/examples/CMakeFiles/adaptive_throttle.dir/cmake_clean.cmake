file(REMOVE_RECURSE
  "CMakeFiles/adaptive_throttle.dir/adaptive_throttle.cpp.o"
  "CMakeFiles/adaptive_throttle.dir/adaptive_throttle.cpp.o.d"
  "adaptive_throttle"
  "adaptive_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
