# Empty dependencies file for adaptive_throttle.
# This may be replaced when dependencies are built.
