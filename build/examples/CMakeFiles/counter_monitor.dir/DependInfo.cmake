
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/counter_monitor.cpp" "examples/CMakeFiles/counter_monitor.dir/counter_monitor.cpp.o" "gcc" "examples/CMakeFiles/counter_monitor.dir/counter_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/minihpx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/papi/CMakeFiles/minihpx_papi.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/minihpx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/minihpx_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/minihpx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
