file(REMOVE_RECURSE
  "CMakeFiles/counter_monitor.dir/counter_monitor.cpp.o"
  "CMakeFiles/counter_monitor.dir/counter_monitor.cpp.o.d"
  "counter_monitor"
  "counter_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
