# Empty compiler generated dependencies file for counter_monitor.
# This may be replaced when dependencies are built.
