# Empty dependencies file for inncabs_driver.
# This may be replaced when dependencies are built.
