file(REMOVE_RECURSE
  "CMakeFiles/inncabs_driver.dir/inncabs_driver.cpp.o"
  "CMakeFiles/inncabs_driver.dir/inncabs_driver.cpp.o.d"
  "inncabs_driver"
  "inncabs_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inncabs_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
