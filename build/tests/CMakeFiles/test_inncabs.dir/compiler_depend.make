# Empty compiler generated dependencies file for test_inncabs.
# This may be replaced when dependencies are built.
