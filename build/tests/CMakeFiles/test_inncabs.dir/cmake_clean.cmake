file(REMOVE_RECURSE
  "CMakeFiles/test_inncabs.dir/test_inncabs.cpp.o"
  "CMakeFiles/test_inncabs.dir/test_inncabs.cpp.o.d"
  "test_inncabs"
  "test_inncabs.pdb"
  "test_inncabs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inncabs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
