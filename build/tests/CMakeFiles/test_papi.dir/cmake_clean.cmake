file(REMOVE_RECURSE
  "CMakeFiles/test_papi.dir/test_papi.cpp.o"
  "CMakeFiles/test_papi.dir/test_papi.cpp.o.d"
  "test_papi"
  "test_papi.pdb"
  "test_papi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_papi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
