# Empty compiler generated dependencies file for test_papi.
# This may be replaced when dependencies are built.
