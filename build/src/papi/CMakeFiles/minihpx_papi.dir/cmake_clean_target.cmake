file(REMOVE_RECURSE
  "libminihpx_papi.a"
)
