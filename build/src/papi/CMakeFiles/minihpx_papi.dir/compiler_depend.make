# Empty compiler generated dependencies file for minihpx_papi.
# This may be replaced when dependencies are built.
