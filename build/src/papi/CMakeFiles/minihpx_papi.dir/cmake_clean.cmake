file(REMOVE_RECURSE
  "CMakeFiles/minihpx_papi.dir/src/events.cpp.o"
  "CMakeFiles/minihpx_papi.dir/src/events.cpp.o.d"
  "CMakeFiles/minihpx_papi.dir/src/papi_engine.cpp.o"
  "CMakeFiles/minihpx_papi.dir/src/papi_engine.cpp.o.d"
  "libminihpx_papi.a"
  "libminihpx_papi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minihpx_papi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
