file(REMOVE_RECURSE
  "libminihpx_tools.a"
)
