file(REMOVE_RECURSE
  "CMakeFiles/minihpx_tools.dir/src/tool_model.cpp.o"
  "CMakeFiles/minihpx_tools.dir/src/tool_model.cpp.o.d"
  "libminihpx_tools.a"
  "libminihpx_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minihpx_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
