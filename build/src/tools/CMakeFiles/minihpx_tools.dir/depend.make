# Empty dependencies file for minihpx_tools.
# This may be replaced when dependencies are built.
