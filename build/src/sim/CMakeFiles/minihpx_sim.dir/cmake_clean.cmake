file(REMOVE_RECURSE
  "CMakeFiles/minihpx_sim.dir/src/machine.cpp.o"
  "CMakeFiles/minihpx_sim.dir/src/machine.cpp.o.d"
  "CMakeFiles/minihpx_sim.dir/src/simulator.cpp.o"
  "CMakeFiles/minihpx_sim.dir/src/simulator.cpp.o.d"
  "libminihpx_sim.a"
  "libminihpx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minihpx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
