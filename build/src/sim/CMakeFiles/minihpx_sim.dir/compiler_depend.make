# Empty compiler generated dependencies file for minihpx_sim.
# This may be replaced when dependencies are built.
