file(REMOVE_RECURSE
  "libminihpx_sim.a"
)
