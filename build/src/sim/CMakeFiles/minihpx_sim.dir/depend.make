# Empty dependencies file for minihpx_sim.
# This may be replaced when dependencies are built.
