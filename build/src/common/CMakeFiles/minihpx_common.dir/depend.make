# Empty dependencies file for minihpx_common.
# This may be replaced when dependencies are built.
