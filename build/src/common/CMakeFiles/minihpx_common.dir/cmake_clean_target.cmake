file(REMOVE_RECURSE
  "libminihpx_common.a"
)
