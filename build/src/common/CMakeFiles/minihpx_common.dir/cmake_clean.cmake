file(REMOVE_RECURSE
  "CMakeFiles/minihpx_common.dir/src/cli.cpp.o"
  "CMakeFiles/minihpx_common.dir/src/cli.cpp.o.d"
  "CMakeFiles/minihpx_common.dir/src/stats.cpp.o"
  "CMakeFiles/minihpx_common.dir/src/stats.cpp.o.d"
  "CMakeFiles/minihpx_common.dir/src/strings.cpp.o"
  "CMakeFiles/minihpx_common.dir/src/strings.cpp.o.d"
  "libminihpx_common.a"
  "libminihpx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minihpx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
