# Empty compiler generated dependencies file for minihpx_common.
# This may be replaced when dependencies are built.
