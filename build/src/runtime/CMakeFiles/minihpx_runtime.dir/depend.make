# Empty dependencies file for minihpx_runtime.
# This may be replaced when dependencies are built.
