file(REMOVE_RECURSE
  "libminihpx_runtime.a"
)
