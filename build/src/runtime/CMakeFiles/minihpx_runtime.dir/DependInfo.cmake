
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/src/runtime.cpp" "src/runtime/CMakeFiles/minihpx_runtime.dir/src/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/minihpx_runtime.dir/src/runtime.cpp.o.d"
  "/root/repo/src/runtime/src/scheduler.cpp" "src/runtime/CMakeFiles/minihpx_runtime.dir/src/scheduler.cpp.o" "gcc" "src/runtime/CMakeFiles/minihpx_runtime.dir/src/scheduler.cpp.o.d"
  "/root/repo/src/runtime/src/sync.cpp" "src/runtime/CMakeFiles/minihpx_runtime.dir/src/sync.cpp.o" "gcc" "src/runtime/CMakeFiles/minihpx_runtime.dir/src/sync.cpp.o.d"
  "/root/repo/src/runtime/src/work.cpp" "src/runtime/CMakeFiles/minihpx_runtime.dir/src/work.cpp.o" "gcc" "src/runtime/CMakeFiles/minihpx_runtime.dir/src/work.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/threads/CMakeFiles/minihpx_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/minihpx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
