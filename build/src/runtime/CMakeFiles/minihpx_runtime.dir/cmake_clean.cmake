file(REMOVE_RECURSE
  "CMakeFiles/minihpx_runtime.dir/src/runtime.cpp.o"
  "CMakeFiles/minihpx_runtime.dir/src/runtime.cpp.o.d"
  "CMakeFiles/minihpx_runtime.dir/src/scheduler.cpp.o"
  "CMakeFiles/minihpx_runtime.dir/src/scheduler.cpp.o.d"
  "CMakeFiles/minihpx_runtime.dir/src/sync.cpp.o"
  "CMakeFiles/minihpx_runtime.dir/src/sync.cpp.o.d"
  "CMakeFiles/minihpx_runtime.dir/src/work.cpp.o"
  "CMakeFiles/minihpx_runtime.dir/src/work.cpp.o.d"
  "libminihpx_runtime.a"
  "libminihpx_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minihpx_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
