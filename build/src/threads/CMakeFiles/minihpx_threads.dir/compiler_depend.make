# Empty compiler generated dependencies file for minihpx_threads.
# This may be replaced when dependencies are built.
