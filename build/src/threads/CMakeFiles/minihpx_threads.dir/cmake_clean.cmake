file(REMOVE_RECURSE
  "CMakeFiles/minihpx_threads.dir/src/context_x86_64.S.o"
  "CMakeFiles/minihpx_threads.dir/src/stack.cpp.o"
  "CMakeFiles/minihpx_threads.dir/src/stack.cpp.o.d"
  "CMakeFiles/minihpx_threads.dir/src/thread_data.cpp.o"
  "CMakeFiles/minihpx_threads.dir/src/thread_data.cpp.o.d"
  "CMakeFiles/minihpx_threads.dir/src/ucontext_context.cpp.o"
  "CMakeFiles/minihpx_threads.dir/src/ucontext_context.cpp.o.d"
  "libminihpx_threads.a"
  "libminihpx_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/minihpx_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
