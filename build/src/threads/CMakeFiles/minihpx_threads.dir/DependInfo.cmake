
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/threads/src/context_x86_64.S" "/root/repo/build/src/threads/CMakeFiles/minihpx_threads.dir/src/context_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src/threads/include"
  "/root/repo/src/common/include"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/threads/src/stack.cpp" "src/threads/CMakeFiles/minihpx_threads.dir/src/stack.cpp.o" "gcc" "src/threads/CMakeFiles/minihpx_threads.dir/src/stack.cpp.o.d"
  "/root/repo/src/threads/src/thread_data.cpp" "src/threads/CMakeFiles/minihpx_threads.dir/src/thread_data.cpp.o" "gcc" "src/threads/CMakeFiles/minihpx_threads.dir/src/thread_data.cpp.o.d"
  "/root/repo/src/threads/src/ucontext_context.cpp" "src/threads/CMakeFiles/minihpx_threads.dir/src/ucontext_context.cpp.o" "gcc" "src/threads/CMakeFiles/minihpx_threads.dir/src/ucontext_context.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/minihpx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
