file(REMOVE_RECURSE
  "libminihpx_threads.a"
)
