# Empty compiler generated dependencies file for minihpx_baseline.
# This may be replaced when dependencies are built.
