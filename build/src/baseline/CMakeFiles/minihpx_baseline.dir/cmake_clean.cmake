file(REMOVE_RECURSE
  "CMakeFiles/minihpx_baseline.dir/src/std_engine.cpp.o"
  "CMakeFiles/minihpx_baseline.dir/src/std_engine.cpp.o.d"
  "libminihpx_baseline.a"
  "libminihpx_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minihpx_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
