file(REMOVE_RECURSE
  "libminihpx_baseline.a"
)
