file(REMOVE_RECURSE
  "libinncabs.a"
)
