file(REMOVE_RECURSE
  "CMakeFiles/inncabs.dir/src/suite.cpp.o"
  "CMakeFiles/inncabs.dir/src/suite.cpp.o.d"
  "libinncabs.a"
  "libinncabs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inncabs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
