# Empty dependencies file for inncabs.
# This may be replaced when dependencies are built.
