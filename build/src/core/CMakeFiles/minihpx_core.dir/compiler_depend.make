# Empty compiler generated dependencies file for minihpx_core.
# This may be replaced when dependencies are built.
