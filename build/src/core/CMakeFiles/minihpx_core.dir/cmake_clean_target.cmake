file(REMOVE_RECURSE
  "libminihpx_core.a"
)
