file(REMOVE_RECURSE
  "CMakeFiles/minihpx_core.dir/src/active_counters.cpp.o"
  "CMakeFiles/minihpx_core.dir/src/active_counters.cpp.o.d"
  "CMakeFiles/minihpx_core.dir/src/basic_counters.cpp.o"
  "CMakeFiles/minihpx_core.dir/src/basic_counters.cpp.o.d"
  "CMakeFiles/minihpx_core.dir/src/counter_name.cpp.o"
  "CMakeFiles/minihpx_core.dir/src/counter_name.cpp.o.d"
  "CMakeFiles/minihpx_core.dir/src/derived_counters.cpp.o"
  "CMakeFiles/minihpx_core.dir/src/derived_counters.cpp.o.d"
  "CMakeFiles/minihpx_core.dir/src/registry.cpp.o"
  "CMakeFiles/minihpx_core.dir/src/registry.cpp.o.d"
  "CMakeFiles/minihpx_core.dir/src/thread_counters.cpp.o"
  "CMakeFiles/minihpx_core.dir/src/thread_counters.cpp.o.d"
  "libminihpx_core.a"
  "libminihpx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minihpx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
