#include <minihpx/work.hpp>

#include <atomic>

namespace minihpx {

namespace {

    std::atomic<work_sink> global_sink{nullptr};

}    // namespace

work_sink set_work_sink(work_sink sink) noexcept
{
    return global_sink.exchange(sink, std::memory_order_acq_rel);
}

void annotate_work(work_annotation const& w) noexcept
{
    if (work_sink sink = global_sink.load(std::memory_order_acquire))
        sink(w);
}

}    // namespace minihpx
