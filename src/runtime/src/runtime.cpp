#include <minihpx/runtime/runtime.hpp>

#include <minihpx/util/assert.hpp>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

namespace minihpx {

namespace {

    std::atomic<runtime*> global_runtime{nullptr};

    std::uint64_t now_ns() noexcept
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

}    // namespace

runtime_config runtime_config::from_cli(util::cli_args const& args)
{
    runtime_config config;
    config.sched.num_workers = std::thread::hardware_concurrency();
    config.sched.bind_workers = args.flag("mh:bind");

    // Knobs are table-driven: one row per flag, destinations keep
    // their struct defaults, and deprecated legacy spellings
    // (--mh:sleep-us predates steal_params) warn once per process.
    // String-valued rows parse-and-validate in place; a false return
    // makes apply() throw naming the flag and the valid choices.
    auto& steal = config.sched.steal;
    auto& cache = config.sched.descriptor_cache;
    util::option_table table;
    table.add("mh:threads", config.sched.num_workers)
        .add("mh:stack-size", config.sched.stack_size)
        .add("mh:numa-domains", config.sched.numa_domains)
        .add("mh:steal-seed", steal.seed)
        .add("mh:steal-rounds", steal.rounds)
        .add("mh:steal-batch", steal.batch)
        .add("mh:steal-spin", steal.spin_iters)
        .add("mh:steal-sleep-us", steal.sleep_us, "mh:sleep-us")
        .add("mh:descriptor-cache", cache.worker_capacity)
        .add("mh:descriptor-refill", cache.refill_batch)
        .add("mh:descriptor-global", cache.global_capacity)
        .add_string("mh:queue-policy",
            [&config](std::string const& v) {
                auto parsed = threads::parse_queue_policy(v);
                if (parsed)
                    config.sched.queue = *parsed;
                return parsed.has_value();
            },
            "'mutex' or 'chase-lev'")
        .add_string("mh:steal-victim-policy",
            [&steal](std::string const& v) {
                auto parsed = threads::parse_victim_policy(v);
                if (parsed)
                    steal.victim = *parsed;
                return parsed.has_value();
            },
            "'random' or 'numa'")
        .add_string("mh:steal-park",
            [&steal](std::string const& v) {
                using park_policy =
                    scheduler_config::steal_params::park_policy;
                if (v == "spin-park")
                    steal.park = park_policy::spin_park;
                else if (v == "timed")
                    steal.park = park_policy::timed;
                else
                    return false;
                return true;
            },
            "'spin-park' or 'timed'")
        .add_string("mh:spawn-path",
            [&config](std::string const& v) {
                if (v == "pooled" || v == "pooled-frame")
                    config.sched.spawn =
                        scheduler_config::spawn_path::pooled_frame;
                else if (v == "legacy")
                    config.sched.spawn =
                        scheduler_config::spawn_path::legacy;
                else
                    return false;
                return true;
            },
            "'pooled' or 'legacy'");
    table.apply(args);
    if (config.sched.num_workers == 0)
        config.sched.num_workers = 1;

    // Surface bad values here, at the CLI boundary, rather than from
    // deep inside scheduler construction.
    if (auto err = steal.validate())
        throw std::runtime_error("minihpx: " + *err);
    if (auto err = cache.validate())
        throw std::runtime_error("minihpx: " + *err);
    return config;
}

runtime::runtime(runtime_config config)
  : config_(std::move(config))
  , scheduler_(std::make_unique<scheduler>(config_.sched))
  , start_ns_(now_ns())
{
    runtime* expected = nullptr;
    bool const installed =
        global_runtime.compare_exchange_strong(expected, this);
    MINIHPX_ASSERT_MSG(installed, "only one minihpx::runtime per process");
    scheduler_->start();
}

runtime::~runtime()
{
    run_shutdown_hooks();
    scheduler_->stop();
    global_runtime.store(nullptr, std::memory_order_release);
}

std::uint64_t runtime::at_shutdown(std::function<void()> hook)
{
    std::lock_guard lock(hooks_mutex_);
    std::uint64_t const token = next_hook_token_++;
    hooks_.emplace_back(token, std::move(hook));
    return token;
}

void runtime::remove_shutdown_hook(std::uint64_t token) noexcept
{
    std::lock_guard lock(hooks_mutex_);
    for (auto it = hooks_.begin(); it != hooks_.end(); ++it)
    {
        if (it->first == token)
        {
            hooks_.erase(it);
            return;
        }
    }
}

void runtime::run_shutdown_hooks() noexcept
{
    // Drain under the lock, run outside it: a hook may legitimately
    // call remove_shutdown_hook (e.g. from a destructor it triggers).
    std::vector<std::pair<std::uint64_t, std::function<void()>>> hooks;
    {
        std::lock_guard lock(hooks_mutex_);
        hooks.swap(hooks_);
    }
    for (auto it = hooks.rbegin(); it != hooks.rend(); ++it)
        it->second();
}

double runtime::uptime_seconds() const noexcept
{
    return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

runtime* runtime::get_ptr() noexcept
{
    return global_runtime.load(std::memory_order_acquire);
}

runtime& runtime::get()
{
    runtime* rt = get_ptr();
    MINIHPX_ASSERT_MSG(rt != nullptr, "no active minihpx::runtime");
    return *rt;
}

namespace detail {

    scheduler& spawn_target()
    {
        if (scheduler* sched = scheduler::current_scheduler())
            return *sched;
        return runtime::get().get_scheduler();
    }

    scheduler* spawn_target_ptr() noexcept
    {
        if (scheduler* sched = scheduler::current_scheduler())
            return sched;
        if (runtime* rt = runtime::get_ptr())
            return &rt->get_scheduler();
        return nullptr;
    }

}    // namespace detail

}    // namespace minihpx
