#include <minihpx/sync.hpp>

#include <mutex>

namespace minihpx {

namespace {

    // Suspend the current task onto `waiters` guarded by `guard`,
    // unless `abort_if` turns true once the guard is re-taken inside
    // the publish step (in which case the task resumes itself).
    template <typename AbortIf>
    void park_on(util::spinlock& guard, detail::task_wait_list& waiters,
        AbortIf abort_if)
    {
        scheduler* sched = scheduler::current_scheduler();
        MINIHPX_ASSERT_MSG(sched && scheduler::current_task(),
            "blocking primitive used outside task context");
        sched->suspend_current(
            [&guard, &waiters, &abort_if, sched](
                threads::thread_data* self) {
                std::lock_guard lock(guard);
                if (abort_if())
                {
                    // Condition already satisfied; cancel the park by
                    // resuming ourselves (handshake absorbs the race).
                    sched->resume(self);
                    return;
                }
                waiters.push(self);
            });
    }

    void resume_task(threads::thread_data* task)
    {
        // Waiters always come from a scheduler's task context; resume
        // through the current scheduler if the caller is a worker, else
        // through the runtime default.
        scheduler* sched = scheduler::current_scheduler();
        if (!sched)
            sched = &detail::spawn_target();
        sched->resume(task);
    }

}    // namespace

// ----------------------------------------------------------------- mutex

void mutex::lock()
{
    if (!scheduler::current_task())
    {
        // Non-task path (main thread in tests): spin-yield.
        for (;;)
        {
            {
                std::lock_guard lock(guard_);
                if (!locked_)
                {
                    locked_ = true;
                    return;
                }
            }
            std::this_thread::yield();
        }
    }

    for (;;)
    {
        {
            std::lock_guard lock(guard_);
            if (!locked_)
            {
                locked_ = true;
                return;
            }
        }
        // Barging lock: parked tasks re-compete after wakeup.
        park_on(guard_, waiters_, [this] { return !locked_; });
    }
}

bool mutex::try_lock()
{
    std::lock_guard lock(guard_);
    if (locked_)
        return false;
    locked_ = true;
    return true;
}

void mutex::unlock()
{
    threads::thread_data* next = nullptr;
    {
        std::lock_guard lock(guard_);
        MINIHPX_ASSERT_MSG(locked_, "unlock of unlocked mutex");
        locked_ = false;
        next = waiters_.pop();
    }
    if (next)
        resume_task(next);
}

// ---------------------------------------------------- condition_variable

void condition_variable::wait(std::unique_lock<mutex>& lock)
{
    MINIHPX_ASSERT_MSG(lock.owns_lock(), "cv::wait requires a held lock");
    scheduler* sched = scheduler::current_scheduler();
    MINIHPX_ASSERT_MSG(sched && scheduler::current_task(),
        "condition_variable requires task context");

    mutex* m = lock.mutex();
    sched->suspend_current([this, m](threads::thread_data* self) {
        {
            std::lock_guard g(guard_);
            waiters_.push(self);
        }
        // Enqueue first, then release: a notify between unlock and the
        // switch finds us in the list and the wakeup handshake holds.
        m->unlock();
    });
    lock.release();
    lock = std::unique_lock<mutex>(*m);
}

void condition_variable::notify_one()
{
    threads::thread_data* task = nullptr;
    {
        std::lock_guard g(guard_);
        task = waiters_.pop();
    }
    if (task)
        resume_task(task);
}

void condition_variable::notify_all()
{
    detail::task_wait_list drained;
    {
        std::lock_guard g(guard_);
        while (threads::thread_data* task = waiters_.pop())
            drained.push(task);
    }
    while (threads::thread_data* task = drained.pop())
        resume_task(task);
}

// ----------------------------------------------------------------- latch

void latch::count_down(std::ptrdiff_t n)
{
    detail::task_wait_list drained;
    {
        std::lock_guard g(guard_);
        MINIHPX_ASSERT(count_ >= n);
        count_ -= n;
        if (count_ > 0)
            return;
        while (threads::thread_data* task = waiters_.pop())
            drained.push(task);
    }
    while (threads::thread_data* task = drained.pop())
        resume_task(task);
}

bool latch::try_wait() const
{
    std::lock_guard g(guard_);
    return count_ == 0;
}

void latch::wait()
{
    if (!scheduler::current_task())
    {
        while (!try_wait())
            std::this_thread::yield();
        return;
    }
    while (!try_wait())
        park_on(guard_, waiters_, [this] { return count_ == 0; });
}

void latch::arrive_and_wait()
{
    count_down();
    wait();
}

// --------------------------------------------------------------- barrier

void barrier::arrive_and_wait()
{
    std::uint64_t my_generation;
    bool last = false;
    detail::task_wait_list drained;
    {
        std::lock_guard g(guard_);
        my_generation = generation_;
        if (++arrived_ == parties_)
        {
            arrived_ = 0;
            ++generation_;
            while (threads::thread_data* task = waiters_.pop())
                drained.push(task);
            last = true;
        }
    }
    if (last)
    {
        while (threads::thread_data* task = drained.pop())
            resume_task(task);
        return;
    }
    while (true)
    {
        {
            std::lock_guard g(guard_);
            if (generation_ != my_generation)
                return;
        }
        park_on(guard_, waiters_,
            [this, my_generation] { return generation_ != my_generation; });
    }
}

// ----------------------------------------------------- counting_semaphore

void counting_semaphore::acquire()
{
    for (;;)
    {
        {
            std::lock_guard g(guard_);
            if (count_ > 0)
            {
                --count_;
                return;
            }
        }
        if (!scheduler::current_task())
        {
            std::this_thread::yield();
            continue;
        }
        park_on(guard_, waiters_, [this] { return count_ > 0; });
    }
}

bool counting_semaphore::try_acquire()
{
    std::lock_guard g(guard_);
    if (count_ <= 0)
        return false;
    --count_;
    return true;
}

void counting_semaphore::release(std::ptrdiff_t n)
{
    detail::task_wait_list drained;
    {
        std::lock_guard g(guard_);
        count_ += n;
        for (std::ptrdiff_t i = 0; i < n; ++i)
        {
            threads::thread_data* task = waiters_.pop();
            if (!task)
                break;
            drained.push(task);
        }
    }
    while (threads::thread_data* task = drained.pop())
        resume_task(task);
}

}    // namespace minihpx
