#include <minihpx/detail/frame_pool.hpp>

#include <minihpx/detail/free_list.hpp>
#include <minihpx/util/assert.hpp>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <new>
#include <vector>

namespace minihpx::detail {

namespace {

    // Size classes cover every state/frame the runtime itself creates;
    // larger closures fall through to the global allocator (counted as
    // allocations, so the spawn-latency gate would catch a regression
    // that pushes the common frames past the largest class).
    constexpr std::size_t class_sizes[] = {64, 128, 256, 512, 1024};
    constexpr unsigned num_classes =
        sizeof(class_sizes) / sizeof(class_sizes[0]);
    constexpr unsigned oversize = ~0u;

    // Cache geometry. A thread keeps at most local_capacity blocks per
    // class and moves them in `batch` chunks, so the global lock is
    // touched once per batch even under full producer/consumer
    // asymmetry (allocating thread != releasing thread).
    constexpr unsigned local_capacity = 64;
    constexpr unsigned batch = 16;
    // Global high water per class; surplus beyond it is freed.
    constexpr unsigned global_capacity = 4096;

    unsigned class_for(std::size_t bytes) noexcept
    {
        for (unsigned c = 0; c < num_classes; ++c)
            if (bytes <= class_sizes[c])
                return c;
        return oversize;
    }

    struct cache_counters
    {
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> allocations{0};
        std::atomic<std::uint64_t> deallocations{0};
        std::atomic<std::uint64_t> recycles{0};
        std::atomic<std::uint64_t> cached{0};
    };

    struct thread_cache;

    // The global pool is created on first use and intentionally never
    // destroyed: frames can be released after static destruction has
    // begun (a future held past runtime teardown), and the cached
    // blocks stay reachable through this pointer, so leak checkers
    // treat them as live.
    struct global_pool
    {
        // One spinlock-guarded list per class (detail/free_list.hpp);
        // batched transfers keep it off the steady-state path.
        shared_free_list<> lists[num_classes];

        // Counters of threads that have exited (merged by ~thread_cache)
        // plus blocks parked in the global lists.
        cache_counters retired;

        std::mutex caches_mutex;
        std::vector<thread_cache*> caches;
    };

    global_pool& pool()
    {
        static global_pool* const g = new global_pool;
        return *g;
    }

    void free_chain(free_list::node* chain, unsigned& freed) noexcept
    {
        while (chain)
        {
            free_list::node* n = chain;
            chain = free_list::next_of(n);
            ::operator delete(n);
            ++freed;
        }
    }

    struct thread_cache
    {
        free_list free[num_classes];
        cache_counters counters;

        thread_cache()
        {
            auto& g = pool();
            std::lock_guard lock(g.caches_mutex);
            g.caches.push_back(this);
        }

        ~thread_cache()
        {
            auto& g = pool();
            // Spill every block (no trim: teardown must not free blocks
            // other threads may still recycle), then merge the counters
            // so totals stay monotonic after this thread is gone.
            for (unsigned c = 0; c < num_classes; ++c)
            {
                if (free_list::node* chain = free[c].drain())
                {
                    free_list::node* surplus =
                        g.lists[c].spill(chain, ~std::size_t(0));
                    MINIHPX_ASSERT(surplus == nullptr);
                }
            }
            auto merge = [](std::atomic<std::uint64_t>& dst,
                             std::atomic<std::uint64_t> const& src) {
                dst.fetch_add(src.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
            };
            merge(g.retired.hits, counters.hits);
            merge(g.retired.allocations, counters.allocations);
            merge(g.retired.deallocations, counters.deallocations);
            merge(g.retired.recycles, counters.recycles);
            {
                std::lock_guard lock(g.caches_mutex);
                std::erase(g.caches, this);
            }
        }

        void bump(std::atomic<std::uint64_t>& c) noexcept
        {
            // Owner-only write; counter readers load relaxed.
            c.store(
                c.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
        }

        void adjust_cached(std::int64_t delta) noexcept
        {
            counters.cached.store(
                counters.cached.load(std::memory_order_relaxed) +
                    static_cast<std::uint64_t>(delta),
                std::memory_order_relaxed);
        }

        void* allocate(unsigned cls)
        {
            if (void* p = free[cls].pop())
            {
                bump(counters.hits);
                adjust_cached(-1);
                return p;
            }

            // Batch refill: one lock round-trip amortized over `batch`
            // subsequent allocations.
            auto& g = pool();
            std::size_t const taken = g.lists[cls].refill(free[cls], batch);
            if (taken)
            {
                adjust_cached(static_cast<std::int64_t>(taken));
                return allocate(cls);    // cache is non-empty now
            }

            bump(counters.allocations);
            return ::operator new(class_sizes[cls]);
        }

        void deallocate(void* p, unsigned cls) noexcept
        {
            free[cls].push(p);
            bump(counters.recycles);
            adjust_cached(1);
            if (free[cls].size() <= local_capacity)
                return;

            // Spill a batch; trim the global list past its high water.
            free_list::node* chain = nullptr;
            for (unsigned i = 0; i < batch; ++i)
            {
                auto* s = static_cast<free_list::node*>(free[cls].pop());
                s->next = chain;
                chain = s;
            }
            adjust_cached(-static_cast<std::int64_t>(batch));

            auto& g = pool();
            free_list::node* surplus =
                g.lists[cls].spill(chain, global_capacity);
            unsigned freed = 0;
            free_chain(surplus, freed);
            counters.deallocations.store(
                counters.deallocations.load(std::memory_order_relaxed) +
                    freed,
                std::memory_order_relaxed);
        }
    };

    thread_local thread_cache tls_cache;

}    // namespace

void* frame_allocate(std::size_t bytes)
{
    unsigned const cls = class_for(bytes);
    if (cls == oversize)
    {
        tls_cache.bump(tls_cache.counters.allocations);
        return ::operator new(bytes);
    }
    return tls_cache.allocate(cls);
}

void frame_deallocate(void* p, std::size_t bytes) noexcept
{
    unsigned const cls = class_for(bytes);
    if (cls == oversize)
    {
        tls_cache.bump(tls_cache.counters.deallocations);
        ::operator delete(p);
        return;
    }
    tls_cache.deallocate(p, cls);
}

frame_pool_stats frame_pool_totals() noexcept
{
    auto& g = pool();
    frame_pool_stats total;
    auto add = [&total](cache_counters const& c) {
        total.cache_hits += c.hits.load(std::memory_order_relaxed);
        total.allocations += c.allocations.load(std::memory_order_relaxed);
        total.deallocations +=
            c.deallocations.load(std::memory_order_relaxed);
        total.recycles += c.recycles.load(std::memory_order_relaxed);
        total.cached_blocks += c.cached.load(std::memory_order_relaxed);
    };
    add(g.retired);
    {
        std::lock_guard lock(g.caches_mutex);
        for (thread_cache const* c : g.caches)
            add(c->counters);
    }
    for (unsigned c = 0; c < num_classes; ++c)
        total.cached_blocks += g.lists[c].size();
    return total;
}

void frame_pool_trim() noexcept
{
    auto& g = pool();
    auto& t = tls_cache;
    unsigned freed = 0;
    for (unsigned c = 0; c < num_classes; ++c)
    {
        free_chain(t.free[c].drain(), freed);
        free_chain(g.lists[c].drain(), freed);
    }
    t.counters.cached.store(0, std::memory_order_relaxed);
    t.counters.deallocations.store(
        t.counters.deallocations.load(std::memory_order_relaxed) + freed,
        std::memory_order_relaxed);
}

}    // namespace minihpx::detail
