#include <minihpx/runtime/scheduler.hpp>

#include <minihpx/trace/recorder.hpp>
#include <minihpx/util/assert.hpp>

#include <pthread.h>
#include <sched.h>

#include <chrono>
#include <stdexcept>

namespace minihpx {

namespace {

    thread_local detail::worker* tls_worker = nullptr;

    std::uint64_t clock_ns() noexcept
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    trace::event trace_ev(std::uint64_t t, trace::event_kind kind,
        std::uint64_t task, std::uint64_t aux, std::uint32_t worker) noexcept
    {
        trace::event e;
        e.t_ns = t;
        e.task = task;
        e.aux = aux;
        e.worker = worker;
        e.kind = static_cast<std::uint16_t>(kind);
        return e;
    }

    void bind_to_core(unsigned core) noexcept
    {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(core % std::thread::hardware_concurrency(), &set);
        // Best-effort: failure (e.g. restricted container) is harmless.
        (void) pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
    }

}    // namespace

// ---------------------------------------------------------------- worker

namespace detail {

    void worker::run()
    {
        tls_worker = this;
        if (sched_.config().bind_workers)
            bind_to_core(id_);

        std::uint64_t const started = clock_ns();
        std::uint64_t loop_start = started;

        for (;;)
        {
            threads::thread_data* task = get_next_task();
            std::uint64_t const found = clock_ns();

            if (task)
            {
                stats_->sched_time_ns.fetch_add(
                    found - loop_start, std::memory_order_relaxed);
                execute(task);
            }
            else
            {
                // Nothing runnable anywhere. Either we are draining and
                // done, or we idle until new work is scheduled.
                if (sched_.state_.load(std::memory_order_acquire) !=
                        scheduler::run_state::running &&
                    sched_.tasks_alive() == 0)
                {
                    stats_->idle_time_ns.fetch_add(
                        found - loop_start, std::memory_order_relaxed);
                    break;
                }

                idle_wait();

                stats_->idle_time_ns.fetch_add(
                    clock_ns() - found, std::memory_order_relaxed);
                stats_->idle_time_ns.fetch_add(
                    found - loop_start, std::memory_order_relaxed);
            }

            loop_start = clock_ns();
            stats_->total_time_ns.store(
                loop_start - started, std::memory_order_relaxed);
        }
        stats_->total_time_ns.store(
            clock_ns() - started, std::memory_order_relaxed);
        tls_worker = nullptr;
    }

    void worker::idle_wait()
    {
        auto const& p = sched_.config().steal;

        if (p.park == scheduler_config::steal_params::park_policy::timed ||
            sched_.state_.load(std::memory_order_acquire) !=
                scheduler::run_state::running)
        {
            // Legacy timed park — also used while draining, where the
            // remaining tasks may all be suspended and no wake is
            // guaranteed; a bounded poll beats a busy drain loop.
            std::uint64_t const epoch =
                sched_.sleep_ec_.epoch(std::memory_order_acquire);
            if (queue_.length() == 0)
            {
                sched_.sleep_ec_.park_for(epoch,
                    std::chrono::microseconds(sched_.config().steal.sleep_us),
                    [&] {
                        return sched_.state_.load(std::memory_order_acquire) !=
                            scheduler::run_state::running;
                    });
                stats_->wakeups.fetch_add(1, std::memory_order_relaxed);
            }
            return;
        }

        // Spin-then-park. Capture the epoch *before* spinning: a wake
        // posted any time after this line flips the epoch comparison, so
        // it can neither be missed by the spin nor by the park.
        std::uint64_t const epoch0 = sched_.sleep_ec_.prepare();
        for (unsigned i = 0; i < p.spin_iters; ++i)
        {
            if (sched_.sleep_ec_.epoch(std::memory_order_relaxed) !=
                    epoch0 ||
                queue_.length() != 0 ||
                sched_.state_.load(std::memory_order_acquire) !=
                    scheduler::run_state::running)
                return;
            if ((i & 63u) == 63u)
                std::this_thread::yield();
        }
        sched_.park_worker(*this, epoch0);
    }

    threads::thread_data* worker::get_next_task()
    {
        if (threads::thread_data* task = queue_.pop())
            return task;

        unsigned const n = sched_.num_workers();
        if (n <= 1)
            return nullptr;

        auto const& p = sched_.config().steal;
        threads::topology const& topo = sched_.topology_;
        bool const numa = p.victim == threads::victim_policy::numa &&
            topo.num_domains() > 1;
        // Cross-domain raids under the numa policy lift the batch cap
        // to steal_into's own half-the-victim-queue budget: a remote
        // steal pays the interconnect latency once, so it should move
        // half the cold end, not `batch` tasks.
        unsigned const cross_batch = numa ? 65536u : p.batch;

        // One raid takes up to `batch` tasks: the first is returned, the
        // surplus lands in our own queue (and is itself stealable, which
        // diffuses a single hot queue across the pool in O(log n) raids).
        auto raid = [&](std::uint32_t victim) -> threads::thread_data* {
            stats_->steal_attempts.fetch_add(1, std::memory_order_relaxed);
            bool const same = topo.same_domain(id_, victim);
            unsigned stolen = 0;
            threads::thread_data* task =
                sched_.workers_[victim]->queue_.steal_into(
                    queue_, same ? p.batch : cross_batch, &stolen);
            if (task)
            {
                stats_->steals.fetch_add(stolen, std::memory_order_relaxed);
                (same ? stats_->steals_same_domain :
                        stats_->steals_cross_domain)
                    .fetch_add(stolen, std::memory_order_relaxed);
                // Only the task we are about to run gets a steal event;
                // batch surplus re-queued locally is covered by the
                // begin events of whoever eventually runs it.
                if (trace::recorder* tr = sched_.tracer())
                    tr->emit(id_,
                        trace_ev(clock_ns(), trace::event_kind::steal,
                            task->id(), victim, id_));
            }
            return task;
        };

        // Random victims first (decorrelates thieves), then one
        // deterministic sweep so a single busy victim is always found.
        // `filter` restricts a pass to one side of the domain boundary
        // under the numa policy (pass_same: same-domain victims only).
        auto probe_and_sweep =
            [&](bool filtered, bool pass_same) -> threads::thread_data* {
            for (unsigned attempt = 0; attempt < n; ++attempt)
            {
                auto victim = static_cast<std::uint32_t>(rng_.below(n));
                if (victim == id_ ||
                    (filtered &&
                        topo.same_domain(id_, victim) != pass_same))
                    continue;
                if (threads::thread_data* task = raid(victim))
                    return task;
            }
            for (unsigned v = 0; v < n; ++v)
            {
                if (v == id_ ||
                    (filtered && topo.same_domain(id_, v) != pass_same))
                    continue;
                if (threads::thread_data* task = raid(v))
                    return task;
            }
            return nullptr;
        };

        for (unsigned round = 0; round < p.rounds; ++round)
        {
            if (numa)
            {
                // Same-domain deques first: a local steal keeps the
                // stolen subtree's working set on this socket. Only
                // when the whole domain is dry do we cross over.
                if (threads::thread_data* task =
                        probe_and_sweep(true, true))
                    return task;
                if (threads::thread_data* task =
                        probe_and_sweep(true, false))
                    return task;
            }
            else
            {
                if (threads::thread_data* task =
                        probe_and_sweep(false, false))
                    return task;
            }
            // New work may have landed locally while we were searching.
            if (threads::thread_data* task = queue_.pop())
                return task;
        }
        return nullptr;
    }

    void worker::execute(threads::thread_data* task)
    {
        MINIHPX_ASSERT(task->state() == threads::thread_state::pending);
        sched_.count_pending_.fetch_sub(1, std::memory_order_relaxed);
        sched_.count_active_.fetch_add(1, std::memory_order_relaxed);
        task->set_state(threads::thread_state::active);

        if (!task->context().valid())
        {
            if (!task->has_stack())
                task->attach_stack(sched_.stack_pool_.acquire());
            task->prepare_context(&scheduler::task_entry);
        }

        current_ = task;
        action_ = after_switch::none;

        std::uint64_t const t0 = clock_ns();
        if (trace::recorder* tr = sched_.tracer())
            tr->emit(id_,
                trace_ev(t0, trace::event_kind::begin, task->id(), 0, id_));
        threads::execution_context::switch_to(
            sched_context_, task->context());
        std::uint64_t const t1 = clock_ns();

        current_ = nullptr;
        stats_->exec_time_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
        task->add_exec_time(t1 - t0);

        process_after_switch(task, t1);
        stats_->sched_time_ns.fetch_add(
            clock_ns() - t1, std::memory_order_relaxed);
    }

    void worker::process_after_switch(
        threads::thread_data* task, std::uint64_t t_ns)
    {
        trace::recorder* const tr = sched_.tracer();
        sched_.count_active_.fetch_sub(1, std::memory_order_relaxed);
        switch (action_)
        {
        case after_switch::terminated:
            task->set_state(threads::thread_state::terminated);
            sched_.duration_hist_.add(task->exec_time_ns());
            stats_->tasks_executed.fetch_add(1, std::memory_order_relaxed);
            if (tr)
                tr->emit(id_,
                    trace_ev(t_ns, trace::event_kind::end, task->id(), 0,
                        id_));
            sched_.recycle_descriptor(task);
            sched_.tasks_alive_.fetch_sub(1, std::memory_order_release);
            break;

        case after_switch::suspended:
        {
            stats_->suspensions.fetch_add(1, std::memory_order_relaxed);
            sched_.count_suspended_.fetch_add(1, std::memory_order_relaxed);
            if (tr)
                tr->emit(id_,
                    trace_ev(t_ns, trace::event_kind::suspend, task->id(),
                        0, id_));
            task->set_state(threads::thread_state::suspended);
            // A waker may have tried to resume while we were parking.
            if (task->wakeup_pending.exchange(false,
                    std::memory_order_acq_rel))
            {
                if (task->transition(threads::thread_state::suspended,
                        threads::thread_state::pending))
                {
                    sched_.count_suspended_.fetch_sub(
                        1, std::memory_order_relaxed);
                    sched_.count_pending_.fetch_add(
                        1, std::memory_order_relaxed);
                    // The waker lost the handshake race before the park
                    // completed, so its resume emitted no event; record
                    // the wake here (waker unknown by then: aux = 0).
                    if (tr)
                        tr->emit(id_,
                            trace_ev(t_ns, trace::event_kind::resume,
                                task->id(), 0, id_));
                    sched_.schedule_task(task, false);
                }
            }
            break;
        }

        case after_switch::yielded_back:
        case after_switch::yielded_front:
            stats_->yields.fetch_add(1, std::memory_order_relaxed);
            sched_.count_pending_.fetch_add(1, std::memory_order_relaxed);
            if (tr)
                tr->emit(id_,
                    trace_ev(t_ns, trace::event_kind::yield, task->id(), 0,
                        id_));
            task->set_state(threads::thread_state::pending);
            queue_.push(task, action_ == after_switch::yielded_front);
            break;

        case after_switch::none:
            MINIHPX_ASSERT_MSG(
                false, "task switched out without declaring an action");
            break;
        }
        action_ = after_switch::none;
    }

}    // namespace detail

// ------------------------------------------------------------- scheduler

std::optional<std::string> scheduler_config::steal_params::validate() const
{
    if (rounds == 0)
        return "steal-rounds must be >= 1 (a work-stealing worker that "
               "never sweeps its victims cannot make progress)";
    if (batch == 0)
        return "steal-batch must be >= 1 (a raid takes at least the task "
               "it returns)";
    if (batch > 1u << 16)
        return "steal-batch must be <= 65536";
    if (spin_iters > 100'000'000u)
        return "steal-spin must be <= 100000000 iterations";
    if (park == park_policy::timed && sleep_us == 0)
        return "steal-sleep-us must be >= 1 with the timed park policy "
               "(a zero timeout degenerates to a busy loop)";
    if (sleep_us > 60'000'000u)
        return "steal-sleep-us must be <= 60000000 (60 s)";
    return std::nullopt;
}

std::optional<std::string> scheduler_config::cache_params::validate() const
{
    if (worker_capacity == 0)
        return "descriptor-cache must be >= 1 (a worker cache that can "
               "hold nothing forces every recycle through the global "
               "lock)";
    if (refill_batch == 0)
        return "descriptor-refill must be >= 1 (a refill takes at least "
               "the descriptor it returns)";
    if (refill_batch > worker_capacity)
        return "descriptor-refill must be <= descriptor-cache (a refill "
               "larger than the cache would immediately spill back)";
    if (global_capacity < refill_batch)
        return "descriptor-global must be >= descriptor-refill (the trim "
               "would race every batch refill)";
    if (worker_capacity > 1u << 20)
        return "descriptor-cache must be <= 1048576";
    return std::nullopt;
}

scheduler::scheduler(scheduler_config config)
  : config_(config)
  , topology_(config.numa_domains > 0 ?
            threads::topology::uniform(
                config.num_workers ? config.num_workers : 1,
                config.numa_domains) :
            threads::topology::from_sysfs(
                config.num_workers ? config.num_workers : 1))
  , stack_pool_(config.stack_size)
{
    if (auto err = config_.steal.validate())
        throw std::invalid_argument("minihpx scheduler_config: " + *err);
    if (auto err = config_.descriptor_cache.validate())
        throw std::invalid_argument("minihpx scheduler_config: " + *err);
    if (config_.num_workers == 0)
        config_.num_workers = 1;
    for (unsigned i = 0; i < config_.num_workers; ++i)
    {
        std::uint64_t seed = config_.steal.seed;
        workers_.push_back(std::make_unique<detail::worker>(
            *this, i, splitmix64_helper(seed, i), config_.queue));
    }
}

std::uint64_t scheduler::splitmix64_helper(std::uint64_t seed, unsigned i)
{
    std::uint64_t s = seed + i * 0x9e3779b97f4a7c15ULL;
    return util::splitmix64_next(s);
}

scheduler::~scheduler()
{
    if (state_.load(std::memory_order_acquire) != run_state::stopped)
        stop();
    // All tasks have drained (stop() joins only once tasks_alive_ is
    // zero), so every descriptor sits in the global freelist or a
    // worker-local cache. Workers are joined: no locks needed.
    auto free_chain = [this](threads::thread_data* head) {
        while (head)
        {
            threads::thread_data* next = head->next;
            delete head;
            descriptors_destroyed_.fetch_add(1, std::memory_order_relaxed);
            head = next;
        }
    };
    {
        // The lock is uncontended here (workers joined); taken so the
        // thread-safety analysis sees the freelist_ access guarded.
        util::annotated_lock_guard lock(freelist_lock_);
        free_chain(freelist_);
        freelist_ = nullptr;
    }
    freelist_count_.store(0, std::memory_order_relaxed);
    for (auto& w : workers_)
    {
        free_chain(w->cache_head_);
        w->cache_head_ = nullptr;
        w->cache_count_.store(0, std::memory_order_relaxed);
    }
}

void scheduler::start()
{
    MINIHPX_ASSERT(state_.load() == run_state::stopped);
    state_.store(run_state::running, std::memory_order_release);
    os_threads_.reserve(workers_.size());
    for (auto& w : workers_)
        os_threads_.emplace_back([worker = w.get()] { worker->run(); });
}

void scheduler::stop()
{
    run_state expected = run_state::running;
    if (!state_.compare_exchange_strong(expected, run_state::draining))
        return;
    wake_all();
    for (auto& t : os_threads_)
        t.join();
    os_threads_.clear();
    state_.store(run_state::stopped, std::memory_order_release);
    // No worker can be mid-emit any more: retired recorders (and an
    // installed one — nobody is left to emit into it) can go.
    std::lock_guard lock(tracer_mutex_);
    retired_tracers_.clear();
}

void scheduler::set_tracer(std::shared_ptr<trace::recorder> tracer)
{
    MINIHPX_ASSERT_MSG(!tracer ||
            tracer->worker_lanes() >= num_workers(),
        "trace recorder needs a lane per worker");
    std::lock_guard lock(tracer_mutex_);
    tracer_.store(tracer.get(), std::memory_order_release);
    if (tracer_owner_)
    {
        // A worker may still be emitting through the old raw pointer;
        // park the ownership until stop() has joined the workers.
        retired_tracers_.push_back(std::move(tracer_owner_));
    }
    tracer_owner_ = std::move(tracer);
}

void scheduler::annotate_current(char const* label) noexcept
{
    detail::worker* const w = tls_worker;
    if (!w || !w->current_ || !label)
        return;
    // Remember the label on the descriptor even when no tracer is
    // attached: annotate_scope needs the previous label to restore it.
    w->current_->set_trace_label(*label ? label : nullptr);
    if (trace::recorder* tr = w->sched_.tracer())
        tr->emit(w->id(),
            trace_ev(clock_ns(), trace::event_kind::label,
                w->current_->id(),
                static_cast<std::uint64_t>(
                    reinterpret_cast<std::uintptr_t>(label)),
                w->id()));
}

char const* scheduler::current_label() noexcept
{
    detail::worker* const w = tls_worker;
    return w && w->current_ ? w->current_->trace_label() : nullptr;
}

threads::thread_id scheduler::spawn(task_function fn,
    char const* description, threads::thread_priority priority, bool front)
{
    MINIHPX_ASSERT_MSG(state_.load(std::memory_order_acquire) !=
            run_state::stopped,
        "spawn on a stopped scheduler");

    detail::worker* const w =
        tls_worker && &tls_worker->sched_ == this ? tls_worker : nullptr;
    threads::thread_id parent = threads::invalid_thread_id;
    if (w && w->current_)
        parent = w->current_->id();

    threads::thread_data* task = acquire_descriptor();
    threads::thread_id const id =
        next_thread_id_.fetch_add(1, std::memory_order_relaxed);
    task->init(id, std::move(fn), description, priority, parent);

    tasks_alive_.fetch_add(1, std::memory_order_acq_rel);
    tasks_created_.fetch_add(1, std::memory_order_relaxed);
    if (w)
        w->stats_->tasks_created.fetch_add(1, std::memory_order_relaxed);

    // Emitted before the task is published to a queue, so the spawn
    // always precedes the task's first begin in any merged stream.
    if (trace::recorder* tr = tracer())
    {
        trace::event const e = trace_ev(clock_ns(),
            trace::event_kind::spawn, id, parent,
            w ? w->id() : trace::external_worker);
        if (w)
            tr->emit(w->id(), e);
        else
            tr->emit_external(e);
    }

    task->set_state(threads::thread_state::pending);
    count_pending_.fetch_add(1, std::memory_order_relaxed);
    schedule_task(task, front);
    return id;
}

void scheduler::resume(threads::thread_data* task)
{
    // Two-phase handshake (see thread_data::wakeup_pending).
    task->wakeup_pending.store(true, std::memory_order_release);
    if (task->transition(threads::thread_state::suspended,
            threads::thread_state::pending))
    {
        task->wakeup_pending.store(false, std::memory_order_release);
        count_suspended_.fetch_sub(1, std::memory_order_relaxed);
        count_pending_.fetch_add(1, std::memory_order_relaxed);
        // The causal wake edge: whoever is running here made `task`
        // runnable (future notify, mutex handoff). aux = waker task id
        // when the wake comes from inside this scheduler.
        if (trace::recorder* tr = tracer())
        {
            detail::worker* const w =
                tls_worker && &tls_worker->sched_ == this ? tls_worker :
                                                            nullptr;
            std::uint64_t const waker =
                w && w->current_ ? w->current_->id() :
                                   threads::invalid_thread_id;
            trace::event const e = trace_ev(clock_ns(),
                trace::event_kind::resume, task->id(), waker,
                w ? w->id() : trace::external_worker);
            if (w)
                tr->emit(w->id(), e);
            else
                tr->emit_external(e);
        }
        schedule_task(task, false);
    }
    // else: the task has not parked yet; the worker consumes the flag.
}

void scheduler::yield_current(bool to_back)
{
    detail::worker* w = tls_worker;
    MINIHPX_ASSERT_MSG(w && w->current_, "yield outside of task context");
    threads::thread_data* task = w->current_;
    w->action_ = to_back ? detail::after_switch::yielded_back :
                           detail::after_switch::yielded_front;
    threads::execution_context::switch_to(
        task->context(), w->sched_context_);
}

void scheduler::suspend_current(
    util::unique_function<void(threads::thread_data*)> publish)
{
    detail::worker* w = tls_worker;
    MINIHPX_ASSERT_MSG(w && w->current_, "suspend outside of task context");
    threads::thread_data* task = w->current_;
    if (publish)
        publish(task);
    w->action_ = detail::after_switch::suspended;
    threads::execution_context::switch_to(
        task->context(), w->sched_context_);
    // Execution resumes here once another thread calls resume(task).
}

threads::thread_data* scheduler::current_task() noexcept
{
    detail::worker* w = tls_worker;
    return w ? w->current_ : nullptr;
}

std::uint32_t scheduler::current_worker_id() noexcept
{
    detail::worker* w = tls_worker;
    return w ? w->id() : npos_worker;
}

scheduler* scheduler::current_scheduler() noexcept
{
    detail::worker* w = tls_worker;
    return w ? &w->sched_ : nullptr;
}

void scheduler::task_entry(void* arg)
{
    auto* task = static_cast<threads::thread_data*>(arg);
    task->function()();
    task->function().reset();    // release captured state eagerly

    // The task may have migrated across workers while suspended; the
    // worker to return to is whoever is running us *now*.
    detail::worker* w = tls_worker;
    MINIHPX_ASSERT(w && w->current_ == task);
    w->action_ = detail::after_switch::terminated;
    // switch_final: this context never resumes — lets ASan release its
    // fake-stack frames instead of holding them for a future resume.
    threads::execution_context::switch_final(
        task->context(), w->sched_context_);
    MINIHPX_UNREACHABLE();
}

threads::thread_data* scheduler::acquire_descriptor()
{
    detail::worker* const w =
        tls_worker && &tls_worker->sched_ == this &&
            config_.spawn != scheduler_config::spawn_path::legacy ?
        tls_worker :
        nullptr;

    // Owner fast path: pop the worker-local cache, no lock.
    if (w && w->cache_head_)
    {
        threads::thread_data* task = w->cache_head_;
        w->cache_head_ = task->next;
        w->cache_count_.store(
            w->cache_count_.load(std::memory_order_relaxed) - 1,
            std::memory_order_relaxed);
        w->stats_->descriptor_hits.fetch_add(1, std::memory_order_relaxed);
        return task;
    }

    // Batch refill: one freelist_lock_ round-trip buys refill_batch
    // local acquisitions (same amortization as the Chase-Lev steal
    // batching for run queues).
    unsigned const want = w ? config_.descriptor_cache.refill_batch : 1;
    threads::thread_data* chain = nullptr;
    unsigned taken = 0;
    {
        util::annotated_lock_guard lock(freelist_lock_);
        while (freelist_ && taken < want)
        {
            threads::thread_data* task = freelist_;
            freelist_ = task->next;
            task->next = chain;
            chain = task;
            ++taken;
        }
        if (taken)
            freelist_count_.fetch_sub(taken, std::memory_order_relaxed);
    }
    if (chain)
    {
        threads::thread_data* task = chain;
        chain = chain->next;
        if (w && chain)
        {
            // Surplus of the batch lands in the local cache.
            threads::thread_data* tail = chain;
            while (tail->next)
                tail = tail->next;
            tail->next = w->cache_head_;
            w->cache_head_ = chain;
            w->cache_count_.store(
                w->cache_count_.load(std::memory_order_relaxed) +
                    (taken - 1),
                std::memory_order_relaxed);
        }
        return task;
    }

    descriptors_created_.fetch_add(1, std::memory_order_relaxed);
    return new threads::thread_data();
}

void scheduler::recycle_descriptor(threads::thread_data* task)
{
    // Stack stays attached: the next task reuses it without a pool
    // round-trip (spawn stays allocation-free in steady state).
    detail::worker* const w =
        tls_worker && &tls_worker->sched_ == this &&
            config_.spawn != scheduler_config::spawn_path::legacy ?
        tls_worker :
        nullptr;
    auto const& cp = config_.descriptor_cache;

    threads::thread_data* spill_chain = nullptr;
    unsigned spill = 0;
    if (w)
    {
        // Owner fast path: push the local cache, no lock.
        task->next = w->cache_head_;
        w->cache_head_ = task;
        std::uint32_t const count =
            w->cache_count_.load(std::memory_order_relaxed) + 1;
        w->cache_count_.store(count, std::memory_order_relaxed);
        if (count <= cp.worker_capacity)
            return;

        // Over capacity: spill half in one batch so a pure consumer
        // (running tasks spawned elsewhere) hands descriptors back to
        // the producers instead of hoarding them.
        spill = cp.worker_capacity / 2 + 1;
        for (unsigned i = 0; i < spill; ++i)
        {
            threads::thread_data* s = w->cache_head_;
            w->cache_head_ = s->next;
            s->next = spill_chain;
            spill_chain = s;
        }
        w->cache_count_.store(count - spill, std::memory_order_relaxed);
    }
    else
    {
        task->next = nullptr;
        spill_chain = task;
        spill = 1;
    }

    // Push the batch globally; trim past the high water so spawn
    // bursts do not pin descriptor (and attached stack) memory forever.
    threads::thread_data* doomed = nullptr;
    unsigned freed = 0;
    {
        util::annotated_lock_guard lock(freelist_lock_);
        while (spill_chain)
        {
            threads::thread_data* s = spill_chain;
            spill_chain = s->next;
            s->next = freelist_;
            freelist_ = s;
        }
        std::uint32_t count =
            freelist_count_.load(std::memory_order_relaxed) + spill;
        while (count > cp.global_capacity)
        {
            threads::thread_data* s = freelist_;
            freelist_ = s->next;
            s->next = doomed;
            doomed = s;
            --count;
            ++freed;
        }
        freelist_count_.store(count, std::memory_order_relaxed);
    }
    if (freed)
    {
        // Deleting unmaps the attached stacks — done outside the lock.
        while (doomed)
        {
            threads::thread_data* s = doomed;
            doomed = s->next;
            delete s;
        }
        descriptors_destroyed_.fetch_add(freed, std::memory_order_relaxed);
    }
}

void scheduler::schedule_task(threads::thread_data* task, bool front)
{
    detail::worker* w = tls_worker;
    if (w && &w->sched_ == this)
    {
        // Owner fast path: lock-free under chase_lev.
        w->queue_.push(task, front);
    }
    else
    {
        // Cross-thread submission (main thread, foreign worker resume):
        // inject() is the any-thread entry point of both policies.
        // Power-of-two-choices on a thread-local stream replaces the
        // old process-wide round_robin_ fetch_add, which made every
        // injecting thread bounce one hot cache line.
        auto const n = static_cast<std::uint32_t>(workers_.size());
        std::uint32_t target = 0;
        if (n > 1)
        {
            thread_local std::uint64_t stream = 0;
            if (stream == 0)
                stream = 0x9e3779b97f4a7c15ULL ^
                    reinterpret_cast<std::uintptr_t>(&stream);
            std::uint64_t const r = util::splitmix64_next(stream);
            auto const a = static_cast<std::uint32_t>(r % n);
            auto const b = static_cast<std::uint32_t>((r >> 32) % n);
            target = workers_[a]->queue().length() <=
                    workers_[b]->queue().length() ?
                a :
                b;
        }
        workers_[target]->queue_.inject(task, front);
    }
    wake_one();
}

bool scheduler::any_queue_nonempty() const noexcept
{
    for (auto const& w : workers_)
        if (w->queue().length() > 0)
            return true;
    return false;
}

void scheduler::park_worker(detail::worker& w, std::uint64_t epoch0)
{
    // Final scan *after* the epoch capture: work enqueued before the
    // capture is found here; work enqueued after it bumps the epoch and
    // trips the predicate. (The scan also covers tasks a mutex-policy
    // steal missed to try_lock contention.)
    if (any_queue_nonempty())
        return;

    sleep_ec_.park(epoch0, [&] {
        return state_.load(std::memory_order_acquire) != run_state::running;
    });
    w.stats_->wakeups.fetch_add(1, std::memory_order_relaxed);
}

void scheduler::wake_one()
{
    sleep_ec_.notify_one();
}

void scheduler::wake_all()
{
    sleep_ec_.notify_all();
}

scheduler::totals scheduler::aggregate() const
{
    totals t;
    for (auto const& w : workers_)
    {
        auto const& s = w->get_stats();
        t.tasks_executed += s.tasks_executed.load(std::memory_order_relaxed);
        t.tasks_created += s.tasks_created.load(std::memory_order_relaxed);
        t.exec_time_ns += s.exec_time_ns.load(std::memory_order_relaxed);
        t.sched_time_ns += s.sched_time_ns.load(std::memory_order_relaxed);
        t.idle_time_ns += s.idle_time_ns.load(std::memory_order_relaxed);
        t.total_time_ns += s.total_time_ns.load(std::memory_order_relaxed);
        t.steals += s.steals.load(std::memory_order_relaxed);
        t.steals_same_domain +=
            s.steals_same_domain.load(std::memory_order_relaxed);
        t.steals_cross_domain +=
            s.steals_cross_domain.load(std::memory_order_relaxed);
        t.steal_attempts += s.steal_attempts.load(std::memory_order_relaxed);
        t.suspensions += s.suspensions.load(std::memory_order_relaxed);
        t.yields += s.yields.load(std::memory_order_relaxed);
        auto const& q = w->queue();
        t.pending_misses += q.misses();
        t.stolen_from += q.stolen_from();
        t.queue_length += q.length();
    }
    return t;
}

std::uint64_t scheduler::instantaneous_count(threads::thread_state state) const
{
    std::int64_t v = 0;
    switch (state)
    {
    case threads::thread_state::pending:
        v = count_pending_.load(std::memory_order_relaxed);
        break;
    case threads::thread_state::active:
        v = count_active_.load(std::memory_order_relaxed);
        break;
    case threads::thread_state::suspended:
        v = count_suspended_.load(std::memory_order_relaxed);
        break;
    case threads::thread_state::staged:
        v = count_staged_.load(std::memory_order_relaxed);
        break;
    default:
        break;
    }
    return v < 0 ? 0 : static_cast<std::uint64_t>(v);
}

}    // namespace minihpx
