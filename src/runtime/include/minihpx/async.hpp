// async() with HPX launch policies.
//
// Table II of the paper: porting Inncabs is (almost) only the namespace
// change std::async -> hpx::async. The std semantics are preserved;
// `fork` is the HPX 0.9.11 addition the paper evaluates: continuation
// stealing instead of (default) child stealing for strict fork/join.
//
// Fast path: the default spawn path places result slot, readiness
// machinery and the bound closure in ONE pooled block (task_frame),
// and the scheduler thunk captures a single 8-byte intrusive pointer,
// which fits unique_function's inline buffer. With warm frame and
// descriptor caches a spawn/run/complete cycle performs zero heap
// allocations. The pre-pool behavior (heap shared state + closure
// spilled by the capture, locked descriptor freelist) is preserved for
// one release behind scheduler_config::spawn = spawn_path::legacy
// (--mh:spawn-path=legacy) as the A/B baseline for bench/spawn_latency.
#pragma once

#include <minihpx/future.hpp>
#include <minihpx/runtime/scheduler.hpp>

#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>

namespace minihpx {

enum class launch : std::uint8_t
{
    async = 1,       // new task, child-stealing order (parent continues)
    deferred = 2,    // lazy; runs inline in the first waiter
    fork = 4,        // new task runs first, parent continuation stealable
    sync = 8,        // run inline immediately
};

namespace detail {

    template <typename R, typename F>
    void run_into_state(shared_state<R>& state, F& fn)
    {
        try
        {
            if constexpr (std::is_void_v<R>)
            {
                fn();
                state.set_value();
            }
            else
            {
                state.set_value(fn());
            }
        }
        catch (...)
        {
            state.set_exception(std::current_exception());
        }
    }

    // Single-block task frame: shared_state<R> (refcount, readiness,
    // result slot, continuation hook) plus the bound closure, co-located
    // in one pooled allocation sized at compile time.
    template <typename R, typename F>
    class task_frame final : public shared_state<R>
    {
    public:
        explicit task_frame(F&& fn) : fn_(std::move(fn)) {}

        void run() noexcept
        {
            run_into_state<R>(*this, *fn_);
            fn_.reset();    // release captured state eagerly
        }

    private:
        void dispose() noexcept override
        {
            void* mem = this;
            this->~task_frame();
            frame_deallocate(mem, sizeof(task_frame));
        }

        void run_deferred_body() override { run(); }

        std::optional<F> fn_;
    };

    // The scheduler the calling context should spawn into: the worker's
    // own scheduler if on a worker, otherwise the global runtime's (set
    // by the runtime singleton, see runtime.hpp).
    scheduler& spawn_target();

    // Same lookup, null when no runtime exists (sync/deferred work
    // without one, but still honor the spawn-path knob when they can).
    scheduler* spawn_target_ptr() noexcept;

}    // namespace detail

template <typename F, typename... Ts>
auto async(launch policy, F&& f, Ts&&... ts)
{
    using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Ts>...>;

    auto bound = [fn = std::forward<F>(f),
                     args = std::make_tuple(std::forward<Ts>(ts)...)]() mutable
        -> R { return std::apply(std::move(fn), std::move(args)); };
    using B = decltype(bound);

    if (policy == launch::async || policy == launch::fork)
    {
        scheduler& sched = detail::spawn_target();
        bool const front = policy == launch::fork;
        char const* const name = front ? "async(fork)" : "async";
        future<R> result;

        if (sched.config().spawn == scheduler_config::spawn_path::legacy)
        {
            // A/B baseline: heap state, closure spilled by the capture
            // when it outgrows the thunk's inline buffer.
            detail::state_ptr<detail::shared_state<R>> state(
                new detail::shared_state<R>());
            sched.spawn(
                [state, b = std::move(bound)]() mutable {
                    detail::run_into_state<R>(*state, b);
                },
                name, threads::thread_priority::normal, front);
            result = future<R>(std::move(state));
        }
        else
        {
            auto frame =
                detail::make_pooled_frame<detail::task_frame<R, B>>(
                    std::move(bound));
            sched.spawn([p = frame]() mutable { p->run(); }, name,
                threads::thread_priority::normal, front);
            result = future<R>(std::move(frame));
        }

        if (front)
        {
            // Continuation stealing: the child is at the hot end of our
            // queue; step aside so it runs next while *we* (the parent
            // continuation) become stealable at the back.
            if (scheduler::current_task() &&
                scheduler::current_scheduler() == &sched)
            {
                sched.yield_current(/*to_back=*/true);
            }
        }
        return result;
    }

    // sync / deferred run outside the scheduler. sync honors the legacy
    // A/B baseline (heap state, as before the frame pool); deferred is
    // single-block either way — it needs the frame's closure slot.
    if (policy == launch::sync)
    {
        if (scheduler* sched = detail::spawn_target_ptr(); sched &&
            sched->config().spawn == scheduler_config::spawn_path::legacy)
        {
            detail::state_ptr<detail::shared_state<R>> state(
                new detail::shared_state<R>());
            detail::run_into_state<R>(*state, bound);
            return future<R>(std::move(state));
        }
        auto frame = detail::make_pooled_frame<detail::task_frame<R, B>>(
            std::move(bound));
        frame->run();
        return future<R>(std::move(frame));
    }
    auto frame = detail::make_pooled_frame<detail::task_frame<R, B>>(
        std::move(bound));
    frame->set_deferred();
    return future<R>(std::move(frame));
}

template <typename F, typename... Ts,
    typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, launch>>>
auto async(F&& f, Ts&&... ts)
{
    return async(launch::async, std::forward<F>(f), std::forward<Ts>(ts)...);
}

// Fire-and-forget task (no future allocation).
template <typename F>
void apply(F&& f)
{
    detail::spawn_target().spawn(std::forward<F>(f), "apply");
}

}    // namespace minihpx
