// async() with HPX launch policies.
//
// Table II of the paper: porting Inncabs is (almost) only the namespace
// change std::async -> hpx::async. The std semantics are preserved;
// `fork` is the HPX 0.9.11 addition the paper evaluates: continuation
// stealing instead of (default) child stealing for strict fork/join.
#pragma once

#include <minihpx/future.hpp>
#include <minihpx/runtime/scheduler.hpp>

#include <exception>
#include <functional>
#include <memory>
#include <tuple>
#include <type_traits>
#include <utility>

namespace minihpx {

enum class launch : std::uint8_t
{
    async = 1,       // new task, child-stealing order (parent continues)
    deferred = 2,    // lazy; runs inline in the first waiter
    fork = 4,        // new task runs first, parent continuation stealable
    sync = 8,        // run inline immediately
};

namespace detail {

    template <typename R, typename F>
    void run_into_state(std::shared_ptr<shared_state<R>> const& state, F& fn)
    {
        try
        {
            if constexpr (std::is_void_v<R>)
            {
                fn();
                state->set_value();
            }
            else
            {
                state->set_value(fn());
            }
        }
        catch (...)
        {
            state->set_exception(std::current_exception());
        }
    }

    // The scheduler the calling context should spawn into: the worker's
    // own scheduler if on a worker, otherwise the global runtime's (set
    // by the runtime singleton, see runtime.hpp).
    scheduler& spawn_target();

}    // namespace detail

template <typename F, typename... Ts>
auto async(launch policy, F&& f, Ts&&... ts)
{
    using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Ts>...>;

    auto bound = [fn = std::forward<F>(f),
                     args = std::make_tuple(std::forward<Ts>(ts)...)]() mutable
        -> R { return std::apply(std::move(fn), std::move(args)); };

    auto state = std::make_shared<detail::shared_state<R>>();

    switch (policy)
    {
    case launch::sync:
        detail::run_into_state(state, bound);
        break;

    case launch::deferred:
        state->set_deferred([state, b = std::move(bound)]() mutable {
            detail::run_into_state(state, b);
        });
        break;

    case launch::fork:
    {
        scheduler& sched = detail::spawn_target();
        sched.spawn(
            [state, b = std::move(bound)]() mutable {
                detail::run_into_state(state, b);
            },
            "async(fork)", threads::thread_priority::normal,
            /*front=*/true);
        // Continuation stealing: the child is at the hot end of our
        // queue; step aside so it runs next while *we* (the parent
        // continuation) become stealable at the back.
        if (scheduler::current_task() &&
            scheduler::current_scheduler() == &sched)
        {
            sched.yield_current(/*to_back=*/true);
        }
        break;
    }

    case launch::async:
    default:
    {
        scheduler& sched = detail::spawn_target();
        sched.spawn([state, b = std::move(bound)]() mutable {
            detail::run_into_state(state, b);
        });
        break;
    }
    }
    return future<R>(std::move(state));
}

template <typename F, typename... Ts,
    typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, launch>>>
auto async(F&& f, Ts&&... ts)
{
    return async(launch::async, std::forward<F>(f), std::forward<Ts>(ts)...);
}

// Fire-and-forget task (no future allocation).
template <typename F>
void apply(F&& f)
{
    detail::spawn_target().spawn(std::forward<F>(f), "apply");
}

}    // namespace minihpx
