// Deterministic dTLB/LLC model priced per task footprint.
//
// The container has no PMU, so dTLB-load-miss / LLC-miss style events
// are *modeled* from the footprint fields of work_annotation, the same
// way the offcore counters are modeled from its byte totals. One pure
// function is the single source of truth: the papi virtual PMU feeds
// per-worker counters from it, and the simulator both accumulates the
// same totals into sim_report and prices the modeled TLB walks into
// virtual task time.
//
// The model (parameters default to the paper's Ivy Bridge testbed):
//
//   pages     = ceil(footprint_bytes / page_bytes)
//   reach     = tlb_entries pages (the unified second-level STLB)
//   fits      -> one walk per page: compulsory misses only
//   thrashes  -> each access misses with probability
//                ((pages - tlb_entries) / pages) / page_locality_runs
//
// `page_locality_runs` models spatial locality: even a thrashing
// strided walk issues runs of consecutive same-page accesses, so only
// ~1/runs of the accesses touch a "new" page. With runs = 8 an
// untiled 512..3072-square matmul lands in the 1-12% dTLB-load-miss
// band the tiled-matmul profiles in SNIPPETS.md measure (7.4-7.7% at
// 3000), while a 64-square tile (24-page working set, well inside the
// 512-entry reach) pays only its 24 compulsory walks — the ~100x
// miss-rate swing tiling produces on real hardware. The LLC model is
// the same shape one level down, with cache lines for pages.
#pragma once

#include <minihpx/work.hpp>

#include <cstdint>

namespace minihpx {

struct memory_model
{
    std::uint64_t page_bytes = 4096;
    // Ivy Bridge unified second-level TLB: 512 entries -> 2 MiB reach.
    std::uint64_t tlb_entries = 512;
    // Shared L3 per socket (Table III: 25 MB).
    std::uint64_t llc_bytes = 25ull << 20;
    std::uint64_t line_bytes = 64;
    // Average run of consecutive same-page (same-line) accesses in a
    // thrashing walk; divides the thrash miss probability.
    double page_locality_runs = 8.0;
    double line_locality_runs = 8.0;
};

struct memory_traffic
{
    std::uint64_t dtlb_loads = 0;
    std::uint64_t dtlb_misses = 0;
    std::uint64_t llc_loads = 0;
    std::uint64_t llc_misses = 0;
};

inline memory_traffic model_traffic(
    memory_model const& m, work_annotation const& w) noexcept
{
    memory_traffic t;

    std::uint64_t const rd_lines =
        (w.data_rd_bytes + m.line_bytes - 1) / m.line_bytes;
    std::uint64_t const rfo_lines =
        (w.rfo_bytes + m.line_bytes - 1) / m.line_bytes;

    // Every off-core line implies at least one load; workloads that
    // annotate mem_accesses give the true (cache-hit-inclusive) count.
    // Both event families divide misses by the same access stream —
    // deriving llc_loads from one-touch traffic lines instead would peg
    // the in-cache miss rate at 1.0 (every line's only access is its
    // compulsory fill), hiding exactly the reuse tiling creates.
    t.dtlb_loads = w.mem_accesses ? w.mem_accesses : rd_lines + rfo_lines;
    t.llc_loads = t.dtlb_loads;

    if (w.footprint_bytes == 0)
        return t;    // no footprint info: compulsory-free, no misses

    auto thrash = [](std::uint64_t resident, std::uint64_t capacity,
                      std::uint64_t accesses, double runs) {
        // Compulsory: one miss per resident unit's first touch.
        std::uint64_t misses = resident < accesses ? resident : accesses;
        if (resident > capacity && accesses > 0)
        {
            double const prob =
                (static_cast<double>(resident - capacity) /
                    static_cast<double>(resident)) /
                runs;
            misses += static_cast<std::uint64_t>(
                static_cast<double>(accesses) * prob);
            if (misses > accesses)
                misses = accesses;
        }
        return misses;
    };

    std::uint64_t const pages =
        (w.footprint_bytes + m.page_bytes - 1) / m.page_bytes;
    t.dtlb_misses =
        thrash(pages, m.tlb_entries, t.dtlb_loads, m.page_locality_runs);

    std::uint64_t const resident_lines =
        (w.footprint_bytes + m.line_bytes - 1) / m.line_bytes;
    t.llc_misses = thrash(resident_lines, m.llc_bytes / m.line_bytes,
        t.llc_loads, m.line_locality_runs);
    return t;
}

}    // namespace minihpx
