// Per-task trace event model.
//
// One 32-byte POD per scheduling transition: who (task id), where
// (worker/core), when (steady-clock ns for the real runtime, virtual
// ns under minihpx::sim), what (kind) plus one kind-dependent payload
// word. Together the events of a run encode the *dynamic task graph*:
// spawn carries the parent edge, resume carries the causal wake edge
// (which task's notify made this one runnable), begin/end/suspend
// delimit the execution slices. The analysis layer (src/trace)
// reconstructs work, span/critical path and what-if projections from
// exactly this stream — nothing else is recorded.
//
// This header lives in the runtime's include tree (not src/trace)
// because the scheduler hot paths emit events directly; the high-level
// session/sink/analysis machinery layers on top in src/trace.
#pragma once

#include <cstdint>

namespace minihpx::trace {

enum class event_kind : std::uint16_t
{
    // aux = parent task id (0 for roots). Emitted where the task is
    // created, before it can run anywhere.
    spawn = 0,
    // Task starts (or continues after suspend/yield) on worker `worker`.
    begin = 1,
    // Task finished. Closes the last execution slice.
    end = 2,
    // Task blocked (future wait / mutex); slice closed.
    suspend = 3,
    // Task made runnable again; aux = id of the task whose notify woke
    // it (0 when the waker is unknown, e.g. an off-runtime thread).
    resume = 4,
    // Task moved queues by a raid; aux = victim worker id, worker = the
    // thief. Timing only — not a graph edge.
    steal = 5,
    // Cooperative yield; slice closed, task re-queued.
    yield = 6,
    // User annotation (this_task::annotate / sim_engine::trace_label).
    // In memory aux holds the `char const*` of a static string; sinks
    // intern it to a string-table id at write time.
    label = 7,
};

inline constexpr std::uint32_t kind_bit(event_kind k) noexcept
{
    return 1u << static_cast<std::uint16_t>(k);
}

// What gets recorded (--mh:trace-detail). `tasks` is the graph skeleton
// (parents + lifetimes), `sched` adds the scheduling transitions the
// span/critical-path analysis needs, `verbose` adds yields.
enum class detail_level : std::uint8_t
{
    tasks = 0,
    sched = 1,      // default
    verbose = 2,
};

inline constexpr std::uint32_t kind_mask(detail_level d) noexcept
{
    std::uint32_t mask = kind_bit(event_kind::spawn) |
        kind_bit(event_kind::begin) | kind_bit(event_kind::end) |
        kind_bit(event_kind::label);
    if (d >= detail_level::sched)
        mask |= kind_bit(event_kind::suspend) |
            kind_bit(event_kind::resume) | kind_bit(event_kind::steal);
    if (d >= detail_level::verbose)
        mask |= kind_bit(event_kind::yield);
    return mask;
}

struct event
{
    std::uint64_t t_ns = 0;     // steady-clock or sim virtual time
    std::uint64_t task = 0;     // thread_id / sim task id
    std::uint64_t aux = 0;      // kind-dependent (see event_kind)
    std::uint32_t worker = 0;   // worker/core id; ~0u = off-worker
    std::uint16_t kind = 0;     // event_kind
    std::uint16_t reserved = 0;
};

static_assert(sizeof(event) == 32, "event is sized for ring slots");

inline constexpr std::uint32_t external_worker = ~0u;

}    // namespace minihpx::trace
