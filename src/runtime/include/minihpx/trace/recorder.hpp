// Hot-path trace event recorder.
//
// One SPSC event lane per worker (producer = that worker's OS thread,
// consumer = the session's drain thread) plus one spinlock-guarded
// *external* lane for off-worker emitters (the main thread spawning
// the root task, a foreign thread fulfilling a promise). Emitting is:
// one mask test, one slot write, one release store — no allocation, no
// shared-cache-line traffic between workers. A full lane *drops and
// counts* (exposed as /trace{...}/events/dropped) instead of blocking:
// the tracer must stay inside the paper's ≲10% observation budget.
//
// Lifetime: the scheduler holds a shared_ptr and publishes a raw
// pointer for the emit fast path; replaced recorders are retired, not
// freed, until the workers have joined (scheduler::set_tracer). The
// simulator runs on one host thread and uses a plain pointer.
#pragma once

#include <minihpx/trace/event.hpp>
#include <minihpx/util/lock_registry.hpp>
#include <minihpx/util/spinlock.hpp>
#include <minihpx/util/spsc_ring.hpp>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace minihpx::trace {

class recorder
{
public:
    // `worker_lanes` producers with dedicated lanes; one extra shared
    // lane is appended for emit_external().
    recorder(std::uint32_t worker_lanes, std::size_t lane_capacity,
        detail_level detail)
      : detail_(detail)
      , mask_(kind_mask(detail))
      , worker_lanes_(worker_lanes)
    {
        lanes_.reserve(worker_lanes + 1u);
        for (std::uint32_t i = 0; i < worker_lanes + 1u; ++i)
            lanes_.push_back(std::make_unique<lane>(lane_capacity));
    }

    recorder(recorder const&) = delete;
    recorder& operator=(recorder const&) = delete;

    detail_level detail() const noexcept { return detail_; }
    bool wants(event_kind k) const noexcept
    {
        return (mask_ & kind_bit(k)) != 0;
    }

    std::uint32_t worker_lanes() const noexcept { return worker_lanes_; }
    std::uint32_t lanes() const noexcept
    {
        return static_cast<std::uint32_t>(lanes_.size());
    }

    // Producer side. `lane` must be < worker_lanes() and owned by the
    // calling thread (the per-worker SPSC contract).
    void emit(std::uint32_t lane_index, event const& e) noexcept
    {
        if (!(mask_ & kind_bit(static_cast<event_kind>(e.kind))))
            return;
        push(*lanes_[lane_index], e);
    }

    // Any-thread emit; serialized internally on the external lane and
    // stamped with the sentinel worker id.
    void emit_external(event const& e) noexcept
    {
        if (!(mask_ & kind_bit(static_cast<event_kind>(e.kind))))
            return;
        event stamped = e;
        stamped.worker = external_worker;
        std::lock_guard lock(external_lock_);
        push(*lanes_[worker_lanes_], stamped);
    }

    // Single-threaded deployments (the simulator) install a handler
    // that drains inline instead of dropping; it fires *before* the
    // push that would drop. Must not be used while multi-threaded
    // producers are live.
    void set_overflow_handler(std::function<void()> handler)
    {
        overflow_ = std::move(handler);
    }

    // Consumer side: pop every currently-visible event of one lane in
    // one batch (single head/tail synchronization).
    template <typename F>
    std::size_t drain(std::uint32_t lane_index, F&& fn)
    {
        return lanes_[lane_index]->ring.pop_all(std::forward<F>(fn));
    }

    // ---- aggregates (feed the /trace{...} counters) -------------------
    std::uint64_t events_recorded() const noexcept
    {
        std::uint64_t total = 0;
        for (auto const& l : lanes_)
            total += l->ring.pushed();
        return total;
    }

    std::uint64_t events_dropped() const noexcept
    {
        std::uint64_t total = 0;
        for (auto const& l : lanes_)
            total += l->ring.dropped();
        return total;
    }

    std::uint64_t tasks_spawned() const noexcept
    {
        std::uint64_t total = 0;
        for (auto const& l : lanes_)
            total += l->spawned.load(std::memory_order_relaxed);
        return total;
    }

private:
    struct lane
    {
        explicit lane(std::size_t capacity)
          : ring(capacity)
        {
        }
        util::spsc_ring<event> ring;
        std::atomic<std::uint64_t> spawned{0};
    };

    void push(lane& l, event const& e) noexcept
    {
        if (static_cast<event_kind>(e.kind) == event_kind::spawn)
            l.spawned.fetch_add(1, std::memory_order_relaxed);
        if (overflow_ && l.ring.full())
            overflow_();
        (void) l.ring.push(e);    // a false return was counted as a drop
    }

    detail_level const detail_;
    std::uint32_t const mask_;
    std::uint32_t const worker_lanes_;
    std::vector<std::unique_ptr<lane>> lanes_;
    util::spinlock external_lock_{
        util::lock_rank::trace_external, "trace-external-lane"};
    std::function<void()> overflow_;
};

}    // namespace minihpx::trace
