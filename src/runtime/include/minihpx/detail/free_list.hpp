// Intrusive free lists for recycled fixed-size blocks.
//
// Extracted from frame_pool.cpp so the transfer protocol — worker-local
// LIFO caches spilling/refilling a spinlock-guarded global list in
// batches — is a reusable, model-checkable primitive:
//
//   free_list          unsynchronized intrusive LIFO over the blocks
//                      themselves (a freed block doubles as its own
//                      link node). Used for the thread-local caches,
//                      where only the owner ever touches the list.
//   shared_free_list   the same list behind a basic_spinlock<Policy>,
//                      with batched splice-in/splice-out so one lock
//                      round-trip moves `batch` blocks. minihpx::mc
//                      instantiates it over model atomics and checks
//                      that concurrent spill/refill never loses or
//                      duplicates a block (tests/test_mc.cpp), and that
//                      the spinlock's unlock_relaxed mutant surfaces as
//                      a race on the list head.
//
// Blocks handed to these lists must be at least sizeof(void*) and
// suitably aligned — the caller's size classes guarantee that.
#pragma once

#include <minihpx/util/atomics_policy.hpp>
#include <minihpx/util/spinlock.hpp>

#include <cstddef>

namespace minihpx::detail {

// Unsynchronized intrusive LIFO; the owner provides all exclusion.
class free_list
{
public:
    struct node
    {
        node* next;
    };

    bool empty() const noexcept { return head_ == nullptr; }
    std::size_t size() const noexcept { return size_; }

    void push(void* block) noexcept
    {
        auto* n = static_cast<node*>(block);
        n->next = head_;
        head_ = n;
        ++size_;
    }

    void* pop() noexcept
    {
        node* n = head_;
        if (n)
        {
            head_ = n->next;
            --size_;
        }
        return n;
    }

    // Detach the whole chain (e.g. to free it outside a lock). The
    // caller walks it via next_of().
    node* drain() noexcept
    {
        node* chain = head_;
        head_ = nullptr;
        size_ = 0;
        return chain;
    }

    static node* next_of(node* n) noexcept { return n->next; }

private:
    node* head_ = nullptr;
    std::size_t size_ = 0;
};

// Spinlock-guarded free list with batched transfer. All methods are
// thread-safe; the batch operations take the lock once per call.
template <typename Policy = util::std_atomics_policy,
    unsigned LockMutant = util::spinlock_mutation::none>
class shared_free_list
{
public:
    shared_free_list() noexcept = default;

    explicit shared_free_list(unsigned rank, char const* name) noexcept
      : lock_(rank, name)
    {
    }

    std::size_t size() const noexcept
    {
        std::lock_guard lock(lock_);
        return list_.size();
    }

    void push(void* block) noexcept
    {
        std::lock_guard lock(lock_);
        list_.push(block);
    }

    void* pop() noexcept
    {
        std::lock_guard lock(lock_);
        return list_.pop();
    }

    // Move up to `max_take` blocks into `dst`; returns the number moved.
    std::size_t refill(free_list& dst, std::size_t max_take) noexcept
    {
        std::lock_guard lock(lock_);
        std::size_t taken = 0;
        while (taken < max_take)
        {
            void* block = list_.pop();
            if (!block)
                break;
            dst.push(block);
            ++taken;
        }
        return taken;
    }

    // Splice a caller-built chain in, then detach whatever exceeds
    // `high_water` as a chain the caller frees outside the lock.
    free_list::node* spill(
        free_list::node* chain, std::size_t high_water) noexcept
    {
        std::lock_guard lock(lock_);
        while (chain)
        {
            free_list::node* n = chain;
            chain = free_list::next_of(n);
            list_.push(n);
        }
        free_list::node* surplus = nullptr;
        while (list_.size() > high_water)
        {
            auto* n = static_cast<free_list::node*>(list_.pop());
            n->next = surplus;
            surplus = n;
        }
        return surplus;
    }

    // Detach everything (trim path); freed by the caller.
    free_list::node* drain() noexcept
    {
        std::lock_guard lock(lock_);
        return list_.drain();
    }

private:
    mutable util::basic_spinlock<Policy, LockMutant> lock_;
    free_list list_;
};

}    // namespace minihpx::detail
