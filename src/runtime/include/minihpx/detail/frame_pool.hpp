// Pooled storage for task frames and future shared states.
//
// The spawn fast path must not touch the global allocator: a
// minihpx::async() at Table V granularity (~1 µs of work) would spend
// a visible fraction of its budget inside malloc, and every worker
// would contend on the same arena. Frames are therefore carved from a
// size-classed pool with per-thread caches: allocation pops from the
// calling thread's cache, falls back to a batch refill from a global
// list, and only then touches ::operator new. Deallocation pushes to
// the local cache and batch-spills surplus to the global list, whose
// high-water trim keeps memory bounded when producers and consumers
// are different threads.
//
// The pool feeds the paper-style object counters
// /runtime{locality#H/total}/memory/frame-recycle-hits and
// /runtime{locality#H/total}/memory/allocations (thread_counters.cpp;
// H = perf::this_locality(), spelled via perf::locality_prefix).
#pragma once

#include <cstddef>
#include <cstdint>

namespace minihpx::detail {

// Aggregated over all thread caches (live and exited) + global pool.
struct frame_pool_stats
{
    std::uint64_t cache_hits = 0;      // blocks served without malloc
    std::uint64_t allocations = 0;     // ::operator new calls
    std::uint64_t deallocations = 0;   // ::operator delete calls
    std::uint64_t recycles = 0;        // blocks returned to a cache
    std::uint64_t cached_blocks = 0;   // blocks currently pooled
};

// Storage for a frame of `bytes` bytes, aligned for max_align_t.
// Never returns nullptr (throws std::bad_alloc on exhaustion).
void* frame_allocate(std::size_t bytes);

// Return a block obtained from frame_allocate. `bytes` must be the
// size passed to the matching allocate (frames know their dynamic
// type, so the size is statically available at every release site).
void frame_deallocate(void* p, std::size_t bytes) noexcept;

frame_pool_stats frame_pool_totals() noexcept;

// Drop every block cached by the calling thread and the global pool
// back to the OS. Caches refill lazily afterwards.
void frame_pool_trim() noexcept;

}    // namespace minihpx::detail
