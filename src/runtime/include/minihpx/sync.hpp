// Task-aware synchronization primitives.
//
// minihpx::mutex parks the *task*, not the OS thread: a worker whose
// task blocks on a lock immediately runs other tasks. Locking from a
// non-task OS thread degrades to spin-yield (used by tests/main only).
// Shapes mirror the std types so Inncabs ports stay namespace swaps
// (paper Table II: std::mutex -> hpx::lcos::local::mutex).
#pragma once

#include <minihpx/async.hpp>
#include <minihpx/runtime/scheduler.hpp>
#include <minihpx/util/lock_registry.hpp>
#include <minihpx/util/spinlock.hpp>

#include <cstdint>
#include <mutex>
#include <thread>

namespace minihpx {

namespace detail {

    // Intrusive FIFO of suspended tasks (uses thread_data::next, which
    // is otherwise unused while a task is suspended).
    class task_wait_list
    {
    public:
        void push(threads::thread_data* task) noexcept
        {
            task->next = nullptr;
            if (tail_)
                tail_->next = task;
            else
                head_ = task;
            tail_ = task;
        }

        threads::thread_data* pop() noexcept
        {
            threads::thread_data* task = head_;
            if (task)
            {
                head_ = task->next;
                if (!head_)
                    tail_ = nullptr;
                task->next = nullptr;
            }
            return task;
        }

        bool empty() const noexcept { return head_ == nullptr; }

    private:
        threads::thread_data* head_ = nullptr;
        threads::thread_data* tail_ = nullptr;
    };

}    // namespace detail

class mutex
{
public:
    mutex() = default;
    mutex(mutex const&) = delete;
    mutex& operator=(mutex const&) = delete;

    void lock();
    bool try_lock();
    void unlock();

private:
    util::spinlock guard_{util::lock_rank::sync_guard, "minihpx::mutex"};
    bool locked_ = false;
    detail::task_wait_list waiters_;
};

class condition_variable
{
public:
    condition_variable() = default;
    condition_variable(condition_variable const&) = delete;

    // Only valid from task context with `lock` held.
    void wait(std::unique_lock<mutex>& lock);

    template <typename Pred>
    void wait(std::unique_lock<mutex>& lock, Pred pred)
    {
        while (!pred())
            wait(lock);
    }

    void notify_one();
    void notify_all();

private:
    util::spinlock guard_{
        util::lock_rank::sync_guard, "minihpx::condition_variable"};
    detail::task_wait_list waiters_;
};

// Single-use countdown; wait() is task-aware.
class latch
{
public:
    explicit latch(std::ptrdiff_t count) : count_(count) {}
    latch(latch const&) = delete;

    void count_down(std::ptrdiff_t n = 1);
    bool try_wait() const;
    void wait();
    void arrive_and_wait();

private:
    mutable util::spinlock guard_{
        util::lock_rank::sync_guard, "minihpx::latch"};
    std::ptrdiff_t count_;
    detail::task_wait_list waiters_;
};

// Cyclic barrier for a fixed party count.
class barrier
{
public:
    explicit barrier(std::ptrdiff_t parties) : parties_(parties), arrived_(0)
    {
    }
    barrier(barrier const&) = delete;

    void arrive_and_wait();

private:
    util::spinlock guard_{util::lock_rank::sync_guard, "minihpx::barrier"};
    std::ptrdiff_t parties_;
    std::ptrdiff_t arrived_;
    std::uint64_t generation_ = 0;
    detail::task_wait_list waiters_;
};

class counting_semaphore
{
public:
    explicit counting_semaphore(std::ptrdiff_t initial) : count_(initial) {}
    counting_semaphore(counting_semaphore const&) = delete;

    void acquire();
    bool try_acquire();
    void release(std::ptrdiff_t n = 1);

private:
    util::spinlock guard_{
        util::lock_rank::sync_guard, "minihpx::counting_semaphore"};
    std::ptrdiff_t count_;
    detail::task_wait_list waiters_;
};

// hpx::thread lookalike: a joinable handle around a spawned task
// (paper Table II: std::thread -> hpx::thread).
class thread
{
public:
    thread() noexcept = default;

    template <typename F>
    explicit thread(F&& f);

    thread(thread&& other) noexcept = default;
    thread& operator=(thread&& other) noexcept;
    thread(thread const&) = delete;

    ~thread();

    bool joinable() const noexcept { return static_cast<bool>(done_); }
    void join();
    void detach() noexcept { done_.reset(); }

private:
    detail::state_ptr<detail::shared_state<void>> done_;
};

template <typename F>
thread::thread(F&& f)
  : done_(detail::make_state<void>())
{
    detail::spawn_target().spawn(
        [state = done_, fn = std::forward<F>(f)]() mutable {
            detail::run_into_state<void>(*state, fn);
        },
        "thread");
}

inline thread& thread::operator=(thread&& other) noexcept
{
    MINIHPX_ASSERT_MSG(!joinable(), "assigning over a joinable thread");
    done_ = std::move(other.done_);
    return *this;
}

inline thread::~thread()
{
    MINIHPX_ASSERT_MSG(!joinable(), "destroying a joinable minihpx::thread");
}

inline void thread::join()
{
    MINIHPX_ASSERT(joinable());
    auto state = std::move(done_);
    state->wait();
    state->rethrow_if_exception();
}

}    // namespace minihpx
