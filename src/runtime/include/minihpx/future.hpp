// Futures with task-aware blocking.
//
// The crucial difference from std::future: calling get() inside a task
// does not block the OS thread. The task suspends (its stackful context
// parks off the worker) and the worker immediately executes other work;
// set_value resumes it through the scheduler. Off-task callers (e.g.
// main) fall back to an ad-hoc condition variable. This is the
// mechanism behind Table II of the paper: the std::future -> hpx::future
// port is a pure namespace change precisely because the semantics match.
#pragma once

#include <minihpx/runtime/scheduler.hpp>
#include <minihpx/util/assert.hpp>
#include <minihpx/util/lock_registry.hpp>
#include <minihpx/util/sanitizers.hpp>
#include <minihpx/util/spinlock.hpp>
#include <minihpx/util/unique_function.hpp>

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace minihpx {

namespace detail {

    class shared_state_base
    {
    public:
        virtual ~shared_state_base() = default;

        bool is_ready() const
        {
            std::lock_guard lock(mutex_);
            return ready_;
        }

        void set_exception(std::exception_ptr e)
        {
            std::vector<util::unique_function<void()>> callbacks;
            {
                std::lock_guard lock(mutex_);
                MINIHPX_ASSERT_MSG(!ready_, "shared state satisfied twice");
                exception_ = std::move(e);
                // Handoff edge: the exception write is published to any
                // waiter that observes ready_ (the state lock carries
                // it; see mark_ready_locked_region for the value case).
                MINIHPX_ANNOTATE_HAPPENS_BEFORE(this);
                ready_ = true;
                callbacks.swap(callbacks_);
            }
            for (auto& cb : callbacks)
                cb();
        }

        // Run `cb` when the state becomes ready; immediately if already.
        template <typename Callback>
        void when_ready(Callback&& cb)
        {
            {
                std::unique_lock lock(mutex_);
                if (!ready_)
                {
                    callbacks_.emplace_back(std::forward<Callback>(cb));
                    return;
                }
            }
            cb();
        }

        // Blocks (task-aware) until ready. Runs deferred work if this
        // state was created by launch::deferred.
        void wait()
        {
            run_deferred();

            if (is_ready())
            {
                MINIHPX_ANNOTATE_HAPPENS_AFTER(this);
                return;
            }

            scheduler* sched = scheduler::current_scheduler();
            if (sched && scheduler::current_task())
            {
                wait_on_task(*sched);
            }
            else
            {
                wait_on_os_thread();
            }
            // The producer's set_value/set_exception happened before
            // any value/exception read that follows this wait.
            MINIHPX_ANNOTATE_HAPPENS_AFTER(this);
        }

        void rethrow_if_exception() const
        {
            if (exception_)
                std::rethrow_exception(exception_);
        }

        // launch::deferred support: the thunk is run by the first waiter.
        void set_deferred(util::unique_function<void()> thunk)
        {
            std::lock_guard lock(mutex_);
            deferred_ = std::move(thunk);
        }

        bool has_deferred() const
        {
            std::lock_guard lock(mutex_);
            return static_cast<bool>(deferred_);
        }

        void run_deferred()
        {
            util::unique_function<void()> thunk;
            {
                std::lock_guard lock(mutex_);
                if (!deferred_)
                    return;
                thunk = std::move(deferred_);
                deferred_.reset();
            }
            thunk();    // satisfies the state via set_value/set_exception
        }

    protected:
        void mark_ready_locked_region()
        {
            std::vector<util::unique_function<void()>> callbacks;
            {
                std::lock_guard lock(mutex_);
                MINIHPX_ASSERT_MSG(!ready_, "shared state satisfied twice");
                // Handoff edge: the value written by set_value (under
                // this same lock) is released to every waiter that
                // subsequently observes ready_ and to every queued
                // callback (which runs after the unlock below).
                MINIHPX_ANNOTATE_HAPPENS_BEFORE(this);
                ready_ = true;
                callbacks.swap(callbacks_);
            }
            for (auto& cb : callbacks)
                cb();
        }

        mutable util::spinlock mutex_{
            util::lock_rank::future_state, "future-shared-state"};
        bool ready_ = false;
        std::exception_ptr exception_;
        std::vector<util::unique_function<void()>> callbacks_;
        util::unique_function<void()> deferred_;

    private:
        void wait_on_task(scheduler& sched)
        {
            while (!is_ready())
            {
                sched.suspend_current([this, &sched](
                                          threads::thread_data* self) {
                    bool run_now = false;
                    {
                        std::lock_guard lock(mutex_);
                        if (ready_)
                            run_now = true;
                        else
                            callbacks_.emplace_back([&sched, self] {
                                sched.resume(self);
                            });
                    }
                    if (run_now)
                        sched.resume(self);    // handshake handles the race
                });
            }
        }

        void wait_on_os_thread()
        {
            struct os_waiter
            {
                std::mutex m;
                std::condition_variable cv;
                bool done = false;
            };
            auto waiter = std::make_shared<os_waiter>();
            when_ready([waiter] {
                {
                    std::lock_guard lock(waiter->m);
                    waiter->done = true;
                }
                waiter->cv.notify_one();
            });
            std::unique_lock lock(waiter->m);
            waiter->cv.wait(lock, [&] { return waiter->done; });
        }
    };

    template <typename T>
    class shared_state final : public shared_state_base
    {
    public:
        template <typename U>
        void set_value(U&& value)
        {
            {
                std::lock_guard lock(mutex_);
                MINIHPX_ASSERT_MSG(
                    !value_ && !ready_, "shared state satisfied twice");
                value_.emplace(std::forward<U>(value));
            }
            mark_ready_locked_region();
        }

        // One-shot move-out (future::get).
        T take_value()
        {
            rethrow_if_exception();
            MINIHPX_ASSERT(value_.has_value());
            T result = std::move(*value_);
            value_.reset();
            return result;
        }

        // Shared access (shared_future::get).
        T const& ref_value() const
        {
            rethrow_if_exception();
            MINIHPX_ASSERT(value_.has_value());
            return *value_;
        }

    private:
        std::optional<T> value_;
    };

    template <>
    class shared_state<void> final : public shared_state_base
    {
    public:
        void set_value() { mark_ready_locked_region(); }
        void take_value()
        {
            rethrow_if_exception();
        }
        void ref_value() const
        {
            rethrow_if_exception();
        }
    };

}    // namespace detail

template <typename T>
class shared_future;

template <typename T>
class future
{
public:
    future() noexcept = default;
    explicit future(std::shared_ptr<detail::shared_state<T>> state) noexcept
      : state_(std::move(state))
    {
    }

    future(future&&) noexcept = default;
    future& operator=(future&&) noexcept = default;
    future(future const&) = delete;
    future& operator=(future const&) = delete;

    bool valid() const noexcept { return static_cast<bool>(state_); }
    bool is_ready() const
    {
        MINIHPX_ASSERT(valid());
        return state_->is_ready();
    }

    void wait() const
    {
        MINIHPX_ASSERT(valid());
        state_->wait();
    }

    T get()
    {
        MINIHPX_ASSERT(valid());
        auto state = std::move(state_);
        state->wait();
        return state->take_value();
    }

    shared_future<T> share() noexcept;

    // Attach a continuation; runs inline in the context that satisfies
    // the state (or immediately if already ready). f receives the ready
    // future by value.
    template <typename F>
    auto then(F&& f) -> future<std::invoke_result_t<F, future<T>>>;

    std::shared_ptr<detail::shared_state<T>> const& state() const noexcept
    {
        return state_;
    }

private:
    std::shared_ptr<detail::shared_state<T>> state_;
};

template <typename T>
class shared_future
{
public:
    shared_future() noexcept = default;
    explicit shared_future(
        std::shared_ptr<detail::shared_state<T>> state) noexcept
      : state_(std::move(state))
    {
    }
    shared_future(future<T>&& f) noexcept : state_(f.state()) {}

    bool valid() const noexcept { return static_cast<bool>(state_); }
    bool is_ready() const { return state_->is_ready(); }
    void wait() const { state_->wait(); }

    decltype(auto) get() const
    {
        state_->wait();
        return state_->ref_value();
    }

private:
    std::shared_ptr<detail::shared_state<T>> state_;
};

template <typename T>
shared_future<T> future<T>::share() noexcept
{
    return shared_future<T>(std::move(state_));
}

template <typename T>
class promise
{
public:
    promise() : state_(std::make_shared<detail::shared_state<T>>()) {}

    promise(promise&&) noexcept = default;
    promise& operator=(promise&&) noexcept = default;
    promise(promise const&) = delete;
    promise& operator=(promise const&) = delete;

    future<T> get_future()
    {
        MINIHPX_ASSERT_MSG(!future_taken_, "get_future called twice");
        future_taken_ = true;
        return future<T>(state_);
    }

    template <typename U = T>
    void set_value(U&& value)
    {
        state_->set_value(std::forward<U>(value));
    }

    void set_exception(std::exception_ptr e)
    {
        state_->set_exception(std::move(e));
    }

    std::shared_ptr<detail::shared_state<T>> const& state() const noexcept
    {
        return state_;
    }

private:
    std::shared_ptr<detail::shared_state<T>> state_;
    bool future_taken_ = false;
};

template <>
class promise<void>
{
public:
    promise() : state_(std::make_shared<detail::shared_state<void>>()) {}

    promise(promise&&) noexcept = default;
    promise& operator=(promise&&) noexcept = default;

    future<void> get_future()
    {
        MINIHPX_ASSERT_MSG(!future_taken_, "get_future called twice");
        future_taken_ = true;
        return future<void>(state_);
    }

    void set_value() { state_->set_value(); }
    void set_exception(std::exception_ptr e)
    {
        state_->set_exception(std::move(e));
    }

    std::shared_ptr<detail::shared_state<void>> const& state() const noexcept
    {
        return state_;
    }

private:
    std::shared_ptr<detail::shared_state<void>> state_;
    bool future_taken_ = false;
};

template <typename T>
template <typename F>
auto future<T>::then(F&& f) -> future<std::invoke_result_t<F, future<T>>>
{
    using R = std::invoke_result_t<F, future<T>>;
    MINIHPX_ASSERT(valid());
    auto next = std::make_shared<detail::shared_state<R>>();
    auto state = std::move(state_);
    state->when_ready(
        [state, next, fn = std::forward<F>(f)]() mutable {
            try
            {
                if constexpr (std::is_void_v<R>)
                {
                    fn(future<T>(std::move(state)));
                    next->set_value();
                }
                else
                {
                    next->set_value(fn(future<T>(std::move(state))));
                }
            }
            catch (...)
            {
                next->set_exception(std::current_exception());
            }
        });
    return future<R>(std::move(next));
}

// ------------------------------------------------------------- helpers

template <typename T>
future<std::decay_t<T>> make_ready_future(T&& value)
{
    auto state = std::make_shared<detail::shared_state<std::decay_t<T>>>();
    state->set_value(std::forward<T>(value));
    return future<std::decay_t<T>>(std::move(state));
}

inline future<void> make_ready_future()
{
    auto state = std::make_shared<detail::shared_state<void>>();
    state->set_value();
    return future<void>(std::move(state));
}

// Block (task-aware) until every future in [first, last) is ready.
template <typename Iterator>
void wait_all(Iterator first, Iterator last)
{
    for (; first != last; ++first)
        first->wait();
}

template <typename Container>
void wait_all(Container& futures)
{
    wait_all(futures.begin(), futures.end());
}

// when_all over a vector: ready when all inputs are; hands the inputs
// back through the result so values/exceptions stay observable.
template <typename T>
future<std::vector<future<T>>> when_all(std::vector<future<T>>&& futures)
{
    struct all_state
    {
        std::atomic<std::size_t> remaining;
        std::vector<future<T>> inputs;
        std::shared_ptr<detail::shared_state<std::vector<future<T>>>> out;
    };
    auto out =
        std::make_shared<detail::shared_state<std::vector<future<T>>>>();
    if (futures.empty())
    {
        out->set_value(std::vector<future<T>>{});
        return future<std::vector<future<T>>>(std::move(out));
    }

    auto shared = std::make_shared<all_state>();
    shared->remaining.store(futures.size(), std::memory_order_relaxed);
    shared->inputs = std::move(futures);
    shared->out = out;

    for (auto& f : shared->inputs)
    {
        f.state()->when_ready([shared] {
            if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                1)
            {
                shared->out->set_value(std::move(shared->inputs));
            }
        });
    }
    return future<std::vector<future<T>>>(std::move(out));
}

}    // namespace minihpx
