// Futures with task-aware blocking.
//
// The crucial difference from std::future: calling get() inside a task
// does not block the OS thread. The task suspends (its stackful context
// parks off the worker) and the worker immediately executes other work;
// set_value resumes it through the scheduler. Off-task callers (e.g.
// main) fall back to an ad-hoc condition variable. This is the
// mechanism behind Table II of the paper: the std::future -> hpx::future
// port is a pure namespace change precisely because the semantics match.
//
// Allocation model: shared states carry an intrusive refcount and live
// in pooled frame storage (detail/frame_pool.hpp), handled through
// detail::state_ptr — an 8-byte intrusive smart pointer. async() derives
// task_frame<R, F> from shared_state<R> so result slot, continuation
// hook and bound closure share one recycled block; a steady-state
// spawn/run/complete cycle performs zero heap allocations
// (bench/spawn_latency asserts this). The first continuation is stored
// in an inline slot, so a single waiter — by far the common case —
// never grows a vector.
#pragma once

#include <minihpx/detail/frame_pool.hpp>
#include <minihpx/runtime/scheduler.hpp>
#include <minihpx/util/assert.hpp>
#include <minihpx/util/lock_registry.hpp>
#include <minihpx/util/refcount.hpp>
#include <minihpx/util/sanitizers.hpp>
#include <minihpx/util/spinlock.hpp>
#include <minihpx/util/unique_function.hpp>

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace minihpx {

namespace detail {

    // Intrusive smart pointer over shared_state_base descendants. The
    // explicit raw-pointer constructor *adopts* the creator reference
    // (states are born with refcount 1); copies add_ref, destruction
    // releases. 8 bytes, so closures capturing one stay inside
    // unique_function's inline buffer.
    template <typename T>
    class state_ptr
    {
    public:
        state_ptr() noexcept = default;
        state_ptr(std::nullptr_t) noexcept {}

        // Adopting: takes over the initial (or an already-counted)
        // reference without bumping the refcount.
        explicit state_ptr(T* adopted) noexcept : p_(adopted) {}

        state_ptr(state_ptr const& other) noexcept : p_(other.p_)
        {
            if (p_)
                p_->add_ref();
        }

        state_ptr(state_ptr&& other) noexcept
          : p_(std::exchange(other.p_, nullptr))
        {
        }

        // Converting copy/move (derived frame -> base state).
        template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
        state_ptr(state_ptr<U> const& other) noexcept : p_(other.get())
        {
            if (p_)
                p_->add_ref();
        }

        template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
        state_ptr(state_ptr<U>&& other) noexcept : p_(other.detach())
        {
        }

        state_ptr& operator=(state_ptr const& other) noexcept
        {
            state_ptr(other).swap(*this);
            return *this;
        }

        state_ptr& operator=(state_ptr&& other) noexcept
        {
            state_ptr(std::move(other)).swap(*this);
            return *this;
        }

        ~state_ptr() { reset(); }

        void reset() noexcept
        {
            if (T* p = std::exchange(p_, nullptr))
                p->release();
        }

        void swap(state_ptr& other) noexcept { std::swap(p_, other.p_); }

        // Hand the reference over to the caller (no release).
        T* detach() noexcept { return std::exchange(p_, nullptr); }

        T* get() const noexcept { return p_; }
        T& operator*() const noexcept { return *p_; }
        T* operator->() const noexcept { return p_; }
        explicit operator bool() const noexcept { return p_ != nullptr; }

        friend bool operator==(
            state_ptr const& a, state_ptr const& b) noexcept
        {
            return a.p_ == b.p_;
        }

    private:
        T* p_ = nullptr;
    };

    class shared_state_base
    {
    public:
        shared_state_base() = default;
        shared_state_base(shared_state_base const&) = delete;
        shared_state_base& operator=(shared_state_base const&) = delete;
        virtual ~shared_state_base() = default;

        // ---- intrusive lifetime ---------------------------------------
        // The count protocol (orders, zero-detection) lives in
        // util::basic_refcount, where minihpx::mc checks it.
        void add_ref() noexcept { refs_.add_ref(); }

        void release() noexcept
        {
            refs_.release([this]() noexcept { dispose(); });
        }

        bool is_ready() const
        {
            std::lock_guard lock(mutex_);
            return ready_;
        }

        void set_exception(std::exception_ptr e)
        {
            {
                std::lock_guard lock(mutex_);
                MINIHPX_ASSERT_MSG(!ready_, "shared state satisfied twice");
                exception_ = std::move(e);
            }
            mark_ready_locked_region();
        }

        // Run `cb` when the state becomes ready; immediately if already.
        template <typename Callback>
        void when_ready(Callback&& cb)
        {
            {
                std::unique_lock lock(mutex_);
                if (!ready_)
                {
                    // Inline slot for the first continuation: one
                    // waiter per future is the overwhelmingly common
                    // case and must not allocate.
                    if (!callback_)
                        callback_ = std::forward<Callback>(cb);
                    else
                        overflow_callbacks_.emplace_back(
                            std::forward<Callback>(cb));
                    return;
                }
            }
            cb();
        }

        // Blocks (task-aware) until ready. Runs deferred work if this
        // state was created by launch::deferred.
        void wait()
        {
            run_deferred();

            if (is_ready())
            {
                MINIHPX_ANNOTATE_HAPPENS_AFTER(this);
                return;
            }

            scheduler* sched = scheduler::current_scheduler();
            if (sched && scheduler::current_task())
            {
                wait_on_task(*sched);
            }
            else
            {
                wait_on_os_thread();
            }
            // The producer's set_value/set_exception happened before
            // any value/exception read that follows this wait.
            MINIHPX_ANNOTATE_HAPPENS_AFTER(this);
        }

        void rethrow_if_exception() const
        {
            if (exception_)
                std::rethrow_exception(exception_);
        }

        // launch::deferred support: the first waiter runs
        // run_deferred_body (overridden by task_frame) inline. The
        // state holds no self-referencing thunk, so a deferred future
        // dropped unwaited releases its frame normally.
        void set_deferred()
        {
            std::lock_guard lock(mutex_);
            deferred_ = true;
        }

        bool has_deferred() const
        {
            std::lock_guard lock(mutex_);
            return deferred_;
        }

        void run_deferred()
        {
            {
                std::lock_guard lock(mutex_);
                if (!deferred_)
                    return;
                deferred_ = false;
            }
            run_deferred_body();    // satisfies the state
        }

    protected:
        // Frames override this to return their block to the pool; a
        // plain heap state (the --mh:spawn-path=legacy A/B baseline)
        // uses the default.
        virtual void dispose() noexcept { delete this; }

        // launch::deferred body; only meaningful on task frames.
        virtual void run_deferred_body() {}

        void mark_ready_locked_region()
        {
            util::unique_function<void()> first;
            std::vector<util::unique_function<void()>> rest;
            {
                std::lock_guard lock(mutex_);
                MINIHPX_ASSERT_MSG(!ready_, "shared state satisfied twice");
                // Handoff edge: the value written by set_value (under
                // this same lock) is released to every waiter that
                // subsequently observes ready_ and to every queued
                // callback (which runs after the unlock below).
                MINIHPX_ANNOTATE_HAPPENS_BEFORE(this);
                ready_ = true;
                first = std::move(callback_);
                rest.swap(overflow_callbacks_);
            }
            if (first)
                first();
            for (auto& cb : rest)
                cb();
        }

        mutable util::spinlock mutex_{
            util::lock_rank::future_state, "future-shared-state"};
        bool ready_ = false;
        bool deferred_ = false;
        std::exception_ptr exception_;
        util::unique_function<void()> callback_;
        std::vector<util::unique_function<void()>> overflow_callbacks_;

    private:
        util::refcount refs_;    // born with the creator's reference

        void wait_on_task(scheduler& sched)
        {
            while (!is_ready())
            {
                sched.suspend_current([this, &sched](
                                          threads::thread_data* self) {
                    bool run_now = false;
                    {
                        std::lock_guard lock(mutex_);
                        if (ready_)
                        {
                            run_now = true;
                        }
                        else
                        {
                            auto resume_cb = [&sched, self] {
                                sched.resume(self);
                            };
                            if (!callback_)
                                callback_ = resume_cb;
                            else
                                overflow_callbacks_.emplace_back(resume_cb);
                        }
                    }
                    if (run_now)
                        sched.resume(self);    // handshake handles the race
                });
            }
        }

        void wait_on_os_thread()
        {
            // Stack-resident: the waiter cannot return before `done`
            // flips, and the notifying callback touches the waiter only
            // under its mutex — notify_one is issued before the lock is
            // released, so the waiter cannot destroy `w` mid-notify.
            struct os_waiter
            {
                std::mutex m;
                std::condition_variable cv;
                bool done = false;
            };
            os_waiter w;
            when_ready([&w] {
                std::lock_guard lock(w.m);
                w.done = true;
                w.cv.notify_one();
            });
            std::unique_lock lock(w.m);
            w.cv.wait(lock, [&] { return w.done; });
        }
    };

    template <typename T>
    class shared_state : public shared_state_base
    {
    public:
        template <typename U>
        void set_value(U&& value)
        {
            {
                std::lock_guard lock(mutex_);
                MINIHPX_ASSERT_MSG(
                    !value_ && !ready_, "shared state satisfied twice");
                value_.emplace(std::forward<U>(value));
            }
            mark_ready_locked_region();
        }

        // One-shot move-out (future::get).
        T take_value()
        {
            rethrow_if_exception();
            MINIHPX_ASSERT(value_.has_value());
            T result = std::move(*value_);
            value_.reset();
            return result;
        }

        // Shared access (shared_future::get).
        T const& ref_value() const
        {
            rethrow_if_exception();
            MINIHPX_ASSERT(value_.has_value());
            return *value_;
        }

    private:
        std::optional<T> value_;
    };

    template <>
    class shared_state<void> : public shared_state_base
    {
    public:
        void set_value() { mark_ready_locked_region(); }
        void take_value()
        {
            rethrow_if_exception();
        }
        void ref_value() const
        {
            rethrow_if_exception();
        }
    };

    // Build a pooled frame of concrete type `Frame`, returning the
    // adopting pointer. Frames must override dispose() to return
    // exactly sizeof(Frame) bytes (see pooled_state / task_frame).
    template <typename Frame, typename... Args>
    state_ptr<Frame> make_pooled_frame(Args&&... args)
    {
        void* mem = frame_allocate(sizeof(Frame));
        Frame* frame;
        try
        {
            frame = ::new (mem) Frame(std::forward<Args>(args)...);
        }
        catch (...)
        {
            frame_deallocate(mem, sizeof(Frame));
            throw;
        }
        return state_ptr<Frame>(frame);
    }

    // Plain shared state in pooled storage (promise, make_ready_future,
    // when_all results).
    template <typename T>
    class pooled_state final : public shared_state<T>
    {
    private:
        void dispose() noexcept override
        {
            void* mem = this;
            this->~pooled_state();
            frame_deallocate(mem, sizeof(pooled_state));
        }
    };

    template <typename T>
    state_ptr<shared_state<T>> make_state()
    {
        return make_pooled_frame<pooled_state<T>>();
    }

}    // namespace detail

template <typename T>
class shared_future;

template <typename T>
class future
{
public:
    future() noexcept = default;
    explicit future(detail::state_ptr<detail::shared_state<T>> state) noexcept
      : state_(std::move(state))
    {
    }

    future(future&&) noexcept = default;
    future& operator=(future&&) noexcept = default;
    future(future const&) = delete;
    future& operator=(future const&) = delete;

    bool valid() const noexcept { return static_cast<bool>(state_); }
    bool is_ready() const
    {
        MINIHPX_ASSERT(valid());
        return state_->is_ready();
    }

    void wait() const
    {
        MINIHPX_ASSERT(valid());
        state_->wait();
    }

    T get()
    {
        MINIHPX_ASSERT(valid());
        auto state = std::move(state_);
        state->wait();
        return state->take_value();
    }

    shared_future<T> share() noexcept;

    // Attach a continuation; runs inline in the context that satisfies
    // the state (or immediately if already ready). f receives the ready
    // future by value.
    template <typename F>
    auto then(F&& f) -> future<std::invoke_result_t<F, future<T>>>;

    detail::state_ptr<detail::shared_state<T>> const& state() const noexcept
    {
        return state_;
    }

private:
    detail::state_ptr<detail::shared_state<T>> state_;
};

template <typename T>
class shared_future
{
public:
    shared_future() noexcept = default;
    explicit shared_future(
        detail::state_ptr<detail::shared_state<T>> state) noexcept
      : state_(std::move(state))
    {
    }
    shared_future(future<T>&& f) noexcept : state_(f.state()) {}

    shared_future(shared_future const&) = default;
    shared_future& operator=(shared_future const&) = default;
    shared_future(shared_future&&) noexcept = default;
    shared_future& operator=(shared_future&&) noexcept = default;

    bool valid() const noexcept { return static_cast<bool>(state_); }
    bool is_ready() const { return state_->is_ready(); }
    void wait() const { state_->wait(); }

    decltype(auto) get() const
    {
        state_->wait();
        return state_->ref_value();
    }

    detail::state_ptr<detail::shared_state<T>> const& state() const noexcept
    {
        return state_;
    }

private:
    detail::state_ptr<detail::shared_state<T>> state_;
};

template <typename T>
shared_future<T> future<T>::share() noexcept
{
    return shared_future<T>(std::move(state_));
}

template <typename T>
class promise
{
public:
    promise() : state_(detail::make_state<T>()) {}

    promise(promise&&) noexcept = default;
    promise& operator=(promise&&) noexcept = default;
    promise(promise const&) = delete;
    promise& operator=(promise const&) = delete;

    future<T> get_future()
    {
        MINIHPX_ASSERT_MSG(!future_taken_, "get_future called twice");
        future_taken_ = true;
        return future<T>(state_);
    }

    template <typename U = T>
    void set_value(U&& value)
    {
        state_->set_value(std::forward<U>(value));
    }

    void set_exception(std::exception_ptr e)
    {
        state_->set_exception(std::move(e));
    }

    detail::state_ptr<detail::shared_state<T>> const& state() const noexcept
    {
        return state_;
    }

private:
    detail::state_ptr<detail::shared_state<T>> state_;
    bool future_taken_ = false;
};

template <>
class promise<void>
{
public:
    promise() : state_(detail::make_state<void>()) {}

    promise(promise&&) noexcept = default;
    promise& operator=(promise&&) noexcept = default;

    future<void> get_future()
    {
        MINIHPX_ASSERT_MSG(!future_taken_, "get_future called twice");
        future_taken_ = true;
        return future<void>(state_);
    }

    void set_value() { state_->set_value(); }
    void set_exception(std::exception_ptr e)
    {
        state_->set_exception(std::move(e));
    }

    detail::state_ptr<detail::shared_state<void>> const& state()
        const noexcept
    {
        return state_;
    }

private:
    detail::state_ptr<detail::shared_state<void>> state_;
    bool future_taken_ = false;
};

template <typename T>
template <typename F>
auto future<T>::then(F&& f) -> future<std::invoke_result_t<F, future<T>>>
{
    using R = std::invoke_result_t<F, future<T>>;
    MINIHPX_ASSERT(valid());
    auto next = detail::make_state<R>();
    auto state = std::move(state_);
    auto* raw = state.get();
    raw->when_ready(
        [state = std::move(state), next, fn = std::forward<F>(f)]() mutable {
            try
            {
                if constexpr (std::is_void_v<R>)
                {
                    fn(future<T>(std::move(state)));
                    next->set_value();
                }
                else
                {
                    next->set_value(fn(future<T>(std::move(state))));
                }
            }
            catch (...)
            {
                next->set_exception(std::current_exception());
            }
        });
    return future<R>(std::move(next));
}

// ------------------------------------------------------------- helpers

template <typename T>
future<std::decay_t<T>> make_ready_future(T&& value)
{
    auto state = detail::make_state<std::decay_t<T>>();
    state->set_value(std::forward<T>(value));
    return future<std::decay_t<T>>(std::move(state));
}

inline future<void> make_ready_future()
{
    auto state = detail::make_state<void>();
    state->set_value();
    return future<void>(std::move(state));
}

// Block (task-aware) until every future in [first, last) is ready.
template <typename Iterator>
void wait_all(Iterator first, Iterator last)
{
    for (; first != last; ++first)
        first->wait();
}

template <typename Container>
void wait_all(Container& futures)
{
    wait_all(futures.begin(), futures.end());
}

// when_all over a vector: ready when all inputs are; hands the inputs
// back through the result so values/exceptions stay observable.
template <typename T>
future<std::vector<future<T>>> when_all(std::vector<future<T>>&& futures)
{
    struct all_state
    {
        std::atomic<std::size_t> remaining;
        std::vector<future<T>> inputs;
        detail::state_ptr<detail::shared_state<std::vector<future<T>>>> out;
    };
    auto out = detail::make_state<std::vector<future<T>>>();
    if (futures.empty())
    {
        out->set_value(std::vector<future<T>>{});
        return future<std::vector<future<T>>>(std::move(out));
    }

    auto shared = std::make_shared<all_state>();
    shared->remaining.store(futures.size(), std::memory_order_relaxed);
    shared->inputs = std::move(futures);
    shared->out = out;

    for (auto& f : shared->inputs)
    {
        f.state()->when_ready([shared] {
            if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                1)
            {
                shared->out->set_value(std::move(shared->inputs));
            }
        });
    }
    return future<std::vector<future<T>>>(std::move(out));
}

// when_all over shared handles: the dependency-gate form used by
// fan-out task graphs (one producer, many consumers — Task Bench
// stencils, butterflies, random graphs). The result carries no values;
// it merely becomes ready once every input is. Values and exceptions
// stay observable through the inputs themselves, which the caller
// keeps. No task is spawned: readiness propagates through the inputs'
// continuation slots with one atomic countdown.
template <typename T>
future<void> when_all(std::vector<shared_future<T>> const& futures)
{
    auto out = detail::make_state<void>();
    if (futures.empty())
    {
        out->set_value();
        return future<void>(std::move(out));
    }

    struct gate_state
    {
        std::atomic<std::size_t> remaining;
        detail::state_ptr<detail::shared_state<void>> out;
    };
    auto shared = std::make_shared<gate_state>();
    shared->remaining.store(futures.size(), std::memory_order_relaxed);
    shared->out = out;

    for (auto const& f : futures)
    {
        f.state()->when_ready([shared] {
            if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                1)
            {
                shared->out->set_value();
            }
        });
    }
    return future<void>(std::move(out));
}

}    // namespace minihpx
