// Umbrella header: the minihpx public API.
//
//   minihpx::runtime        -- RAII runtime (N workers)
//   minihpx::async/future   -- task spawning, launch policies
//   minihpx::mutex/...      -- task-aware synchronization
//   minihpx::this_task      -- yield / ids / work annotations
//
// The performance-counter framework lives in <minihpx/perf/...>
// (src/core); hardware-event simulation in <minihpx/papi/...>.
#pragma once

#include <minihpx/async.hpp>
#include <minihpx/future.hpp>
#include <minihpx/runtime/runtime.hpp>
#include <minihpx/runtime/scheduler.hpp>
#include <minihpx/sync.hpp>
#include <minihpx/this_task.hpp>
#include <minihpx/work.hpp>
