// Operations on the calling task (hpx::this_thread equivalents).
#pragma once

#include <minihpx/runtime/scheduler.hpp>
#include <minihpx/work.hpp>

namespace minihpx::this_task {

// True when called from inside a minihpx task.
inline bool in_task() noexcept
{
    return scheduler::current_task() != nullptr;
}

inline threads::thread_id get_id() noexcept
{
    threads::thread_data* task = scheduler::current_task();
    return task ? task->id() : threads::invalid_thread_id;
}

// Id of the task that spawned the calling task (invalid_thread_id for
// root tasks and when called off-task) — the parent edge of the
// dynamic task graph the tracer records.
inline threads::thread_id parent_id() noexcept
{
    threads::thread_data* task = scheduler::current_task();
    return task ? task->parent_id() : threads::invalid_thread_id;
}

// Attach a human-readable label to the calling task in the active
// trace session (no-op when tracing is off or called off-task).
// `label` must outlive the session — pass a string literal. The
// critical-path report and Chrome/Perfetto timeline show it.
inline void annotate(char const* label) noexcept
{
    scheduler::annotate_current(label);
}

// Reschedule the current task at the back of its queue.
inline void yield()
{
    if (scheduler* sched = scheduler::current_scheduler();
        sched && scheduler::current_task())
    {
        sched->yield_current();
    }
}

// Worker (OS thread) currently executing this task.
inline std::uint32_t worker_id() noexcept
{
    return scheduler::current_worker_id();
}

}    // namespace minihpx::this_task
