// Operations on the calling task (hpx::this_thread equivalents).
#pragma once

#include <minihpx/runtime/scheduler.hpp>
#include <minihpx/work.hpp>

namespace minihpx::this_task {

// True when called from inside a minihpx task.
inline bool in_task() noexcept
{
    return scheduler::current_task() != nullptr;
}

inline threads::thread_id get_id() noexcept
{
    threads::thread_data* task = scheduler::current_task();
    return task ? task->id() : threads::invalid_thread_id;
}

// Id of the task that spawned the calling task (invalid_thread_id for
// root tasks and when called off-task) — the parent edge of the
// dynamic task graph the tracer records.
inline threads::thread_id parent_id() noexcept
{
    threads::thread_data* task = scheduler::current_task();
    return task ? task->parent_id() : threads::invalid_thread_id;
}

// Attach a human-readable label to the calling task in the active
// trace session (no-op when tracing is off or called off-task).
// `label` must outlive the session — pass a string literal. The
// critical-path report and Chrome/Perfetto timeline show it.
inline void annotate(char const* label) noexcept
{
    scheduler::annotate_current(label);
}

// Label most recently attached to the calling task (nullptr when
// unlabeled or off-task). Follows the task across steals.
inline char const* current_label() noexcept
{
    return scheduler::current_label();
}

// RAII form of annotate(): labels the calling task on construction and
// restores the previous label (or unlabeled) on destruction, so nested
// regions attribute correctly:
//
//   this_task::annotate_scope phase("solve");
//   { this_task::annotate_scope inner("solve-ghost-exchange"); ... }
//   // back under "solve" here — including when the restore runs on a
//   // different worker after a steal (the label lives on the task
//   // descriptor, not the worker).
//
// Must be destroyed on the task that created it (normal scoping).
class annotate_scope
{
public:
    explicit annotate_scope(char const* label) noexcept
      : previous_(scheduler::current_label())
    {
        annotate(label);
    }

    ~annotate_scope()
    {
        // "" resets to unlabeled: annotate(nullptr) would be a no-op.
        annotate(previous_ ? previous_ : "");
    }

    annotate_scope(annotate_scope const&) = delete;
    annotate_scope& operator=(annotate_scope const&) = delete;

private:
    char const* previous_;
};

// Reschedule the current task at the back of its queue.
inline void yield()
{
    if (scheduler* sched = scheduler::current_scheduler();
        sched && scheduler::current_task())
    {
        sched->yield_current();
    }
}

// Worker (OS thread) currently executing this task.
inline std::uint32_t worker_id() noexcept
{
    return scheduler::current_worker_id();
}

}    // namespace minihpx::this_task
