// Process-wide runtime singleton.
//
// Owns the scheduler and the configuration parsed from the HPX-style
// command line (--mh:threads, --mh:stack-size, --mh:bind, plus the
// counter options consumed by perf::session in src/core). Applications
// normally use the RAII `runtime` directly, or `runtime::scoped` in
// tests.
#pragma once

#include <minihpx/runtime/scheduler.hpp>
#include <minihpx/util/cli.hpp>

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace minihpx {

struct runtime_config
{
    scheduler_config sched;

    // Parse --mh:threads=N, --mh:stack-size=BYTES, --mh:bind,
    // --mh:steal-seed=S. Unknown options are ignored (they may belong
    // to the counter session or the application).
    static runtime_config from_cli(util::cli_args const& args);
};

class runtime
{
public:
    explicit runtime(runtime_config config = {});
    ~runtime();

    runtime(runtime const&) = delete;
    runtime& operator=(runtime const&) = delete;

    scheduler& get_scheduler() noexcept { return *scheduler_; }
    runtime_config const& config() const noexcept { return config_; }

    // Seconds since this runtime was constructed (feeds the
    // /runtime{locality#0/total}/uptime counter).
    double uptime_seconds() const noexcept;

    // The active runtime of this process (nullptr if none).
    static runtime* get_ptr() noexcept;
    static runtime& get();

    // Shutdown hooks run at the *start* of ~runtime, newest first,
    // before any worker teardown begins — the point where observers
    // (counter sessions, telemetry samplers) must stop sampling
    // scheduler state and flush. Returns a token for removal; hooks
    // run on the thread destroying the runtime and must not spawn
    // tasks. Observers that can outlive the runtime must deregister
    // in their own destructor (remove is a no-op for already-run
    // hooks).
    std::uint64_t at_shutdown(std::function<void()> hook);
    void remove_shutdown_hook(std::uint64_t token) noexcept;

private:
    void run_shutdown_hooks() noexcept;

    runtime_config config_;
    std::unique_ptr<scheduler> scheduler_;
    std::uint64_t start_ns_;

    std::mutex hooks_mutex_;
    std::vector<std::pair<std::uint64_t, std::function<void()>>> hooks_;
    std::uint64_t next_hook_token_ = 1;
};

// Convenience: run `f` as the root task on a fresh runtime and wait for
// it (the HPX hpx_main pattern). Returns f's result.
template <typename F>
auto run_on_runtime(runtime_config config, F&& f)
{
    runtime rt(std::move(config));
    return async(std::forward<F>(f)).get();
}

}    // namespace minihpx
