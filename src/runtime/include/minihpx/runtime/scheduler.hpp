// Work-stealing scheduler for lightweight user-level tasks.
//
// Topology: N OS worker threads, one run queue each (owner LIFO /
// thief FIFO, see thread_queue.hpp). Tasks are stackful contexts; a
// blocked task suspends off the worker, which immediately picks up
// other work — this is the mechanism that lets HPX-style runtimes
// schedule millions of sub-µs tasks where thread-per-task std::async
// collapses (paper §II, §VI).
//
// Instrumentation: every transition feeds per-worker relaxed counters,
// which the performance-counter framework (src/core) exposes under the
// /threads{locality#H/...}/... names used throughout the paper, where
// H is perf::this_locality() — 0 single-node, the node id under
// minihpx::net (names are formatted via perf::locality_prefix):
//   time/average            <- exec_time_ns / tasks_executed
//   time/average-overhead   <- sched_time_ns / tasks_executed
//   time/cumulative[-overhead], count/cumulative, count/instantaneous/*,
//   count/stolen, count/pending-misses, idle-rate, ...
#pragma once

#include <minihpx/threads/context.hpp>
#include <minihpx/threads/stack.hpp>
#include <minihpx/threads/thread_data.hpp>
#include <minihpx/threads/thread_queue.hpp>
#include <minihpx/threads/topology.hpp>
#include <minihpx/util/cache_align.hpp>
#include <minihpx/util/eventcount.hpp>
#include <minihpx/util/histogram.hpp>
#include <minihpx/util/lock_registry.hpp>
#include <minihpx/util/rng.hpp>
#include <minihpx/util/spinlock.hpp>
#include <minihpx/util/thread_annotations.hpp>
#include <minihpx/util/unique_function.hpp>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace minihpx {

namespace trace {
    class recorder;
}

struct scheduler_config
{
    unsigned num_workers = 1;
    std::size_t stack_size = threads::default_stack_size;
    bool bind_workers = false;    // best-effort sched_setaffinity

    // Memory-domain count for the numa victim policy
    // (--mh:numa-domains). 0 = discover from sysfs; N > 0 stripes the
    // workers into N contiguous blocks (topology::uniform), which
    // keeps the locality paths testable on single-socket CI.
    unsigned numa_domains = 0;

    // Run-queue implementation (--mh:queue-policy). chase_lev is the
    // default; mutex_deque is kept for A/B ablation runs.
    threads::queue_policy queue = threads::queue_policy::chase_lev;

    // Spawn fast path (--mh:spawn-path). pooled_frame is the default:
    // single-block task frames from the frame pool, per-worker
    // descriptor caches. legacy reproduces the pre-pool behavior (heap
    // shared state per async(), every descriptor acquire/recycle
    // through the locked global freelist) and is kept for one release
    // as the bench/spawn_latency A/B baseline.
    enum class spawn_path : std::uint8_t
    {
        pooled_frame,
        legacy,
    };
    spawn_path spawn = spawn_path::pooled_frame;

    // Descriptor-cache geometry, validated as a unit. Worker-local
    // freelists keep acquire/recycle off freelist_lock_ on the owner
    // path; the global list is trimmed past global_capacity so spawn
    // bursts do not pin memory forever (mirrors stack_pool::trim).
    struct cache_params
    {
        unsigned worker_capacity = 64;     // cached descriptors per worker
        unsigned refill_batch = 16;        // taken per global-list visit
        unsigned global_capacity = 1024;   // high water before trimming

        // nullopt when valid, otherwise a human-readable reason.
        std::optional<std::string> validate() const;
    };
    cache_params descriptor_cache;

    // Work-stealing / idle knobs, validated as a unit (--mh:steal-*).
    // Invalid combinations are rejected with a clear error at scheduler
    // construction — never silently clamped.
    struct steal_params
    {
        enum class park_policy : std::uint8_t
        {
            // Spin spin_iters times watching for work/wake, then block
            // on the eventcount until an explicit wake. The default:
            // no fixed polling latency, no idle CPU burn.
            spin_park,
            // Legacy behavior: block with a sleep_us timeout (polls).
            // Useful as an ablation baseline and as a belt-and-braces
            // mode when debugging wake-protocol changes.
            timed,
        };

        std::uint64_t seed = 0x5eed;    // victim-selection RNG seed
        unsigned rounds = 2;            // full sweeps before idling
        unsigned batch = 8;             // max tasks taken per raid (>= 1)
        unsigned spin_iters = 4000;     // spins before parking
        unsigned sleep_us = 100;        // timeout for park == timed
        park_policy park = park_policy::spin_park;

        // Victim ordering (--mh:steal-victim-policy). numa probes
        // same-domain deques before remote ones and steals half the
        // victim queue (instead of `batch`) on a cross-domain raid —
        // pay the interconnect latency once, move half the work. With
        // one discovered domain (single-socket, containers) it
        // degenerates to the random order. random is kept as the A/B
        // ablation baseline.
        threads::victim_policy victim = threads::victim_policy::numa;

        // nullopt when valid, otherwise a human-readable reason.
        std::optional<std::string> validate() const;
    };
    steal_params steal;
};

class scheduler;

namespace detail {

    // Deferred action a task requests before switching back to its
    // worker; executed by the worker *after* the switch, when the task's
    // stack is no longer live (two-phase suspend).
    enum class after_switch : std::uint8_t
    {
        none,
        terminated,
        suspended,
        yielded_back,     // yield to the back of the queue (default)
        yielded_front,    // yield to the front (run again immediately)
    };

    class worker
    {
    public:
        worker(scheduler& sched, std::uint32_t id, std::uint64_t seed,
            threads::queue_policy policy)
          : sched_(sched)
          , id_(id)
          , rng_(seed)
          , queue_(policy)
        {
        }

        void run();    // OS-thread main loop

        std::uint32_t id() const noexcept { return id_; }
        threads::thread_queue& queue() noexcept { return queue_; }
        threads::thread_queue const& queue() const noexcept { return queue_; }

        // ---- per-worker statistics (counter framework reads these) ----
        struct stats
        {
            std::atomic<std::uint64_t> tasks_executed{0};
            std::atomic<std::uint64_t> tasks_created{0};
            std::atomic<std::uint64_t> exec_time_ns{0};
            std::atomic<std::uint64_t> sched_time_ns{0};
            std::atomic<std::uint64_t> idle_time_ns{0};
            std::atomic<std::uint64_t> total_time_ns{0};
            std::atomic<std::uint64_t> steal_attempts{0};
            std::atomic<std::uint64_t> steals{0};
            // Stolen-task split by topology::same_domain(thief, victim)
            // (sums to `steals`); feeds /threads/steal/{same,cross}-domain.
            std::atomic<std::uint64_t> steals_same_domain{0};
            std::atomic<std::uint64_t> steals_cross_domain{0};
            std::atomic<std::uint64_t> yields{0};
            std::atomic<std::uint64_t> suspensions{0};
            std::atomic<std::uint64_t> wakeups{0};
            // Descriptors acquired from this worker's local cache
            // (no freelist_lock_ round-trip).
            std::atomic<std::uint64_t> descriptor_hits{0};
        };

        stats const& get_stats() const noexcept { return *stats_; }

        // Descriptors currently parked in this worker's local cache
        // (feeds /threads{...worker-thread#N}/count/objects).
        std::uint64_t cached_descriptors() const noexcept
        {
            return cache_count_.load(std::memory_order_relaxed);
        }

    private:
        friend class minihpx::scheduler;

        threads::thread_data* get_next_task();
        void execute(threads::thread_data* task);
        void process_after_switch(
            threads::thread_data* task, std::uint64_t t_ns);
        // Spin-then-park: returns once woken, on local work, or on a
        // state change. See docs/SCHEDULER.md.
        void idle_wait();

        scheduler& sched_;
        std::uint32_t id_;
        util::xoshiro256ss rng_;
        threads::thread_queue queue_;
        threads::execution_context sched_context_;

        threads::thread_data* current_ = nullptr;
        after_switch action_ = after_switch::none;

        // Worker-local descriptor cache (intrusive via thread_data::next).
        // Owner-only mutation; the count is atomic so counter threads
        // can read it without a lock.
        threads::thread_data* cache_head_ = nullptr;
        std::atomic<std::uint32_t> cache_count_{0};

        util::cache_aligned<stats> stats_;
    };

}    // namespace detail

class scheduler
{
public:
    explicit scheduler(scheduler_config config = {});
    ~scheduler();

    scheduler(scheduler const&) = delete;
    scheduler& operator=(scheduler const&) = delete;

    void start();
    // Waits for all tasks to drain, then joins the workers.
    void stop();
    bool running() const noexcept
    {
        return state_.load(std::memory_order_acquire) == run_state::running;
    }

    scheduler_config const& config() const noexcept { return config_; }
    unsigned num_workers() const noexcept
    {
        return static_cast<unsigned>(workers_.size());
    }

    // Worker -> memory-domain map the numa victim policy steers by
    // (config.numa_domains override, else sysfs discovery).
    threads::topology const& topology() const noexcept { return topology_; }

    // ---- task management ---------------------------------------------
    using task_function = threads::thread_data::task_function;

    // Create + schedule. `front` puts the task at the hot end of the
    // queue (used by launch::fork for continuation-stealing order).
    threads::thread_id spawn(task_function fn,
        char const* description = "<task>",
        threads::thread_priority priority = threads::thread_priority::normal,
        bool front = false);

    // Re-schedule an existing task (resume path). Safe to call from any
    // thread; honors the two-phase suspend handshake.
    void resume(threads::thread_data* task);

    // Called from *task context* only:
    void yield_current(bool to_back = true);
    // Suspends the current task. `publish` runs in the task's context
    // immediately before the switch; use it to hand the thread_data* to
    // a waker-visible structure. The actual state transition to
    // `suspended` happens after the switch, on the worker side.
    void suspend_current(util::unique_function<void(threads::thread_data*)>
            publish = nullptr);

    // ---- tracing -------------------------------------------------------
    // Install (or, with nullptr, remove) the event recorder the workers
    // emit into. The shared_ptr of a replaced recorder is *retired*, not
    // released: a worker may be mid-emit through the raw fast-path
    // pointer, so the memory stays alive until stop() has joined the
    // workers. trace::session owns the usual call site.
    void set_tracer(std::shared_ptr<trace::recorder> tracer);
    trace::recorder* tracer() const noexcept
    {
        return tracer_.load(std::memory_order_acquire);
    }
    // Attach a label event to the calling task (this_task::annotate).
    // `label` must point to storage outliving the trace session —
    // string literals in practice; sinks intern it at drain time.
    static void annotate_current(char const* label) noexcept;
    // Label most recently attached to the calling task via
    // annotate_current (nullptr when unlabeled or off-worker). Stored
    // on the task descriptor, so it follows the task across steals.
    static char const* current_label() noexcept;

    // Current task of the calling OS thread (nullptr off-worker).
    static threads::thread_data* current_task() noexcept;
    // Worker id of the calling OS thread, or npos_worker.
    static constexpr std::uint32_t npos_worker = ~0u;
    static std::uint32_t current_worker_id() noexcept;
    // Scheduler the calling worker belongs to (nullptr off-worker).
    static scheduler* current_scheduler() noexcept;

    // ---- introspection (counter bindings) ------------------------------
    std::uint64_t tasks_alive() const noexcept
    {
        return tasks_alive_.load(std::memory_order_acquire);
    }
    std::uint64_t tasks_created() const noexcept
    {
        return tasks_created_.load(std::memory_order_relaxed);
    }

    // ---- descriptor accounting (object counters, tests) ----------------
    // Task descriptors ever heap-allocated / freed by the trim.
    std::uint64_t descriptors_created() const noexcept
    {
        return descriptors_created_.load(std::memory_order_relaxed);
    }
    std::uint64_t descriptors_destroyed() const noexcept
    {
        return descriptors_destroyed_.load(std::memory_order_relaxed);
    }
    // Descriptor objects currently alive (in flight or cached); the
    // /threads{locality#H/total}/count/objects reading (H =
    // perf::this_locality()).
    std::uint64_t descriptors_alive() const noexcept
    {
        return descriptors_created() - descriptors_destroyed();
    }
    // Descriptors parked in the global freelist (excludes worker caches).
    std::uint64_t descriptors_cached_global() const noexcept
    {
        return freelist_count_.load(std::memory_order_relaxed);
    }

    detail::worker const& get_worker(std::uint32_t i) const
    {
        return *workers_[i];
    }

    // Aggregate over all workers.
    struct totals
    {
        std::uint64_t tasks_executed = 0;
        std::uint64_t tasks_created = 0;
        std::uint64_t exec_time_ns = 0;
        std::uint64_t sched_time_ns = 0;
        std::uint64_t idle_time_ns = 0;
        std::uint64_t total_time_ns = 0;
        std::uint64_t steals = 0;
        std::uint64_t steals_same_domain = 0;
        std::uint64_t steals_cross_domain = 0;
        std::uint64_t steal_attempts = 0;
        std::uint64_t pending_misses = 0;
        std::uint64_t stolen_from = 0;
        std::int64_t queue_length = 0;
        std::uint64_t suspensions = 0;
        std::uint64_t yields = 0;
    };
    totals aggregate() const;

    // Log2(ns) histogram of completed task durations.
    util::log2_histogram<> const& duration_histogram() const noexcept
    {
        return duration_hist_;
    }

    // Count of tasks currently in a given state (instantaneous).
    std::uint64_t instantaneous_count(threads::thread_state state) const;

private:
    friend class detail::worker;

    static void task_entry(void* arg);
    static std::uint64_t splitmix64_helper(std::uint64_t seed, unsigned i);

    threads::thread_data* acquire_descriptor();
    void recycle_descriptor(threads::thread_data* task);
    void schedule_task(threads::thread_data* task, bool front);
    void wake_one();
    void wake_all();
    // Eventcount park: blocks until the epoch moves past `epoch0`, any
    // queue is non-empty, or the scheduler leaves `running`.
    void park_worker(detail::worker& w, std::uint64_t epoch0);
    bool any_queue_nonempty() const noexcept;

    enum class run_state : std::uint8_t
    {
        stopped,
        running,
        draining,
    };

    scheduler_config config_;
    threads::topology topology_;
    std::atomic<run_state> state_{run_state::stopped};

    std::vector<std::unique_ptr<detail::worker>> workers_;
    std::vector<std::thread> os_threads_;

    threads::stack_pool stack_pool_;

    // Global descriptor freelist (intrusive via thread_data::next).
    // Touched only when a worker cache over/underflows (batched), from
    // off-worker spawns, and by the high-water trim; the owner path is
    // the worker-local cache. Descriptors are owned by these lists:
    // the destructor frees whatever remains in them (all tasks have
    // drained by then — stop() joins only after tasks_alive_ is 0).
    util::spinlock freelist_lock_{
        util::lock_rank::sched_freelist, "scheduler-freelist"};
    threads::thread_data* freelist_ MINIHPX_GUARDED_BY(
        freelist_lock_) = nullptr;
    std::atomic<std::uint32_t> freelist_count_{0};
    std::atomic<std::uint64_t> descriptors_created_{0};
    std::atomic<std::uint64_t> descriptors_destroyed_{0};

    // Emit fast path reads tracer_; the owning/retired pointers keep
    // the recorder alive across uninstall (see set_tracer).
    std::atomic<trace::recorder*> tracer_{nullptr};
    std::mutex tracer_mutex_;
    std::shared_ptr<trace::recorder> tracer_owner_;
    std::vector<std::shared_ptr<trace::recorder>> retired_tracers_;

    std::atomic<std::uint64_t> next_thread_id_{1};
    std::atomic<std::uint64_t> tasks_alive_{0};
    std::atomic<std::uint64_t> tasks_created_{0};

    // Eventcount for idle workers (util/eventcount.hpp): a waiter
    // captures the epoch, scans the queues, then parks; any schedule()
    // bumps the epoch and only notifies when someone is parked, so the
    // wake fast path is one RMW and one load. The Dekker argument lives
    // with the primitive (and is model-checked by the minihpx::mc
    // lost-wakeup litmus); docs/SCHEDULER.md has the scheduler-level
    // story.
    util::eventcount sleep_ec_;

    util::log2_histogram<> duration_hist_;

    // Instantaneous state census: incremented/decremented at transitions.
    std::atomic<std::int64_t> count_pending_{0};
    std::atomic<std::int64_t> count_active_{0};
    std::atomic<std::int64_t> count_suspended_{0};
    std::atomic<std::int64_t> count_staged_{0};
};

}    // namespace minihpx
