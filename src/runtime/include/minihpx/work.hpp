// Work annotations: the bridge between application code and the
// (simulated) hardware-counter substrate.
//
// The paper reads Ivy Bridge offcore PMU events through PAPI. This
// environment has no PMU access (DESIGN.md substitution table), so
// benchmarks describe the traffic they generate — cycles retired,
// off-core data reads, read-for-ownership (store-miss) traffic, demand
// code reads — and the papi module turns those into the same
// OFFCORE_REQUESTS:* counts the paper derives bandwidth from. The
// simulator additionally uses cpu_ns/bytes to compute virtual task
// durations under shared-bandwidth contention.
//
// In real-execution engines the annotations cost one function-pointer
// check when no sink is installed.
#pragma once

#include <cstdint>

namespace minihpx {

struct work_annotation
{
    // Pure compute time of the annotated region at nominal frequency,
    // excluding memory stalls (the cost model adds those).
    std::uint64_t cpu_ns = 0;

    // Off-core traffic in bytes (cache-line granularity is applied by
    // the consumer): demand data reads, RFOs (stores missing cache),
    // demand code reads.
    std::uint64_t data_rd_bytes = 0;
    std::uint64_t rfo_bytes = 0;
    std::uint64_t code_rd_bytes = 0;

    // Optional instruction count (feeds PAPI_TOT_INS).
    std::uint64_t instructions = 0;

    // Memory-locality footprint of the annotated region, consumed by
    // the deterministic dTLB/LLC model (minihpx/memory_model.hpp):
    // the number of *distinct* bytes the region touches (its working
    // set — as opposed to the traffic totals above, which count every
    // transfer) and the load/store count. Zero means "no footprint
    // information"; the model then reports no TLB/LLC misses, so
    // pre-existing workloads keep their counter readings.
    std::uint64_t footprint_bytes = 0;
    std::uint64_t mem_accesses = 0;

    constexpr work_annotation& operator+=(work_annotation const& o) noexcept
    {
        cpu_ns += o.cpu_ns;
        data_rd_bytes += o.data_rd_bytes;
        rfo_bytes += o.rfo_bytes;
        code_rd_bytes += o.code_rd_bytes;
        instructions += o.instructions;
        // The working set of a sum of regions is not the sum of the
        // working sets, but segments accumulated between interaction
        // boundaries belong to one task touching one tile; max() is
        // the closest safe composition (never overstates thrash for
        // tiled kernels, understates only across disjoint phases).
        footprint_bytes =
            footprint_bytes > o.footprint_bytes ? footprint_bytes :
                                                  o.footprint_bytes;
        mem_accesses += o.mem_accesses;
        return *this;
    }
};

using work_sink = void (*)(work_annotation const&);

// Install/remove the process-wide sink (papi module or test fixture).
// Passing nullptr uninstalls. Returns the previous sink.
work_sink set_work_sink(work_sink sink) noexcept;

// Report work performed by the calling task. No-op without a sink.
void annotate_work(work_annotation const& w) noexcept;

}    // namespace minihpx
