#include <minihpx/causal/report.hpp>

#include <minihpx/telemetry/sink.hpp>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

namespace minihpx::causal {

namespace {

    std::string fmt(char const* format, double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), format, v);
        return buf;
    }

    std::string ms(std::uint64_t ns)
    {
        return fmt("%.3f", static_cast<double>(ns) / 1e6) + " ms";
    }

    // The grid point the ranking lines quote: 50% if present in the
    // curves' grid, else the point closest to it.
    double headline_pct(whatif_report const& whatif)
    {
        double best = 50.0;
        double dist = 1e9;
        if (!whatif.curves.empty())
        {
            for (curve_point const& p : whatif.curves.front().points)
            {
                double const d = std::abs(p.optimized_pct - 50.0);
                if (d < dist)
                {
                    dist = d;
                    best = p.optimized_pct;
                }
            }
        }
        return best;
    }

    double speedup_at(causal_curve const& curve, double pct)
    {
        for (curve_point const& p : curve.points)
            if (p.optimized_pct == pct)
                return p.projected_speedup;
        return 1.0;
    }

    double critical_share_of(
        profile_result const& prof, std::string const& label)
    {
        for (label_row const& row : prof.labels)
            if (row.label == label)
                return row.critical_share;
        return 0.0;
    }

}    // namespace

void render_table(std::ostream& out, profile_result const& prof,
    whatif_report const& whatif, report_options const& opts)
{
    out << "causal profile: tasks=" << prof.tasks
        << " workers=" << prof.workers << " work=" << ms(prof.work_ns)
        << " span=" << ms(prof.span_ns)
        << " parallelism=" << fmt("%.2f", prof.parallelism) << "\n";
    out << "baseline makespan (Brent, P=" << whatif.workers
        << "): " << ms(whatif.baseline_makespan_ns) << "\n\n";

    out << "  label                          tasks   exclusive     "
           "inclusive    critical  work%  crit%\n";
    for (label_row const& row : prof.labels)
    {
        char line[192];
        std::snprintf(line, sizeof(line),
            "  %-30s %6llu  %10.3f ms %10.3f ms %8.3f ms  %5.1f   %5.1f",
            row.label.c_str(),
            static_cast<unsigned long long>(row.tasks),
            static_cast<double>(row.exclusive_ns) / 1e6,
            static_cast<double>(row.inclusive_ns) / 1e6,
            static_cast<double>(row.critical_ns) / 1e6,
            row.work_share * 100.0, row.critical_share * 100.0);
        out << line << "\n";
    }

    double const pct = headline_pct(whatif);
    out << "\nwhat-if ranking (optimize " << fmt("%.0f", pct)
        << "% of a label's cost away):\n";
    std::size_t rank = 0;
    for (causal_curve const& curve : whatif.curves)
    {
        if (rank == opts.top)
            break;
        ++rank;
        out << "CAUSAL rank=" << rank << " label=" << curve.label
            << " speedup@" << fmt("%.0f", pct)
            << "%=" << fmt("%.3f", speedup_at(curve, pct))
            << " critical-share="
            << fmt("%.3f", critical_share_of(prof, curve.label)) << "\n";
        if (opts.show_curves)
        {
            for (curve_point const& p : curve.points)
                out << "    " << fmt("%5.1f", p.optimized_pct)
                    << "% -> " << ms(p.projected_makespan_ns) << " ("
                    << fmt("%.3f", p.projected_speedup) << "x)\n";
        }
    }
    if (whatif.curves.empty())
        out << "  (no labeled execution: nothing to optimize — "
               "annotate regions with this_task::annotate)\n";
}

void render_json(std::ostream& out, profile_result const& prof,
    whatif_report const& whatif, report_options const& opts)
{
    using telemetry::json_escape;
    out << "{\"profile\":{\"tasks\":" << prof.tasks
        << ",\"workers\":" << prof.workers
        << ",\"work_ns\":" << prof.work_ns
        << ",\"span_ns\":" << prof.span_ns
        << ",\"parallelism\":" << fmt("%.6f", prof.parallelism)
        << ",\"critical_exec_ns\":" << prof.critical_exec_ns
        << ",\"labels\":[";
    for (std::size_t i = 0; i < prof.labels.size(); ++i)
    {
        label_row const& row = prof.labels[i];
        out << (i ? "," : "") << "{\"label\":\""
            << json_escape(row.label) << "\",\"tasks\":" << row.tasks
            << ",\"exclusive_ns\":" << row.exclusive_ns
            << ",\"inclusive_ns\":" << row.inclusive_ns
            << ",\"critical_ns\":" << row.critical_ns
            << ",\"work_share\":" << fmt("%.6f", row.work_share)
            << ",\"critical_share\":" << fmt("%.6f", row.critical_share)
            << "}";
    }
    out << "]},\"whatif\":{\"workers\":" << whatif.workers
        << ",\"baseline_makespan_ns\":" << whatif.baseline_makespan_ns
        << ",\"curves\":[";
    std::size_t const n = std::min(opts.top, whatif.curves.size());
    for (std::size_t i = 0; i < n; ++i)
    {
        causal_curve const& curve = whatif.curves[i];
        out << (i ? "," : "") << "{\"rank\":" << i + 1 << ",\"label\":\""
            << json_escape(curve.label)
            << "\",\"matched_tasks\":" << curve.matched_tasks
            << ",\"matched_exec_ns\":" << curve.matched_exec_ns
            << ",\"points\":[";
        for (std::size_t j = 0; j < curve.points.size(); ++j)
        {
            curve_point const& p = curve.points[j];
            out << (j ? "," : "") << "{\"optimized_pct\":"
                << fmt("%.1f", p.optimized_pct)
                << ",\"projected_makespan_ns\":"
                << p.projected_makespan_ns << ",\"projected_speedup\":"
                << fmt("%.6f", p.projected_speedup) << "}";
        }
        out << "]}";
    }
    out << "]}}\n";
}

}    // namespace minihpx::causal
