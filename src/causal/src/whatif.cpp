#include <minihpx/causal/counters.hpp>
#include <minihpx/causal/whatif.hpp>

#include <minihpx/trace/detail/sweep.hpp>

#include <algorithm>
#include <cmath>
#include <string>
#include <string_view>

namespace minihpx::causal {

namespace {

    double clamp_pct(double pct)
    {
        // 100% would make a label free and the projection degenerate;
        // cap just below so Brent's bound stays finite and nonzero.
        return std::clamp(pct, 0.0, 99.9);
    }

    std::uint64_t brent(double span, double work, unsigned workers)
    {
        return static_cast<std::uint64_t>(
            std::max(span, work / static_cast<double>(workers)));
    }

    // Sweep with slices charged under `label` scaled by `factor`.
    // Matching is by string *text* (the table interns by pointer, so
    // equal spellings can hold several ids) and exact — the same rule
    // sim_config::cost_scales applies, which is what makes simulator
    // verification of these projections an apples-to-apples check.
    trace::detail::sweep_result scaled_sweep(
        trace::trace_data const& data, std::string_view label,
        double factor)
    {
        global_stats().whatif_sweeps.fetch_add(
            1, std::memory_order_relaxed);
        return trace::detail::sweep(data,
            [&](trace::trace_data const& d, std::uint64_t id) {
                return id != 0 && id < d.strings.size() &&
                        d.strings[id] == label ?
                    factor :
                    1.0;
            });
    }

    std::vector<double> clean_grid(std::vector<double> const& grid_pct)
    {
        std::vector<double> grid;
        grid.reserve(grid_pct.size());
        for (double pct : grid_pct)
            grid.push_back(clamp_pct(pct));
        std::sort(grid.begin(), grid.end());
        grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
        return grid;
    }

}    // namespace

std::vector<double> const& default_speedup_grid()
{
    static std::vector<double> const grid = {
        5.0, 20.0, 35.0, 50.0, 65.0, 80.0, 95.0};
    return grid;
}

whatif_report causal_whatif(trace::trace_data const& data,
    std::vector<double> const& grid_pct, unsigned workers)
{
    register_counters();

    // One profile pass supplies the candidate labels plus their
    // matched-task / matched-time totals; each (label, pct) grid cell
    // is then its own rescaled sweep.
    profile_result const prof = profile(data);

    whatif_report out;
    out.workers = workers ? workers : prof.workers;
    out.work_ns = prof.work_ns;
    out.span_ns = prof.span_ns;
    out.baseline_makespan_ns = brent(static_cast<double>(prof.span_ns),
        static_cast<double>(prof.work_ns), out.workers);

    std::vector<double> const grid = clean_grid(grid_pct);

    for (label_row const& row : prof.labels)
    {
        if (row.label == unlabeled_name || row.exclusive_ns == 0)
            continue;    // nothing a user could optimize
        causal_curve curve;
        curve.label = row.label;
        curve.matched_tasks = row.tasks;
        curve.matched_exec_ns = row.exclusive_ns;
        for (double pct : grid)
        {
            trace::detail::sweep_result what =
                scaled_sweep(data, row.label, 1.0 - pct / 100.0);
            curve_point point;
            point.optimized_pct = pct;
            point.projected_makespan_ns =
                brent(what.span, what.work_scaled, out.workers);
            point.projected_speedup = point.projected_makespan_ns ?
                static_cast<double>(out.baseline_makespan_ns) /
                    static_cast<double>(point.projected_makespan_ns) :
                1.0;
            curve.points.push_back(point);
        }
        out.curves.push_back(std::move(curve));
    }

    // Rank by speedup at the deepest optimization, descending; ties
    // (e.g. two off-critical labels both pinned at the work bound)
    // break by matched time, then name, to stay deterministic.
    std::sort(out.curves.begin(), out.curves.end(),
        [](causal_curve const& a, causal_curve const& b) {
            double const sa =
                a.points.empty() ? 1.0 : a.points.back().projected_speedup;
            double const sb =
                b.points.empty() ? 1.0 : b.points.back().projected_speedup;
            if (sa != sb)
                return sa > sb;
            if (a.matched_exec_ns != b.matched_exec_ns)
                return a.matched_exec_ns > b.matched_exec_ns;
            return a.label < b.label;
        });
    return out;
}

double predicted_speedup(trace::trace_data const& data,
    std::string_view label, double optimized_pct, unsigned workers)
{
    register_counters();

    trace::detail::sweep_result base = trace::detail::sweep(data,
        [](trace::trace_data const&, std::uint64_t) { return 1.0; });
    unsigned const p =
        workers ? workers : trace::detail::observed_workers(base);

    trace::detail::sweep_result what =
        scaled_sweep(data, label, 1.0 - clamp_pct(optimized_pct) / 100.0);
    std::uint64_t const baseline =
        brent(base.span, static_cast<double>(base.work_ns), p);
    std::uint64_t const projected = brent(what.span, what.work_scaled, p);
    return projected ?
        static_cast<double>(baseline) / static_cast<double>(projected) :
        1.0;
}

}    // namespace minihpx::causal
