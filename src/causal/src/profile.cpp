#include <minihpx/causal/counters.hpp>
#include <minihpx/causal/profile.hpp>

#include <minihpx/trace/detail/sweep.hpp>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace minihpx::causal {

namespace {

    // Labels are attributed by *text*, not string-table id: the table
    // interns by pointer, so two literals with equal spelling (ODR
    // duplicates across TUs) can land on distinct ids. `canonical`
    // maps every id to the first id carrying its text, and folds ""
    // (annotate_scope restoring to unlabeled) into the reserved id 0.
    std::vector<std::uint64_t> canonical_ids(
        trace::trace_data const& data)
    {
        std::vector<std::uint64_t> canon(data.strings.size(), 0);
        std::unordered_map<std::string_view, std::uint64_t> first;
        for (std::uint64_t id = 1; id < data.strings.size(); ++id)
        {
            if (data.strings[id].empty())
                continue;
            canon[id] =
                first.try_emplace(data.strings[id], id).first->second;
        }
        return canon;
    }

    struct per_task
    {
        // Labels inherited from the spawn chain: the spawning task's
        // context plus its current label at spawn time. Small and
        // deduplicated — nesting depth in practice is a handful.
        std::vector<std::uint64_t> context;
        // (label, exclusive ns) charged to this task, insertion order.
        std::vector<std::pair<std::uint64_t, std::uint64_t>> charged;
    };

    struct totals
    {
        std::uint64_t tasks = 0;
        std::uint64_t exclusive_ns = 0;
        std::uint64_t inclusive_ns = 0;
        std::uint64_t critical_ns = 0;
    };

    struct attribution_observer
    {
        std::vector<std::uint64_t> const& canon;
        std::unordered_map<std::uint64_t, per_task>& tasks;
        std::unordered_map<std::uint64_t, totals>& labels;

        std::uint64_t bucket(std::uint64_t label_id) const
        {
            return label_id < canon.size() ? canon[label_id] : 0;
        }

        void on_charge(std::uint64_t task, std::uint64_t label_id,
            std::uint64_t delta_ns, double /*scaled*/)
        {
            std::uint64_t const label = bucket(label_id);
            per_task& t = tasks[task];

            auto charged = std::find_if(t.charged.begin(),
                t.charged.end(),
                [&](auto const& c) { return c.first == label; });
            if (charged == t.charged.end())
            {
                ++labels[label].tasks;
                t.charged.emplace_back(label, delta_ns);
            }
            else
                charged->second += delta_ns;
            labels[label].exclusive_ns += delta_ns;

            // Inclusive: the current label plus every distinct spawn-
            // context label (skipping the current one so nothing is
            // double-counted when a child re-annotates its inherited
            // label).
            labels[label].inclusive_ns += delta_ns;
            for (std::uint64_t ctx : t.context)
                if (ctx != label)
                    labels[ctx].inclusive_ns += delta_ns;
        }

        void on_spawn(std::uint64_t child, std::uint64_t parent,
            std::uint64_t parent_label)
        {
            if (parent == 0)
                return;
            // Copy before inserting the child: operator[] may rehash.
            std::vector<std::uint64_t> ctx = tasks[parent].context;
            per_task& c = tasks[child];
            c.context = std::move(ctx);
            std::uint64_t const label = bucket(parent_label);
            if (label != 0 &&
                std::find(c.context.begin(), c.context.end(), label) ==
                    c.context.end())
                c.context.push_back(label);
        }
    };

}    // namespace

profile_result profile(trace::trace_data const& data)
{
    register_counters();
    auto const t0 = std::chrono::steady_clock::now();

    std::vector<std::uint64_t> const canon = canonical_ids(data);
    std::unordered_map<std::uint64_t, per_task> tasks;
    std::unordered_map<std::uint64_t, totals> labels;
    attribution_observer obs{canon, tasks, labels};
    trace::detail::sweep_result r = trace::detail::sweep(
        data, [](trace::trace_data const&, std::uint64_t) { return 1.0; },
        obs);

    profile_result out;
    out.tasks = r.tasks.size();
    out.workers = trace::detail::observed_workers(r);
    out.work_ns = r.work_ns;
    out.span_ns = static_cast<std::uint64_t>(r.span);
    out.parallelism = out.span_ns ?
        static_cast<double>(out.work_ns) /
            static_cast<double>(out.span_ns) :
        0.0;

    // Critical residency: exclusive time of the distinct tasks on the
    // critical path, per label. A task can appear as several chain
    // visits (before a spawn, after the join) — count it once.
    std::unordered_set<std::uint64_t> on_path;
    for (std::int64_t cursor = r.span_node; cursor >= 0;
        cursor = r.nodes[static_cast<std::size_t>(cursor)].pred)
        on_path.insert(r.nodes[static_cast<std::size_t>(cursor)].task);
    for (std::uint64_t task : on_path)
    {
        auto const it = tasks.find(task);
        if (it == tasks.end())
            continue;
        for (auto const& [label, ns] : it->second.charged)
        {
            labels[label].critical_ns += ns;
            out.critical_exec_ns += ns;
        }
    }

    out.labels.reserve(labels.size());
    for (auto const& [id, t] : labels)
    {
        label_row row;
        row.label = id == 0 ? unlabeled_name : data.strings[id];
        row.tasks = t.tasks;
        row.exclusive_ns = t.exclusive_ns;
        row.inclusive_ns = t.inclusive_ns;
        row.critical_ns = t.critical_ns;
        row.work_share = out.work_ns ?
            static_cast<double>(t.exclusive_ns) /
                static_cast<double>(out.work_ns) :
            0.0;
        row.critical_share = out.critical_exec_ns ?
            static_cast<double>(t.critical_ns) /
                static_cast<double>(out.critical_exec_ns) :
            0.0;
        out.labels.push_back(std::move(row));
    }
    std::sort(out.labels.begin(), out.labels.end(),
        [](label_row const& a, label_row const& b) {
            if (a.exclusive_ns != b.exclusive_ns)
                return a.exclusive_ns > b.exclusive_ns;
            return a.label < b.label;    // deterministic tie order
        });

    auto const dt = std::chrono::steady_clock::now() - t0;
    global_stats().profile_passes.fetch_add(1, std::memory_order_relaxed);
    global_stats().profile_time_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count()),
        std::memory_order_relaxed);
    return out;
}

}    // namespace minihpx::causal
