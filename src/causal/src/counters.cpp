#include <minihpx/causal/counters.hpp>

#include <minihpx/perf/basic_counters.hpp>

#include <memory>
#include <string>
#include <utility>

namespace minihpx::causal {

stats& global_stats() noexcept
{
    static stats block;
    return block;
}

namespace {

    void register_monotonic(perf::counter_registry& registry,
        std::string key, std::string help, perf::value_source source)
    {
        if (registry.contains(key))
            return;
        auto const kind = perf::counter_kind::monotonically_increasing;
        perf::counter_registry::type_info t;
        t.type_key = key;
        t.kind = kind;
        t.helptext = std::move(help);
        t.create = [source = std::move(source), kind](
                       perf::counter_path const& path) -> perf::counter_ptr {
            perf::counter_info info;
            info.full_name = path.full_name();
            info.kind = kind;
            return std::make_shared<perf::delta_counter>(
                std::move(info), source);
        };
        registry.register_type(std::move(t));
    }

}    // namespace

void register_counters(perf::counter_registry& registry)
{
    register_monotonic(registry, "/causal/profile/passes",
        "per-label causal profile passes over loaded traces",
        [] {
            return static_cast<double>(
                global_stats().profile_passes.load(
                    std::memory_order_relaxed));
        });
    register_monotonic(registry, "/causal/profile/time/ns",
        "wall time spent in causal profile passes",
        [] {
            return static_cast<double>(
                global_stats().profile_time_ns.load(
                    std::memory_order_relaxed));
        });
    register_monotonic(registry, "/causal/whatif/sweeps",
        "rescaled longest-path sweeps run for causal what-if grids",
        [] {
            return static_cast<double>(
                global_stats().whatif_sweeps.load(
                    std::memory_order_relaxed));
        });
}

}    // namespace minihpx::causal
