// Umbrella header for minihpx::causal — the trace-driven causal
// profiler: per-label work/span attribution (profile.hpp), what-if
// speedup curves under Brent's bound (whatif.hpp), rendering
// (report.hpp) and /causal self-counters (counters.hpp).
//
// The verification story lives on the simulator side: scale a label's
// cost with sim_config::cost_scales, re-run, and the measured speedup
// must match predicted_speedup() on the baseline trace — see
// tests/test_causal.cpp and docs/CAUSAL.md.
#pragma once

#include <minihpx/causal/counters.hpp>
#include <minihpx/causal/profile.hpp>
#include <minihpx/causal/report.hpp>
#include <minihpx/causal/whatif.hpp>
