// Rendering for causal profiles: human table and machine JSON.
//
// The table ends with grep-stable ranking lines,
//
//   CAUSAL rank=1 label=sort-merge speedup@50%=1.31 critical-share=0.64
//
// one per ranked label — CI smoke steps and scripts key on the
// "CAUSAL rank=" prefix the way METG sweeps key on "METG engine=".
#pragma once

#include <minihpx/causal/profile.hpp>
#include <minihpx/causal/whatif.hpp>

#include <cstddef>
#include <ostream>

namespace minihpx::causal {

struct report_options
{
    std::size_t top = 5;            // ranked labels to print / emit
    bool show_curves = false;       // full per-label grid in the table
};

void render_table(std::ostream& out, profile_result const& prof,
    whatif_report const& whatif, report_options const& opts = {});

// One self-contained JSON object: {"profile": {...}, "whatif": {...}}.
void render_json(std::ostream& out, profile_result const& prof,
    whatif_report const& whatif, report_options const& opts = {});

}    // namespace minihpx::causal
