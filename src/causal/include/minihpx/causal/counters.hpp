// Causal-profiler self-observation counters, in the paper's intrinsic-
// counter idiom: the analysis tool reports its own cost through the
// same registry the runtime uses, so "how expensive is profiling?"
// is answered with the instrument under study.
//
//   /causal{locality#H/total}/profile/passes     (mono)
//   /causal{locality#H/total}/profile/time/ns    (mono)
//   /causal{locality#H/total}/whatif/sweeps      (mono)
#pragma once

#include <minihpx/perf/registry.hpp>

#include <atomic>
#include <cstdint>

namespace minihpx::causal {

struct stats
{
    std::atomic<std::uint64_t> profile_passes{0};
    std::atomic<std::uint64_t> profile_time_ns{0};
    std::atomic<std::uint64_t> whatif_sweeps{0};

    void reset() noexcept
    {
        profile_passes = 0;
        profile_time_ns = 0;
        whatif_sweeps = 0;
    }
};

// Process-global tallies (profile() and causal_whatif() feed them).
stats& global_stats() noexcept;

// Register the /causal counter types with `registry`. Idempotent;
// sources read global_stats(), so registration is process-lifetime.
// profile() / causal_whatif() call this lazily on first use against
// the default registry.
void register_counters(
    perf::counter_registry& registry = perf::counter_registry::instance());

}    // namespace minihpx::causal
