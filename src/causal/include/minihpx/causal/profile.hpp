// Per-label profile of a trace: where the work and the critical path
// actually live, keyed by this_task::annotate labels.
//
// The TASKPROF observation (PAPERS.md) is that flat profiles mislead on
// task-parallel programs: a region with most of the *work* may have
// ample parallelism while a small region serializes the run. This pass
// attributes three quantities to every label in one time-ordered sweep
// (the same longest-path machinery trace::analyze uses):
//
//   exclusive   execution time charged while the label was current on
//               the running task (a task's latest annotate() wins)
//   inclusive   exclusive time of the label itself plus all execution
//               of tasks spawned *under* it: a child inherits the
//               spawning task's current label into its context, so
//               "sort-merge" inclusive covers the whole merge subtree
//   critical    exclusive time restricted to tasks on the critical
//               path — the span residency that decides whether
//               optimizing the label can shorten the run at all
//
// Execution with no label in scope lands in the "<unlabeled>" bucket
// (annotate("") resets to it), so the rows always sum to the work.
#pragma once

#include <minihpx/trace/format.hpp>

#include <cstdint>
#include <string>
#include <vector>

namespace minihpx::causal {

inline constexpr char const* unlabeled_name = "<unlabeled>";

struct label_row
{
    std::string label;                  // unlabeled_name for bucket 0
    std::uint64_t tasks = 0;            // tasks ever charged under it
    std::uint64_t exclusive_ns = 0;
    std::uint64_t inclusive_ns = 0;
    std::uint64_t critical_ns = 0;
    double work_share = 0.0;            // exclusive / total work
    double critical_share = 0.0;        // critical / critical-path exec
};

struct profile_result
{
    std::uint64_t tasks = 0;
    unsigned workers = 0;
    std::uint64_t work_ns = 0;
    std::uint64_t span_ns = 0;
    double parallelism = 0.0;           // work / span
    // Total execution of critical-path tasks — the denominator of
    // critical_share. Can exceed span_ns: a task on the chain charges
    // all its execution here, including slices off the chain.
    std::uint64_t critical_exec_ns = 0;
    // Sorted by exclusive_ns descending; includes the unlabeled row,
    // so the exclusive column sums to work_ns.
    std::vector<label_row> labels;
};

profile_result profile(trace::trace_data const& data);

}    // namespace minihpx::causal
