// Causal what-if engine: per-label speedup curves with Brent's bound.
//
// For each label L and each grid point p (percent of L's cost
// optimized away), rerun the longest-path sweep with every execution
// slice charged under L scaled by (1 - p/100), then project
//
//   makespan'(L, p) = max(span', work'/P)       (Brent's bound)
//   speedup(L, p)   = max(span, work/P) / makespan'(L, p)
//
// This is the COZ/TASKPROF question — "how much faster would the run
// get if I made *this* region faster?" — answered from the recorded
// task graph instead of by perturbing a live run. Labels match
// *exactly* (unlike trace::project_whatif's substring matching): the
// simulator's cost-scaling hook (sim_config::cost_scales) uses the
// same exact-match rule, which is what lets tests re-run a workload
// with a region genuinely shrunk and check the prediction.
#pragma once

#include <minihpx/causal/profile.hpp>
#include <minihpx/trace/format.hpp>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace minihpx::causal {

struct curve_point
{
    double optimized_pct = 0.0;    // % of the label's cost removed
    std::uint64_t projected_makespan_ns = 0;
    double projected_speedup = 1.0;    // baseline / projected
};

struct causal_curve
{
    std::string label;
    std::uint64_t matched_tasks = 0;      // tasks charged under it
    std::uint64_t matched_exec_ns = 0;    // exclusive time scaled
    std::vector<curve_point> points;      // ascending optimized_pct
};

struct whatif_report
{
    unsigned workers = 0;                    // the P in the bound
    std::uint64_t work_ns = 0;
    std::uint64_t span_ns = 0;
    std::uint64_t baseline_makespan_ns = 0;    // max(span, work/P)
    // One curve per label with nonzero exclusive time (unlabeled is
    // not optimizable and gets no curve), ranked by projected speedup
    // at the largest grid point, descending — curves[0] is the
    // "optimize this first" answer.
    std::vector<causal_curve> curves;
};

// Default grid: 5% to 95% in steps of 15 (5, 20, 35, 50, 65, 80, 95).
std::vector<double> const& default_speedup_grid();

// `grid_pct` entries outside (0, 100) are clamped into [0, 99.9].
// `workers` = 0 uses the count observed in the trace.
whatif_report causal_whatif(trace::trace_data const& data,
    std::vector<double> const& grid_pct = default_speedup_grid(),
    unsigned workers = 0);

// Single-point convenience for verification loops: the projected
// speedup of optimizing `optimized_pct` percent of the execution
// charged under `label` (exact match). Returns 1.0 when the label
// never appears.
double predicted_speedup(trace::trace_data const& data,
    std::string_view label, double optimized_pct, unsigned workers = 0);

}    // namespace minihpx::causal
