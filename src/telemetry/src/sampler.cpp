#include <minihpx/telemetry/sampler.hpp>

#include <minihpx/perf/basic_counters.hpp>
#include <minihpx/perf/counter_name.hpp>
#include <minihpx/util/assert.hpp>

#include <algorithm>
#include <chrono>
#include <unordered_set>

namespace minihpx::telemetry {

namespace {

    constexpr double rollup_quantiles[] = {0.50, 0.95, 0.99};
    constexpr char const* rollup_suffixes[] = {"/p50", "/p95", "/p99"};
    constexpr int num_rollup_quantiles = 3;

    // Expand a (possibly wildcard) name list into concrete full names.
    std::unordered_set<std::string> expand_full_names(
        perf::counter_registry& registry,
        std::vector<std::string> const& names,
        std::vector<std::string>& errors)
    {
        std::unordered_set<std::string> out;
        for (auto const& name : names)
        {
            std::string error;
            auto parsed = perf::parse_counter_name(name, &error);
            if (!parsed)
            {
                errors.push_back(name + ": " + error);
                continue;
            }
            for (auto const& concrete : registry.expand(*parsed))
                out.insert(concrete.full_name());
        }
        return out;
    }

    std::vector<std::string> merged_names(sampler_config const& config)
    {
        std::vector<std::string> names = config.counter_names;
        for (auto const& r : config.rollup_names)
        {
            if (std::find(names.begin(), names.end(), r) == names.end())
                names.push_back(r);
        }
        return names;
    }

}    // namespace

sampler::sampler(perf::counter_registry& registry, sampler_config config)
  : config_(std::move(config))
  , registry_(registry)
  , set_(registry, merged_names(config_))
  , discovery_version_(registry.version())
  , scratch_(set_.size())
{
    errors_ = set_.errors();
    set_errors_seen_ = errors_.size();
    append_columns_from(0);
    ring_ = std::make_unique<sample_ring>(
        config_.ring_capacity, schema_.width());
}

// Build schema columns for counters [first_counter, set_.size()):
// the whole set at construction, only the newly resolved tail on
// rediscovery — existing columns never move.
void sampler::append_columns_from(std::size_t first_counter)
{
    std::vector<std::string> rollup_errors;
    auto const rollup_set =
        expand_full_names(registry_, config_.rollup_names, rollup_errors);
    if (first_counter == 0)
        errors_.insert(
            errors_.end(), rollup_errors.begin(), rollup_errors.end());

    auto const& handles = set_.handles();
    rollup_hist_of_counter_.resize(handles.size(), -1);
    for (std::size_t i = first_counter; i < handles.size(); ++i)
    {
        auto const& info = handles[i].info();
        if (rollup_set.count(info.full_name) != 0)
        {
            rollup_hist_of_counter_[i] =
                static_cast<int>(rollup_hists_.size());
            rollup_hists_.push_back(
                std::make_unique<util::log2_histogram<>>());
            for (int q = 0; q < num_rollup_quantiles; ++q)
            {
                schema_.columns.push_back(column{
                    info.full_name + rollup_suffixes[q],
                    info.unit_of_measure, perf::counter_kind::histogram});
                source_counter_.push_back(i);
                quantile_of_.push_back(q);
            }
        }
        else
        {
            schema_.columns.push_back(column{
                info.full_name, info.unit_of_measure, info.kind});
            source_counter_.push_back(i);
            quantile_of_.push_back(-1);
        }
    }
}

// Sample-thread only. Re-expand the configured names, grow the schema,
// and swap in a wider ring.
void sampler::rediscover()
{
    // Capture *before* expanding: a registration racing with this
    // rediscovery bumps the version past `v` and triggers another pass
    // on the next sample.
    std::uint64_t const v = registry_.version();
    std::size_t const before = set_.size();
    std::size_t const added = set_.refresh(registry_);
    // Mirror any *new* resolution failures (set_ errors are append-only).
    auto const& set_errors = set_.errors();
    for (std::size_t i = set_errors_seen_; i < set_errors.size(); ++i)
        errors_.push_back(set_errors[i]);
    set_errors_seen_ = set_errors.size();
    discovery_version_.store(v, std::memory_order_release);
    if (added == 0)
        return;    // version bump didn't grow our selection

    append_columns_from(before);
    scratch_.resize(set_.size());

    std::lock_guard lock(pipeline_mutex_);
    open_sinks_locked();
    // Everything sampled at the old width drains before the boundary
    // marker; rows after this point are new-width.
    flush_pending_locked();
    dropped_baseline_ += ring_->dropped();
    ring_ = std::make_unique<sample_ring>(
        config_.ring_capacity, schema_.width());
    for (auto const& s : sinks_)
        s->on_schema_change(schema_);
}

sampler::~sampler()
{
    stop();
}

void sampler::add_sink(sink_ptr s)
{
    MINIHPX_ASSERT_MSG(!sinks_open_,
        "telemetry sinks must be attached before sampling starts");
    MINIHPX_ASSERT_MSG(s != nullptr, "null telemetry sink");
    sinks_.push_back(std::move(s));
}

// ------------------------------------------------------------ sample path

void sampler::sample_once(std::uint64_t t_ns)
{
    // Live discovery: one lock-free version load per sample; the
    // expensive re-expansion only runs when the registry changed.
    if (registry_.version() !=
        discovery_version_.load(std::memory_order_relaxed))
        rediscover();

    // No allocation from here to commit_push().
    set_.evaluate_into(scratch_);

    for (std::size_t i = 0; i < scratch_.size(); ++i)
    {
        int const h = rollup_hist_of_counter_[i];
        if (h >= 0 && scratch_[i].valid())
        {
            double const v = scratch_[i].get();
            rollup_hists_[static_cast<std::size_t>(h)]->add(
                v <= 0.0 ? 0 : static_cast<std::uint64_t>(v));
        }
    }

    std::uint64_t const seq =
        samples_.fetch_add(1, std::memory_order_relaxed);
    slot* row = ring_->begin_push(t_ns, seq);
    if (!row)
        return;    // consumer lagged a full lap; counted as dropped

    for (std::size_t c = 0; c < schema_.width(); ++c)
    {
        int const q = quantile_of_[c];
        if (q < 0)
        {
            auto const& v = scratch_[source_counter_[c]];
            row[c].value = v.valid() ? v.get() : 0.0;
            row[c].valid = v.valid();
        }
        else
        {
            auto const& hist = *rollup_hists_[static_cast<std::size_t>(
                rollup_hist_of_counter_[source_counter_[c]])];
            row[c].valid = hist.total() > 0;
            row[c].value = static_cast<double>(
                hist.quantile(rollup_quantiles[q]));
        }
    }
    ring_->commit_push();
}

// ------------------------------------------------------------- drain path

void sampler::open_sinks_locked()
{
    if (sinks_open_)
        return;
    sinks_open_ = true;
    for (auto const& s : sinks_)
        s->open(schema_);
}

void sampler::close_sinks_once()
{
    std::lock_guard lock(pipeline_mutex_);
    if (sinks_closed_ || !sinks_open_)
        return;
    sinks_closed_ = true;
    for (auto const& s : sinks_)
    {
        s->flush();
        s->close();
    }
}

void sampler::flush_pending()
{
    std::lock_guard lock(pipeline_mutex_);
    open_sinks_locked();
    flush_pending_locked();
}

void sampler::flush_pending_locked()
{
    sample_view v;
    bool any = false;
    while (ring_->front(v))
    {
        for (auto const& s : sinks_)
            s->consume(v);
        ring_->pop();
        flushed_.fetch_add(1, std::memory_order_relaxed);
        any = true;
    }
    if (any)
    {
        for (auto const& s : sinks_)
            s->flush();
    }
}

// ------------------------------------------------------- pipeline stats

std::uint64_t sampler::dropped() const
{
    std::lock_guard lock(pipeline_mutex_);
    return dropped_baseline_ + ring_->dropped();
}

std::size_t sampler::ring_occupancy() const
{
    std::lock_guard lock(pipeline_mutex_);
    return ring_->size();
}

std::size_t sampler::ring_capacity() const
{
    std::lock_guard lock(pipeline_mutex_);
    return ring_->capacity();
}

// -------------------------------------------------------------- real time

void sampler::start()
{
    MINIHPX_ASSERT_MSG(!running(), "sampler already running");
    MINIHPX_ASSERT_MSG(config_.period_ns > 0, "sampler period must be > 0");
    stop_requested_ = false;
    flush_stop_ = false;
    running_.store(true, std::memory_order_release);
    flush_thread_ = std::thread([this] { flush_loop(); });
    sample_thread_ = std::thread([this] { sample_loop(); });
}

void sampler::stop()
{
    if (sample_thread_.joinable())
    {
        {
            std::lock_guard lock(stop_mutex_);
            stop_requested_ = true;
        }
        stop_cv_.notify_all();
        sample_thread_.join();
    }
    if (flush_thread_.joinable())
    {
        {
            std::lock_guard lock(flush_mutex_);
            flush_stop_ = true;
        }
        flush_cv_.notify_all();
        flush_thread_.join();
    }
    running_.store(false, std::memory_order_release);
    // Final drain + close happen on this thread — by the time stop()
    // returns, every surviving row has reached every sink.
    flush_pending();
    close_sinks_once();
}

void sampler::sample_loop()
{
    using clock = std::chrono::steady_clock;
    auto const period = std::chrono::nanoseconds(config_.period_ns);
    auto deadline = clock::now() + period;

    std::unique_lock lock(stop_mutex_);
    while (!stop_requested_)
    {
        if (stop_cv_.wait_until(
                lock, deadline, [this] { return stop_requested_; }))
            break;
        lock.unlock();
        sample_once(perf::counter_clock_ns());
        flush_cv_.notify_one();
        deadline += period;
        // If sampling fell behind (debugger, suspended VM), skip the
        // missed ticks instead of bursting to catch up.
        auto const now = clock::now();
        if (deadline < now)
            deadline = now + period;
        lock.lock();
    }
}

void sampler::flush_loop()
{
    {
        std::lock_guard lock(pipeline_mutex_);
        open_sinks_locked();
    }
    std::unique_lock lock(flush_mutex_);
    while (true)
    {
        // ring_occupancy() (not ring_->size()): the ring pointer itself
        // may be swapped by a rediscovery on the sample thread.
        flush_cv_.wait_for(lock, std::chrono::milliseconds(50),
            [this] { return flush_stop_ || ring_occupancy() != 0; });
        bool const stopping = flush_stop_;
        lock.unlock();
        flush_pending();
        if (stopping)
            return;
        lock.lock();
    }
}

// ---------------------------------------------------------- virtual time

void sampler::tick(std::uint64_t t_ns)
{
    MINIHPX_ASSERT_MSG(
        !running(), "tick() is for manual mode; the sampler is running");
    sample_once(t_ns);
    flush_pending();
}

// ---------------------------------------------------------- self counters

namespace {

    char const* const telemetry_counter_keys[] = {
        "/telemetry/count/samples",
        "/telemetry/count/dropped",
        "/telemetry/count/flushed",
        "/telemetry/buffer/occupancy",
        "/telemetry/buffer/capacity",
    };

    void register_gauge_type(perf::counter_registry& registry,
        std::string key, perf::counter_kind kind, std::string help,
        perf::value_source source)
    {
        perf::counter_registry::type_info t;
        t.type_key = std::move(key);
        t.kind = kind;
        t.helptext = std::move(help);
        t.create = [source = std::move(source), kind](
                       perf::counter_path const& path) -> perf::counter_ptr {
            perf::counter_info info;
            info.full_name = path.full_name();
            info.kind = kind;
            if (kind == perf::counter_kind::monotonically_increasing)
                return std::make_shared<perf::delta_counter>(
                    std::move(info), source);
            return std::make_shared<perf::gauge_counter>(
                std::move(info), source);
        };
        registry.register_type(std::move(t));
    }

}    // namespace

void register_telemetry_counters(perf::counter_registry& registry, sampler& s)
{
    using perf::counter_kind;
    register_gauge_type(registry, "/telemetry/count/samples",
        counter_kind::monotonically_increasing,
        "samples taken by the telemetry sampler",
        [&s] { return static_cast<double>(s.samples()); });
    register_gauge_type(registry, "/telemetry/count/dropped",
        counter_kind::monotonically_increasing,
        "telemetry rows dropped on ring overflow",
        [&s] { return static_cast<double>(s.dropped()); });
    register_gauge_type(registry, "/telemetry/count/flushed",
        counter_kind::monotonically_increasing,
        "telemetry rows delivered to sinks",
        [&s] { return static_cast<double>(s.flushed()); });
    register_gauge_type(registry, "/telemetry/buffer/occupancy",
        counter_kind::raw, "rows currently buffered in the sample ring",
        [&s] { return static_cast<double>(s.ring_occupancy()); });
    register_gauge_type(registry, "/telemetry/buffer/capacity",
        counter_kind::raw, "sample ring capacity in rows",
        [&s] { return static_cast<double>(s.ring_capacity()); });
}

void remove_telemetry_counters(perf::counter_registry& registry)
{
    for (char const* key : telemetry_counter_keys)
        registry.unregister_type(key);
}

}    // namespace minihpx::telemetry
