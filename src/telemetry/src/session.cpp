#include <minihpx/telemetry/session.hpp>

#include <minihpx/runtime/runtime.hpp>
#include <minihpx/util/assert.hpp>

#include <iostream>

namespace minihpx::telemetry {

namespace {

    sampler_config make_sampler_config(telemetry_options const& options)
    {
        sampler_config config;
        config.counter_names = options.counter_names;
        config.rollup_names = options.rollup_names;
        config.period_ns = options.interval_ms <= 0.0 ?
            std::uint64_t(100'000'000) :
            static_cast<std::uint64_t>(options.interval_ms * 1e6);
        config.ring_capacity = options.ring_capacity;
        return config;
    }

    bool has_prefix(std::string const& s, std::string_view prefix)
    {
        return s.size() > prefix.size() &&
            s.compare(0, prefix.size(), prefix) == 0;
    }

}    // namespace

telemetry_options telemetry_options::from_cli(util::cli_args const& args)
{
    telemetry_options options;
    options.counter_names = args.values("mh:print-counter");
    options.rollup_names = args.values("mh:telemetry-rollup");
    options.interval_ms = args.double_or("mh:telemetry-interval",
        args.double_or("mh:print-counter-interval", 100.0));
    options.destination = args.value_or("mh:telemetry-destination",
        args.value_or("mh:print-counter-destination", ""));
    options.endpoint_port =
        static_cast<int>(args.int_or("mh:telemetry-endpoint", -1));
    options.ring_capacity = static_cast<std::size_t>(
        args.int_or("mh:telemetry-ring", 1024));
    return options;
}

session::session(perf::counter_registry& registry, telemetry_options options)
  : options_(std::move(options))
  , sampler_(registry, make_sampler_config(options_))
{
    for (auto const& error : sampler_.errors())
        std::cerr << "minihpx: telemetry error: " << error << '\n';

    if (!options_.destination.empty())
    {
        if (has_prefix(options_.destination, "jsonl:"))
            sampler_.add_sink(std::make_shared<jsonl_sink>(
                options_.destination.substr(6)));
        else if (has_prefix(options_.destination, "csv:"))
            sampler_.add_sink(
                std::make_shared<csv_sink>(options_.destination.substr(4)));
        else
            sampler_.add_sink(
                std::make_shared<csv_sink>(options_.destination));
    }

    if (options_.endpoint_port >= 0)
    {
        endpoint_ = std::make_shared<scrape_endpoint>(
            static_cast<std::uint16_t>(options_.endpoint_port));
        endpoint_->set_stats_source([this] {
            return scrape_endpoint::stats{
                sampler_.samples(), sampler_.dropped(), sampler_.flushed()};
        });
        sampler_.add_sink(endpoint_);
    }

    // Quiesce before the runtime tears down workers: the sampled
    // counters read live scheduler state (same ordering contract as
    // perf::counter_session).
    if (runtime* rt = runtime::get_ptr())
    {
        hooked_runtime_ = rt;
        shutdown_token_ = rt->at_shutdown([this] { stop(); });
    }

    if (options_.autostart && !sampler_.empty())
        sampler_.start();
}

session::~session()
{
    stop();
    if (hooked_runtime_ && runtime::get_ptr() == hooked_runtime_)
        static_cast<runtime*>(hooked_runtime_)
            ->remove_shutdown_hook(shutdown_token_);
}

void session::subscribe(
    subscription_sink::callback cb, std::size_t max_pending)
{
    sampler_.add_sink(
        std::make_shared<subscription_sink>(std::move(cb), max_pending));
}

void session::start()
{
    if (!sampler_.running() && !sampler_.empty())
        sampler_.start();
}

void session::stop()
{
    sampler_.stop();
}

}    // namespace minihpx::telemetry
