#include <minihpx/telemetry/sink.hpp>

#include <minihpx/util/assert.hpp>

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>

namespace minihpx::telemetry {

std::string json_escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char const c : s)
    {
        switch (c)
        {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
            {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
                out += buf;
            }
            else
            {
                out += c;
            }
        }
    }
    return out;
}

namespace {

    std::unique_ptr<std::ostream> open_file(std::string const& path)
    {
        auto file = std::make_unique<std::ofstream>(path);
        MINIHPX_ASSERT_MSG(
            file->is_open(), "telemetry sink: cannot open output file");
        return file;
    }

}    // namespace

// -------------------------------------------------------------------- csv

csv_sink::csv_sink(std::string path)
  : owned_(open_file(path))
  , out_(owned_.get())
{
}

csv_sink::csv_sink(std::ostream& os)
  : out_(&os)
{
}

csv_sink::~csv_sink() = default;

void csv_sink::open(record_schema const& schema)
{
    *out_ << "t_ns,seq";
    for (auto const& c : schema.columns)
        *out_ << ',' << c.name;
    *out_ << '\n';
}

void csv_sink::on_schema_change(record_schema const& schema)
{
    // A second header line mid-stream: consumers that track the header
    // re-key columns from here on; oblivious ones still parse rows by
    // position, since growth is append-only.
    open(schema);
}

void csv_sink::consume(sample_view const& row)
{
    *out_ << row.t_ns << ',' << row.seq;
    for (std::size_t i = 0; i < row.width; ++i)
    {
        *out_ << ',';
        if (row.slots[i].valid)
            *out_ << std::setprecision(12) << row.slots[i].value;
    }
    *out_ << '\n';
}

void csv_sink::flush()
{
    out_->flush();
}

// ------------------------------------------------------------------ jsonl

jsonl_sink::jsonl_sink(std::string path)
  : owned_(open_file(path))
  , out_(owned_.get())
{
}

jsonl_sink::jsonl_sink(std::ostream& os)
  : out_(&os)
{
}

jsonl_sink::~jsonl_sink() = default;

void jsonl_sink::open(record_schema const& schema)
{
    *out_ << "{\"schema\":{\"columns\":[";
    for (std::size_t i = 0; i < schema.columns.size(); ++i)
    {
        auto const& c = schema.columns[i];
        if (i != 0)
            *out_ << ',';
        *out_ << "{\"name\":\"" << json_escape(c.name) << "\",\"unit\":\""
              << json_escape(c.unit) << "\",\"kind\":\""
              << perf::to_string(c.kind) << "\"}";
    }
    *out_ << "]}}\n";
}

void jsonl_sink::on_schema_change(record_schema const& schema)
{
    open(schema);
}

void jsonl_sink::consume(sample_view const& row)
{
    *out_ << "{\"t_ns\":" << row.t_ns << ",\"seq\":" << row.seq
          << ",\"v\":[";
    for (std::size_t i = 0; i < row.width; ++i)
    {
        if (i != 0)
            *out_ << ',';
        if (row.slots[i].valid)
            *out_ << std::setprecision(12) << row.slots[i].value;
        else
            *out_ << "null";
    }
    *out_ << "]}\n";
}

void jsonl_sink::flush()
{
    out_->flush();
}

// ----------------------------------------------------------- subscription

subscription_sink::subscription_sink(callback cb, std::size_t max_pending)
  : callback_(std::move(cb))
  , max_pending_(max_pending == 0 ? 1 : max_pending)
{
    MINIHPX_ASSERT_MSG(callback_, "subscription_sink needs a callback");
}

bool subscription_sink::deliver_pending()
{
    while (!pending_.empty())
    {
        if (!callback_(pending_.front().view()))
            return false;
        pending_.pop_front();
        ++delivered_;
    }
    return true;
}

void subscription_sink::consume(sample_view const& row)
{
    // Pending rows go first so the subscriber always sees samples in
    // order; only when the backlog clears is the new row offered.
    if (deliver_pending() && callback_(row))
    {
        ++delivered_;
        return;
    }
    if (pending_.size() >= max_pending_)
    {
        pending_.pop_front();
        ++dropped_;
    }
    pending_.push_back(sample_record::copy_of(row));
}

void subscription_sink::flush()
{
    deliver_pending();
}

}    // namespace minihpx::telemetry
