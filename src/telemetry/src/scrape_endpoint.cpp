#include <minihpx/telemetry/scrape_endpoint.hpp>

#include <minihpx/util/assert.hpp>

#include <cstdio>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace minihpx::telemetry {

namespace {

    // Prometheus label values escape backslash, quote and newline.
    std::string label_escape(std::string_view s)
    {
        std::string out;
        out.reserve(s.size());
        for (char const c : s)
        {
            if (c == '\\')
                out += "\\\\";
            else if (c == '"')
                out += "\\\"";
            else if (c == '\n')
                out += "\\n";
            else
                out += c;
        }
        return out;
    }

    void write_all(int fd, std::string_view data)
    {
        std::size_t off = 0;
        while (off < data.size())
        {
            ssize_t const n =
                ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return;
            off += static_cast<std::size_t>(n);
        }
    }

}    // namespace

scrape_endpoint::scrape_endpoint(std::uint16_t port)
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    MINIHPX_ASSERT_MSG(listen_fd_ >= 0, "scrape endpoint: socket() failed");

    int const one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
    addr.sin_port = ::htons(port);
    int const bound = ::bind(listen_fd_,
        reinterpret_cast<sockaddr const*>(&addr), sizeof(addr));
    MINIHPX_ASSERT_MSG(bound == 0, "scrape endpoint: bind() failed");
    MINIHPX_ASSERT_MSG(::listen(listen_fd_, 8) == 0,
        "scrape endpoint: listen() failed");

    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ::ntohs(addr.sin_port);

    server_ = std::thread([this] { serve_loop(); });
}

scrape_endpoint::~scrape_endpoint()
{
    stop_serving();
}

void scrape_endpoint::close()
{
    stop_serving();
}

void scrape_endpoint::stop_serving()
{
    if (!server_.joinable())
        return;
    stop_.store(true, std::memory_order_release);
    server_.join();
    if (listen_fd_ >= 0)
    {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void scrape_endpoint::open(record_schema const& schema)
{
    std::lock_guard lock(mutex_);
    schema_ = schema;
    have_schema_ = true;
}

void scrape_endpoint::on_schema_change(record_schema const& schema)
{
    // render() already clamps to min(columns, row width), so the cached
    // latest row (old width) stays servable until the next consume().
    open(schema);
}

void scrape_endpoint::consume(sample_view const& row)
{
    std::lock_guard lock(mutex_);
    latest_ = sample_record::copy_of(row);
    have_row_ = true;
}

void scrape_endpoint::set_stats_source(std::function<stats()> source)
{
    std::lock_guard lock(mutex_);
    stats_source_ = std::move(source);
}

std::string scrape_endpoint::render() const
{
    std::ostringstream os;
    os << "# HELP minihpx_counter Latest sampled value of a minihpx "
          "performance counter.\n"
          "# TYPE minihpx_counter gauge\n";

    std::lock_guard lock(mutex_);
    if (have_schema_ && have_row_)
    {
        std::size_t const n =
            std::min(schema_.columns.size(), latest_.slots.size());
        for (std::size_t i = 0; i < n; ++i)
        {
            if (!latest_.slots[i].valid)
                continue;
            auto const& c = schema_.columns[i];
            os << "minihpx_counter{path=\"" << label_escape(c.name) << '"';
            if (!c.unit.empty())
                os << ",unit=\"" << label_escape(c.unit) << '"';
            os << "} ";
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.12g", latest_.slots[i].value);
            os << buf << '\n';
        }
        os << "# HELP minihpx_sample_age_seq Sequence number of the "
              "sample served above.\n"
              "# TYPE minihpx_sample_age_seq gauge\n"
              "minihpx_sample_age_seq "
           << latest_.seq << '\n';
    }

    if (stats_source_)
    {
        stats const s = stats_source_();
        os << "# HELP minihpx_telemetry_samples_total Samples taken by "
              "the attached sampler.\n"
              "# TYPE minihpx_telemetry_samples_total counter\n"
              "minihpx_telemetry_samples_total "
           << s.samples
           << "\n"
              "# HELP minihpx_telemetry_dropped_total Rows dropped on "
              "ring overflow.\n"
              "# TYPE minihpx_telemetry_dropped_total counter\n"
              "minihpx_telemetry_dropped_total "
           << s.dropped
           << "\n"
              "# HELP minihpx_telemetry_flushed_total Rows delivered "
              "to sinks.\n"
              "# TYPE minihpx_telemetry_flushed_total counter\n"
              "minihpx_telemetry_flushed_total "
           << s.flushed << '\n';
    }

    os << "# HELP minihpx_scrapes_total Scrapes served by this "
          "endpoint.\n"
          "# TYPE minihpx_scrapes_total counter\n"
          "minihpx_scrapes_total "
       << scrapes_.load(std::memory_order_relaxed) << '\n';
    return os.str();
}

void scrape_endpoint::serve_loop()
{
    while (!stop_.load(std::memory_order_acquire))
    {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        int const ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
        if (ready <= 0)
            continue;

        int const client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0)
            continue;

        // Read whatever arrives first; we only dispatch on the request
        // line, so one read of the initial chunk is enough for every
        // real scraper.
        char request[2048];
        ssize_t const n = ::recv(client, request, sizeof(request) - 1, 0);
        bool const is_get = n >= 3 && std::strncmp(request, "GET", 3) == 0;

        if (is_get)
        {
            scrapes_.fetch_add(1, std::memory_order_relaxed);
            std::string const body = render();
            std::ostringstream head;
            head << "HTTP/1.0 200 OK\r\n"
                    "Content-Type: text/plain; version=0.0.4; "
                    "charset=utf-8\r\n"
                    "Content-Length: "
                 << body.size()
                 << "\r\n"
                    "Connection: close\r\n\r\n";
            write_all(client, head.str());
            write_all(client, body);
        }
        else
        {
            write_all(client,
                "HTTP/1.0 400 Bad Request\r\n"
                "Content-Length: 0\r\nConnection: close\r\n\r\n");
        }
        ::close(client);
    }
}

}    // namespace minihpx::telemetry
