#include <minihpx/telemetry/sim_bridge.hpp>

#include <minihpx/perf/basic_counters.hpp>

#include <string>
#include <utility>

namespace minihpx::telemetry {

namespace {

    char const* const sim_counter_keys[] = {
        "/sim/time/virtual",
        "/sim/time/task-cumulative",
        "/sim/time/overhead-cumulative",
        "/sim/count/tasks-created",
        "/sim/count/tasks-executed",
        "/sim/count/tasks-alive",
        "/sim/count/steals",
        "/sim/count/suspensions",
    };

    void register_sim_type(perf::counter_registry& registry, std::string key,
        perf::counter_kind kind, std::string unit, std::string help,
        perf::value_source source)
    {
        perf::counter_registry::type_info t;
        t.type_key = std::move(key);
        t.kind = kind;
        t.unit_of_measure = unit;
        t.helptext = std::move(help);
        t.create = [source = std::move(source), kind, unit](
                       perf::counter_path const& path) -> perf::counter_ptr {
            perf::counter_info info;
            info.full_name = path.full_name();
            info.kind = kind;
            info.unit_of_measure = unit;
            if (kind == perf::counter_kind::monotonically_increasing)
                return std::make_shared<perf::delta_counter>(
                    std::move(info), source);
            return std::make_shared<perf::gauge_counter>(
                std::move(info), source);
        };
        registry.register_type(std::move(t));
    }

}    // namespace

void register_sim_counters(
    perf::counter_registry& registry, sim::simulator& sim)
{
    using perf::counter_kind;
    auto const mono = counter_kind::monotonically_increasing;

    register_sim_type(registry, "/sim/time/virtual", counter_kind::raw,
        "ns", "current virtual time of the simulator",
        [&sim] { return static_cast<double>(sim.progress().now_ns); });
    register_sim_type(registry, "/sim/time/task-cumulative", mono, "ns",
        "cumulative virtual task segment time",
        [&sim] { return static_cast<double>(sim.progress().task_time_ns); });
    register_sim_type(registry, "/sim/time/overhead-cumulative", mono, "ns",
        "cumulative virtual scheduler overhead",
        [&sim] { return static_cast<double>(sim.progress().overhead_ns); });
    register_sim_type(registry, "/sim/count/tasks-created", mono, "",
        "tasks created since run start",
        [&sim] { return static_cast<double>(sim.progress().tasks_created); });
    register_sim_type(registry, "/sim/count/tasks-executed", mono, "",
        "tasks retired since run start",
        [&sim] { return static_cast<double>(sim.progress().tasks_executed); });
    register_sim_type(registry, "/sim/count/tasks-alive", counter_kind::raw,
        "", "tasks currently alive in the simulation",
        [&sim] { return static_cast<double>(sim.progress().tasks_alive); });
    register_sim_type(registry, "/sim/count/steals", mono, "",
        "work-stealing operations since run start",
        [&sim] { return static_cast<double>(sim.progress().steals); });
    register_sim_type(registry, "/sim/count/suspensions", mono, "",
        "task suspensions since run start",
        [&sim] { return static_cast<double>(sim.progress().suspensions); });
}

void remove_sim_counters(perf::counter_registry& registry)
{
    for (char const* key : sim_counter_keys)
        registry.unregister_type(key);
}

sim_sampler::sim_sampler(sim::simulator& sim,
    perf::counter_registry& registry, sampler_config config)
  : sim_(sim)
  , period_ns_(config.period_ns)
  , sampler_(registry, std::move(config))
{
    sim_.set_sample_hook(
        period_ns_, [this](std::uint64_t t) { sampler_.tick(t); });
}

sim_sampler::~sim_sampler()
{
    finish();
}

void sim_sampler::finish()
{
    if (finished_)
        return;
    finished_ = true;
    sim_.clear_sample_hook();
    sampler_.stop();    // no threads in manual mode: drain + close only
}

}    // namespace minihpx::telemetry
