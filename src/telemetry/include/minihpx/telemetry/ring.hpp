// Preallocated SPSC ring of sample rows.
//
// The sample path must not perturb the run it measures (the paper's
// ≲10% overhead budget, §V-C), so the ring is sized once and pushing
// a row is: claim slot pointers, write width doubles, one release
// store. No locks, no allocation, bounded memory. When the consumer
// (flush thread / inline drain) lags a full lap behind, the new row is
// *dropped and counted* — losing telemetry beats distorting it.
#pragma once

#include <minihpx/telemetry/record.hpp>

#include <atomic>
#include <cstdint>
#include <vector>

namespace minihpx::telemetry {

class sample_ring
{
public:
    sample_ring(std::size_t capacity, std::size_t width)
      : capacity_(capacity == 0 ? 1 : capacity)
      , width_(width)
      , headers_(capacity_)
      , slots_(capacity_ * (width == 0 ? 1 : width))
    {
    }

    std::size_t capacity() const noexcept { return capacity_; }
    std::size_t width() const noexcept { return width_; }

    // Producer: claim the next row and stamp it. Returns the slot
    // array to fill (width() entries), or nullptr when the ring is
    // full (the row is counted as dropped). Must be followed by
    // commit_push() when non-null.
    slot* begin_push(std::uint64_t t_ns, std::uint64_t seq) noexcept
    {
        std::uint64_t const head = head_.load(std::memory_order_relaxed);
        std::uint64_t const tail = tail_.load(std::memory_order_acquire);
        if (head - tail >= capacity_)
        {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        std::size_t const row = static_cast<std::size_t>(head % capacity_);
        headers_[row].t_ns = t_ns;
        headers_[row].seq = seq;
        return &slots_[row * width_];
    }

    void commit_push() noexcept
    {
        pushed_.fetch_add(1, std::memory_order_relaxed);
        head_.store(
            head_.load(std::memory_order_relaxed) + 1,
            std::memory_order_release);
    }

    // Consumer: view the oldest row; pop() after use. The view stays
    // valid until pop() (the producer cannot overwrite an unpopped
    // row — it drops instead).
    bool front(sample_view& out) const noexcept
    {
        std::uint64_t const tail = tail_.load(std::memory_order_relaxed);
        if (tail == head_.load(std::memory_order_acquire))
            return false;
        std::size_t const row = static_cast<std::size_t>(tail % capacity_);
        out.t_ns = headers_[row].t_ns;
        out.seq = headers_[row].seq;
        out.slots = &slots_[row * width_];
        out.width = width_;
        return true;
    }

    void pop() noexcept
    {
        tail_.store(
            tail_.load(std::memory_order_relaxed) + 1,
            std::memory_order_release);
    }

    std::size_t size() const noexcept
    {
        return static_cast<std::size_t>(
            head_.load(std::memory_order_acquire) -
            tail_.load(std::memory_order_acquire));
    }

    std::uint64_t pushed() const noexcept
    {
        return pushed_.load(std::memory_order_relaxed);
    }

    std::uint64_t dropped() const noexcept
    {
        return dropped_.load(std::memory_order_relaxed);
    }

private:
    struct header
    {
        std::uint64_t t_ns = 0;
        std::uint64_t seq = 0;
    };

    std::size_t const capacity_;
    std::size_t const width_;
    std::vector<header> headers_;
    std::vector<slot> slots_;

    alignas(64) std::atomic<std::uint64_t> head_{0};    // next write
    alignas(64) std::atomic<std::uint64_t> tail_{0};    // next read
    std::atomic<std::uint64_t> pushed_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

}    // namespace minihpx::telemetry
