// Pluggable telemetry sinks.
//
// A sink receives the schema once, then rows in order, always from one
// thread at a time (the sampler's flush thread, or the caller in
// manual/virtual-time mode). Sinks may block — they run off the sample
// path; a slow sink costs ring capacity (dropped rows), never sampling
// jitter. Implementations here: CSV file, JSON-lines file, and an
// in-process subscription (callback with backpressure). The TCP scrape
// endpoint lives in scrape_endpoint.hpp.
#pragma once

#include <minihpx/telemetry/record.hpp>

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

namespace minihpx::telemetry {

class sink
{
public:
    virtual ~sink() = default;

    // Called once, before the first consume().
    virtual void open(record_schema const& schema) { (void) schema; }

    // The sampler rediscovered counters mid-run (registry version bump,
    // e.g. a PAPI engine registered after start): the schema grew.
    // Growth is append-only — existing columns keep their positions —
    // and this is called between the last row of the old width and the
    // first row of the new width. Default: ignore (rows carry their own
    // width, so width-agnostic sinks need no action).
    virtual void on_schema_change(record_schema const& schema)
    {
        (void) schema;
    }

    // One row, oldest first. The view's storage is only valid for the
    // duration of the call — copy (sample_record::copy_of) to keep it.
    virtual void consume(sample_view const& row) = 0;

    // Batch boundary: every row available at drain time has been
    // consumed. Good point to flush buffered IO.
    virtual void flush() {}

    // Final call at sampler stop; no consume()/flush() afterwards.
    virtual void close() {}
};

using sink_ptr = std::shared_ptr<sink>;

// CSV file: "t_ns,seq,<col1>,<col2>,..." header, one row per sample,
// invalid slots as empty fields.
class csv_sink final : public sink
{
public:
    explicit csv_sink(std::string path);
    explicit csv_sink(std::ostream& os);    // borrowed stream (tests)
    ~csv_sink() override;

    void open(record_schema const& schema) override;
    // Re-emits the header line with the new column set; rows before it
    // parse against the old header, rows after against the new one.
    void on_schema_change(record_schema const& schema) override;
    void consume(sample_view const& row) override;
    void flush() override;

private:
    std::unique_ptr<std::ostream> owned_;
    std::ostream* out_;
};

// JSON-lines file: first line is a schema object
//   {"schema":{"columns":[{"name":...,"unit":...,"kind":...},...]}}
// then one object per sample
//   {"t_ns":N,"seq":N,"v":[1.5,null,...]}
// with invalid slots as null.
class jsonl_sink final : public sink
{
public:
    explicit jsonl_sink(std::string path);
    explicit jsonl_sink(std::ostream& os);
    ~jsonl_sink() override;

    void open(record_schema const& schema) override;
    // Emits a fresh {"schema":...} line describing the grown column set.
    void on_schema_change(record_schema const& schema) override;
    void consume(sample_view const& row) override;
    void flush() override;

private:
    std::unique_ptr<std::ostream> owned_;
    std::ostream* out_;
};

// In-process subscription: rows are delivered to a callback. Returning
// false signals backpressure — the row is retained in a bounded
// pending queue and redelivered (in order, ahead of newer rows) on the
// next batch; when the queue overflows, the *oldest* pending row is
// dropped and counted. The callback runs on the flush thread, so a
// slow consumer never blocks sampling — it trades pending-queue (then
// ring) capacity instead.
class subscription_sink final : public sink
{
public:
    using callback = std::function<bool(sample_view const&)>;

    explicit subscription_sink(callback cb, std::size_t max_pending = 256);

    void consume(sample_view const& row) override;
    void flush() override;

    std::uint64_t delivered() const noexcept { return delivered_; }
    std::uint64_t dropped() const noexcept { return dropped_; }
    std::size_t pending() const noexcept { return pending_.size(); }

private:
    bool deliver_pending();

    callback callback_;
    std::size_t max_pending_;
    std::deque<sample_record> pending_;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
};

// JSON string escaping shared by the JSONL sink and the scrape
// endpoint's label rendering.
std::string json_escape(std::string_view s);

}    // namespace minihpx::telemetry
