// The telemetry sampler: active counters -> time-series pipeline.
//
// Construction expands wildcard counter names through the registry and
// preallocates one ring row per sample and a scratch evaluation
// buffer, so the steady-state sample path performs no allocation.
// Discovery is *live*: each sample first compares the registry version
// against the one captured at the last expansion, and re-expands on a
// mismatch — counters registered after the sampler started (a PAPI
// engine brought up mid-run, a new subsystem) join the running
// session. Schema growth is append-only (existing columns keep their
// positions); sinks are told via sink::on_schema_change between the
// last old-width row and the first new-width one. Two modes:
//
//   start()/stop()  real-time: a sample thread evaluates the set every
//                   period_ns (absolute deadlines, no drift) and a
//                   flush thread drains the ring into the sinks — file
//                   IO and callbacks never run on the sample path.
//   tick(t_ns)      manual/virtual time: the caller (e.g. the sim
//                   bridge at virtual-time boundaries) samples and
//                   drains inline. Same schema, same sinks.
//
// Counters listed in rollup_names stream util::log2_histogram-backed
// p50/p95/p99 quantile columns instead of raw values: every tick feeds
// the sampled value into the histogram and emits the current
// quantiles, which is how high-rate series (task duration) stay
// useful at low scrape rates.
#pragma once

#include <minihpx/perf/active_counters.hpp>
#include <minihpx/perf/registry.hpp>
#include <minihpx/telemetry/ring.hpp>
#include <minihpx/telemetry/sink.hpp>
#include <minihpx/util/histogram.hpp>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace minihpx::telemetry {

struct sampler_config
{
    // Counter names to stream; wildcards expanded at construction.
    std::vector<std::string> counter_names;
    // Subset (also wildcard-able; added to the set if missing) whose
    // raw column is replaced by p50/p95/p99 rollup columns.
    std::vector<std::string> rollup_names;
    std::uint64_t period_ns = 100'000'000;    // 100 ms
    std::size_t ring_capacity = 1024;
};

class sampler
{
public:
    sampler(perf::counter_registry& registry, sampler_config config);
    ~sampler();

    sampler(sampler const&) = delete;
    sampler& operator=(sampler const&) = delete;

    record_schema const& schema() const noexcept { return schema_; }
    std::vector<std::string> const& errors() const noexcept
    {
        return errors_;
    }
    bool empty() const noexcept { return set_.empty(); }

    // Sinks must be attached before start() / the first tick().
    void add_sink(sink_ptr s);

    // Real-time mode.
    void start();
    void stop();    // join threads, drain, close sinks; idempotent
    bool running() const noexcept
    {
        return running_.load(std::memory_order_acquire);
    }

    // Manual / virtual-time mode: evaluate one sample stamped t_ns and
    // drain it to the sinks inline. Not legal while running().
    void tick(std::uint64_t t_ns);

    // Pipeline stats (also exposed as /telemetry{...} counters).
    std::uint64_t samples() const noexcept
    {
        return samples_.load(std::memory_order_relaxed);
    }
    std::uint64_t dropped() const;
    std::uint64_t flushed() const noexcept
    {
        return flushed_.load(std::memory_order_relaxed);
    }
    std::size_t ring_occupancy() const;
    std::size_t ring_capacity() const;

    // Registry version at the last (re-)discovery. The sample path
    // compares this against registry.version() and re-expands on any
    // mismatch.
    std::uint64_t discovery_version() const noexcept
    {
        return discovery_version_.load(std::memory_order_acquire);
    }

private:
    void sample_once(std::uint64_t t_ns);
    void rediscover();
    void append_columns_from(std::size_t first_counter);
    void flush_pending();
    void flush_pending_locked();
    void open_sinks_locked();
    void close_sinks_once();
    void sample_loop();
    void flush_loop();

    sampler_config config_;
    perf::counter_registry& registry_;
    perf::active_counters set_;
    std::atomic<std::uint64_t> discovery_version_;

    // Column i reads counter source_counter_[i]; quantile_of_[i] is
    // -1 for raw columns, else an index into the rollup quantiles.
    record_schema schema_;
    std::vector<std::size_t> source_counter_;
    std::vector<int> quantile_of_;
    std::vector<int> rollup_hist_of_counter_;    // -1: raw counter
    std::vector<std::unique_ptr<util::log2_histogram<>>> rollup_hists_;
    std::vector<std::string> errors_;
    std::size_t set_errors_seen_ = 0;

    std::vector<perf::counter_value> scratch_;
    std::unique_ptr<sample_ring> ring_;    // swapped on schema growth
    std::uint64_t dropped_baseline_ = 0;   // from retired rings

    std::vector<sink_ptr> sinks_;
    bool sinks_open_ = false;
    bool sinks_closed_ = false;

    // Serializes the drain side (flush thread) against ring swaps on
    // rediscovery (sample thread) and against the stats accessors.
    mutable std::mutex pipeline_mutex_;

    std::atomic<std::uint64_t> samples_{0};
    std::atomic<std::uint64_t> flushed_{0};

    std::atomic<bool> running_{false};
    std::mutex stop_mutex_;
    std::condition_variable stop_cv_;
    bool stop_requested_ = false;

    std::mutex flush_mutex_;
    std::condition_variable flush_cv_;
    bool flush_stop_ = false;

    std::thread sample_thread_;
    std::thread flush_thread_;
};

// Self-observability: registers /telemetry{locality#0/total}/...
// counter types (sample/drop/flush counts, ring occupancy/capacity)
// for `s` so one sampler's pipeline health can be monitored by
// another — or scraped alongside the payload series. The sampler must
// outlive the registration (remove_telemetry_counters or registry
// destruction first).
void register_telemetry_counters(perf::counter_registry& registry, sampler& s);
void remove_telemetry_counters(perf::counter_registry& registry);

}    // namespace minihpx::telemetry
