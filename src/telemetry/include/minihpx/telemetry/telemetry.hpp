// minihpx::telemetry — lock-light counter time-series pipeline.
//
// Umbrella header. The pipeline, front to back:
//
//   sampler          wildcard-expanded counter set -> preallocated ring
//                    (record.hpp/ring.hpp), real-time or virtual-time
//   sinks            CSV, JSON-lines, in-process subscription
//   scrape_endpoint  Prometheus-style GET /metrics over TCP
//   session          --mh: flag driven convenience wrapper
//   sim_bridge       the same pipeline on the cosimulator's clock
#pragma once

#include <minihpx/telemetry/record.hpp>
#include <minihpx/telemetry/ring.hpp>
#include <minihpx/telemetry/sampler.hpp>
#include <minihpx/telemetry/scrape_endpoint.hpp>
#include <minihpx/telemetry/session.hpp>
#include <minihpx/telemetry/sim_bridge.hpp>
#include <minihpx/telemetry/sink.hpp>
