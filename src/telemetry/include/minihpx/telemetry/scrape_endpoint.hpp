// Minimal TCP scrape endpoint: Prometheus-style text exposition.
//
// A sink that caches the most recent sample and serves it to anyone
// who connects:
//
//   $ curl http://127.0.0.1:9317/metrics
//   # HELP minihpx_counter Latest sampled value of a minihpx counter.
//   # TYPE minihpx_counter gauge
//   minihpx_counter{path="/threads{locality#0/total}/idle-rate",unit="0.01%"} 161
//   ...
//   minihpx_telemetry_samples_total 42
//
// One blocking accept thread, one connection at a time, HTTP/1.0,
// connection closed after each response — deliberately the simplest
// thing a scraper (curl, Prometheus) can talk to. Serving is fully
// decoupled from sampling: a scrape touches only the cached row under
// a mutex, never the counters, so a slow or hostile client cannot
// perturb the measured run.
#pragma once

#include <minihpx/telemetry/sink.hpp>

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace minihpx::telemetry {

class scrape_endpoint final : public sink
{
public:
    // Binds 127.0.0.1:port and starts serving immediately (before the
    // first sample a scrape returns only the meta series). port 0
    // binds an ephemeral port — read the actual one from port().
    explicit scrape_endpoint(std::uint16_t port);
    ~scrape_endpoint() override;

    std::uint16_t port() const noexcept { return port_; }

    // sink interface: cache schema / latest row.
    void open(record_schema const& schema) override;
    void on_schema_change(record_schema const& schema) override;
    void consume(sample_view const& row) override;
    void close() override;

    // Optional sampler stats exposed as minihpx_telemetry_* series.
    struct stats
    {
        std::uint64_t samples = 0;
        std::uint64_t dropped = 0;
        std::uint64_t flushed = 0;
    };
    void set_stats_source(std::function<stats()> source);

    // The exposition document a GET /metrics returns right now.
    std::string render() const;

    std::uint64_t scrapes() const noexcept
    {
        return scrapes_.load(std::memory_order_relaxed);
    }

private:
    void serve_loop();
    void stop_serving();

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> scrapes_{0};
    std::thread server_;

    mutable std::mutex mutex_;
    record_schema schema_;
    sample_record latest_;
    bool have_schema_ = false;
    bool have_row_ = false;
    std::function<stats()> stats_source_;
};

}    // namespace minihpx::telemetry
