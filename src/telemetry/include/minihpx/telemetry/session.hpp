// Command-line-driven telemetry session: the convenience layer that
// turns --mh: options into a running sampler with sinks attached.
//
//   --mh:print-counter=NAME                 (repeatable; wildcards ok)
//   --mh:telemetry-interval=MS              (default 100; falls back to
//                                            --mh:print-counter-interval)
//   --mh:print-counter-destination=DEST     (see below; also
//                                            --mh:telemetry-destination)
//   --mh:telemetry-endpoint=PORT            (TCP /metrics scrape
//                                            endpoint on 127.0.0.1;
//                                            0 = ephemeral port)
//   --mh:telemetry-rollup=NAME              (repeatable: stream
//                                            p50/p95/p99 instead of raw)
//   --mh:telemetry-ring=N                   (ring capacity, rows)
//
// DEST selects the sink: "csv:PATH", "jsonl:PATH", or a bare PATH
// (CSV). The session registers a runtime::at_shutdown hook so sampling
// stops and sinks flush *before* worker teardown, regardless of
// whether the session or the runtime is destroyed first.
#pragma once

#include <minihpx/telemetry/sampler.hpp>
#include <minihpx/telemetry/scrape_endpoint.hpp>
#include <minihpx/util/cli.hpp>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace minihpx::telemetry {

struct telemetry_options
{
    std::vector<std::string> counter_names;
    std::vector<std::string> rollup_names;
    double interval_ms = 100.0;
    std::string destination;    // "", "csv:PATH", "jsonl:PATH", PATH
    int endpoint_port = -1;     // <0: no scrape endpoint
    std::size_t ring_capacity = 1024;
    bool autostart = true;      // start sampling in the constructor

    static telemetry_options from_cli(util::cli_args const& args);
};

class session
{
public:
    session(perf::counter_registry& registry, telemetry_options options);
    ~session();

    session(session const&) = delete;
    session& operator=(session const&) = delete;

    sampler& get_sampler() noexcept { return sampler_; }
    bool empty() const noexcept { return sampler_.empty(); }

    // The scrape endpoint, if --mh:telemetry-endpoint was given.
    scrape_endpoint* endpoint() noexcept { return endpoint_.get(); }

    // Subscribe in-process before start (autostart=false path).
    void subscribe(
        subscription_sink::callback cb, std::size_t max_pending = 256);

    void start();
    void stop();    // quiesce: stop sampling, drain, flush, close

private:
    telemetry_options options_;
    sampler sampler_;
    std::shared_ptr<scrape_endpoint> endpoint_;
    void* hooked_runtime_ = nullptr;
    std::uint64_t shutdown_token_ = 0;
};

}    // namespace minihpx::telemetry
