// Virtual-time telemetry for the discrete-event cosimulator.
//
// register_sim_counters() exposes a simulator's live progress as
// ordinary /sim{locality#0/total}/... performance counters, so the
// exact same sampler/sink pipeline that streams a real run can stream
// a simulated one. sim_sampler couples a sampler to the simulator's
// virtual clock: it installs a sample hook that fires at every virtual
// period boundary the DES crosses and drives sampler::tick() with the
// *virtual* timestamp — records carry virtual t_ns but use the same
// schema, so CSV/JSONL output from real and simulated runs is directly
// comparable.
//
// Counter types registered (all pull from simulator::progress()):
//   /sim/time/virtual              current virtual time [ns]     (raw)
//   /sim/time/task-cumulative      sum of task segment time [ns] (monotonic)
//   /sim/time/overhead-cumulative  scheduler overhead [ns]       (monotonic)
//   /sim/count/tasks-created                                     (monotonic)
//   /sim/count/tasks-executed                                    (monotonic)
//   /sim/count/tasks-alive                                       (raw)
//   /sim/count/steals                                            (monotonic)
//   /sim/count/suspensions                                       (monotonic)
#pragma once

#include <minihpx/perf/registry.hpp>
#include <minihpx/sim/simulator.hpp>
#include <minihpx/telemetry/sampler.hpp>

#include <cstdint>

namespace minihpx::telemetry {

// The simulator must outlive the registration; pair with
// remove_sim_counters (or registry destruction).
void register_sim_counters(
    perf::counter_registry& registry, sim::simulator& sim);
void remove_sim_counters(perf::counter_registry& registry);

// Samples a counter set on the simulator's *virtual* clock. Construct
// before sim.run(); attach sinks before the run starts. The sampler
// runs in manual mode (tick()) — never start() — so samples are
// deterministic: same config + same benchmark -> identical record
// stream.
class sim_sampler
{
public:
    sim_sampler(sim::simulator& sim, perf::counter_registry& registry,
        sampler_config config);
    ~sim_sampler();

    sim_sampler(sim_sampler const&) = delete;
    sim_sampler& operator=(sim_sampler const&) = delete;

    sampler& get_sampler() noexcept { return sampler_; }
    void add_sink(sink_ptr s) { sampler_.add_sink(std::move(s)); }

    // Drain + close sinks (also done by the destructor). Call after
    // sim.run() returns when the output file is read back in-process.
    void finish();

private:
    sim::simulator& sim_;
    std::uint64_t period_ns_;
    sampler sampler_;
    bool finished_ = false;
};

}    // namespace minihpx::telemetry
