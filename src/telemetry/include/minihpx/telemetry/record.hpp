// Telemetry record schema: the one shape every sink understands.
//
// A sampler turns an active counter set into a *time series*: a fixed
// schema (one column per counter, or per rollup quantile) plus a
// stream of rows stamped with a timestamp and a sequence number. Real
// runs stamp steady-clock nanoseconds; simulated runs stamp virtual
// nanoseconds — the schema and row layout are identical, so any sink
// consumes either (paper §IV's "same API for arbitrary system
// information", extended from values to streams).
#pragma once

#include <minihpx/perf/counter.hpp>

#include <cstdint>
#include <string>
#include <vector>

namespace minihpx::telemetry {

// One column of the series. For rollup counters the sampler emits
// three columns ("<name>/p50", "/p95", "/p99") instead of the raw
// stream.
struct column
{
    std::string name;
    std::string unit;
    perf::counter_kind kind = perf::counter_kind::raw;
};

struct record_schema
{
    std::vector<column> columns;

    std::size_t width() const noexcept { return columns.size(); }
};

// One sampled value. Invalid slots (counter reported invalid_data /
// not_available) render as empty (CSV) or null (JSONL).
struct slot
{
    double value = 0.0;
    bool valid = false;
};

// Borrowed view of one row; points into ring storage (consume it
// before returning from sink::consume) or into a sample_record.
struct sample_view
{
    std::uint64_t t_ns = 0;    // real or virtual timestamp
    std::uint64_t seq = 0;     // sample number; drops leave gaps
    slot const* slots = nullptr;
    std::size_t width = 0;
};

// Owned copy, for sinks that buffer rows beyond the consume() call
// (subscription backpressure, latest-row cache for scraping).
struct sample_record
{
    std::uint64_t t_ns = 0;
    std::uint64_t seq = 0;
    std::vector<slot> slots;

    static sample_record copy_of(sample_view const& v)
    {
        sample_record r;
        r.t_ns = v.t_ns;
        r.seq = v.seq;
        r.slots.assign(v.slots, v.slots + v.width);
        return r;
    }

    sample_view view() const noexcept
    {
        return {t_ns, seq, slots.data(), slots.size()};
    }
};

}    // namespace minihpx::telemetry
