// Engine facade over the simulator: the same static interface as the
// real minihpx and std baselines, so every Inncabs benchmark compiles
// unchanged against virtual time. Whether the simulated machine runs
// the HPX-like or the thread-per-task scheduler is a property of the
// simulator configuration, not of this type.
#pragma once

#include <minihpx/sim/simulator.hpp>
#include <minihpx/util/assert.hpp>
#include <minihpx/work.hpp>

#include <memory>
#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace minihpx::sim {

namespace detail {

    template <typename T>
    struct sim_state final : sim_state_base
    {
        std::optional<T> value;
    };

    template <>
    struct sim_state<void> final : sim_state_base
    {
    };

}    // namespace detail

template <typename T>
class sim_future
{
public:
    sim_future() = default;
    explicit sim_future(std::shared_ptr<detail::sim_state<T>> state)
      : state_(std::move(state))
    {
    }

    bool valid() const noexcept { return static_cast<bool>(state_); }
    bool is_ready() const { return state_->ready; }

    void wait()
    {
        run_deferred();
        if (!state_->ready)
            simulator::current()->wait_on(state_.get());
    }

    T get()
    {
        wait();
        if constexpr (!std::is_void_v<T>)
        {
            MINIHPX_ASSERT(state_->value.has_value());
            T result = std::move(*state_->value);
            state_.reset();
            return result;
        }
        else
        {
            state_.reset();
        }
    }

private:
    void run_deferred()
    {
        if (state_->has_deferred && state_->deferred)
        {
            auto thunk = std::move(state_->deferred);
            state_->deferred.reset();
            thunk();    // charges annotations to the *waiting* task
            state_->ready = true;
        }
    }

    std::shared_ptr<detail::sim_state<T>> state_;
};

class sim_mutex
{
public:
    sim_mutex() : impl_(std::make_shared<detail::sim_mutex_impl>()) {}

    void lock() { simulator::current()->lock(impl_.get()); }
    void unlock() { simulator::current()->unlock(impl_.get()); }
    bool try_lock()
    {
        if (impl_->locked)
            return false;
        impl_->locked = true;
        return true;
    }

private:
    std::shared_ptr<detail::sim_mutex_impl> impl_;
};

struct sim_engine
{
    template <typename T>
    using future = sim_future<T>;
    using mutex = sim_mutex;

    enum class launch : std::uint8_t
    {
        async,
        deferred,
        fork,
        sync,
    };

    template <typename F, typename... Ts>
    static auto async(launch policy, F&& f, Ts&&... ts)
    {
        using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Ts>...>;
        auto state = std::make_shared<detail::sim_state<R>>();

        auto body = [state, fn = std::forward<F>(f),
                        args = std::make_tuple(
                            std::forward<Ts>(ts)...)]() mutable {
            if constexpr (std::is_void_v<R>)
                std::apply(std::move(fn), std::move(args));
            else
                state->value.emplace(
                    std::apply(std::move(fn), std::move(args)));
        };

        switch (policy)
        {
        case launch::sync:
            body();    // inline; annotations charge the current segment
            state->ready = true;
            break;

        case launch::deferred:
            state->has_deferred = true;
            state->deferred = std::move(body);
            break;

        case launch::fork:
        case launch::async:
        {
            simulator* sim = simulator::current();
            MINIHPX_ASSERT_MSG(sim, "sim_engine used outside simulator");
            // keepalive: the DES touches the raw state pointer until the
            // notify interaction completes. Tracked so a failed run can
            // break the cycle for tasks that never reach their notify.
            state->self_keepalive = state;
            sim->track_state(state.get());
            sim->spawn_task(
                [state, b = std::move(body)]() mutable {
                    b();
                    simulator::current()->notify(state.get());
                },
                /*front=*/policy == launch::fork);
            if (policy == launch::fork)
                sim->yield();    // continuation-stealing order
            break;
        }
        }
        return sim_future<R>(std::move(state));
    }

    template <typename F, typename... Ts>
    static auto async(F&& f, Ts&&... ts)
    {
        return async(
            launch::async, std::forward<F>(f), std::forward<Ts>(ts)...);
    }

    // ---- dependency-graph surface (engine concept v2) ------------------
    // sim_future already has shared-handle semantics (copies alias one
    // state; the DES supports multiple waiters per state), so the
    // shared type is the future type itself. Gates and continuations
    // are simulated tasks that wait on their inputs — their spawn and
    // suspension costs are charged by the cost model, deterministically.

    template <typename T>
    using shared_future = sim_future<T>;

    template <typename T>
    static sim_future<T> share(sim_future<T>&& f)
    {
        return std::move(f);
    }

    template <typename T>
    static sim_future<void> when_all(std::vector<sim_future<T>> deps)
    {
        if (deps.empty())
        {
            auto state = std::make_shared<detail::sim_state<void>>();
            state->ready = true;
            return sim_future<void>(std::move(state));
        }
        return async(launch::async, [deps = std::move(deps)]() mutable {
            for (auto& d : deps)
                d.wait();
        });
    }

    // Continuation: spawns `fn` as a new simulated task; it suspends
    // until `gate` is ready, then runs. Deterministic: spawn order is
    // program order, wakeup order is the DES event order.
    template <typename F>
    static auto then(sim_future<void> gate, F&& fn)
    {
        return async(launch::async,
            [gate = std::move(gate), fn = std::forward<F>(fn)]() mutable {
                gate.wait();
                return fn();
            });
    }

    template <typename T>
    static T sync_wait(sim_future<T> f)
    {
        return f.get();
    }

    static void annotate_work(work_annotation const& w) noexcept
    {
        if (simulator* sim = simulator::current())
            sim->annotate(w);
    }

    // Label the calling simulated task in the active trace recorder
    // (the sim-engine counterpart of this_task::annotate). `label`
    // must be a string literal / static storage.
    static void trace_label(char const* label) noexcept
    {
        if (simulator* sim = simulator::current())
            sim->annotate_label(label);
    }

    static bool skip_compute() noexcept
    {
        simulator* sim = simulator::current();
        return sim && sim->skip_compute();
    }

    static constexpr char const* name() noexcept { return "simulated"; }
};

}    // namespace minihpx::sim
