// Network cost model for multi-locality simulation.
//
// Companion to machine_desc: where machine_desc prices compute and
// memory, net_model prices the wire between localities. net::sim_fabric
// stamps every message with a virtual delivery time computed here, so
// distributed runs (strong-scaling sweeps past one node, federation
// traffic) are reproducible to the byte: all arithmetic is integral —
// no floating-point bandwidth division whose rounding could differ
// across build flags — and delivery order is (time, sequence) like the
// simulator's event heap.
//
// Defaults approximate a commodity 10 GbE link between the paper's Ivy
// Bridge nodes: ~20 us one-way latency, ~1.2 GB/s effective bandwidth.
#pragma once

#include <cstddef>
#include <cstdint>

namespace minihpx::sim {

struct net_model
{
    // Fixed one-way latency added to every message.
    std::uint64_t latency_ns = 20'000;

    // Serialization bandwidth, expressed integrally as bytes per
    // microsecond (1200 B/us = 1.2 GB/s). Must be >= 1.
    std::uint64_t bytes_per_us = 1'200;

    // Fixed per-message cost charged on top of the payload (framing,
    // syscall, interrupt) — modeled as bytes on the wire.
    std::uint64_t per_message_bytes = 64;

    // Virtual time on the wire for one message of `payload_bytes`.
    std::uint64_t transfer_ns(std::size_t payload_bytes) const noexcept
    {
        std::uint64_t const bytes =
            static_cast<std::uint64_t>(payload_bytes) + per_message_bytes;
        std::uint64_t const bw = bytes_per_us ? bytes_per_us : 1;
        return latency_ns + bytes * 1'000 / bw;
    }

    // Delivery timestamp for a message sent at `send_ns`.
    std::uint64_t delivery_ns(
        std::uint64_t send_ns, std::size_t payload_bytes) const noexcept
    {
        return send_ns + transfer_ns(payload_bytes);
    }
};

}    // namespace minihpx::sim
