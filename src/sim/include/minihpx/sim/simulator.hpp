// Deterministic discrete-event cosimulator.
//
// Benchmarks execute their *real* code as stackful coroutines on one
// host thread; only time is modeled. Every engine interaction (spawn,
// future wait/notify, lock, yield, exit) is an event ordered by virtual
// time; compute between interactions is charged from work annotations
// through the cost model (compute + shared-bandwidth memory time + NUMA
// + scheduler overheads). Two scheduler models are provided:
//
//   sched_model::hpx_like  - per-core queues, work stealing, lightweight
//                            spawn/dispatch (the minihpx/HPX behavior)
//   sched_model::std_like  - one OS thread per task, global run queue,
//                            kernel-serialized spawn, per-thread memory
//                            accounting with hard failure (the GCC
//                            std::async behavior from paper §II)
//
// Determinism: single event loop, (time, sequence) ordered heap, seeded
// victim selection. Same config + same benchmark -> identical report.
#pragma once

#include <minihpx/sim/machine.hpp>
#include <minihpx/threads/context.hpp>
#include <minihpx/threads/queue_policy.hpp>
#include <minihpx/threads/stack.hpp>
#include <minihpx/threads/topology.hpp>
#include <minihpx/util/rng.hpp>
#include <minihpx/util/unique_function.hpp>
#include <minihpx/work.hpp>

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

namespace minihpx::trace {
    class recorder;
}

namespace minihpx::sim {

enum class sched_model : std::uint8_t
{
    hpx_like,
    std_like,
};

struct sim_config
{
    machine_desc machine = machine_desc::ivy_bridge_2s_20c();
    sched_model model = sched_model::hpx_like;
    unsigned cores = 1;    // cores in use (strong-scaling x axis)
    std::uint64_t seed = 42;
    std::size_t stack_bytes = 48 * 1024;
    // Skip data-independent leaf kernels in benchmarks (they query
    // this through the engine); virtual results are unaffected.
    bool skip_compute = true;
    // Safety valve against runaway benchmarks.
    std::uint64_t max_tasks = 80'000'000;
    // Host run-queue ablation knob: recorded in the report for A/B
    // bookkeeping, but deliberately *not* part of the cost model —
    // steal/dispatch costs come from machine_desc, which stays the
    // source of truth for paper figures. Virtual results are therefore
    // identical across policies (pinned by test_sim / test_telemetry).
    threads::queue_policy queue = threads::queue_policy::chase_lev;

    // Victim-selection policy for the hpx-like steal model. Unlike
    // `queue`, this one IS part of the cost model: numa probes
    // same-socket queues before remote ones and batch-moves half a
    // remote victim's cold end, so steal composition (and with it the
    // virtual makespan) changes. Defaults to the pre-locality random
    // order so every byte-pinned virtual result stays put; ablations
    // (bench/matmul_tiling, test_sim NumaVictimPolicy*) opt in to numa
    // explicitly.
    threads::victim_policy victim = threads::victim_policy::random;

    // Causal-verification hook: virtually "optimize region L by
    // (1-factor)". Every compute segment of a task whose current trace
    // label (sim_engine::trace_label) compares equal to `label` has its
    // modeled cost multiplied by `factor`; later entries win when
    // several match. The scale resolves at the segment's closing
    // interaction — the same granularity at which the offline analyzer
    // attributes a slice to its label — so causal::predicted_speedup
    // and a re-run with the scale installed measure the same quantity
    // (tests/test_causal.cpp pins the agreement). Modeled PMU totals
    // stay unscaled: the hook shrinks time, not the program.
    struct label_cost_scale
    {
        std::string label;
        double factor = 1.0;
    };
    std::vector<label_cost_scale> cost_scales;
};

// What a run produces; the units are virtual seconds.
struct sim_report
{
    bool failed = false;
    std::string failure_reason;

    unsigned cores = 0;
    // Which host queue policy the run was labeled with (bookkeeping
    // only; no effect on the virtual numbers below).
    threads::queue_policy queue = threads::queue_policy::chase_lev;
    double exec_time_s = 0.0;          // total virtual makespan
    std::uint64_t tasks_executed = 0;
    std::uint64_t tasks_created = 0;
    double task_time_s = 0.0;          // sum of task segment times
    double sched_overhead_s = 0.0;     // spawn/dispatch/steal/wake/block
    double idle_s = 0.0;               // cores idle while run active
    std::uint64_t steals = 0;
    std::uint64_t remote_steals = 0;
    std::uint64_t suspensions = 0;
    std::uint64_t peak_live_threads = 0;    // std model census

    // Modeled PMU totals (cache lines / counts).
    std::uint64_t offcore_data_rd = 0;
    std::uint64_t offcore_rfo = 0;
    std::uint64_t offcore_code_rd = 0;
    std::uint64_t instructions = 0;

    // Footprint-priced locality totals (memory_model.hpp via
    // machine_desc::mem_model); all-zero misses for workloads that do
    // not annotate a footprint.
    std::uint64_t dtlb_loads = 0;
    std::uint64_t dtlb_misses = 0;
    std::uint64_t llc_loads = 0;
    std::uint64_t llc_misses = 0;

    double avg_task_duration_us() const noexcept
    {
        return tasks_executed ?
            task_time_s * 1e6 / static_cast<double>(tasks_executed) :
            0.0;
    }
    double avg_task_overhead_us() const noexcept
    {
        return tasks_executed ?
            sched_overhead_s * 1e6 / static_cast<double>(tasks_executed) :
            0.0;
    }
    // The locality diagnostics the matmul tiling ablation reads.
    double dtlb_miss_rate() const noexcept
    {
        return dtlb_loads ?
            static_cast<double>(dtlb_misses) /
                static_cast<double>(dtlb_loads) :
            0.0;
    }
    double llc_miss_rate() const noexcept
    {
        return llc_loads ?
            static_cast<double>(llc_misses) /
                static_cast<double>(llc_loads) :
            0.0;
    }

    // Paper §V-C: offcore lines * 64 B / execution time.
    double offcore_bandwidth_gbs() const noexcept
    {
        if (exec_time_s <= 0.0)
            return 0.0;
        double const bytes = 64.0 *
            static_cast<double>(offcore_data_rd + offcore_rfo +
                offcore_code_rd);
        return bytes / exec_time_s / 1e9;
    }
};

// Mid-run progress snapshot: the cumulative sim_report quantities that
// are well-defined *during* a run, readable from the sample hook. Time
// quantities are virtual nanoseconds (sim_report converts to seconds
// only at end of run).
struct sim_progress
{
    std::uint64_t now_ns = 0;
    std::uint64_t tasks_created = 0;
    std::uint64_t tasks_executed = 0;
    std::uint64_t tasks_alive = 0;
    std::uint64_t task_time_ns = 0;
    std::uint64_t overhead_ns = 0;
    std::uint64_t steals = 0;
    std::uint64_t remote_steals = 0;
    std::uint64_t suspensions = 0;
    std::uint64_t peak_live_threads = 0;
};

namespace detail {

    struct sim_state_base;
    class sim_mutex_impl;

    enum class inter_kind : std::uint8_t
    {
        none,
        spawn,         // create + enqueue a new task
        wait,          // block on a not-ready shared state
        notify,        // mark shared state ready, wake waiters
        lock,          // acquire sim mutex
        unlock,        // release sim mutex
        yield,         // reschedule current task
        task_end,      // current task finished
    };

    struct sim_task
    {
        std::uint64_t id = 0;
        std::uint64_t parent = 0;    // spawning task (0 for the root)
        threads::execution_context ctx;
        threads::stack stk;
        util::unique_function<void()> fn;
        bool started = false;
        bool terminated = false;

        // interaction exchange slot (task -> DES)
        inter_kind inter = inter_kind::none;
        sim_task* inter_task = nullptr;           // spawn payload
        sim_state_base* inter_state = nullptr;    // wait/notify payload
        sim_mutex_impl* inter_mutex = nullptr;    // lock/unlock payload
        bool spawn_front = false;                 // fork policy

        // compute accumulated since the last interaction boundary
        work_annotation pending{};
        // modeled page walks of the pending segment (accumulated
        // per-annotation in simulator::annotate, priced by
        // segment_cost_ns, cleared with `pending`)
        std::uint64_t pending_dtlb_misses = 0;

        // sim_config::cost_scales factor of the task's current label
        // (annotate_label keeps it in sync; 1 = unscaled)
        double cost_scale = 1.0;

        // placement + contention snapshot (set at dispatch)
        unsigned core = 0;
        double mem_bw_factor = 1.0;    // multiplier on memory time
        double load_factor = 1.0;      // std model run-queue sharing

        std::uint64_t vt_exec_ns = 0;  // cumulative execution time
        sim_task* next_waiter = nullptr;
    };

    // Type-erased future state; typed value lives in the engine layer.
    struct sim_state_base
    {
        bool ready = false;
        bool has_deferred = false;
        util::unique_function<void()> deferred;
        sim_task* waiters = nullptr;    // intrusive list via next_waiter
        // Keeps the engine-layer state alive while the DES references
        // it (shared_ptr aliasing handled by the engine).
        std::shared_ptr<void> self_keepalive;

        // Intrusive membership in the simulator's live-state list.
        // self_keepalive is a deliberate reference cycle broken at
        // notify time; when a run fails (thread explosion, task
        // budget) abandoned tasks never notify, so the simulator
        // breaks the remaining cycles itself at end of run.
        sim_state_base* live_prev = nullptr;
        sim_state_base* live_next = nullptr;
        sim_state_base** live_head = nullptr;

        virtual ~sim_state_base() { unlink_live(); }

        void unlink_live() noexcept
        {
            if (!live_head)
                return;
            if (live_prev)
                live_prev->live_next = live_next;
            else
                *live_head = live_next;
            if (live_next)
                live_next->live_prev = live_prev;
            live_prev = nullptr;
            live_next = nullptr;
            live_head = nullptr;
        }
    };

    class sim_mutex_impl
    {
    public:
        bool locked = false;
        std::deque<sim_task*> waiters;
    };

}    // namespace detail

class simulator
{
public:
    explicit simulator(sim_config config);
    ~simulator();

    simulator(simulator const&) = delete;
    simulator& operator=(simulator const&) = delete;

    // Run `root` to completion (or failure); returns the report.
    sim_report run(util::unique_function<void()> root);

    sim_config const& config() const noexcept { return config_; }

    // --- engine hooks (called from inside task coroutines) -------------
    static simulator* current() noexcept;

    void annotate(work_annotation const& w) noexcept;
    detail::sim_task* spawn_task(
        util::unique_function<void()> fn, bool front);
    void wait_on(detail::sim_state_base* state);
    void notify(detail::sim_state_base* state);
    // Record a state whose self_keepalive cycle the simulator must
    // break if the run abandons it (engine calls this at spawn).
    void track_state(detail::sim_state_base* state) noexcept;
    void lock(detail::sim_mutex_impl* mutex);
    void unlock(detail::sim_mutex_impl* mutex);
    void yield();
    bool skip_compute() const noexcept { return config_.skip_compute; }
    // Emit a trace label event for the running task (engine trace_label).
    void annotate_label(char const* label) noexcept;

    double now_seconds() const noexcept
    {
        return static_cast<double>(now_ns_) * 1e-9;
    }

    // --- virtual-time sampling -----------------------------------------
    // The hook fires from the DES loop at every virtual period_ns
    // boundary the run crosses (with the boundary's timestamp, not the
    // event's), before the crossing event is applied. It runs on the
    // host thread between events, so it may read progress() and
    // evaluate counters safely; it must not call engine hooks.
    using sample_hook = std::function<void(std::uint64_t virtual_ns)>;
    void set_sample_hook(std::uint64_t period_ns, sample_hook hook);
    void clear_sample_hook();

    // Cumulative progress as of the current virtual time.
    sim_progress progress() const noexcept;

    // --- virtual-clock tracing -----------------------------------------
    // The simulator emits the same event stream as the real scheduler,
    // stamped with *virtual* time, into lane 0 of `tr` (one host
    // thread; the DES event order is deterministic, so with an inline
    // overflow drain the recorded stream is byte-for-byte reproducible
    // across runs). Caller owns the recorder and must clear it before
    // destroying it. See trace::sim_session.
    void set_tracer(trace::recorder* tr) noexcept { tracer_ = tr; }
    trace::recorder* tracer() const noexcept { return tracer_; }

private:
    struct event
    {
        std::uint64_t t;
        std::uint64_t seq;
        std::uint8_t kind;    // event_kind
        detail::sim_task* task;
        unsigned core;
        bool operator>(event const& other) const noexcept
        {
            return t != other.t ? t > other.t : seq > other.seq;
        }
    };

    enum event_kind : std::uint8_t
    {
        ev_task_ready,
        ev_dispatch,
        ev_resume,
        ev_apply,
    };

    // coroutine plumbing
    static void task_entry(void* arg);
    detail::inter_kind run_segment(detail::sim_task* task);
    void interaction_request(detail::inter_kind kind);
    // Thrown into fibers resumed during end-of-run cleanup so their
    // stacks unwind (releasing shared-state references held by locals)
    // instead of being abandoned.
    struct unwind_abandoned
    {
    };
    void unwind_abandoned_tasks();

    // DES handlers
    void push(std::uint64_t t, event_kind kind, detail::sim_task* task,
        unsigned core = 0);
    void handle_task_ready(detail::sim_task* task);
    void handle_dispatch(unsigned core);
    void handle_resume(detail::sim_task* task);
    void handle_apply(detail::sim_task* task);
    void finish_task(detail::sim_task* task);
    void fail(std::string reason);

    // cost model
    std::uint64_t segment_cost_ns(detail::sim_task const& task) const;
    double contention_factor() const noexcept;    // queue-lock pressure
    void snapshot_contention(detail::sim_task& task) const;
    void charge_overhead(std::uint64_t ns) noexcept
    {
        overhead_ns_ += ns;
    }

    // schedulers
    void enqueue_hpx(detail::sim_task* task, unsigned origin, bool front);
    detail::sim_task* pick_hpx(unsigned core, std::uint64_t& cost_ns);
    void enqueue_std(detail::sim_task* task);
    detail::sim_task* pick_std(unsigned core, std::uint64_t& cost_ns);
    void core_becomes_idle(unsigned core);
    void wake_idle_core(unsigned preferred_socket);

    sim_config config_;
    std::uint64_t now_ns_ = 0;
    std::uint64_t seq_ = 0;
    std::priority_queue<event, std::vector<event>, std::greater<event>>
        events_;

    threads::execution_context des_ctx_;
    detail::sim_task* running_ = nullptr;    // task currently on host CPU
    detail::inter_kind last_inter_ = detail::inter_kind::none;

    // per-core state
    struct core_state
    {
        detail::sim_task* busy = nullptr;
        bool sleeping = true;
        std::uint64_t idle_since = 0;
        std::deque<detail::sim_task*> queue;    // hpx model
    };
    std::vector<core_state> cores_;
    std::deque<detail::sim_task*> global_queue_;    // std model
    std::uint64_t kernel_free_at_ = 0;              // serialized clone()

    // task bookkeeping
    detail::sim_state_base* live_states_ = nullptr;
    std::vector<std::unique_ptr<detail::sim_task>> tasks_;
    std::vector<std::unique_ptr<detail::sim_task>> task_freelist_;
    threads::stack_pool stack_pool_;
    std::uint64_t next_task_id_ = 1;
    std::uint64_t live_started_ = 0;    // std model thread census
    std::uint64_t tasks_alive_ = 0;

    util::xoshiro256ss rng_;

    sim_report report_;
    std::uint64_t exec_ns_total_ = 0;
    std::uint64_t overhead_ns_ = 0;
    bool failed_ = false;
    bool unwinding_ = false;

    sample_hook sample_hook_;
    std::uint64_t sample_period_ns_ = 0;
    std::uint64_t next_sample_ns_ = 0;

    trace::recorder* tracer_ = nullptr;
};

}    // namespace minihpx::sim
