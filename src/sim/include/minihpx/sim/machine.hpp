// Simulated machine description.
//
// The paper's testbed (Table III): a dual-socket Intel Ivy Bridge
// E5-2670v2 node, 10 cores/socket @2.5 GHz, 25 MB shared L3 per
// socket, strong scaling 1..20 cores with sockets filled first. Our
// container has one core, so the scaling experiments run on this model
// (DESIGN.md substitution table). Parameters fall into three groups:
// topology, memory system, and the two scheduler cost models
// (HPX-style lightweight tasks vs thread-per-task std::async).
#pragma once

#include <minihpx/memory_model.hpp>

#include <cstdint>
#include <string>

namespace minihpx::sim {

struct machine_desc
{
    // ---- topology ----------------------------------------------------
    unsigned sockets = 2;
    unsigned cores_per_socket = 10;
    double ghz = 2.5;

    // ---- memory system ------------------------------------------------
    // Usable per-socket DRAM bandwidth (GB/s). E5-2670v2: 4ch DDR3-1866
    // peak 59.7 GB/s; ~70% achievable.
    double socket_bw_gbps = 42.0;
    // Peak single-core streaming bandwidth (GB/s); below this, adding
    // cores scales bandwidth (the rising part of Figs 13-15).
    double core_bw_gbps = 7.5;
    // Multiplier on memory time for tasks running on the remote socket
    // (first-touch places the working set on socket 0).
    double numa_penalty = 1.55;
    std::uint64_t ram_bytes = 32ull << 30;

    // ---- memory-locality model (minihpx/memory_model.hpp) -------------
    // Per-core unified second-level TLB and per-socket shared L3; the
    // deterministic dTLB/LLC model derives modeled miss counts from
    // task footprints, and tlb_walk_ns prices each modeled page walk
    // into virtual task time (~30 cycles @2.5 GHz).
    std::uint64_t page_bytes = 4096;
    std::uint64_t stlb_entries = 512;
    std::uint64_t llc_bytes = 25ull << 20;
    double tlb_walk_ns = 12.0;

    // ---- HPX-style scheduler model -------------------------------------
    double hpx_spawn_ns = 320;          // create descriptor + enqueue
    // Serialized share of every spawn (allocator + queue cache-line
    // ping-pong): the throughput ceiling that limits scaling of ~1 us
    // tasks to a handful of cores (paper Figs 5-7, 11-12).
    double hpx_spawn_serial_ns = 250;
    double hpx_dispatch_ns = 180;       // local dequeue + context switch
    double hpx_steal_local_ns = 750;    // successful same-socket steal
    double hpx_steal_remote_ns = 2200;  // cross-socket steal
    double hpx_steal_attempt_ns = 90;   // per failed victim probe
    double hpx_wake_ns = 1800;          // waking a sleeping worker
    double hpx_suspend_ns = 150;        // park a blocked task
    double hpx_resume_ns = 220;         // unpark + re-enqueue
    // Queue-lock contention: spawn/dispatch grow by this fraction per
    // additional active core (very fine tasks stress the queues).
    double hpx_contention_coef = 0.02;
    // Extra contention per active core beyond the first socket
    // (cross-socket cache-line ping-pong on queue/allocator state) —
    // the paper's socket-boundary degradation for very fine tasks.
    double hpx_cross_socket_coef = 0.06;

    // ---- std::async (thread-per-task) model ----------------------------
    double std_spawn_ns = 14000;        // pthread_create, parallel part
    double std_spawn_serial_ns = 2500;  // kernel-serialized part (clone)
    double std_exit_ns = 6000;          // thread teardown + join signal
    double std_block_ns = 1800;         // futex wait entry
    double std_wake_ns = 3500;          // futex wake + kernel migration
    double std_ctx_switch_ns = 2800;    // involuntary context switch
    double std_timeslice_ns = 1.0e6;    // CFS-like slice at high load
    // Cache-pollution slowdown per unit of run-queue oversubscription.
    double std_oversub_coef = 0.01;
    // Committed memory per live thread (kernel stack + TCB + touched
    // user stack pages). 8 MiB is reserved but only a few pages commit.
    std::uint64_t std_thread_mem_bytes = 320ull << 10;
    // Threads the OS can sustain before allocation fails; with the
    // paper's observation of 80k-97k live pthreads at failure.
    std::uint64_t std_thread_limit = 90000;

    unsigned total_cores() const noexcept
    {
        return sockets * cores_per_socket;
    }
    unsigned socket_of(unsigned core) const noexcept
    {
        return core / cores_per_socket;
    }

    // The dTLB/LLC model parameterized by this machine.
    memory_model mem_model() const noexcept
    {
        memory_model m;
        m.page_bytes = page_bytes;
        m.tlb_entries = stlb_entries;
        m.llc_bytes = llc_bytes;
        return m;
    }

    // The paper's node (Table III).
    static machine_desc ivy_bridge_2s_20c();

    // Table III-style description block for bench headers.
    std::string describe() const;
};

}    // namespace minihpx::sim
