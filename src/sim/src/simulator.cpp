#include <minihpx/sim/simulator.hpp>

#include <minihpx/trace/recorder.hpp>
#include <minihpx/util/assert.hpp>

#include <algorithm>
#include <cmath>

namespace minihpx::sim {

using detail::inter_kind;
using detail::sim_task;

namespace {

    thread_local simulator* tls_sim = nullptr;

    std::uint64_t to_lines(std::uint64_t bytes) noexcept
    {
        return (bytes + 63) / 64;
    }

    // All sim trace events go through lane 0: one host thread produces
    // them in deterministic DES order, which is what makes the recorded
    // stream byte-reproducible.
    void temit(trace::recorder* tr, std::uint64_t t, trace::event_kind kind,
        std::uint64_t task, std::uint64_t aux, unsigned core) noexcept
    {
        if (!tr)
            return;
        trace::event e;
        e.t_ns = t;
        e.task = task;
        e.aux = aux;
        e.worker = core;
        e.kind = static_cast<std::uint16_t>(kind);
        tr->emit(0, e);
    }

}    // namespace

simulator* simulator::current() noexcept
{
    return tls_sim;
}

simulator::simulator(sim_config config)
  : config_(config)
  , stack_pool_(config.stack_bytes)
  , rng_(config.seed)
{
    MINIHPX_ASSERT(config_.cores >= 1);
    MINIHPX_ASSERT(config_.cores <= config_.machine.total_cores());
}

simulator::~simulator() = default;

// ------------------------------------------------------------ event loop

sim_report simulator::run(util::unique_function<void()> root)
{
    MINIHPX_ASSERT_MSG(tls_sim == nullptr, "nested simulator runs");
    tls_sim = this;

    report_ = sim_report{};
    report_.cores = config_.cores;
    report_.queue = config_.queue;
    cores_.clear();
    cores_.resize(config_.cores);
    for (auto& c : cores_)
    {
        c.sleeping = true;
        c.idle_since = 0;
    }

    // Inject the root task.
    auto owned = std::make_unique<sim_task>();
    sim_task* root_task = owned.get();
    root_task->id = next_task_id_++;
    root_task->fn = std::move(root);
    tasks_.push_back(std::move(owned));
    ++tasks_alive_;
    ++report_.tasks_created;
    temit(tracer_, now_ns_, trace::event_kind::spawn, root_task->id, 0, 0);
    if (config_.model == sched_model::std_like)
    {
        ++live_started_;
        report_.peak_live_threads =
            std::max<std::uint64_t>(report_.peak_live_threads, live_started_);
        enqueue_std(root_task);
    }
    else
    {
        enqueue_hpx(root_task, 0, false);
    }

    next_sample_ns_ = sample_period_ns_;

    while (!events_.empty() && !failed_)
    {
        event const ev = events_.top();
        events_.pop();
        MINIHPX_ASSERT(ev.t >= now_ns_);
        // Fire the sample hook for every virtual period boundary this
        // event skips over, stamped with the boundary time — the state
        // visible to the hook is exactly the state at that boundary
        // (nothing changes between events).
        if (sample_hook_)
        {
            while (next_sample_ns_ <= ev.t)
            {
                now_ns_ = next_sample_ns_;
                sample_hook_(next_sample_ns_);
                next_sample_ns_ += sample_period_ns_;
            }
        }
        now_ns_ = ev.t;
        switch (ev.kind)
        {
        case ev_dispatch:
            handle_dispatch(ev.core);
            break;
        case ev_resume:
            handle_resume(ev.task);
            break;
        case ev_apply:
            handle_apply(ev.task);
            break;
        default:
            MINIHPX_UNREACHABLE();
        }
    }

    if (!failed_ && tasks_alive_ != 0)
        fail("deadlock: tasks alive but no events pending");

    // Close out idle accounting for cores still asleep.
    for (auto& c : cores_)
    {
        if (c.sleeping)
            report_.idle_s +=
                static_cast<double>(now_ns_ - c.idle_since) * 1e-9;
    }

    report_.failed = failed_;
    report_.exec_time_s = static_cast<double>(now_ns_) * 1e-9;
    report_.task_time_s = static_cast<double>(exec_ns_total_) * 1e-9;
    report_.sched_overhead_s = static_cast<double>(overhead_ns_) * 1e-9;

    // A failed (or deadlocked) run abandons suspended tasks. Unwind
    // their fibers so stack-held shared-state references are released,
    // then break the notify-time self-reference cycles of states whose
    // producer never reached its notify.
    unwind_abandoned_tasks();

    // Reset mutable state so the simulator could be reused.
    while (!events_.empty())
        events_.pop();
    tasks_.clear();
    // The keepalives are moved out before any state is destroyed:
    // releasing a state can drop references to other tracked states,
    // which unlink themselves mid-walk otherwise.
    {
        std::vector<std::shared_ptr<void>> abandoned;
        while (detail::sim_state_base* state = live_states_)
        {
            state->unlink_live();
            abandoned.push_back(std::move(state->self_keepalive));
        }
    }
    task_freelist_.clear();
    global_queue_.clear();
    kernel_free_at_ = 0;
    now_ns_ = 0;
    seq_ = 0;
    tasks_alive_ = 0;
    live_started_ = 0;
    exec_ns_total_ = 0;
    overhead_ns_ = 0;
    failed_ = false;

    tls_sim = nullptr;
    return report_;
}

void simulator::push(
    std::uint64_t t, event_kind kind, sim_task* task, unsigned core)
{
    events_.push(event{t, seq_++, kind, task, core});
}

void simulator::unwind_abandoned_tasks()
{
    unwinding_ = true;
    for (std::size_t i = 0; i < tasks_.size(); ++i)
    {
        sim_task* task = tasks_[i].get();
        if (!task->started || task->terminated)
            continue;
        // The fiber is suspended inside interaction_request; resuming
        // it with unwinding_ set makes that call throw, the stack
        // unwinds through the simulated task body's destructors, and
        // task_entry switches straight back here.
        running_ = task;
        threads::execution_context::switch_to(des_ctx_, task->ctx);
        running_ = nullptr;
    }
    unwinding_ = false;
}

void simulator::track_state(detail::sim_state_base* state) noexcept
{
    state->live_head = &live_states_;
    state->live_prev = nullptr;
    state->live_next = live_states_;
    if (live_states_)
        live_states_->live_prev = state;
    live_states_ = state;
}

void simulator::fail(std::string reason)
{
    failed_ = true;
    report_.failure_reason = std::move(reason);
}

// ------------------------------------------------- virtual-time sampling

void simulator::set_sample_hook(std::uint64_t period_ns, sample_hook hook)
{
    MINIHPX_ASSERT_MSG(period_ns > 0, "sample period must be > 0");
    sample_period_ns_ = period_ns;
    next_sample_ns_ = now_ns_ + period_ns;
    sample_hook_ = std::move(hook);
}

void simulator::clear_sample_hook()
{
    sample_hook_ = nullptr;
    sample_period_ns_ = 0;
    next_sample_ns_ = 0;
}

sim_progress simulator::progress() const noexcept
{
    sim_progress p;
    p.now_ns = now_ns_;
    p.tasks_created = report_.tasks_created;
    p.tasks_executed = report_.tasks_executed;
    p.tasks_alive = tasks_alive_;
    p.task_time_ns = exec_ns_total_;
    p.overhead_ns = overhead_ns_;
    p.steals = report_.steals;
    p.remote_steals = report_.remote_steals;
    p.suspensions = report_.suspensions;
    p.peak_live_threads = report_.peak_live_threads;
    return p;
}

// ---------------------------------------------------------- cost model

double simulator::contention_factor() const noexcept
{
    unsigned busy = 0;
    for (auto const& c : cores_)
        busy += c.busy != nullptr;
    double factor = 1.0 + config_.machine.hpx_contention_coef *
        static_cast<double>(busy > 0 ? busy - 1 : 0);
    unsigned const per_socket = config_.machine.cores_per_socket;
    if (busy > per_socket)
        factor += config_.machine.hpx_cross_socket_coef *
            static_cast<double>(busy - per_socket);
    return factor;
}

void simulator::snapshot_contention(sim_task& task) const
{
    machine_desc const& m = config_.machine;

    unsigned busy = 1;    // this task
    for (auto const& c : cores_)
        busy += (c.busy != nullptr && c.busy != &task);

    // Shared-bandwidth model: every busy core is a potential streamer;
    // the working set lives on socket 0 (first touch), so remote-socket
    // tasks pay the NUMA penalty on top of their bandwidth share.
    double bw_gbs = std::min(
        m.core_bw_gbps, m.socket_bw_gbps / static_cast<double>(busy));
    double ns_per_byte = 1.0 / bw_gbs;    // GB/s == bytes/ns
    if (m.socket_of(task.core) != 0)
        ns_per_byte *= m.numa_penalty;
    task.mem_bw_factor = ns_per_byte;

    if (config_.model == sched_model::std_like)
    {
        std::uint64_t const runnable = global_queue_.size() + busy;
        task.load_factor = std::max(1.0,
            static_cast<double>(runnable) /
                static_cast<double>(config_.cores));
    }
    else
    {
        task.load_factor = 1.0;
    }
}

std::uint64_t simulator::segment_cost_ns(sim_task const& task) const
{
    work_annotation const& w = task.pending;
    double const mem_bytes = static_cast<double>(
        w.data_rd_bytes + w.rfo_bytes + w.code_rd_bytes);
    // Modeled page walks stall the core like any other memory time
    // (and are NUMA-amplified with it: a remote walk crosses the
    // interconnect too, via mem_bw_factor's numa_penalty share).
    double const tlb_ns =
        static_cast<double>(task.pending_dtlb_misses) *
        config_.machine.tlb_walk_ns;
    double cost = (static_cast<double>(w.cpu_ns) +
                      mem_bytes * task.mem_bw_factor + tlb_ns) *
        task.cost_scale;
    if (task.load_factor > 1.0)
    {
        // Oversubscribed kernel run queue: the DES already serializes
        // the queue per core (throughput is conserved), so time-sharing
        // shows up only as involuntary context switches per timeslice
        // plus cache pollution from interleaved working sets.
        double const slices =
            std::floor(cost / config_.machine.std_timeslice_ns);
        cost += slices * config_.machine.std_ctx_switch_ns;
        cost *= 1.0 +
            config_.machine.std_oversub_coef *
                std::min(task.load_factor - 1.0, 10.0);
    }
    return static_cast<std::uint64_t>(cost);
}

// ---------------------------------------------------- scheduler models

void simulator::enqueue_hpx(sim_task* task, unsigned origin, bool front)
{
    auto& q = cores_[origin % cores_.size()].queue;
    if (front)
        q.push_front(task);
    else
        q.push_back(task);
    wake_idle_core(config_.machine.socket_of(origin));
}

sim_task* simulator::pick_hpx(unsigned core, std::uint64_t& cost_ns)
{
    machine_desc const& m = config_.machine;
    double const contention = contention_factor();
    auto& own = cores_[core].queue;
    if (!own.empty())
    {
        sim_task* task = own.back();
        own.pop_back();
        cost_ns = static_cast<std::uint64_t>(
            m.hpx_dispatch_ns * contention);
        return task;
    }
    if (cores_.size() == 1)
        return nullptr;

    // Steal: random probes (deterministic RNG), then a sweep. Under the
    // numa victim policy both passes run twice: once restricted to
    // same-socket victims, then (only if that found nothing) over the
    // remote socket(s). A remote raid additionally drags half of the
    // victim's cold end (queue front) back, amortizing the interconnect
    // trip — mirroring the real scheduler's uncapped cross-domain batch.
    std::uint64_t cost = 0;
    unsigned const n = static_cast<unsigned>(cores_.size());
    bool const numa = config_.victim == threads::victim_policy::numa &&
        m.sockets > 1 && n > m.cores_per_socket;

    auto grab = [&](unsigned victim) -> sim_task* {
        auto& vq = cores_[victim].queue;
        sim_task* task = vq.front();
        vq.pop_front();
        bool const remote = m.socket_of(victim) != m.socket_of(core);
        cost += static_cast<std::uint64_t>(
            (remote ? m.hpx_steal_remote_ns : m.hpx_steal_local_ns) *
            contention);
        ++report_.steals;
        report_.remote_steals += remote;
        temit(tracer_, now_ns_, trace::event_kind::steal, task->id, victim,
            core);
        if (numa && remote)
        {
            std::size_t const extra = vq.size() / 2;
            for (std::size_t i = 0; i < extra; ++i)
            {
                sim_task* batched = vq.front();
                vq.pop_front();
                own.push_back(batched);
                ++report_.steals;
                ++report_.remote_steals;
                // Moving an already-located task is far cheaper than the
                // initial raid: one queue-transfer per task.
                cost += static_cast<std::uint64_t>(
                    m.hpx_steal_attempt_ns * contention);
                temit(tracer_, now_ns_, trace::event_kind::steal,
                    batched->id, victim, core);
            }
        }
        return task;
    };

    // filter: 0 = any victim, 1 = same-socket only, 2 = remote only.
    auto pass = [&](int filter) -> sim_task* {
        for (unsigned attempt = 0; attempt < 2 * n; ++attempt)
        {
            auto const victim = static_cast<unsigned>(rng_.below(n));
            if (victim == core)
                continue;
            bool const same = m.socket_of(victim) == m.socket_of(core);
            if ((filter == 1 && !same) || (filter == 2 && same))
                continue;
            if (cores_[victim].queue.empty())
            {
                cost += static_cast<std::uint64_t>(m.hpx_steal_attempt_ns);
                continue;
            }
            return grab(victim);
        }
        for (unsigned v = 0; v < n; ++v)
        {
            if (v == core || cores_[v].queue.empty())
                continue;
            bool const same = m.socket_of(v) == m.socket_of(core);
            if ((filter == 1 && !same) || (filter == 2 && same))
                continue;
            return grab(v);
        }
        return nullptr;
    };

    sim_task* task = numa ? pass(1) : pass(0);
    if (numa && !task)
        task = pass(2);
    cost_ns = cost;
    return task;
}

void simulator::enqueue_std(sim_task* task)
{
    global_queue_.push_back(task);
    wake_idle_core(0);
}

sim_task* simulator::pick_std(unsigned, std::uint64_t& cost_ns)
{
    if (global_queue_.empty())
        return nullptr;
    sim_task* task = global_queue_.front();
    global_queue_.pop_front();
    cost_ns =
        static_cast<std::uint64_t>(config_.machine.std_ctx_switch_ns);
    return task;
}

void simulator::core_becomes_idle(unsigned core)
{
    auto& c = cores_[core];
    c.busy = nullptr;
    c.sleeping = true;
    c.idle_since = now_ns_;
}

void simulator::wake_idle_core(unsigned preferred_socket)
{
    // Same-socket sleeping core first, then any.
    int chosen = -1;
    for (unsigned i = 0; i < cores_.size(); ++i)
    {
        if (!cores_[i].sleeping)
            continue;
        if (config_.machine.socket_of(i) == preferred_socket)
        {
            chosen = static_cast<int>(i);
            break;
        }
        if (chosen < 0)
            chosen = static_cast<int>(i);
    }
    if (chosen < 0)
        return;
    auto& c = cores_[static_cast<unsigned>(chosen)];
    c.sleeping = false;
    report_.idle_s += static_cast<double>(now_ns_ - c.idle_since) * 1e-9;
    std::uint64_t const wake_ns = static_cast<std::uint64_t>(
        config_.model == sched_model::hpx_like ?
            config_.machine.hpx_wake_ns :
            config_.machine.std_wake_ns);
    charge_overhead(wake_ns);
    push(now_ns_ + wake_ns, ev_dispatch, nullptr,
        static_cast<unsigned>(chosen));
}

// ------------------------------------------------------------- handlers

void simulator::handle_dispatch(unsigned core)
{
    auto& c = cores_[core];
    if (c.busy != nullptr)
        return;    // stale wakeup; core already re-acquired work

    std::uint64_t cost = 0;
    sim_task* task = config_.model == sched_model::hpx_like ?
        pick_hpx(core, cost) :
        pick_std(core, cost);
    charge_overhead(cost);

    if (!task)
    {
        c.sleeping = true;
        c.idle_since = now_ns_;
        return;
    }

    c.sleeping = false;
    c.busy = task;
    task->core = core;
    snapshot_contention(*task);

    if (!task->started)
    {
        task->started = true;
        if (!task->stk.valid())
            task->stk = stack_pool_.acquire();
        task->ctx.create(
            task->stk.base(), task->stk.size(), &simulator::task_entry, task);
    }
    // The task owns the core from resume time on: its next execution
    // slice starts at now + dispatch cost.
    temit(tracer_, now_ns_ + cost, trace::event_kind::begin, task->id, 0,
        core);
    push(now_ns_ + cost, ev_resume, task, core);
}

void simulator::task_entry(void* arg)
{
    auto* task = static_cast<sim_task*>(arg);
    simulator* self = tls_sim;
    MINIHPX_ASSERT(self != nullptr);
    try
    {
        // A task can be dispatched (fiber created) without its first
        // ev_resume ever being processed if the run fails in between.
        // The cleanup loop still resumes such a fiber; it must unwind
        // immediately, not start executing the body mid-teardown.
        if (self->unwinding_)
            throw unwind_abandoned{};
        task->fn();
    }
    catch (unwind_abandoned const&)
    {
        // End-of-run cleanup: the stack has unwound (locals released
        // their shared-state references); hand control straight back
        // to the cleanup loop.
        task->fn.reset();
        task->terminated = true;
        threads::execution_context::switch_final(
            task->ctx, self->des_ctx_);
        MINIHPX_UNREACHABLE();
    }
    task->fn.reset();
    // Marked before the switch: if the run fails before the DES
    // processes the task_end event, the cleanup loop must not resume
    // this fiber — its locals are already destroyed.
    task->terminated = true;
    self->interaction_request(inter_kind::task_end);
    MINIHPX_UNREACHABLE();
}

inter_kind simulator::run_segment(sim_task* task)
{
    running_ = task;
    last_inter_ = inter_kind::none;
    threads::execution_context::switch_to(des_ctx_, task->ctx);
    running_ = nullptr;
    return last_inter_;
}

void simulator::interaction_request(inter_kind kind)
{
    sim_task* task = running_;
    MINIHPX_ASSERT_MSG(task != nullptr,
        "sim engine call outside a simulated task");
    task->inter = kind;
    last_inter_ = kind;
    threads::execution_context::switch_to(task->ctx, des_ctx_);
    // Resumed later by ev_resume — or by unwind_abandoned_tasks after
    // a failed run, in which case the fiber must unwind, not continue.
    if (unwinding_)
        throw unwind_abandoned{};
}

void simulator::handle_resume(sim_task* task)
{
    if (report_.tasks_created > config_.max_tasks)
    {
        fail("task budget exceeded (max_tasks)");
        return;
    }
    inter_kind const inter = run_segment(task);
    (void) inter;
    std::uint64_t const cost = segment_cost_ns(*task);
    task->pending = work_annotation{};
    task->pending_dtlb_misses = 0;
    exec_ns_total_ += cost;
    task->vt_exec_ns += cost;
    push(now_ns_ + cost, ev_apply, task, task->core);
}

void simulator::handle_apply(sim_task* task)
{
    machine_desc const& m = config_.machine;
    bool const hpx = config_.model == sched_model::hpx_like;
    unsigned const core = task->core;
    double const contention = hpx ? contention_factor() : 1.0;

    switch (task->inter)
    {
    case inter_kind::spawn:
    {
        sim_task* child = task->inter_task;
        task->inter_task = nullptr;
        ++report_.tasks_created;
        temit(tracer_, now_ns_, trace::event_kind::spawn, child->id,
            child->parent, core);

        std::uint64_t resume_at;
        if (hpx)
        {
            // The serialized slice models allocator/queue cache-line
            // contention: a process-wide spawn-throughput ceiling. The
            // slice lengthens once cores span both sockets (cross-socket
            // cache-line transfers), which is what makes very fine
            // benchmarks *degrade* past the socket boundary (Figs 11-12).
            unsigned busy = 0;
            for (auto const& c : cores_)
                busy += c.busy != nullptr;
            double serial = m.hpx_spawn_serial_ns;
            if (busy > m.cores_per_socket)
                serial *= 1.0 +
                    m.hpx_cross_socket_coef *
                        static_cast<double>(busy - m.cores_per_socket);
            std::uint64_t const start = std::max(now_ns_, kernel_free_at_);
            kernel_free_at_ = start + static_cast<std::uint64_t>(serial);
            resume_at = kernel_free_at_ +
                static_cast<std::uint64_t>(m.hpx_spawn_ns * contention);
            charge_overhead(resume_at - now_ns_);
            enqueue_hpx(child, core, task->spawn_front);
        }
        else
        {
            // Thread-per-task: commit memory, serialize through the
            // kernel, fail past the limit (paper §II / Table I).
            ++live_started_;
            report_.peak_live_threads = std::max<std::uint64_t>(
                report_.peak_live_threads, live_started_);
            if (live_started_ > m.std_thread_limit ||
                live_started_ * m.std_thread_mem_bytes > m.ram_bytes)
            {
                fail("resource exhaustion: " +
                    std::to_string(live_started_) +
                    " live pthreads (thread-per-task)");
                return;
            }
            std::uint64_t const start =
                std::max(now_ns_, kernel_free_at_);
            kernel_free_at_ = start +
                static_cast<std::uint64_t>(m.std_spawn_serial_ns);
            resume_at = kernel_free_at_ +
                static_cast<std::uint64_t>(m.std_spawn_ns);
            charge_overhead(resume_at - now_ns_);
            enqueue_std(child);
        }
        ++tasks_alive_;
        push(resume_at, ev_resume, task, core);
        break;
    }

    case inter_kind::wait:
    {
        detail::sim_state_base* state = task->inter_state;
        task->inter_state = nullptr;
        if (state->ready)
        {
            push(now_ns_, ev_resume, task, core);
            break;
        }
        ++report_.suspensions;
        temit(tracer_, now_ns_, trace::event_kind::suspend, task->id, 0,
            core);
        task->next_waiter = state->waiters;
        state->waiters = task;
        std::uint64_t const cost = static_cast<std::uint64_t>(
            hpx ? m.hpx_suspend_ns : m.std_block_ns);
        charge_overhead(cost);
        core_becomes_idle(core);
        cores_[core].sleeping = false;    // it will dispatch, not sleep
        push(now_ns_ + cost, ev_dispatch, nullptr, core);
        break;
    }

    case inter_kind::notify:
    {
        detail::sim_state_base* state = task->inter_state;
        task->inter_state = nullptr;
        state->ready = true;
        std::uint64_t wake_cost = 0;
        while (sim_task* waiter = state->waiters)
        {
            state->waiters = waiter->next_waiter;
            waiter->next_waiter = nullptr;
            wake_cost += static_cast<std::uint64_t>(
                hpx ? m.hpx_resume_ns : m.std_wake_ns);
            // Causal wake edge: the notifying task made the waiter
            // runnable (aux = waker id, as in scheduler::resume).
            temit(tracer_, now_ns_, trace::event_kind::resume, waiter->id,
                task->id, core);
            if (hpx)
                enqueue_hpx(waiter, core, false);
            else
                enqueue_std(waiter);
        }
        state->self_keepalive.reset();
        charge_overhead(wake_cost);
        push(now_ns_ + wake_cost, ev_resume, task, core);
        break;
    }

    case inter_kind::lock:
    {
        detail::sim_mutex_impl* mutex = task->inter_mutex;
        task->inter_mutex = nullptr;
        if (!mutex->locked)
        {
            mutex->locked = true;
            push(now_ns_ + 50, ev_resume, task, core);
            break;
        }
        ++report_.suspensions;
        temit(tracer_, now_ns_, trace::event_kind::suspend, task->id, 0,
            core);
        mutex->waiters.push_back(task);
        std::uint64_t const cost = static_cast<std::uint64_t>(
            hpx ? m.hpx_suspend_ns : m.std_block_ns);
        charge_overhead(cost);
        core_becomes_idle(core);
        cores_[core].sleeping = false;
        push(now_ns_ + cost, ev_dispatch, nullptr, core);
        break;
    }

    case inter_kind::unlock:
    {
        // Direct handoff: ownership transfers to the first waiter, so a
        // resumed waiter always owns the lock (see simulator::lock).
        detail::sim_mutex_impl* mutex = task->inter_mutex;
        task->inter_mutex = nullptr;
        std::uint64_t cost = 50;
        if (!mutex->waiters.empty())
        {
            sim_task* waiter = mutex->waiters.front();
            mutex->waiters.pop_front();
            cost += static_cast<std::uint64_t>(
                hpx ? m.hpx_resume_ns : m.std_wake_ns);
            temit(tracer_, now_ns_, trace::event_kind::resume, waiter->id,
                task->id, core);
            if (hpx)
                enqueue_hpx(waiter, core, false);
            else
                enqueue_std(waiter);
        }
        else
        {
            mutex->locked = false;
        }
        charge_overhead(cost - 50);
        push(now_ns_ + cost, ev_resume, task, core);
        break;
    }

    case inter_kind::yield:
    {
        temit(tracer_, now_ns_, trace::event_kind::yield, task->id, 0, core);
        if (hpx)
            enqueue_hpx(task, core, false);
        else
            enqueue_std(task);
        core_becomes_idle(core);
        cores_[core].sleeping = false;
        push(now_ns_, ev_dispatch, nullptr, core);
        break;
    }

    case inter_kind::task_end:
        finish_task(task);
        break;

    case inter_kind::none:
    default:
        MINIHPX_UNREACHABLE();
    }
}

void simulator::finish_task(sim_task* task)
{
    machine_desc const& m = config_.machine;
    bool const hpx = config_.model == sched_model::hpx_like;
    unsigned const core = task->core;

    task->terminated = true;
    ++report_.tasks_executed;
    --tasks_alive_;
    temit(tracer_, now_ns_, trace::event_kind::end, task->id, 0, core);
    if (!hpx)
        --live_started_;

    std::uint64_t const cleanup = static_cast<std::uint64_t>(
        hpx ? 120.0 : m.std_exit_ns);
    charge_overhead(cleanup);

    // Recycle stack; the descriptor is kept until run() tears down.
    if (task->stk.valid())
        stack_pool_.release(std::move(task->stk));

    core_becomes_idle(core);
    cores_[core].sleeping = false;
    push(now_ns_ + cleanup, ev_dispatch, nullptr, core);
}

// --------------------------------------------------------- engine hooks

void simulator::annotate_label(char const* label) noexcept
{
    sim_task* task = running_;
    if (!task || !label)
        return;
    // Re-resolve the causal cost scale on every label change, whether
    // or not a tracer is installed: the scaled re-run of a verification
    // pair does not need to record anything.
    task->cost_scale = 1.0;
    for (auto const& s : config_.cost_scales)
    {
        if (s.label == label)
            task->cost_scale = s.factor;
    }
    temit(tracer_, now_ns_, trace::event_kind::label, task->id,
        static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(label)),
        task->core);
}

void simulator::annotate(work_annotation const& w) noexcept
{
    sim_task* task = running_;
    if (!task)
        return;
    task->pending += w;
    report_.offcore_data_rd += to_lines(w.data_rd_bytes);
    report_.offcore_rfo += to_lines(w.rfo_bytes);
    report_.offcore_code_rd += to_lines(w.code_rd_bytes);
    report_.instructions += w.instructions;

    // Locality model, priced per annotation (each annotation is one
    // kernel's footprint; summing the annotations first would merge
    // disjoint working sets into a fictitious large one).
    memory_traffic const mt =
        model_traffic(config_.machine.mem_model(), w);
    report_.dtlb_loads += mt.dtlb_loads;
    report_.dtlb_misses += mt.dtlb_misses;
    report_.llc_loads += mt.llc_loads;
    report_.llc_misses += mt.llc_misses;
    task->pending_dtlb_misses += mt.dtlb_misses;
}

sim_task* simulator::spawn_task(util::unique_function<void()> fn, bool front)
{
    sim_task* current = running_;
    MINIHPX_ASSERT_MSG(
        current != nullptr, "sim spawn outside a simulated task");

    std::unique_ptr<sim_task> owned;
    if (!task_freelist_.empty())
    {
        owned = std::move(task_freelist_.back());
        task_freelist_.pop_back();
        *owned = sim_task{};
    }
    else
    {
        owned = std::make_unique<sim_task>();
    }
    sim_task* child = owned.get();
    child->id = next_task_id_++;
    child->parent = current->id;
    child->fn = std::move(fn);
    tasks_.push_back(std::move(owned));

    current->inter_task = child;
    current->spawn_front = front;
    interaction_request(inter_kind::spawn);
    return child;
}

void simulator::wait_on(detail::sim_state_base* state)
{
    while (!state->ready)
    {
        running_->inter_state = state;
        interaction_request(inter_kind::wait);
    }
}

void simulator::notify(detail::sim_state_base* state)
{
    running_->inter_state = state;
    interaction_request(inter_kind::notify);
}

void simulator::lock(detail::sim_mutex_impl* mutex)
{
    running_->inter_mutex = mutex;
    interaction_request(inter_kind::lock);
    // Direct handoff protocol: when this returns we own the mutex —
    // either the DES acquired it for us immediately, or a later unlock
    // transferred ownership before re-enqueueing us.
}

void simulator::unlock(detail::sim_mutex_impl* mutex)
{
    running_->inter_mutex = mutex;
    interaction_request(inter_kind::unlock);
}

void simulator::yield()
{
    interaction_request(inter_kind::yield);
}

}    // namespace minihpx::sim
