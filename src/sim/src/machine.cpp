#include <minihpx/sim/machine.hpp>

#include <sstream>

namespace minihpx::sim {

machine_desc machine_desc::ivy_bridge_2s_20c()
{
    return machine_desc{};    // defaults encode Table III
}

std::string machine_desc::describe() const
{
    std::ostringstream os;
    os << "simulated node: " << sockets << " socket(s) x "
       << cores_per_socket << " cores @ " << ghz << " GHz (Ivy Bridge model)\n"
       << "  per-socket bandwidth " << socket_bw_gbps
       << " GB/s, per-core peak " << core_bw_gbps
       << " GB/s, NUMA penalty x" << numa_penalty << "\n"
       << "  RAM " << (ram_bytes >> 30) << " GiB, std thread limit "
       << std_thread_limit;
    return os.str();
}

}    // namespace minihpx::sim
