// Task descriptor ("HPX thread").
//
// An HPX task is a lightweight user-level thread: a closure, a stack,
// an execution context, a state machine, and the timing fields the
// performance-counter framework reads. The scheduler owns the state
// transitions:
//
//   staged -> pending -> active -> {pending | suspended | terminated}
//                         ^             |
//                         +-------------+   (set_thread_state / notify)
//
// The paper's /threads/time/average ("task duration") and
// /threads/time/average-overhead ("task overhead") counters are fed by
// exec_time_ns / overhead_time_ns accumulated here.
#pragma once

#include <minihpx/threads/context.hpp>
#include <minihpx/threads/stack.hpp>
#include <minihpx/util/unique_function.hpp>

#include <atomic>
#include <cstdint>
#include <string>

namespace minihpx::threads {

enum class thread_state : std::uint8_t
{
    unknown = 0,
    staged,        // created, descriptor/stack not yet initialized
    pending,       // runnable, sitting in a queue
    active,        // executing on a worker
    suspended,     // blocked (future/mutex/condvar)
    terminated,    // finished; descriptor awaiting recycling
};

char const* to_string(thread_state state) noexcept;

using thread_id = std::uint64_t;
inline constexpr thread_id invalid_thread_id = 0;

enum class thread_priority : std::uint8_t
{
    normal = 0,
    high,          // continuations woken by future.set_value
};

class thread_data
{
public:
    using task_function = util::unique_function<void()>;

    thread_data() = default;
    thread_data(thread_data const&) = delete;
    thread_data& operator=(thread_data const&) = delete;

    // (Re-)initialize a descriptor for a new task; reuses the existing
    // stack if one is attached (descriptor recycling path). `parent` is
    // the id of the spawning task (invalid_thread_id for roots) — the
    // static edge of the dynamic task graph (this_task::parent_id,
    // trace spawn events).
    void init(thread_id id, task_function fn, char const* description,
              thread_priority priority,
              thread_id parent = invalid_thread_id);

    thread_id id() const noexcept { return id_; }
    thread_id parent_id() const noexcept { return parent_id_; }
    char const* description() const noexcept { return description_; }
    thread_priority priority() const noexcept { return priority_; }

    thread_state state() const noexcept
    {
        return state_.load(std::memory_order_acquire);
    }

    void set_state(thread_state s) noexcept
    {
        state_.store(s, std::memory_order_release);
    }

    // CAS used where wakeups can race with suspension.
    bool transition(thread_state expected, thread_state desired) noexcept
    {
        return state_.compare_exchange_strong(expected, desired,
            std::memory_order_acq_rel, std::memory_order_acquire);
    }

    // --- execution (called by the scheduler only) ---------------------
    task_function& function() noexcept { return function_; }
    execution_context& context() noexcept { return context_; }

    bool has_stack() const noexcept { return stack_.valid(); }
    void attach_stack(stack&& s) noexcept { stack_ = std::move(s); }
    stack detach_stack() noexcept { return std::move(stack_); }
    stack const& get_stack() const noexcept { return stack_; }

    void prepare_context(context_entry entry) noexcept
    {
        context_.create(stack_.base(), stack_.size(), entry, this);
    }

    // --- timing (read by the counter framework) -----------------------
    void add_exec_time(std::uint64_t ns) noexcept { exec_time_ns_ += ns; }
    std::uint64_t exec_time_ns() const noexcept { return exec_time_ns_; }

    // --- tracing ------------------------------------------------------
    // Current annotate() label (static-storage string; nullptr = none).
    // Lives on the descriptor, not the worker, so it travels with the
    // task across suspensions and steals — this_task::annotate_scope
    // restores the right label no matter which worker resumes the task.
    char const* trace_label() const noexcept { return trace_label_; }
    void set_trace_label(char const* label) noexcept
    {
        trace_label_ = label;
    }

    // Set by a waker that observed the task not yet parked (state still
    // active); consumed by the scheduler when it parks the task. This is
    // the standard two-phase suspend handshake: a task can only be
    // published as suspended *after* it has switched off its stack.
    std::atomic<bool> wakeup_pending{false};

    // --- intrusive freelist/queue linkage ------------------------------
    thread_data* next = nullptr;

    // Worker that created the task (used for stolen-task accounting).
    std::uint32_t origin_worker = 0;

private:
    thread_id id_ = invalid_thread_id;
    thread_id parent_id_ = invalid_thread_id;
    std::atomic<thread_state> state_{thread_state::unknown};
    thread_priority priority_ = thread_priority::normal;
    char const* description_ = "<unknown>";
    char const* trace_label_ = nullptr;
    task_function function_;
    execution_context context_;
    stack stack_;
    std::uint64_t exec_time_ns_ = 0;
};

}    // namespace minihpx::threads
