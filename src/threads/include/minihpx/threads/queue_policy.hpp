// Run-queue implementation selector.
//
// Kept in its own header so layers that only need the knob (the
// simulator's ablation config, the runtime CLI parser) do not pull in
// the full queue implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace minihpx::threads {

enum class queue_policy : std::uint8_t
{
    // Spinlock-guarded std::deque (the original design, DESIGN.md
    // choice #2). Kept for A/B ablation runs.
    mutex_deque,
    // Lock-free Chase-Lev deque + MPSC inbox for cross-thread pushes
    // (docs/SCHEDULER.md). The default.
    chase_lev,
};

constexpr char const* to_string(queue_policy p) noexcept
{
    switch (p)
    {
    case queue_policy::mutex_deque:
        return "mutex";
    case queue_policy::chase_lev:
        return "chase-lev";
    }
    return "?";
}

// Accepts the canonical names plus common spellings; nullopt on junk so
// callers can produce their own error message.
inline std::optional<queue_policy> parse_queue_policy(
    std::string_view s) noexcept
{
    if (s == "mutex" || s == "mutex-deque" || s == "locked")
        return queue_policy::mutex_deque;
    if (s == "chase-lev" || s == "chase_lev" || s == "lockfree")
        return queue_policy::chase_lev;
    return std::nullopt;
}

}    // namespace minihpx::threads
