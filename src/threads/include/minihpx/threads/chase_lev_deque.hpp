// Lock-free Chase-Lev work-stealing deque.
//
// Single owner pushes and pops at the *bottom* (LIFO, cache-warm child
// first); any number of thieves CAS-claim the *top* (FIFO, oldest —
// likely largest — subtree first). Backed by a dynamically growing
// circular array; `top` increases monotonically, which is what makes
// the top CAS ABA-free.
//
// The orderings follow the C11 formulation of Lê, Pop, Cohen &
// Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
// Models" (PPoPP'13), with two deliberate deviations, both explained in
// docs/SCHEDULER.md:
//
//  1. The paper's standalone seq_cst *fences* are folded into seq_cst
//     operations on `top`/`bottom`. ThreadSanitizer does not model
//     `atomic_thread_fence`, so the fence-based version is correct on
//     hardware but reports false races under TSan; the operation-based
//     version is equivalent (slightly stronger) and TSan-clean.
//  2. Every store to `bottom` is at least `release` (the paper relaxes
//     the empty-pop restore). Thieves read `bottom` with seq_cst, so a
//     thief that observes bottom > t synchronizes-with the owner store
//     that published slot t — giving the happens-before edge that makes
//     the stolen task's payload visible without extra annotations.
//
// Array slots are themselves atomic (relaxed): after a thief loads its
// candidate but before its CAS, the owner may wrap around and overwrite
// that slot. The stale value is discarded when the CAS fails, but the
// racing accesses must still be data-race-free by the letter of the
// memory model (and for TSan).
//
// Growth: the owner allocates a 2x array, copies [top, bottom), and
// publishes it with a release store. Thieves may still hold the old
// array; its live range [top, bottom) was copied, not moved, so their
// reads stay valid. Retired arrays are kept on a chain and freed in the
// destructor — a handful of pointers per growth, bounded by
// log2(high-water mark) generations.
//
// The deque is a template over the element type and the atomics policy
// (util/atomics_policy.hpp). threads::chase_lev_deque — the production
// instantiation over thread_data* and std::atomic — compiles to exactly
// the pre-template code (bench/steal_throughput gates it). minihpx::mc
// instantiates the same algorithm over model atomics and exhaustively
// checks exactly-once pop/steal delivery, including across growth, for
// every schedule and weak-memory behavior within the bound — and the
// chase_lev_mutation constants below plant one-ordering-weaker mutants
// that the mutation-validation suite proves the checker catches.
#pragma once

#include <minihpx/util/assert.hpp>
#include <minihpx/util/atomics_policy.hpp>
#include <minihpx/util/cache_align.hpp>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

namespace minihpx::threads {

class thread_data;

// Compile-time-gated fence-weakening mutants (tests/test_mc_mutations).
// Each weakens exactly one of the orderings the PPoPP'13 proof needs;
// 0 is the production instantiation.
namespace chase_lev_mutation {

    inline constexpr unsigned none = 0;
    // pop(): the bottom decrement store seq_cst -> relaxed — removes
    // the owner half of the interoperating StoreLoad fence (the paper's
    // fence in take()). A thief can then observe the stale bottom and
    // steal the element the owner already took.
    inline constexpr unsigned pop_bottom_relaxed = 1;
    // pop(): the top load seq_cst -> relaxed — the owner can then act
    // on a stale top and hand out slot `b` uncontended while a thief
    // CAS-claims the same slot.
    inline constexpr unsigned pop_top_relaxed = 2;
    // steal(): the bottom load seq_cst -> relaxed — drops the
    // synchronizes-with edge on the owner's publication store, so the
    // thief can read a stale (previous-lap) slot value.
    inline constexpr unsigned steal_bottom_relaxed = 3;

}    // namespace chase_lev_mutation

template <typename T, typename Policy = util::std_atomics_policy,
    unsigned Mutant = chase_lev_mutation::none>
class basic_chase_lev_deque
{
    static_assert(std::is_trivially_copyable_v<T>,
        "deque slots are republished during growth with relaxed "
        "copies; elements must be trivially copyable (pointers)");

    // Only the production policy is noexcept (model fibers unwind via
    // an exception through these calls).
    static constexpr bool production =
        std::is_same_v<Policy, util::std_atomics_policy>;

    static constexpr std::memory_order pop_bottom_order =
        Mutant == chase_lev_mutation::pop_bottom_relaxed ?
        std::memory_order_relaxed :
        std::memory_order_seq_cst;
    static constexpr std::memory_order pop_top_order =
        Mutant == chase_lev_mutation::pop_top_relaxed ?
        std::memory_order_relaxed :
        std::memory_order_seq_cst;
    static constexpr std::memory_order steal_bottom_order =
        Mutant == chase_lev_mutation::steal_bottom_relaxed ?
        std::memory_order_relaxed :
        std::memory_order_seq_cst;

public:
    static constexpr std::size_t default_capacity = 256;

    explicit basic_chase_lev_deque(
        std::size_t initial_capacity = default_capacity)
    {
        // Minimum of 2 keeps the growth path reachable with a handful
        // of elements — the mc growth litmus exercises it directly.
        std::size_t cap = 2;
        while (cap < initial_capacity)
            cap *= 2;
        // relaxed: the deque is published to other threads by whatever
        // handed them the reference; construction is single-threaded.
        array_.store(new ring(cap, nullptr), std::memory_order_relaxed);
    }

    ~basic_chase_lev_deque()
    {
        ring* a = array_.load(std::memory_order_relaxed);
        while (a)
        {
            ring* prev = a->retired;
            delete a;
            a = prev;
        }
    }

    basic_chase_lev_deque(basic_chase_lev_deque const&) = delete;
    basic_chase_lev_deque& operator=(basic_chase_lev_deque const&) = delete;

    // Owner side --------------------------------------------------------
    void push(T task)
    {
        // relaxed: bottom is owner-written only; we read our own last
        // store.
        std::int64_t const b = bottom_.load(std::memory_order_relaxed);
        // acquire: pairs with a pop-CAS-losing thief's... nothing,
        // actually — top only moves forward, and a stale (smaller) top
        // here merely over-estimates the size and forces an early grow.
        // acquire is kept so the grow copy below cannot read slots the
        // claiming thief has not yet vacated on paper; it costs nothing
        // on x86 and matches the PPoPP'13 formulation.
        std::int64_t const t = top_.load(std::memory_order_acquire);
        // relaxed: array_ is owner-written; we read our own last store.
        ring* a = array_.load(std::memory_order_relaxed);

        if (b - t >= static_cast<std::int64_t>(a->capacity))
            a = grow(a, t, b);

        // relaxed: the slot write is published by the release store of
        // bottom below, never on its own.
        a->slot(b).store(task, std::memory_order_relaxed);
        // Publication point: the release pairs with the thief's seq_cst
        // load of bottom in steal().
        bottom_.store(b + 1, std::memory_order_release);
    }

    T pop()
    {
        // relaxed: owner-written, own last store (see push).
        std::int64_t const b = bottom_.load(std::memory_order_relaxed) - 1;
        ring* const a = array_.load(std::memory_order_relaxed);
        // seq_cst store/load pair: the StoreLoad between our bottom
        // decrement and the top read closes the owner-vs-thief race on
        // the last element (the paper's interoperating fences).
        bottom_.store(b, pop_bottom_order);
        std::int64_t t = top_.load(pop_top_order);

        if (t < b)
        {
            // More than one element left: no thief can reach slot b.
            // relaxed: only this owner ever wrote slot b since top < b.
            return a->slot(b).load(std::memory_order_relaxed);
        }
        T task{};
        if (t == b)
        {
            // Exactly one element: race the thieves for it via top.
            task = a->slot(b).load(std::memory_order_relaxed);
            // seq_cst on success: totally ordered against the thieves'
            // CASes on the same cell. relaxed on failure: losing means
            // a thief took the element; we return empty and touch no
            // data that needs the edge.
            if (!top_.compare_exchange_strong(t, t + 1,
                    std::memory_order_seq_cst, std::memory_order_relaxed))
                task = T{};    // a thief won
        }
        // Restore the canonical empty state bottom == top (== old b+1).
        // release (deviation 2 above): keeps every bottom store a
        // publication point so thieves never need to reason about which
        // store they paired with.
        bottom_.store(b + 1, std::memory_order_release);
        return task;
    }

    // Thief side --------------------------------------------------------
    T steal()
    {
        // seq_cst: ordered against the owner's bottom store in pop();
        // the thief must read top before bottom (the paper's read
        // order) or the emptiness check is unsound.
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        // seq_cst: the Dekker partner of pop()'s bottom store, and the
        // acquire half of push()'s release publication of slot t.
        std::int64_t const b = bottom_.load(steal_bottom_order);
        if (t >= b)
            return T{};    // observed empty

        // Load the candidate *before* the CAS: once top moves past t the
        // owner may recycle the slot, so a post-CAS read could see a
        // newer task and hand it out twice.
        // acquire on array_: pairs with grow()'s release publication of
        // the copied ring, so slot(t) of a just-published array is
        // fully initialized.
        ring* const a = array_.load(std::memory_order_acquire);
        // relaxed: freshness of the value is guaranteed by the acquire
        // edge on bottom (slot t was written before bottom advanced
        // past t); the CAS below discards the read when we lose.
        T task = a->slot(t).load(std::memory_order_relaxed);
        // seq_cst on success: claims the cell in the global order all
        // contenders agree on. relaxed on failure: the reload of top is
        // advisory — the caller treats a loss as "try another victim".
        if (!top_.compare_exchange_strong(t, t + 1,
                std::memory_order_seq_cst, std::memory_order_relaxed))
            return T{};    // lost the race; caller may retry
        return task;
    }

    // Introspection (racy snapshot; exact only when quiescent) -----------
    std::int64_t size() const noexcept(production)
    {
        // relaxed: advisory reading (victim selection, stats); any
        // torn-in-time snapshot is acceptable by contract.
        std::int64_t const b = bottom_.load(std::memory_order_relaxed);
        std::int64_t const t = top_.load(std::memory_order_relaxed);
        return b > t ? b - t : 0;
    }

    bool empty() const noexcept(production) { return size() == 0; }

    std::size_t capacity() const noexcept(production)
    {
        return array_.load(std::memory_order_relaxed)->capacity;
    }

private:
    struct ring
    {
        std::size_t const capacity;
        std::size_t const mask;
        ring* const retired;    // previous generation, kept alive
        std::unique_ptr<typename Policy::template atomic<T>[]> slots;

        ring(std::size_t cap, ring* prev)
          : capacity(cap)
          , mask(cap - 1)
          , retired(prev)
          , slots(new typename Policy::template atomic<T>[cap])
        {
            MINIHPX_ASSERT((cap & (cap - 1)) == 0);
        }

        typename Policy::template atomic<T>& slot(std::int64_t i) noexcept
        {
            return slots[static_cast<std::size_t>(i) & mask];
        }
    };

    // Owner-only: double the array, copying the live range.
    ring* grow(ring* a, std::int64_t t, std::int64_t b)
    {
        ring* const bigger = new ring(a->capacity * 2, a);
        for (std::int64_t i = t; i < b; ++i)
        {
            // relaxed copies: only the owner writes slots in [t, b) and
            // only the owner grows; the release store of array_ below
            // publishes the lot.
            bigger->slot(i).store(
                a->slot(i).load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
        // release: pairs with the thief's acquire array_ load.
        array_.store(bigger, std::memory_order_release);
        return bigger;
    }

    alignas(util::cache_line_size)
        typename Policy::template atomic<std::int64_t> top_{0};
    alignas(util::cache_line_size)
        typename Policy::template atomic<std::int64_t> bottom_{0};
    alignas(util::cache_line_size)
        typename Policy::template atomic<ring*> array_{nullptr};
};

// Production instantiation: the scheduler's run-queue element type over
// std::atomic.
using chase_lev_deque = basic_chase_lev_deque<thread_data*>;

}    // namespace minihpx::threads
