// Lock-free Chase-Lev work-stealing deque of thread_data pointers.
//
// Single owner pushes and pops at the *bottom* (LIFO, cache-warm child
// first); any number of thieves CAS-claim the *top* (FIFO, oldest —
// likely largest — subtree first). Backed by a dynamically growing
// circular array; `top` increases monotonically, which is what makes
// the top CAS ABA-free.
//
// The orderings follow the C11 formulation of Lê, Pop, Cohen &
// Zappa Nardelli, "Correct and Efficient Work-Stealing for Weak Memory
// Models" (PPoPP'13), with two deliberate deviations, both explained in
// docs/SCHEDULER.md:
//
//  1. The paper's standalone seq_cst *fences* are folded into seq_cst
//     operations on `top`/`bottom`. ThreadSanitizer does not model
//     `atomic_thread_fence`, so the fence-based version is correct on
//     hardware but reports false races under TSan; the operation-based
//     version is equivalent (slightly stronger) and TSan-clean.
//  2. Every store to `bottom` is at least `release` (the paper relaxes
//     the empty-pop restore). Thieves read `bottom` with seq_cst, so a
//     thief that observes bottom > t synchronizes-with the owner store
//     that published slot t — giving the happens-before edge that makes
//     the stolen task's payload visible without extra annotations.
//
// Array slots are themselves atomic (relaxed): after a thief loads its
// candidate but before its CAS, the owner may wrap around and overwrite
// that slot. The stale value is discarded when the CAS fails, but the
// racing accesses must still be data-race-free by the letter of the
// memory model (and for TSan).
//
// Growth: the owner allocates a 2x array, copies [top, bottom), and
// publishes it with a release store. Thieves may still hold the old
// array; its live range [top, bottom) was copied, not moved, so their
// reads stay valid. Retired arrays are kept on a chain and freed in the
// destructor — a handful of pointers per growth, bounded by
// log2(high-water mark) generations.
#pragma once

#include <minihpx/util/assert.hpp>
#include <minihpx/util/cache_align.hpp>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace minihpx::threads {

class thread_data;

class chase_lev_deque
{
public:
    static constexpr std::size_t default_capacity = 256;

    explicit chase_lev_deque(std::size_t initial_capacity = default_capacity)
    {
        std::size_t cap = 8;
        while (cap < initial_capacity)
            cap *= 2;
        array_.store(new ring(cap, nullptr), std::memory_order_relaxed);
    }

    ~chase_lev_deque()
    {
        ring* a = array_.load(std::memory_order_relaxed);
        while (a)
        {
            ring* prev = a->retired;
            delete a;
            a = prev;
        }
    }

    chase_lev_deque(chase_lev_deque const&) = delete;
    chase_lev_deque& operator=(chase_lev_deque const&) = delete;

    // Owner side --------------------------------------------------------
    void push(thread_data* task)
    {
        std::int64_t const b = bottom_.load(std::memory_order_relaxed);
        std::int64_t const t = top_.load(std::memory_order_acquire);
        ring* a = array_.load(std::memory_order_relaxed);

        if (b - t >= static_cast<std::int64_t>(a->capacity))
            a = grow(a, t, b);

        a->slot(b).store(task, std::memory_order_relaxed);
        // Publication point: the release pairs with the thief's seq_cst
        // load of bottom in steal().
        bottom_.store(b + 1, std::memory_order_release);
    }

    thread_data* pop()
    {
        std::int64_t const b = bottom_.load(std::memory_order_relaxed) - 1;
        ring* const a = array_.load(std::memory_order_relaxed);
        // seq_cst store/load pair: the StoreLoad between our bottom
        // decrement and the top read closes the owner-vs-thief race on
        // the last element (the paper's interoperating fences).
        bottom_.store(b, std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_seq_cst);

        if (t < b)
        {
            // More than one element left: no thief can reach slot b.
            return a->slot(b).load(std::memory_order_relaxed);
        }
        thread_data* task = nullptr;
        if (t == b)
        {
            // Exactly one element: race the thieves for it via top.
            task = a->slot(b).load(std::memory_order_relaxed);
            if (!top_.compare_exchange_strong(t, t + 1,
                    std::memory_order_seq_cst, std::memory_order_relaxed))
                task = nullptr;    // a thief won
        }
        // Restore the canonical empty state bottom == top (== old b+1).
        bottom_.store(b + 1, std::memory_order_release);
        return task;
    }

    // Thief side --------------------------------------------------------
    thread_data* steal()
    {
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        std::int64_t const b = bottom_.load(std::memory_order_seq_cst);
        if (t >= b)
            return nullptr;    // observed empty

        // Load the candidate *before* the CAS: once top moves past t the
        // owner may recycle the slot, so a post-CAS read could see a
        // newer task and hand it out twice.
        ring* const a = array_.load(std::memory_order_acquire);
        thread_data* task = a->slot(t).load(std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1,
                std::memory_order_seq_cst, std::memory_order_relaxed))
            return nullptr;    // lost the race; caller may retry
        return task;
    }

    // Introspection (racy snapshot; exact only when quiescent) -----------
    std::int64_t size() const noexcept
    {
        std::int64_t const b = bottom_.load(std::memory_order_relaxed);
        std::int64_t const t = top_.load(std::memory_order_relaxed);
        return b > t ? b - t : 0;
    }

    bool empty() const noexcept { return size() == 0; }

    std::size_t capacity() const noexcept
    {
        return array_.load(std::memory_order_relaxed)->capacity;
    }

private:
    struct ring
    {
        std::size_t const capacity;
        std::size_t const mask;
        ring* const retired;    // previous generation, kept alive
        std::unique_ptr<std::atomic<thread_data*>[]> slots;

        ring(std::size_t cap, ring* prev)
          : capacity(cap)
          , mask(cap - 1)
          , retired(prev)
          , slots(new std::atomic<thread_data*>[cap])
        {
            MINIHPX_ASSERT((cap & (cap - 1)) == 0);
        }

        std::atomic<thread_data*>& slot(std::int64_t i) noexcept
        {
            return slots[static_cast<std::size_t>(i) & mask];
        }
    };

    // Owner-only: double the array, copying the live range.
    ring* grow(ring* a, std::int64_t t, std::int64_t b)
    {
        ring* const bigger = new ring(a->capacity * 2, a);
        for (std::int64_t i = t; i < b; ++i)
        {
            bigger->slot(i).store(
                a->slot(i).load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
        array_.store(bigger, std::memory_order_release);
        return bigger;
    }

    alignas(util::cache_line_size) std::atomic<std::int64_t> top_{0};
    alignas(util::cache_line_size) std::atomic<std::int64_t> bottom_{0};
    alignas(util::cache_line_size) std::atomic<ring*> array_{nullptr};
};

}    // namespace minihpx::threads
