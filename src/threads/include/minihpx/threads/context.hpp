// User-level execution contexts (stackful coroutines).
//
// Two interchangeable implementations:
//   - fcontext: custom x86-64 assembly switch (~tens of ns). Default on
//     x86-64; this is what makes HPX-style 1 µs tasks viable.
//   - ucontext_context: POSIX swapcontext fallback (makes a sigprocmask
//     syscall per switch — an order of magnitude slower, kept both for
//     portability and as the ablation baseline in bench/micro_runtime).
//
// Both model *asymmetric* switching: create() seeds a context that will
// run entry(arg) on the supplied stack; switch_to(from, to) suspends the
// current context into `from` and resumes `to`. The entry function must
// never return — a task finishes by switching back to its scheduler.
#pragma once

#include <minihpx/util/assert.hpp>
#include <minihpx/util/sanitizers.hpp>

#include <cstddef>
#include <cstdint>

// The assembly switch saves only a stack pointer, so it cannot announce
// stack bounds to ASan/TSan fiber hooks; under those sanitizers the
// (annotated) ucontext implementation is forced instead. The CMake
// sanitizer presets additionally define MINIHPX_FORCE_UCONTEXT for
// explicitness, but detection alone suffices — a plain
// `-fsanitize=thread` build is safe too.
#if defined(__x86_64__) && !defined(MINIHPX_FORCE_UCONTEXT) &&                 \
    !MINIHPX_ASAN && !MINIHPX_TSAN
#define MINIHPX_HAVE_FCONTEXT 1
#endif

#include <ucontext.h>

namespace minihpx::threads {

using context_entry = void (*)(void*);

#if defined(MINIHPX_HAVE_FCONTEXT)

extern "C" void minihpx_switch_context(void** save_sp, void* target_sp);
extern "C" void minihpx_context_trampoline();

// Assembly-based context. A context is nothing but a saved stack
// pointer; the six callee-saved registers live on the suspended stack.
class fcontext
{
public:
    fcontext() noexcept = default;

    // Seed `stack` so the first resume enters entry(arg).
    void create(void* stack_base, std::size_t stack_size, context_entry entry,
                void* arg) noexcept
    {
        auto top = reinterpret_cast<std::uintptr_t>(stack_base) + stack_size;
        top &= ~std::uintptr_t(15);    // 16-byte ABI alignment
        auto* slots = reinterpret_cast<std::uintptr_t*>(top) - 7;
        slots[0] = 0;                                               // r15
        slots[1] = 0;                                               // r14
        slots[2] = reinterpret_cast<std::uintptr_t>(entry);         // r13
        slots[3] = reinterpret_cast<std::uintptr_t>(arg);           // r12
        slots[4] = 0;                                               // rbx
        slots[5] = 0;                                               // rbp
        slots[6] =
            reinterpret_cast<std::uintptr_t>(&minihpx_context_trampoline);
        sp_ = slots;
    }

    // Suspend the running context into `from`, resume `to`.
    static void switch_to(fcontext& from, fcontext& to) noexcept
    {
        MINIHPX_ASSERT(to.sp_ != nullptr);
        minihpx_switch_context(&from.sp_, to.sp_);
    }

    // Final switch out of a context that will never be resumed (a
    // terminating task). Identical to switch_to here; the sanitized
    // ucontext implementation uses the distinction to release ASan
    // fake-stack frames.
    static void switch_final(fcontext& from, fcontext& to) noexcept
    {
        switch_to(from, to);
    }

    bool valid() const noexcept { return sp_ != nullptr; }

private:
    void* sp_ = nullptr;
};

#endif    // MINIHPX_HAVE_FCONTEXT

// POSIX ucontext fallback / ablation implementation. Also the only
// implementation usable under ASan/TSan: every switch is bracketed by
// the sanitizer fiber hooks (see util/sanitizers.hpp).
class ucontext_context
{
public:
    ucontext_context() noexcept = default;
    ~ucontext_context() { util::san::notify_fiber_destroy(san_); }

    ucontext_context(ucontext_context const&) = delete;
    ucontext_context& operator=(ucontext_context const&) = delete;

    // Moves transfer sanitizer-fiber ownership; only valid while the
    // source context is not running (descriptor reset/recycling).
    ucontext_context(ucontext_context&& other) noexcept
      : uc_(other.uc_)
      , latched_entry_(other.latched_entry_)
      , latched_arg_(other.latched_arg_)
      , created_(other.created_)
      , started_(other.started_)
      , san_(other.san_)
    {
        other.reset_moved_from();
    }

    ucontext_context& operator=(ucontext_context&& other) noexcept
    {
        if (this != &other)
        {
            util::san::notify_fiber_destroy(san_);
            uc_ = other.uc_;
            latched_entry_ = other.latched_entry_;
            latched_arg_ = other.latched_arg_;
            created_ = other.created_;
            started_ = other.started_;
            san_ = other.san_;
            other.reset_moved_from();
        }
        return *this;
    }

    void create(void* stack_base, std::size_t stack_size, context_entry entry,
                void* arg) noexcept;

    static void switch_to(ucontext_context& from, ucontext_context& to) noexcept;
    // Final switch out of a terminating context; lets ASan free the
    // context's fake-stack frames instead of keeping them for a resume
    // that will never come.
    static void switch_final(
        ucontext_context& from, ucontext_context& to) noexcept;

    bool valid() const noexcept { return created_; }

private:
    static void entry_shim();
    static void do_switch(ucontext_context& from, ucontext_context& to,
        bool from_exiting) noexcept;

    void reset_moved_from() noexcept
    {
        latched_entry_ = nullptr;
        latched_arg_ = nullptr;
        created_ = false;
        started_ = false;
        san_ = util::san::fiber_state{};
    }

    ucontext_t uc_{};
    context_entry latched_entry_ = nullptr;
    void* latched_arg_ = nullptr;
    bool created_ = false;
    bool started_ = false;
    util::san::fiber_state san_;
};

#if defined(MINIHPX_HAVE_FCONTEXT)
using execution_context = fcontext;
#else
using execution_context = ucontext_context;
#endif

}    // namespace minihpx::threads
