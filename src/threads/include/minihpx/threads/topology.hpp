// NUMA/package topology map for locality-aware work stealing.
//
// The scheduler wants one question answered cheaply: "is victim v's
// deque in my memory domain?" A cross-domain steal drags the stolen
// task's working set across the socket interconnect (the simulator
// prices this at hpx_steal_remote_ns ≈ 3× a local steal, following the
// paper's Ivy Bridge testbed), so the numa victim policy probes
// same-domain deques before remote ones.
//
// Discovery is sysfs-backed (/sys/devices/system/node/node*/cpulist,
// the same files lscpu reads); containers and single-socket CI boxes
// collapse to one domain, which makes the numa policy degenerate to
// the classic random order. `--mh:numa-domains=N` overrides discovery
// with a uniform striping so the locality paths stay testable on any
// machine.
//
// Kept in its own header (like queue_policy.hpp) so layers that only
// need the knob — the simulator's config, the runtime CLI parser — do
// not pull in scheduler internals.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace minihpx::threads {

// Victim-selection policy for work stealing, shared between the real
// scheduler (scheduler_config::steal.victim) and the simulator's
// machine model for A/B ablation.
enum class victim_policy : std::uint8_t
{
    // Uniform random probes followed by a deterministic sweep over all
    // victims (the pre-topology behavior; kept as the ablation
    // baseline).
    random,
    // Same-domain victims first — random probes then a sweep within
    // the thief's domain — falling back to remote domains only when
    // the local ones are dry. The default.
    numa,
};

constexpr char const* to_string(victim_policy p) noexcept
{
    switch (p)
    {
    case victim_policy::random:
        return "random";
    case victim_policy::numa:
        return "numa";
    }
    return "?";
}

// Accepts the canonical names plus common spellings; nullopt on junk
// so callers can produce their own error message.
inline std::optional<victim_policy> parse_victim_policy(
    std::string_view s) noexcept
{
    if (s == "random" || s == "uniform")
        return victim_policy::random;
    if (s == "numa" || s == "locality" || s == "local-first")
        return victim_policy::numa;
    return std::nullopt;
}

// Maps worker index -> memory domain. Immutable after construction;
// workers index it lock-free on the steal path.
class topology
{
public:
    // Single-domain topology (every steal is same-domain).
    topology() = default;

    // `workers` striped into `domains` contiguous blocks, mirroring
    // machine_desc::socket_of (core / cores_per_socket). domains == 0
    // is treated as 1.
    static topology uniform(unsigned workers, unsigned domains);

    // Reads /sys/devices/system/node/node*/cpulist and maps worker w
    // to the domain of cpu (w % num_cpus_listed). Falls back to a
    // single domain when sysfs is unreadable (containers) or lists
    // only one node.
    static topology from_sysfs(unsigned workers);

    unsigned num_domains() const noexcept { return domains_; }

    unsigned domain_of(unsigned worker) const noexcept
    {
        if (domain_of_.empty())
            return 0;
        return domain_of_[worker % domain_of_.size()];
    }

    bool same_domain(unsigned a, unsigned b) const noexcept
    {
        return domain_of(a) == domain_of(b);
    }

private:
    unsigned domains_ = 1;
    std::vector<unsigned> domain_of_;    // indexed by worker id
};

// Parses a sysfs cpulist string ("0-3,8,10-11") into cpu ids. Exposed
// for tests; returns an empty vector on malformed input.
std::vector<unsigned> parse_cpulist(std::string_view list);

}    // namespace minihpx::threads
