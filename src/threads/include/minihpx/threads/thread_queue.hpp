// Per-worker run queue with work stealing.
//
// Owner operates LIFO on the back (cache-warm child tasks first —
// "child stealing" depth-first execution order); thieves take FIFO from
// the front (oldest, likely largest, subtree — the classic Cilk
// heuristic). A mutex-protected deque is deliberately chosen over a
// lock-free Chase-Lev deque: the critical sections are a few dozen ns,
// the design is auditable, and the simulator models steal costs
// independently, so the paper's figure shapes do not hinge on this
// (DESIGN.md choice #2).
//
// The queue also keeps the instrumentation the thread-manager counters
// expose: enqueue/dequeue cumulative counts, current length, steal
// counts, and pending-queue misses.
#pragma once

#include <minihpx/threads/thread_data.hpp>
#include <minihpx/util/cache_align.hpp>
#include <minihpx/util/lock_registry.hpp>
#include <minihpx/util/sanitizers.hpp>
#include <minihpx/util/spinlock.hpp>

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>

namespace minihpx::threads {

class thread_queue
{
public:
    thread_queue() = default;
    thread_queue(thread_queue const&) = delete;
    thread_queue& operator=(thread_queue const&) = delete;

    // Owner side -------------------------------------------------------
    void push(thread_data* task, bool front = false)
    {
        // Publication point: everything written into *task before this
        // push (descriptor init, closure state) becomes visible to
        // whichever worker pops or steals it. The queue lock carries
        // the edge; the annotation states the protocol explicitly.
        MINIHPX_ANNOTATE_HAPPENS_BEFORE(task);
        {
            std::lock_guard lock(mutex_);
            if (front)
                queue_.push_front(task);
            else
                queue_.push_back(task);
        }
        length_.fetch_add(1, std::memory_order_relaxed);
        enqueued_.fetch_add(1, std::memory_order_relaxed);
    }

    thread_data* pop()
    {
        std::unique_lock lock(mutex_);
        if (queue_.empty())
        {
            lock.unlock();
            misses_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        thread_data* task = queue_.back();
        queue_.pop_back();
        lock.unlock();
        MINIHPX_ANNOTATE_HAPPENS_AFTER(task);
        length_.fetch_sub(1, std::memory_order_relaxed);
        dequeued_.fetch_add(1, std::memory_order_relaxed);
        return task;
    }

    // Thief side --------------------------------------------------------
    thread_data* steal()
    {
        std::unique_lock lock(mutex_, std::try_to_lock);
        if (!lock.owns_lock() || queue_.empty())
            return nullptr;
        thread_data* task = queue_.front();
        queue_.pop_front();
        lock.unlock();
        // Consume the push-side publication edge before the thief
        // touches any descriptor field.
        MINIHPX_ANNOTATE_HAPPENS_AFTER(task);
        length_.fetch_sub(1, std::memory_order_relaxed);
        stolen_.fetch_add(1, std::memory_order_relaxed);
        return task;
    }

    // Introspection ------------------------------------------------------
    std::int64_t length() const noexcept
    {
        return length_.load(std::memory_order_relaxed);
    }
    std::uint64_t enqueued() const noexcept
    {
        return enqueued_.load(std::memory_order_relaxed);
    }
    std::uint64_t dequeued() const noexcept
    {
        return dequeued_.load(std::memory_order_relaxed);
    }
    std::uint64_t stolen_from() const noexcept
    {
        return stolen_.load(std::memory_order_relaxed);
    }
    std::uint64_t misses() const noexcept
    {
        return misses_.load(std::memory_order_relaxed);
    }

private:
    mutable util::spinlock mutex_{
        util::lock_rank::thread_queue, "thread_queue"};
    std::deque<thread_data*> queue_;
    std::atomic<std::int64_t> length_{0};
    std::atomic<std::uint64_t> enqueued_{0};
    std::atomic<std::uint64_t> dequeued_{0};
    std::atomic<std::uint64_t> stolen_{0};
    std::atomic<std::uint64_t> misses_{0};
};

}    // namespace minihpx::threads
