// Per-worker run queue with work stealing.
//
// Owner operates LIFO on the hot end (cache-warm child tasks first —
// "child stealing" depth-first execution order); thieves take FIFO from
// the cold end (oldest, likely largest, subtree — the classic Cilk
// heuristic). Two interchangeable implementations sit behind
// queue_policy (selected per scheduler via scheduler_config):
//
//   mutex_deque — spinlock-guarded std::deque. The original design:
//     critical sections of a few dozen ns, trivially auditable. Kept
//     for A/B ablation (bench/steal_throughput, bench/ablation_policies)
//     and as the reference semantics for the counter tests.
//
//   chase_lev — lock-free Chase-Lev deque (chase_lev_deque.hpp) for the
//     owner/thief fast paths, plus a small spinlock-guarded MPSC
//     "inbox" for cross-thread submission (Chase-Lev push is owner-
//     only; round-robin spawn from non-worker threads and resume() from
//     foreign workers land in the inbox and are drained by the owner).
//     See docs/SCHEDULER.md for the algorithm and memory orderings.
//
// One deliberate semantic divergence: `push(task, /*front=*/true)`.
// The scheduler documents `front` as "the hot end — run next" (used by
// launch::fork and yielded_front). The mutex deque historically put
// front-pushes at the *steal* end; chase_lev puts them at the bottom so
// the owner genuinely runs them next. Tests pinning placement are
// policy-specific.
//
// The queue also keeps the instrumentation the thread-manager counters
// expose: enqueue/dequeue cumulative counts, current length, steal
// counts, and pending-queue misses. Both policies feed the same relaxed
// atomics at the same transition points, so every /threads{...} counter
// keeps its meaning across policies.
#pragma once

#include <minihpx/threads/chase_lev_deque.hpp>
#include <minihpx/threads/queue_policy.hpp>
#include <minihpx/threads/thread_data.hpp>
#include <minihpx/util/cache_align.hpp>
#include <minihpx/util/lock_registry.hpp>
#include <minihpx/util/sanitizers.hpp>
#include <minihpx/util/spinlock.hpp>
#include <minihpx/util/thread_annotations.hpp>

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>

namespace minihpx::threads {

class thread_queue
{
public:
    explicit thread_queue(queue_policy policy = queue_policy::chase_lev)
      : policy_(policy)
    {
    }

    thread_queue(thread_queue const&) = delete;
    thread_queue& operator=(thread_queue const&) = delete;

    queue_policy policy() const noexcept { return policy_; }

    // Owner side -------------------------------------------------------

    // Owner-only under chase_lev (the Chase-Lev bottom is single-
    // writer); any thread under mutex_deque. Cross-thread callers must
    // use inject().
    void push(thread_data* task, bool front = false)
    {
        // Publication point: everything written into *task before this
        // push (descriptor init, closure state) becomes visible to
        // whichever worker pops or steals it. The queue lock / the
        // deque's release-store of bottom carries the edge; the
        // annotation states the protocol explicitly.
        MINIHPX_ANNOTATE_HAPPENS_BEFORE(task);
        if (policy_ == queue_policy::chase_lev)
        {
            // Both ends map to the bottom: front==true means "run
            // next", and the owner pops the bottom first.
            deque_.push(task);
        }
        else
        {
            util::annotated_lock_guard lock(mutex_);
            if (front)
                queue_.push_front(task);
            else
                queue_.push_back(task);
        }
        length_.fetch_add(1, std::memory_order_relaxed);
        enqueued_.fetch_add(1, std::memory_order_relaxed);
    }

    // Cross-thread submission: safe from any thread under either
    // policy. Under chase_lev the task lands in the inbox and is pulled
    // in by the owner (or stolen); `front` keeps it hot across the
    // drain. Same counter semantics as push().
    void inject(thread_data* task, bool front = false)
    {
        if (policy_ != queue_policy::chase_lev)
        {
            push(task, front);
            return;
        }
        MINIHPX_ANNOTATE_HAPPENS_BEFORE(task);
        {
            util::annotated_lock_guard lock(inbox_lock_);
            if (front)
                inbox_.push_front(task);
            else
                inbox_.push_back(task);
        }
        length_.fetch_add(1, std::memory_order_relaxed);
        enqueued_.fetch_add(1, std::memory_order_relaxed);
    }

    thread_data* pop()
    {
        thread_data* task;
        if (policy_ == queue_policy::chase_lev)
        {
            task = deque_.pop();
            if (!task && drain_inbox() != 0)
                task = deque_.pop();
        }
        else
        {
            util::annotated_lock_guard lock(mutex_);
            if (queue_.empty())
            {
                task = nullptr;
            }
            else
            {
                task = queue_.back();
                queue_.pop_back();
            }
        }
        if (!task)
        {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        MINIHPX_ANNOTATE_HAPPENS_AFTER(task);
        length_.fetch_sub(1, std::memory_order_relaxed);
        dequeued_.fetch_add(1, std::memory_order_relaxed);
        return task;
    }

    // Thief side --------------------------------------------------------

    // Take one task from the cold end. Returns nullptr on empty *or*
    // transient contention (mutex_deque try_lock failure, chase_lev CAS
    // loss) — callers treat both as "try another victim". Contention
    // does not count as a pending-queue miss; only an owner pop on an
    // empty queue does.
    //
    // Analysis opt-out: the try_to_lock/owns_lock dance has no
    // scoped-capability shape clang's thread-safety analysis can follow;
    // both guarded containers are still only touched with the lock held.
    thread_data* steal() MINIHPX_NO_THREAD_SAFETY_ANALYSIS
    {
        thread_data* task;
        if (policy_ == queue_policy::chase_lev)
        {
            task = deque_.steal();
            if (!task)
            {
                // Deque empty: raid the inbox (oldest first, matching
                // the cold-end convention).
                std::unique_lock lock(inbox_lock_, std::try_to_lock);
                if (!lock.owns_lock() || inbox_.empty())
                    return nullptr;
                task = inbox_.front();
                inbox_.pop_front();
            }
        }
        else
        {
            std::unique_lock lock(mutex_, std::try_to_lock);
            if (!lock.owns_lock() || queue_.empty())
                return nullptr;
            task = queue_.front();
            queue_.pop_front();
        }
        // Consume the push-side publication edge before the thief
        // touches any descriptor field.
        MINIHPX_ANNOTATE_HAPPENS_AFTER(task);
        length_.fetch_sub(1, std::memory_order_relaxed);
        stolen_.fetch_add(1, std::memory_order_relaxed);
        return task;
    }

    // One batched raid: take up to max_tasks from this queue, capped at
    // half its observed length (always at least one attempt). The first
    // task is returned for immediate execution; the rest are pushed
    // into `thief` — the caller must be thief's owner. Each element is
    // claimed individually (a single CAS covering a range would race
    // with owner pops of un-CASed slots), so a raid is exactly as safe
    // as max_tasks calls to steal(). *stolen_out reports the total.
    thread_data* steal_into(
        thread_queue& thief, unsigned max_tasks, unsigned* stolen_out = nullptr)
    {
        if (stolen_out)
            *stolen_out = 0;
        if (max_tasks == 0)
            return nullptr;

        std::int64_t const len = length();
        std::uint64_t budget = static_cast<std::uint64_t>(len > 1 ? (len + 1) / 2 : 1);
        if (budget > max_tasks)
            budget = max_tasks;

        thread_data* first = steal();
        if (!first)
            return nullptr;
        unsigned taken = 1;
        while (taken < budget)
        {
            thread_data* task = steal();
            if (!task)
                break;
            thief.push(task, false);
            ++taken;
        }
        if (stolen_out)
            *stolen_out = taken;
        return first;
    }

    // Introspection ------------------------------------------------------
    std::int64_t length() const noexcept
    {
        return length_.load(std::memory_order_relaxed);
    }
    std::uint64_t enqueued() const noexcept
    {
        return enqueued_.load(std::memory_order_relaxed);
    }
    std::uint64_t dequeued() const noexcept
    {
        return dequeued_.load(std::memory_order_relaxed);
    }
    std::uint64_t stolen_from() const noexcept
    {
        return stolen_.load(std::memory_order_relaxed);
    }
    std::uint64_t misses() const noexcept
    {
        return misses_.load(std::memory_order_relaxed);
    }

private:
    // Owner-only: move everything the inbox accumulated into the deque
    // (FIFO, so inbox order matches what push() order would have been).
    std::size_t drain_inbox()
    {
        util::annotated_lock_guard lock(inbox_lock_);
        std::size_t const n = inbox_.size();
        while (!inbox_.empty())
        {
            deque_.push(inbox_.front());
            inbox_.pop_front();
        }
        return n;
    }

    queue_policy const policy_;

    // chase_lev state.
    chase_lev_deque deque_;
    util::spinlock inbox_lock_{
        util::lock_rank::thread_queue, "thread_queue-inbox"};
    std::deque<thread_data*> inbox_ MINIHPX_GUARDED_BY(inbox_lock_);

    // mutex_deque state.
    mutable util::spinlock mutex_{
        util::lock_rank::thread_queue, "thread_queue"};
    std::deque<thread_data*> queue_ MINIHPX_GUARDED_BY(mutex_);

    std::atomic<std::int64_t> length_{0};
    std::atomic<std::uint64_t> enqueued_{0};
    std::atomic<std::uint64_t> dequeued_{0};
    std::atomic<std::uint64_t> stolen_{0};
    std::atomic<std::uint64_t> misses_{0};
};

}    // namespace minihpx::threads
