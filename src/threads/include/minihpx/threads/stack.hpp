// Task stacks: mmap-backed with a PROT_NONE guard page at the low end
// (stacks grow down on x86-64), plus a size-classed free-list pool.
//
// HPX's lightweight threads owe much of their low spawn cost to never
// paying mmap/munmap per task; the pool reproduces that. Guard pages
// turn stack overflow of a task into an immediate fault instead of
// silent corruption of a neighboring task's stack.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

namespace minihpx::threads {

// Default matches a comfortable size for the Inncabs recursive
// benchmarks; the paper notes HPX's (8 KiB) default was too small for
// Alignment's stack-allocated arrays.
inline constexpr std::size_t default_stack_size = 64 * 1024;

class stack
{
public:
    stack() noexcept = default;

    // Allocates usable_size rounded up to whole pages + 1 guard page.
    explicit stack(std::size_t usable_size);
    ~stack();

    stack(stack&& other) noexcept;
    stack& operator=(stack&& other) noexcept;
    stack(stack const&) = delete;
    stack& operator=(stack const&) = delete;

    // Lowest usable address (just above the guard page).
    void* base() const noexcept { return usable_base_; }
    std::size_t size() const noexcept { return usable_size_; }
    bool valid() const noexcept { return usable_base_ != nullptr; }

private:
    void release() noexcept;

    void* mapping_ = nullptr;        // includes guard page
    std::size_t mapping_size_ = 0;
    void* usable_base_ = nullptr;
    std::size_t usable_size_ = 0;
};

// Thread-safe free list of equally-sized stacks. One pool per scheduler;
// contention is negligible because workers batch through their local
// task freelists first.
class stack_pool
{
public:
    explicit stack_pool(std::size_t stack_size = default_stack_size)
      : stack_size_(stack_size)
    {
    }

    stack acquire();
    void release(stack&& s);

    std::size_t stack_size() const noexcept { return stack_size_; }
    std::size_t cached() const;
    std::size_t total_created() const;

    // Drop all cached stacks (returns memory to the OS).
    void trim();

private:
    std::size_t stack_size_;
    mutable std::mutex mutex_;
    std::vector<stack> free_;
    std::size_t total_created_ = 0;
};

}    // namespace minihpx::threads
