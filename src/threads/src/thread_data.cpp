#include <minihpx/threads/thread_data.hpp>

namespace minihpx::threads {

char const* to_string(thread_state state) noexcept
{
    switch (state)
    {
    case thread_state::unknown:
        return "unknown";
    case thread_state::staged:
        return "staged";
    case thread_state::pending:
        return "pending";
    case thread_state::active:
        return "active";
    case thread_state::suspended:
        return "suspended";
    case thread_state::terminated:
        return "terminated";
    }
    return "invalid";
}

void thread_data::init(thread_id id, task_function fn,
                       char const* description, thread_priority priority,
                       thread_id parent)
{
    id_ = id;
    parent_id_ = parent;
    context_ = execution_context{};    // force fresh entry on first run
    function_ = std::move(fn);
    description_ = description ? description : "<unknown>";
    trace_label_ = nullptr;    // recycled descriptors must not inherit
    priority_ = priority;
    exec_time_ns_ = 0;
    next = nullptr;
    origin_worker = 0;
    set_state(thread_state::staged);
}

}    // namespace minihpx::threads
