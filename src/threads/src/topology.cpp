#include <minihpx/threads/topology.hpp>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace minihpx::threads {

std::vector<unsigned> parse_cpulist(std::string_view list)
{
    std::vector<unsigned> cpus;
    std::size_t pos = 0;
    while (pos < list.size())
    {
        std::size_t const comma = list.find(',', pos);
        std::string_view item = list.substr(pos,
            comma == std::string_view::npos ? std::string_view::npos :
                                              comma - pos);
        // Trim trailing whitespace/newline from the sysfs read.
        while (!item.empty() &&
            (item.back() == '\n' || item.back() == ' ' ||
                item.back() == '\r'))
            item.remove_suffix(1);
        if (item.empty())
            return {};

        char const* begin = item.data();
        char* end = nullptr;
        unsigned long const lo = std::strtoul(begin, &end, 10);
        if (end == begin)
            return {};
        unsigned long hi = lo;
        if (end < item.data() + item.size() && *end == '-')
        {
            char const* hi_begin = end + 1;
            hi = std::strtoul(hi_begin, &end, 10);
            if (end == hi_begin)
                return {};
        }
        if (end != item.data() + item.size() || hi < lo ||
            hi - lo > 4096)    // sanity bound against garbage
            return {};
        for (unsigned long c = lo; c <= hi; ++c)
            cpus.push_back(static_cast<unsigned>(c));

        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
    }
    return cpus;
}

topology topology::uniform(unsigned workers, unsigned domains)
{
    topology t;
    if (workers == 0)
        workers = 1;
    if (domains == 0)
        domains = 1;
    if (domains > workers)
        domains = workers;
    t.domains_ = domains;
    t.domain_of_.resize(workers);
    // Contiguous blocks, sockets filled first — the same shape as
    // machine_desc::socket_of (core / cores_per_socket).
    unsigned const per = (workers + domains - 1) / domains;
    for (unsigned w = 0; w < workers; ++w)
    {
        unsigned d = w / per;
        if (d >= domains)
            d = domains - 1;
        t.domain_of_[w] = d;
    }
    return t;
}

topology topology::from_sysfs(unsigned workers)
{
    if (workers == 0)
        workers = 1;

    // cpu -> node, discovered node by node. Nodes are not necessarily
    // dense, so the domain index is the discovery order.
    std::vector<unsigned> cpu_node;
    unsigned domains = 0;
    for (unsigned node = 0; node < 64; ++node)
    {
        std::string const path = "/sys/devices/system/node/node" +
            std::to_string(node) + "/cpulist";
        std::FILE* f = std::fopen(path.c_str(), "r");
        if (!f)
            break;
        char buf[4096];
        std::size_t const n = std::fread(buf, 1, sizeof(buf) - 1, f);
        std::fclose(f);
        buf[n] = '\0';
        std::vector<unsigned> const cpus =
            parse_cpulist(std::string_view(buf, n));
        if (cpus.empty())
            continue;
        for (unsigned const cpu : cpus)
        {
            if (cpu >= cpu_node.size())
                cpu_node.resize(cpu + 1, 0);
            cpu_node[cpu] = domains;
        }
        ++domains;
    }

    if (domains <= 1 || cpu_node.empty())
        return topology{};    // single domain (or unreadable sysfs)

    topology t;
    t.domains_ = domains;
    t.domain_of_.resize(workers);
    // Workers bind to core (id % hardware_concurrency) when bound at
    // all (scheduler::bind_to_core); mirror that wrap here.
    for (unsigned w = 0; w < workers; ++w)
        t.domain_of_[w] = cpu_node[w % cpu_node.size()];
    return t;
}

}    // namespace minihpx::threads
