#include <minihpx/threads/stack.hpp>
#include <minihpx/util/assert.hpp>

#include <sys/mman.h>
#include <unistd.h>

#include <utility>

namespace minihpx::threads {

namespace {

    std::size_t page_size() noexcept
    {
        static std::size_t const size =
            static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
        return size;
    }

    std::size_t round_up_pages(std::size_t bytes) noexcept
    {
        std::size_t const ps = page_size();
        return (bytes + ps - 1) / ps * ps;
    }

}    // namespace

stack::stack(std::size_t usable_size)
{
    std::size_t const ps = page_size();
    usable_size_ = round_up_pages(usable_size);
    mapping_size_ = usable_size_ + ps;    // + guard page

    void* mem = ::mmap(nullptr, mapping_size_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    MINIHPX_ASSERT_MSG(mem != MAP_FAILED,
        "stack mmap failed (many live task stacks need a raised "
        "vm.max_map_count, see README)");

    // Guard page at the low end: overflow (growth past base) faults.
    int const rc = ::mprotect(mem, ps, PROT_NONE);
    MINIHPX_ASSERT_MSG(rc == 0,
        "stack guard mprotect failed (each stack uses two mappings; "
        "raise vm.max_map_count for >30k concurrent tasks, see README)");

    mapping_ = mem;
    usable_base_ = static_cast<char*>(mem) + ps;
}

stack::~stack()
{
    release();
}

stack::stack(stack&& other) noexcept
  : mapping_(std::exchange(other.mapping_, nullptr))
  , mapping_size_(std::exchange(other.mapping_size_, 0))
  , usable_base_(std::exchange(other.usable_base_, nullptr))
  , usable_size_(std::exchange(other.usable_size_, 0))
{
}

stack& stack::operator=(stack&& other) noexcept
{
    if (this != &other)
    {
        release();
        mapping_ = std::exchange(other.mapping_, nullptr);
        mapping_size_ = std::exchange(other.mapping_size_, 0);
        usable_base_ = std::exchange(other.usable_base_, nullptr);
        usable_size_ = std::exchange(other.usable_size_, 0);
    }
    return *this;
}

void stack::release() noexcept
{
    if (mapping_)
    {
        ::munmap(mapping_, mapping_size_);
        mapping_ = nullptr;
        usable_base_ = nullptr;
        mapping_size_ = usable_size_ = 0;
    }
}

stack stack_pool::acquire()
{
    {
        std::lock_guard lock(mutex_);
        if (!free_.empty())
        {
            stack s = std::move(free_.back());
            free_.pop_back();
            return s;
        }
        ++total_created_;
    }
    return stack(stack_size_);
}

void stack_pool::release(stack&& s)
{
    if (!s.valid())
        return;
    std::lock_guard lock(mutex_);
    free_.push_back(std::move(s));
}

std::size_t stack_pool::cached() const
{
    std::lock_guard lock(mutex_);
    return free_.size();
}

std::size_t stack_pool::total_created() const
{
    std::lock_guard lock(mutex_);
    return total_created_;
}

void stack_pool::trim()
{
    std::vector<stack> doomed;
    {
        std::lock_guard lock(mutex_);
        doomed.swap(free_);
    }
    // Destructors run outside the lock.
}

}    // namespace minihpx::threads
