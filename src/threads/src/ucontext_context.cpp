#include <minihpx/threads/context.hpp>

namespace minihpx::threads {

namespace {

    // makecontext only passes int arguments portably; route the real
    // (entry, arg) pair through thread-local slots instead. The slots
    // are consumed synchronously by entry_shim on the very next switch
    // into the new context, before any other create() can run on this
    // OS thread, so a single pair per thread suffices.
    thread_local context_entry pending_entry = nullptr;
    thread_local void* pending_arg = nullptr;

}    // namespace

void ucontext_context::entry_shim()
{
    // Tell ASan the previous fiber's switch has completed before any
    // local of the new fiber is touched (there is no saved fake stack
    // on a first entry).
    util::san::finish_first_entry();
    context_entry const entry = pending_entry;
    void* const arg = pending_arg;
    entry(arg);
    MINIHPX_UNREACHABLE();    // entry must switch away, never return
}

void ucontext_context::create(void* stack_base, std::size_t stack_size,
                              context_entry entry, void* arg) noexcept
{
    // Recycled descriptor: the previous task's TSan fiber is dead.
    util::san::notify_fiber_destroy(san_);

    int const rc = getcontext(&uc_);
    MINIHPX_ASSERT(rc == 0);
    uc_.uc_stack.ss_sp = stack_base;
    uc_.uc_stack.ss_size = stack_size;
    uc_.uc_link = nullptr;
    makecontext(&uc_, reinterpret_cast<void (*)()>(&entry_shim), 0);
    created_ = true;
    started_ = false;
    // entry/arg are latched here and published into the thread-local
    // slots at the *first* switch into this context — several contexts
    // may be created before any of them runs.
    latched_entry_ = entry;
    latched_arg_ = arg;

    util::san::notify_fiber_create(san_, stack_base, stack_size,
        "minihpx-task");
}

void ucontext_context::do_switch(ucontext_context& from, ucontext_context& to,
    bool from_exiting) noexcept
{
    if (!to.started_ && to.created_)
    {
        to.started_ = true;
        pending_entry = to.latched_entry_;
        pending_arg = to.latched_arg_;
    }
    from.created_ = true;
    // A never-create()d `from` is the OS thread's own (scheduler-loop)
    // context; capture its stack bounds / TSan fiber before the first
    // switch away so later switches *into* it can be announced.
    util::san::ensure_native_identity(from.san_);
    util::san::before_switch(from.san_, to.san_, from_exiting);
    int const rc = swapcontext(&from.uc_, &to.uc_);
    MINIHPX_ASSERT(rc == 0);
    // Resumed: some other context switched back into `from`.
    util::san::after_switch(from.san_);
}

void ucontext_context::switch_to(ucontext_context& from,
                                 ucontext_context& to) noexcept
{
    do_switch(from, to, /*from_exiting=*/false);
}

void ucontext_context::switch_final(ucontext_context& from,
                                    ucontext_context& to) noexcept
{
    do_switch(from, to, /*from_exiting=*/true);
}

}    // namespace minihpx::threads
