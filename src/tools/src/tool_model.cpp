#include <minihpx/tools/tool_model.hpp>

#include <cstdio>

namespace minihpx::tools {

char const* to_string(tool_kind kind) noexcept
{
    switch (kind)
    {
    case tool_kind::none:
        return "none";
    case tool_kind::tau_like:
        return "TAU-like";
    case tool_kind::hpctoolkit_like:
        return "HPCToolkit-like";
    }
    return "?";
}

char const* to_string(tool_outcome::status status) noexcept
{
    switch (status)
    {
    case tool_outcome::status::completed:
        return "completed";
    case tool_outcome::status::segv:
        return "SegV";
    case tool_outcome::status::aborted:
        return "Abort";
    case tool_outcome::status::timed_out:
        return "timeout";
    }
    return "?";
}

std::string tool_outcome::cell() const
{
    if (result == status::completed)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.0f", time_s * 1e3);
        return buf;
    }
    return to_string(result);
}

tool_outcome apply_tool(
    tool_kind kind, tool_config const& config, sim::sim_report const& baseline)
{
    tool_outcome out;

    if (baseline.failed)
    {
        // The untooled run already aborts (Table I rows "Abort"); the
        // tool never gets to interfere.
        out.result = tool_outcome::status::aborted;
        out.detail = "baseline run failed: " + baseline.failure_reason;
        return out;
    }

    std::uint64_t const threads = baseline.tasks_created;
    double tool_time_s = baseline.exec_time_s;

    switch (kind)
    {
    case tool_kind::none:
        out.time_s = baseline.exec_time_s;
        return out;

    case tool_kind::tau_like:
    {
        if (threads > config.tau_thread_table)
        {
            out.result = tool_outcome::status::segv;
            out.detail = "thread id " + std::to_string(threads) +
                " exceeds the fixed per-process measurement table (" +
                std::to_string(config.tau_thread_table) + ")";
            return out;
        }
        if (threads * config.tau_table_bytes_per_thread > config.ram_bytes)
        {
            out.result = tool_outcome::status::aborted;
            out.detail = "per-thread measurement tables exhaust memory";
            return out;
        }
        // Registration is serialized inside the tool; instrumentation
        // events add per task.
        tool_time_s += static_cast<double>(threads) *
            (config.tau_per_thread_register_ns +
                config.tau_per_task_event_ns) *
            1e-9;
        break;
    }

    case tool_kind::hpctoolkit_like:
    {
        if (threads > config.hpct_fd_limit)
        {
            out.result = tool_outcome::status::segv;
            out.detail = "one trace file per thread exceeds the fd limit (" +
                std::to_string(config.hpct_fd_limit) + ")";
            return out;
        }
        if (threads * config.hpct_buffer_bytes_per_thread > config.ram_bytes)
        {
            out.result = tool_outcome::status::aborted;
            out.detail = "per-thread sample buffers exhaust memory";
            return out;
        }
        tool_time_s += static_cast<double>(threads) *
            config.hpct_per_thread_init_ns * 1e-9;
        // Sampling overhead across all busy cores.
        double const samples = tool_time_s /
            (config.hpct_sample_period_ns * 1e-9) *
            static_cast<double>(baseline.cores);
        tool_time_s += samples * config.hpct_per_sample_ns * 1e-9;
        break;
    }
    }

    if (tool_time_s > config.timeout_s)
    {
        out.result = tool_outcome::status::timed_out;
        out.detail = "exceeded the batch time limit";
        return out;
    }

    out.time_s = tool_time_s;
    out.overhead_pct = baseline.exec_time_s > 0 ?
        (tool_time_s - baseline.exec_time_s) / baseline.exec_time_s * 100.0 :
        0.0;
    return out;
}

}    // namespace minihpx::tools
