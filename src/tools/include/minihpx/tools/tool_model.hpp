// Analytic models of external measurement tools (paper §II, Table I).
//
// The paper attaches TAU and HPCToolkit to the std::async Inncabs runs
// and observes crashes or 10^3-10^4 % overheads, because both tools
// assume bounded OS-thread counts per process:
//
//   TAU-like:        per-thread measurement tables sized at program
//                    launch (default 128 threads, configurable but
//                    fixed at compile time). Thread-per-task execution
//                    overflows the table (SegV) or, when sized up,
//                    preallocates table memory per thread until the
//                    allocator gives up (Abort); surviving runs pay a
//                    large per-thread registration + instrumentation
//                    cost.
//   HPCToolkit-like: per-thread sample buffers and one trace file per
//                    thread; thousands of short-lived threads exhaust
//                    file descriptors / VM (crash) or accumulate
//                    per-thread setup cost (enormous slowdowns).
//
// The models consume a simulated baseline run (sim_report of the
// std-engine execution) and produce a Table I-shaped outcome. Numbers
// are calibrated to the magnitudes reported in the paper (e.g. TAU on
// Alignment: 971 ms -> ~113 s, ~11500 % overhead).
#pragma once

#include <minihpx/sim/simulator.hpp>

#include <cstdint>
#include <string>

namespace minihpx::tools {

enum class tool_kind : std::uint8_t
{
    none,
    tau_like,
    hpctoolkit_like,
};

char const* to_string(tool_kind kind) noexcept;

struct tool_config
{
    // -- TAU-like ---------------------------------------------------------
    std::uint64_t tau_thread_table = 64 * 1024;    // "even set to 64k"
    std::uint64_t tau_table_bytes_per_thread = 1 << 20;
    double tau_per_thread_register_ns = 8.0e6;     // ~8 ms/thread
    double tau_per_task_event_ns = 2500;           // enter/exit pair

    // -- HPCToolkit-like ---------------------------------------------------
    std::uint64_t hpct_fd_limit = 4096;            // trace file per thread
    std::uint64_t hpct_buffer_bytes_per_thread = 4 << 20;
    double hpct_per_thread_init_ns = 3.0e6;        // buffers + file create
    double hpct_sample_period_ns = 5.0e6;          // 200 Hz sampling
    double hpct_per_sample_ns = 4000;              // unwind + record

    std::uint64_t ram_bytes = 32ull << 30;
    double timeout_s = 3600.0;                     // batch-system limit
};

struct tool_outcome
{
    enum class status : std::uint8_t
    {
        completed,
        segv,       // hard crash (table overflow / resource fault)
        aborted,    // allocation failure
        timed_out,
    };

    status result = status::completed;
    double time_s = 0.0;          // wall time with the tool attached
    double overhead_pct = 0.0;    // vs. the baseline run
    std::string detail;

    bool crashed() const noexcept
    {
        return result == status::segv || result == status::aborted;
    }

    // Table I cell rendering: time in ms, or SegV/Abort/timeout.
    std::string cell() const;
};

char const* to_string(tool_outcome::status status) noexcept;

// Applies the tool model to a baseline (untooled) simulated run. The
// thread-per-task engine creates one OS thread per task, so the
// baseline's tasks_created is the tool-visible thread count.
tool_outcome apply_tool(
    tool_kind kind, tool_config const& config, sim::sim_report const& baseline);

}    // namespace minihpx::tools
