// Tiny declarative command-line parser.
//
// Mirrors the shape of HPX's --hpx:* option handling: long options of
// the form --name=value or --name value, repeatable options (e.g.
// --mh:print-counter may appear many times), plus positional arguments
// passed through to the application.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace minihpx::util {

class cli_args
{
public:
    // Parses argv; options start with "--" and take the --name=value
    // or bare --flag form. Other tokens become positionals. "--"
    // terminates option parsing.
    cli_args(int argc, char const* const* argv);
    cli_args() = default;

    bool has(std::string_view name) const;

    // Last occurrence wins for scalar access.
    std::optional<std::string> value(std::string_view name) const;
    std::string value_or(std::string_view name, std::string_view dflt) const;
    std::int64_t int_or(std::string_view name, std::int64_t dflt) const;
    double double_or(std::string_view name, double dflt) const;
    bool flag(std::string_view name) const;    // present w/o value, or =1/true

    // All occurrences, in order (for repeatable options).
    std::vector<std::string> values(std::string_view name) const;

    std::vector<std::string> const& positionals() const noexcept
    {
        return positionals_;
    }

    std::string const& program() const noexcept { return program_; }

private:
    std::string program_;
    std::vector<std::pair<std::string, std::string>> options_;
    std::vector<std::string> positionals_;
};

// Table-driven option registration. Each row binds one --name=value
// option to a destination (which keeps its current value as the
// default), optionally with a deprecated legacy spelling. When only
// the legacy spelling appears, apply() still honors it but prints a
// one-line deprecation warning to stderr — once per process per alias,
// no matter how many cli_args are parsed.
//
// Two row flavors share the table (and the alias machinery):
//   - integer rows store through an int destination;
//   - string rows run a parse-and-store callback; returning false
//     makes apply() throw std::runtime_error naming the flag, the
//     rejected value, and the `expected` choices.
//
//   util::option_table table;
//   table.add("mh:steal-rounds", steal.rounds)
//        .add("mh:steal-sleep-us", steal.sleep_us, "mh:sleep-us")
//        .add_string("mh:queue-policy",
//            [&](std::string const& v) { ...; return ok; },
//            "'mutex' or 'chase-lev'");
//   table.apply(args);
class option_table
{
public:
    template <typename Int>
    option_table& add(
        char const* name, Int& dst, char const* deprecated_alias = nullptr)
    {
        static_assert(std::is_integral_v<Int> && !std::is_same_v<Int, bool>,
            "option_table rows bind integer destinations");
        rows_.push_back({name, deprecated_alias,
            [&dst](std::int64_t v) { dst = static_cast<Int>(v); }, nullptr,
            nullptr});
        return *this;
    }

    // String-valued row. `store` parses and applies the raw value;
    // returning false rejects it and apply() throws with `expected`
    // spliced into the message.
    option_table& add_string(char const* name,
        std::function<bool(std::string const&)> store, char const* expected,
        char const* deprecated_alias = nullptr)
    {
        rows_.push_back(
            {name, deprecated_alias, nullptr, std::move(store), expected});
        return *this;
    }

    // Reads every registered row out of `args`; the canonical spelling
    // wins when both it and its alias are present. Throws
    // std::runtime_error when a string row rejects its value.
    void apply(cli_args const& args) const;

private:
    struct row
    {
        char const* name;
        char const* deprecated_alias;    // nullptr when none
        std::function<void(std::int64_t)> store;
        std::function<bool(std::string const&)> store_string;
        char const* expected;    // string rows: valid-choices helptext
    };
    std::vector<row> rows_;
};

}    // namespace minihpx::util
