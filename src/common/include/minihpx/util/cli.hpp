// Tiny declarative command-line parser.
//
// Mirrors the shape of HPX's --hpx:* option handling: long options of
// the form --name=value or --name value, repeatable options (e.g.
// --mh:print-counter may appear many times), plus positional arguments
// passed through to the application.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace minihpx::util {

class cli_args
{
public:
    // Parses argv; options start with "--" and take the --name=value
    // or bare --flag form. Other tokens become positionals. "--"
    // terminates option parsing.
    cli_args(int argc, char const* const* argv);
    cli_args() = default;

    bool has(std::string_view name) const;

    // Last occurrence wins for scalar access.
    std::optional<std::string> value(std::string_view name) const;
    std::string value_or(std::string_view name, std::string_view dflt) const;
    std::int64_t int_or(std::string_view name, std::int64_t dflt) const;
    double double_or(std::string_view name, double dflt) const;
    bool flag(std::string_view name) const;    // present w/o value, or =1/true

    // All occurrences, in order (for repeatable options).
    std::vector<std::string> values(std::string_view name) const;

    std::vector<std::string> const& positionals() const noexcept
    {
        return positionals_;
    }

    std::string const& program() const noexcept { return program_; }

private:
    std::string program_;
    std::vector<std::pair<std::string, std::string>> options_;
    std::vector<std::string> positionals_;
};

}    // namespace minihpx::util
