// Preallocated single-producer/single-consumer ring of POD entries.
//
// Generalizes the protocol of telemetry::sample_ring (which carries
// variable-width sample rows) to a fixed entry type: the producer side
// is one relaxed head load, a slot write and a release store — the
// consumer's tail is read only when the ring *looks* full (producer-
// local tail cache), so steady-state pushes touch no shared-written
// cache line and pay no atomic RMW. When the consumer lags a full lap
// behind, the new entry is *dropped and counted* rather than blocking
// or overwriting: observers must never distort the run they observe
// (the paper's ≲10% overhead budget).
//
// Memory-order audit (each ordering is also exhaustively checked by
// the minihpx::mc SPSC litmus tests, including wraparound at the
// capacity boundary — see tests/test_mc.cpp):
//
//   head_ store (push)    release  publishes the slot write; pairs with
//                                  the consumer's acquire head load. The
//                                  push_publish_relaxed mutant weakens
//                                  it and mc reports the slot data race.
//   head_ load (pop)      acquire  consumes that edge before the slot
//                                  read.
//   tail_ store (pop)     release  returns the slot to the producer;
//                                  pairs with the producer's acquire
//                                  tail load on the full-check path. The
//                                  pop_release_relaxed mutant weakens it
//                                  and mc reports the overwrite race.
//   tail_ load (push)     acquire  consumes that edge before reusing a
//                                  lapped slot.
//   head_/tail_ (own side) relaxed single-writer counters: each side is
//                                  the only writer of its own index, so
//                                  its own reads need no ordering.
//   dropped_              relaxed  statistics only; never synchronizes.
//
// The ring is a template over the atomics policy (atomics_policy.hpp):
// the default instantiation is production std::atomic code, while
// minihpx::mc instantiates model atomics and explores every schedule
// and weak-memory behavior. Slots are Policy::nonatomic cells — plain
// storage in production, race-checked locations under mc (the data
// race IS the bug each mutant plants).
//
// Used by the trace recorder (src/runtime include tree) for per-worker
// event lanes; any fixed-record producer/consumer pair can reuse it.
#pragma once

#include <minihpx/util/atomics_policy.hpp>

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace minihpx::util {

// Compile-time-gated fence-weakening mutants for the mc mutation-
// validation suite (tests/test_mc_mutations): each named constant
// weakens exactly one ordering; 0 is the production instantiation.
namespace spsc_mutation {

    inline constexpr unsigned none = 0;
    // push(): head_ publication store release -> relaxed. The consumer
    // can then observe the advanced head before the slot write.
    inline constexpr unsigned push_publish_relaxed = 1;
    // pop(): tail_ release store -> relaxed. The producer can then lap
    // into a slot the consumer is still reading.
    inline constexpr unsigned pop_release_relaxed = 2;

}    // namespace spsc_mutation

template <typename T, typename Policy = std_atomics_policy,
    unsigned Mutant = spsc_mutation::none>
class spsc_ring
{
    static_assert(std::is_trivially_copyable_v<T>,
        "spsc_ring entries are published with a plain release store; "
        "the type must be trivially copyable");

    // Model instantiations park/unwind inside these operations via an
    // exception; only the production policy is noexcept.
    static constexpr bool production =
        std::is_same_v<Policy, std_atomics_policy>;

    static constexpr std::memory_order push_publish_order =
        Mutant == spsc_mutation::push_publish_relaxed ?
        std::memory_order_relaxed :
        std::memory_order_release;
    static constexpr std::memory_order pop_release_order =
        Mutant == spsc_mutation::pop_release_relaxed ?
        std::memory_order_relaxed :
        std::memory_order_release;

public:
    explicit spsc_ring(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity)
      , slots_(capacity_)
    {
    }

    std::size_t capacity() const noexcept { return capacity_; }

    // Producer: true when the entry was enqueued; false (counted as a
    // drop) when the ring is full.
    bool push(T const& value) noexcept(production)
    {
        std::uint64_t const head = head_.load(std::memory_order_relaxed);
        if (head - tail_cache_ >= capacity_)
        {
            tail_cache_ = tail_.load(std::memory_order_acquire);
            if (head - tail_cache_ >= capacity_)
            {
                dropped_.fetch_add(1, std::memory_order_relaxed);
                return false;
            }
        }
        slots_[static_cast<std::size_t>(head % capacity_)].store(value);
        head_.store(head + 1, push_publish_order);
        return true;
    }

    // Producer: would a push drop right now?
    bool full() const noexcept(production)
    {
        return head_.load(std::memory_order_relaxed) -
            tail_.load(std::memory_order_acquire) >=
            capacity_;
    }

    // Consumer: false when empty.
    bool pop(T& out) noexcept(production)
    {
        std::uint64_t const tail = tail_.load(std::memory_order_relaxed);
        if (tail == head_.load(std::memory_order_acquire))
            return false;
        out = slots_[static_cast<std::size_t>(tail % capacity_)].load();
        tail_.store(tail + 1, pop_release_order);
        return true;
    }

    // Consumer: pop every currently-visible entry with one head/tail
    // synchronization for the whole batch instead of one per entry.
    // Returns the number consumed.
    template <typename F>
    std::size_t pop_all(F&& fn)
    {
        std::uint64_t const tail = tail_.load(std::memory_order_relaxed);
        std::uint64_t const head = head_.load(std::memory_order_acquire);
        for (std::uint64_t i = tail; i != head; ++i)
            fn(std::as_const(
                slots_[static_cast<std::size_t>(i % capacity_)].ref()));
        if (head != tail)
            tail_.store(head, pop_release_order);
        return static_cast<std::size_t>(head - tail);
    }

    std::size_t size() const noexcept(production)
    {
        return static_cast<std::size_t>(
            head_.load(std::memory_order_acquire) -
            tail_.load(std::memory_order_acquire));
    }

    // Total successful pushes (the head never advances on a drop).
    std::uint64_t pushed() const noexcept(production)
    {
        return head_.load(std::memory_order_relaxed);
    }

    std::uint64_t dropped() const noexcept(production)
    {
        return dropped_.load(std::memory_order_relaxed);
    }

private:
    std::size_t const capacity_;
    std::vector<typename Policy::template nonatomic<T>> slots_;

    alignas(64) typename Policy::template atomic<std::uint64_t> head_{
        0};    // next write
    // Producer-local snapshot of tail_; refreshed only on apparent
    // overflow, so pushes avoid the consumer-written cache line.
    alignas(64) std::uint64_t tail_cache_ = 0;
    alignas(64) typename Policy::template atomic<std::uint64_t> tail_{
        0};    // next read
    typename Policy::template atomic<std::uint64_t> dropped_{0};
};

}    // namespace minihpx::util
