// Preallocated single-producer/single-consumer ring of POD entries.
//
// Generalizes the protocol of telemetry::sample_ring (which carries
// variable-width sample rows) to a fixed entry type: the producer side
// is one relaxed head load, a slot write and a release store — the
// consumer's tail is read only when the ring *looks* full (producer-
// local tail cache), so steady-state pushes touch no shared-written
// cache line and pay no atomic RMW. When the consumer lags a full lap
// behind, the new entry is *dropped and counted* rather than blocking
// or overwriting: observers must never distort the run they observe
// (the paper's ≲10% overhead budget).
//
// Used by the trace recorder (src/runtime include tree) for per-worker
// event lanes; any fixed-record producer/consumer pair can reuse it.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace minihpx::util {

template <typename T>
class spsc_ring
{
    static_assert(std::is_trivially_copyable_v<T>,
        "spsc_ring entries are published with a plain release store; "
        "the type must be trivially copyable");

public:
    explicit spsc_ring(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity)
      , slots_(capacity_)
    {
    }

    std::size_t capacity() const noexcept { return capacity_; }

    // Producer: true when the entry was enqueued; false (counted as a
    // drop) when the ring is full.
    bool push(T const& value) noexcept
    {
        std::uint64_t const head = head_.load(std::memory_order_relaxed);
        if (head - tail_cache_ >= capacity_)
        {
            tail_cache_ = tail_.load(std::memory_order_acquire);
            if (head - tail_cache_ >= capacity_)
            {
                dropped_.fetch_add(1, std::memory_order_relaxed);
                return false;
            }
        }
        slots_[static_cast<std::size_t>(head % capacity_)] = value;
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    // Producer: would a push drop right now?
    bool full() const noexcept
    {
        return head_.load(std::memory_order_relaxed) -
            tail_.load(std::memory_order_acquire) >=
            capacity_;
    }

    // Consumer: false when empty.
    bool pop(T& out) noexcept
    {
        std::uint64_t const tail = tail_.load(std::memory_order_relaxed);
        if (tail == head_.load(std::memory_order_acquire))
            return false;
        out = slots_[static_cast<std::size_t>(tail % capacity_)];
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    // Consumer: pop every currently-visible entry with one head/tail
    // synchronization for the whole batch instead of one per entry.
    // Returns the number consumed.
    template <typename F>
    std::size_t pop_all(F&& fn)
    {
        std::uint64_t const tail = tail_.load(std::memory_order_relaxed);
        std::uint64_t const head = head_.load(std::memory_order_acquire);
        for (std::uint64_t i = tail; i != head; ++i)
            fn(std::as_const(
                slots_[static_cast<std::size_t>(i % capacity_)]));
        if (head != tail)
            tail_.store(head, std::memory_order_release);
        return static_cast<std::size_t>(head - tail);
    }

    std::size_t size() const noexcept
    {
        return static_cast<std::size_t>(
            head_.load(std::memory_order_acquire) -
            tail_.load(std::memory_order_acquire));
    }

    // Total successful pushes (the head never advances on a drop).
    std::uint64_t pushed() const noexcept
    {
        return head_.load(std::memory_order_relaxed);
    }

    std::uint64_t dropped() const noexcept
    {
        return dropped_.load(std::memory_order_relaxed);
    }

private:
    std::size_t const capacity_;
    std::vector<T> slots_;

    alignas(64) std::atomic<std::uint64_t> head_{0};    // next write
    // Producer-local snapshot of tail_; refreshed only on apparent
    // overflow, so pushes avoid the consumer-written cache line.
    alignas(64) std::uint64_t tail_cache_ = 0;
    alignas(64) std::atomic<std::uint64_t> tail_{0};    // next read
    std::atomic<std::uint64_t> dropped_{0};
};

}    // namespace minihpx::util
