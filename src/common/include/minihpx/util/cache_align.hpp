// Cache-line geometry helpers.
//
// Per-worker hot state (queue heads, counters) is padded to a cache line
// to avoid false sharing between OS worker threads (CppCoreGuidelines
// Per.16/Per.19: compact, predictable data — but never *shared* hot data
// on one line).
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace minihpx::util {

// A constant 64 keeps the value (and thus struct layouts) identical
// across translation units regardless of -mtune, which is what GCC's
// -Winterference-size warns about for the std constant.
inline constexpr std::size_t cache_line_size = 64;

// Wraps T so that distinct instances never share a cache line.
template <typename T>
struct alignas(cache_line_size) cache_aligned
{
    T value;

    template <typename... Args>
    explicit cache_aligned(Args&&... args) : value(std::forward<Args>(args)...)
    {
    }

    T* operator->() noexcept { return &value; }
    T const* operator->() const noexcept { return &value; }
    T& operator*() noexcept { return value; }
    T const& operator*() const noexcept { return value; }
};

}    // namespace minihpx::util
