// Move-only callable wrapper with small-buffer optimization.
//
// Task closures capture futures/promises, which are move-only, so
// std::function (copyable) cannot hold them. std::move_only_function is
// C++23; this is the minimal C++20 equivalent the runtime needs. The
// 48-byte inline buffer fits every closure the scheduler itself creates,
// keeping task spawn allocation-free on that path (Per.14/Per.15).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace minihpx::util {

template <typename Signature>
class unique_function;

template <typename R, typename... Args>
class unique_function<R(Args...)>
{
    static constexpr std::size_t buffer_size = 48;
    static constexpr std::size_t buffer_align = alignof(std::max_align_t);

    struct vtable
    {
        R (*invoke)(void*, Args&&...);
        void (*move_to)(void*, void*) noexcept;    // move-construct into dst
        void (*destroy)(void*) noexcept;
    };

    template <typename F, bool Inline>
    struct ops
    {
        static F* get(void* storage) noexcept
        {
            if constexpr (Inline)
                return std::launder(reinterpret_cast<F*>(storage));
            else
                return *static_cast<F**>(storage);
        }

        static R invoke(void* storage, Args&&... args)
        {
            return (*get(storage))(std::forward<Args>(args)...);
        }

        static void move_to(void* src, void* dst) noexcept
        {
            if constexpr (Inline)
            {
                ::new (dst) F(std::move(*get(src)));
                get(src)->~F();
            }
            else
            {
                *static_cast<F**>(dst) = *static_cast<F**>(src);
            }
        }

        static void destroy(void* storage) noexcept
        {
            if constexpr (Inline)
                get(storage)->~F();
            else
                delete get(storage);
        }

        static constexpr vtable table{&invoke, &move_to, &destroy};
    };

public:
    unique_function() noexcept = default;
    unique_function(std::nullptr_t) noexcept {}

    template <typename F,
        typename = std::enable_if_t<
            !std::is_same_v<std::decay_t<F>, unique_function> &&
            std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
    unique_function(F&& f)
    {
        using D = std::decay_t<F>;
        constexpr bool fits = sizeof(D) <= buffer_size &&
            alignof(D) <= buffer_align &&
            std::is_nothrow_move_constructible_v<D>;
        if constexpr (fits)
        {
            ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
            table_ = &ops<D, true>::table;
        }
        else
        {
            *reinterpret_cast<D**>(&storage_) = new D(std::forward<F>(f));
            table_ = &ops<D, false>::table;
        }
    }

    unique_function(unique_function&& other) noexcept
    {
        if (other.table_)
        {
            other.table_->move_to(&other.storage_, &storage_);
            table_ = std::exchange(other.table_, nullptr);
        }
    }

    unique_function& operator=(unique_function&& other) noexcept
    {
        if (this != &other)
        {
            reset();
            if (other.table_)
            {
                other.table_->move_to(&other.storage_, &storage_);
                table_ = std::exchange(other.table_, nullptr);
            }
        }
        return *this;
    }

    unique_function(unique_function const&) = delete;
    unique_function& operator=(unique_function const&) = delete;

    ~unique_function() { reset(); }

    void reset() noexcept
    {
        if (table_)
        {
            table_->destroy(&storage_);
            table_ = nullptr;
        }
    }

    explicit operator bool() const noexcept { return table_ != nullptr; }

    R operator()(Args... args)
    {
        return table_->invoke(&storage_, std::forward<Args>(args)...);
    }

private:
    alignas(buffer_align) std::byte storage_[buffer_size];
    vtable const* table_ = nullptr;
};

}    // namespace minihpx::util
