// Spin-then-park eventcount: the scheduler's idle/wake protocol,
// extracted so it is one reusable, model-checkable primitive.
//
// Protocol (docs/SCHEDULER.md has the full argument):
//
//   waiter:  epoch0 = prepare()            seq_cst epoch load
//            ... scan for work ...
//            park(epoch0, cancel)          mutex + sleepers_++ + cv wait
//                                          until epoch != epoch0 or
//                                          cancel()
//   waker:   notify_one()/notify_all()     seq_cst epoch bump, then
//                                          notify only when sleepers_
//                                          is non-zero
//
// Correctness rests on the seq_cst total order over {epoch_, sleepers_}
// closing the check-then-park / bump-then-check (Dekker) race: the
// waiter's sleepers_ increment and epoch re-read in the wait predicate
// order against the waker's epoch bump and sleepers_ read, so either
// the waker sees a sleeper (and notifies under the mutex) or the waiter
// sees the moved epoch (and never blocks). Additionally, a waiter whose
// prepare() reads a bumped epoch synchronizes-with that bump (seq_cst
// store/load act as release/acquire), so the work published before the
// bump is visible to the waiter's scan — that is what makes "scan then
// park" lossless even though the scan itself reads relaxed state.
//
// The template is instantiated over the atomics policy
// (atomics_policy.hpp): util::eventcount is the production std::atomic/
// std::mutex/std::condition_variable form; minihpx::mc instantiates
// model shims and exhaustively checks the lost-wakeup litmus (and
// proves the notify_bump_relaxed mutant deadlocks).
#pragma once

#include <minihpx/util/atomics_policy.hpp>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <type_traits>

namespace minihpx::util {

namespace eventcount_mutation {

    inline constexpr unsigned none = 0;
    // notify_*(): epoch bump seq_cst -> relaxed. Breaks the Dekker pair
    // — a parking waiter can read the stale epoch while the waker reads
    // stale sleepers_ == 0, and the wakeup is lost (mc finds the
    // deadlock).
    inline constexpr unsigned notify_bump_relaxed = 1;

}    // namespace eventcount_mutation

template <typename Policy = std_atomics_policy,
    unsigned Mutant = eventcount_mutation::none>
class basic_eventcount
{
    // Only the production policy is noexcept (model fibers unwind via
    // an exception through these calls).
    static constexpr bool production =
        std::is_same_v<Policy, std_atomics_policy>;

    static constexpr std::memory_order notify_bump_order =
        Mutant == eventcount_mutation::notify_bump_relaxed ?
        std::memory_order_relaxed :
        std::memory_order_seq_cst;

public:
    // Capture the epoch *before* scanning for work: a wake posted any
    // time afterwards flips the epoch comparison, so it can neither be
    // missed by the scan nor by the park.
    std::uint64_t prepare() const noexcept(production)
    {
        return epoch_.load(std::memory_order_seq_cst);
    }

    // Spin-loop re-check; relaxed suffices there because a moved epoch
    // only short-circuits the (always-safe) park.
    std::uint64_t epoch(std::memory_order order =
                            std::memory_order_seq_cst) const
        noexcept(production)
    {
        return epoch_.load(order);
    }

    // Block until the epoch moves past epoch0 or cancel() holds.
    // cancel is evaluated under the internal mutex (like a cv
    // predicate) and must not block.
    template <typename Cancel>
    void park(std::uint64_t epoch0, Cancel&& cancel)
    {
        std::unique_lock<typename Policy::mutex> lock(mutex_);
        // seq_cst: must be totally ordered against the waker's epoch
        // bump (see file comment).
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        cv_.wait(lock, [&] {
            return epoch_.load(std::memory_order_seq_cst) != epoch0 ||
                cancel();
        });
        // relaxed: only the waker's seq_cst read of a *raised* count
        // matters; lowering it races nothing (worst case is one
        // spurious notify under the mutex).
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }

    // Timed wait (legacy polling mode). Deliberately does not raise
    // sleepers_: timed waiters wake on their own timeout, and the
    // notify fast path stays one RMW + one load for everyone else.
    template <typename Rep, typename Period, typename Cancel>
    void park_for(std::uint64_t epoch0,
        std::chrono::duration<Rep, Period> timeout, Cancel&& cancel)
    {
        std::unique_lock<typename Policy::mutex> lock(mutex_);
        cv_.wait_for(lock, timeout, [&] {
            return epoch_.load(std::memory_order_seq_cst) != epoch0 ||
                cancel();
        });
    }

    void notify_one()
    {
        epoch_.fetch_add(1, notify_bump_order);
        if (sleepers_.load(std::memory_order_seq_cst) == 0)
            return;    // fast path: nobody parked, the bump alone suffices
        {
            // Taking the mutex fences against a waiter between its
            // predicate check and cv.wait(): either it is not yet inside
            // the critical section (its predicate will see our bump), or
            // it has released the mutex inside wait() and the notify
            // reaches it.
            std::lock_guard<typename Policy::mutex> lock(mutex_);
        }
        cv_.notify_one();
    }

    void notify_all()
    {
        epoch_.fetch_add(1, notify_bump_order);
        if (sleepers_.load(std::memory_order_seq_cst) == 0)
            return;
        {
            std::lock_guard<typename Policy::mutex> lock(mutex_);
        }
        cv_.notify_all();
    }

private:
    typename Policy::mutex mutex_;
    typename Policy::condition_variable cv_;
    typename Policy::template atomic<std::uint64_t> epoch_{0};
    typename Policy::template atomic<std::uint32_t> sleepers_{0};
};

using eventcount = basic_eventcount<>;

}    // namespace minihpx::util
