// Test-and-test-and-set spinlock with exponential backoff.
//
// Used for very short critical sections inside the scheduler and the
// future shared state, where a std::mutex round-trip (futex syscall on
// contention) would dominate the protected work. Satisfies the C++
// Lockable requirements so it composes with std::lock_guard (CP.20).
//
// TSan note: the lock is exactly expressible in C++ atomics — the
// acquire exchange / release store pair is the synchronization TSan
// models natively, and the relaxed re-check load in the spin loop never
// carries a happens-before edge (a winner always re-executes the
// acquire exchange), so no annotations are required.
//
// Debug builds check lock-rank ordering on every blocking acquisition
// (see util/lock_registry.hpp). Construct with a rank to participate;
// default-constructed locks are tracked but exempt.
#pragma once

#include <minihpx/util/lock_registry.hpp>

#include <atomic>
#include <thread>

namespace minihpx::util {

class spinlock
{
public:
    spinlock() noexcept = default;

    // Ranked lock: debug builds enforce that ranks strictly increase
    // along any thread's acquisition chain.
    explicit spinlock([[maybe_unused]] unsigned rank,
        [[maybe_unused]] char const* name = "spinlock") noexcept
#if MINIHPX_LOCK_RANKS
      : rank_(rank)
      , name_(name)
#endif
    {
    }

    spinlock(spinlock const&) = delete;
    spinlock& operator=(spinlock const&) = delete;

    void lock() noexcept
    {
#if MINIHPX_LOCK_RANKS
        lock_registry::on_acquire(this, rank_, name_);
#endif
        int spins = 0;
        for (;;)
        {
            if (!locked_.exchange(true, std::memory_order_acquire))
                return;
            // Test loop: spin on a plain load to keep the line shared.
            while (locked_.load(std::memory_order_relaxed))
            {
                if (++spins < 64)
                {
#if defined(__x86_64__)
                    __builtin_ia32_pause();
#endif
                }
                else
                {
                    std::this_thread::yield();
                    spins = 0;
                }
            }
        }
    }

    [[nodiscard]] bool try_lock() noexcept
    {
        if (locked_.load(std::memory_order_relaxed) ||
            locked_.exchange(true, std::memory_order_acquire))
            return false;
#if MINIHPX_LOCK_RANKS
        lock_registry::on_try_acquire(this, rank_, name_);
#endif
        return true;
    }

    void unlock() noexcept
    {
#if MINIHPX_LOCK_RANKS
        lock_registry::on_release(this);
#endif
        locked_.store(false, std::memory_order_release);
    }

private:
    std::atomic<bool> locked_{false};
#if MINIHPX_LOCK_RANKS
    unsigned rank_ = lock_rank::unranked;
    char const* name_ = "spinlock";
#endif
};

}    // namespace minihpx::util
