// Test-and-test-and-set spinlock with exponential backoff.
//
// Used for very short critical sections inside the scheduler and the
// future shared state, where a std::mutex round-trip (futex syscall on
// contention) would dominate the protected work. Satisfies the C++
// Lockable requirements so it composes with std::lock_guard (CP.20).
#pragma once

#include <atomic>
#include <thread>

namespace minihpx::util {

class spinlock
{
public:
    spinlock() noexcept = default;
    spinlock(spinlock const&) = delete;
    spinlock& operator=(spinlock const&) = delete;

    void lock() noexcept
    {
        int spins = 0;
        for (;;)
        {
            if (!locked_.exchange(true, std::memory_order_acquire))
                return;
            // Test loop: spin on a plain load to keep the line shared.
            while (locked_.load(std::memory_order_relaxed))
            {
                if (++spins < 64)
                {
#if defined(__x86_64__)
                    __builtin_ia32_pause();
#endif
                }
                else
                {
                    std::this_thread::yield();
                    spins = 0;
                }
            }
        }
    }

    bool try_lock() noexcept
    {
        return !locked_.load(std::memory_order_relaxed) &&
            !locked_.exchange(true, std::memory_order_acquire);
    }

    void unlock() noexcept { locked_.store(false, std::memory_order_release); }

private:
    std::atomic<bool> locked_{false};
};

}    // namespace minihpx::util
