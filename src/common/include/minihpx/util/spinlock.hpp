// Test-and-test-and-set spinlock with exponential backoff.
//
// Used for very short critical sections inside the scheduler and the
// future shared state, where a std::mutex round-trip (futex syscall on
// contention) would dominate the protected work. Satisfies the C++
// Lockable requirements so it composes with std::lock_guard (CP.20).
//
// The lock is a template over the atomics policy (atomics_policy.hpp):
// util::spinlock is the production instantiation and compiles to
// exactly the pre-template code; minihpx::mc instantiates the same
// algorithm over model atomics and exhaustively checks the protocol
// (mutual exclusion, release→acquire publication of guarded data) —
// see tests/test_mc.cpp's spinlock litmus and its unlock-relaxed
// mutant.
//
// TSan note: the lock is exactly expressible in C++ atomics — the
// acquire exchange / release store pair is the synchronization TSan
// models natively, and the relaxed re-check load in the spin loop never
// carries a happens-before edge (a winner always re-executes the
// acquire exchange), so no annotations are required.
//
// Debug builds check lock-rank ordering on every blocking acquisition
// (see util/lock_registry.hpp). Construct with a rank to participate;
// default-constructed locks are tracked but exempt. The registry hooks
// are thread_local-based and only engage for the production policy —
// model threads are fibers multiplexed on one OS thread, so under mc
// the chain bookkeeping would be meaningless.
#pragma once

#include <minihpx/util/atomics_policy.hpp>
#include <minihpx/util/lock_registry.hpp>
#include <minihpx/util/thread_annotations.hpp>

#include <atomic>
#include <type_traits>

namespace minihpx::util {

namespace spinlock_mutation {

    inline constexpr unsigned none = 0;
    // unlock(): store release -> relaxed. The next acquirer can then
    // read guarded data from before the previous critical section —
    // mc reports the data race on the protected location.
    inline constexpr unsigned unlock_relaxed = 1;

}    // namespace spinlock_mutation

template <typename Policy = std_atomics_policy,
    unsigned Mutant = spinlock_mutation::none>
class MINIHPX_CAPABILITY("mutex") basic_spinlock
{
    // Production policy: registry hooks engage and operations stay
    // noexcept. The model policy parks fibers inside these operations
    // and unwinds them with an exception at execution end, so the
    // model instantiation must be allowed to throw.
    static constexpr bool instrumented =
        std::is_same_v<Policy, std_atomics_policy>;

    static constexpr std::memory_order unlock_order =
        Mutant == spinlock_mutation::unlock_relaxed ?
        std::memory_order_relaxed :
        std::memory_order_release;

public:
    basic_spinlock() noexcept = default;

    // Ranked lock: debug builds enforce that ranks strictly increase
    // along any thread's acquisition chain.
    explicit basic_spinlock([[maybe_unused]] unsigned rank,
        [[maybe_unused]] char const* name = "spinlock") noexcept
#if MINIHPX_LOCK_RANKS
      : rank_(rank)
      , name_(name)
#endif
    {
    }

    basic_spinlock(basic_spinlock const&) = delete;
    basic_spinlock& operator=(basic_spinlock const&) = delete;

    void lock() noexcept(instrumented) MINIHPX_ACQUIRE()
    {
#if MINIHPX_LOCK_RANKS
        if constexpr (instrumented)
            lock_registry::on_acquire(this, rank_, name_);
#endif
        int spins = 0;
        for (;;)
        {
            // acquire: pairs with unlock()'s release store — everything
            // the previous holder wrote is visible once we own the lock.
            if (!locked_.exchange(true, std::memory_order_acquire))
                return;
            // Test loop: spin on a plain load to keep the line shared.
            // relaxed is enough — a winner always re-executes the
            // acquire exchange, so the loop load never publishes.
            while (locked_.load(std::memory_order_relaxed))
            {
                if (++spins < 64)
                {
                    Policy::pause();
                }
                else
                {
                    Policy::yield();
                    spins = 0;
                }
            }
        }
    }

    [[nodiscard]] bool try_lock() noexcept(instrumented)
        MINIHPX_TRY_ACQUIRE(true)
    {
        if (locked_.load(std::memory_order_relaxed) ||
            locked_.exchange(true, std::memory_order_acquire))
            return false;
#if MINIHPX_LOCK_RANKS
        if constexpr (instrumented)
            lock_registry::on_try_acquire(this, rank_, name_);
#endif
        return true;
    }

    void unlock() noexcept(instrumented) MINIHPX_RELEASE()
    {
#if MINIHPX_LOCK_RANKS
        if constexpr (instrumented)
            lock_registry::on_release(this);
#endif
        // release: publishes the critical section to the next acquire.
        locked_.store(false, unlock_order);
    }

private:
    typename Policy::template atomic<bool> locked_{false};
#if MINIHPX_LOCK_RANKS
    unsigned rank_ = lock_rank::unranked;
    char const* name_ = "spinlock";
#endif
};

using spinlock = basic_spinlock<>;

// RAII guard that clang's thread-safety analysis can see through:
// libstdc++'s std::lock_guard has no scoped-capability annotation, so
// members GUARDED_BY an annotated lock are guarded through this instead.
// Identical codegen to std::lock_guard.
template <typename Mutex>
class MINIHPX_SCOPED_CAPABILITY annotated_lock_guard
{
public:
    explicit annotated_lock_guard(Mutex& m) MINIHPX_ACQUIRE(m) : mutex_(m)
    {
        mutex_.lock();
    }

    ~annotated_lock_guard() MINIHPX_RELEASE() { mutex_.unlock(); }

    annotated_lock_guard(annotated_lock_guard const&) = delete;
    annotated_lock_guard& operator=(annotated_lock_guard const&) = delete;

private:
    Mutex& mutex_;
};

}    // namespace minihpx::util
