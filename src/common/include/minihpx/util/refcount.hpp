// Intrusive reference count for pooled frames and shared states.
//
// Extracted from future.hpp's shared_state_base so the protocol is one
// reusable, model-checkable primitive: minihpx::mc instantiates it over
// model atomics and exhaustively checks that the final releaser — on
// every schedule — observes all writes made by threads that dropped
// their reference earlier, and that no count movement can resurrect a
// disposed object (tests/test_mc.cpp frame-refcount litmus; the
// release_relaxed mutant plants the classic stale-read-in-dispose bug
// and mc reports the data race).
//
// Memory orders:
//   add_ref   relaxed  taking a new reference requires an existing one,
//                      whose visibility was established when it was
//                      handed over; the count itself carries no data.
//   release   acq_rel  release: publishes this thread's writes to the
//                      object before the count drops; acquire: the
//                      thread that takes the count to zero observes
//                      every such publication before dispose() runs.
#pragma once

#include <minihpx/util/atomics_policy.hpp>

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace minihpx::util {

namespace refcount_mutation {

    inline constexpr unsigned none = 0;
    // release(): fetch_sub acq_rel -> relaxed. The disposing thread can
    // then read the object's payload without a happens-before edge from
    // the other releasers' writes.
    inline constexpr unsigned release_relaxed = 1;

}    // namespace refcount_mutation

template <typename Policy = std_atomics_policy,
    unsigned Mutant = refcount_mutation::none>
class basic_refcount
{
    // Only the production policy is noexcept (model fibers unwind via
    // an exception through these calls).
    static constexpr bool production =
        std::is_same_v<Policy, std_atomics_policy>;

    static constexpr std::memory_order release_order =
        Mutant == refcount_mutation::release_relaxed ?
        std::memory_order_relaxed :
        std::memory_order_acq_rel;

public:
    // Objects are born with the creator's reference.
    basic_refcount() noexcept = default;

    void add_ref() noexcept(production)
    {
        refs_.fetch_add(1, std::memory_order_relaxed);
    }

    // Drop one reference; invokes dispose() exactly once, on the
    // thread whose decrement hits zero.
    template <typename Dispose>
    void release(Dispose&& dispose)
    {
        if (refs_.fetch_sub(1, release_order) == 1)
            dispose();
    }

    // Racy snapshot (tests, object counters).
    std::uint32_t count(std::memory_order order =
                            std::memory_order_relaxed) const
        noexcept(production)
    {
        return refs_.load(order);
    }

private:
    typename Policy::template atomic<std::uint32_t> refs_{1};
};

using refcount = basic_refcount<>;

}    // namespace minihpx::util
