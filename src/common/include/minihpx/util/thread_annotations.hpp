// Clang thread-safety-analysis annotation shim.
//
// -Wthread-safety is a compile-time lock-discipline checker: members
// declared MINIHPX_GUARDED_BY(lock) may only be touched while `lock` is
// held, functions declared MINIHPX_REQUIRES(lock) may only be called
// with it held, and MINIHPX_ACQUIRE/RELEASE document (and enforce) the
// lock functions themselves. The CI thread-safety job builds Debug with
// clang and -Werror=thread-safety, so a new unguarded access to an
// annotated member is a build break, not a TSan coin flip.
//
// Under GCC (and any compiler without the capability attributes) every
// macro expands to nothing. The runtime's own RAII guard for annotated
// locks is util::annotated_lock_guard (spinlock.hpp): libstdc++'s
// std::lock_guard carries no scoped-capability annotation, so guarding
// through it would leave the analysis blind to the acquisition.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define MINIHPX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MINIHPX_THREAD_ANNOTATION(x)    // no-op
#endif

// Type is a lock (a "capability" in clang's vocabulary).
#define MINIHPX_CAPABILITY(x) MINIHPX_THREAD_ANNOTATION(capability(x))

// RAII type that acquires on construction / releases on destruction.
#define MINIHPX_SCOPED_CAPABILITY MINIHPX_THREAD_ANNOTATION(scoped_lockable)

// Member may only be accessed while holding the named lock(s).
#define MINIHPX_GUARDED_BY(x) MINIHPX_THREAD_ANNOTATION(guarded_by(x))

// Pointer target (not the pointer itself) is guarded.
#define MINIHPX_PT_GUARDED_BY(x) MINIHPX_THREAD_ANNOTATION(pt_guarded_by(x))

// Function requires the lock(s) held on entry (and exit).
#define MINIHPX_REQUIRES(...) \
    MINIHPX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function acquires/releases the lock(s).
#define MINIHPX_ACQUIRE(...) \
    MINIHPX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MINIHPX_RELEASE(...) \
    MINIHPX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MINIHPX_TRY_ACQUIRE(...) \
    MINIHPX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function must NOT be called with the lock held (deadlock guard).
#define MINIHPX_EXCLUDES(...) \
    MINIHPX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Escape hatch for protocols the static analysis cannot express
// (try_to_lock loops, lock handoff across functions). Every use site
// carries a comment saying why.
#define MINIHPX_NO_THREAD_SAFETY_ANALYSIS \
    MINIHPX_THREAD_ANNOTATION(no_thread_safety_analysis)
