// Minimal string helpers shared by the counter-name parser, the CLI
// layer, and the report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace minihpx::util {

// Split on a single delimiter; empty fields are preserved.
std::vector<std::string_view> split(std::string_view text, char delim);

std::string_view trim(std::string_view text);

bool iequals(std::string_view a, std::string_view b) noexcept;

// "12.3 GB/s", "1.02 us" style humanization for report output.
std::string format_bytes(double bytes);
std::string format_bytes_per_sec(double bytes_per_sec);
std::string format_duration_ns(double ns);

// Fixed-width number rendering for aligned ASCII tables.
std::string fixed(double value, int precision);

}    // namespace minihpx::util
