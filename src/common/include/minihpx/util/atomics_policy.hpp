// Atomics policy: the seam that makes the lock-free core checkable.
//
// Every hand-rolled concurrent structure in the runtime (Chase-Lev
// deque, SPSC rings, the eventcount, the frame-pool free list, the
// spinlock) is a template over an `Atomics` policy supplying the
// synchronization vocabulary it uses:
//
//   Policy::atomic<T>            std::atomic surface (load/store/RMW
//                                with explicit memory_order arguments)
//   Policy::nonatomic<T>         plain data published only via atomics;
//                                a transparent cell in production, a
//                                race-checked location under the model
//                                checker (minihpx::mc)
//   Policy::mutex                BasicLockable + condition-variable
//   Policy::condition_variable   companion for blocking primitives
//   Policy::thread_fence(order)  std::atomic_thread_fence
//   Policy::pause()              spin-loop backoff hint; under mc this
//                                is a fairness yield, which is what
//                                keeps spin loops explorable
//   Policy::yield()              std::this_thread::yield
//
// The production instantiation below compiles to exactly the code the
// structures contained before the seam was introduced: `atomic` IS
// std::atomic, `nonatomic` is a plain struct around T with trivial
// inline accessors, and the fence/pause/yield helpers are the same
// intrinsics, so bench/steal_throughput and bench/spawn_latency gate
// that the refactor stays free. The checking instantiation lives in
// src/mc (minihpx::mc::model_atomics_policy) and replaces every one of
// these with an exhaustively scheduled, weak-memory-modeled double.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace minihpx::util {

// Plain storage for data whose cross-thread visibility is carried by
// *other* (atomic) operations — ring slots, lock-protected fields. The
// accessors make the publication protocol explicit at each use site so
// the model checker can substitute a race-checked cell; here they are
// trivially inlined unannotated loads/stores.
template <typename T>
struct plain_cell
{
    T value{};

    plain_cell() = default;
    explicit plain_cell(T v) : value(v) {}

    T load() const noexcept { return value; }
    void store(T v) noexcept { value = v; }
    T& ref() noexcept { return value; }
    T const& ref() const noexcept { return value; }
};

struct std_atomics_policy
{
    template <typename T>
    using atomic = std::atomic<T>;

    template <typename T>
    using nonatomic = plain_cell<T>;

    using mutex = std::mutex;
    using condition_variable = std::condition_variable;

    static void thread_fence(std::memory_order order) noexcept
    {
        std::atomic_thread_fence(order);
    }

    static void pause() noexcept
    {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
    }

    static void yield() { std::this_thread::yield(); }
};

}    // namespace minihpx::util
