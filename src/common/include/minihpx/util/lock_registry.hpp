// Debug-build lock-order (rank) checker.
//
// Deadlock cycles between the scheduler's internal locks are the
// classic failure mode of a runtime that calls back into itself (a
// future callback resuming a task takes the queue lock while a
// sync-primitive guard is still held, etc.). Instead of hoping stress
// tests hit the interleaving, every lock is assigned a *rank* and every
// debug-build acquisition checks the invariant: a thread may only
// acquire a lock of strictly higher rank than any lock it already
// holds. Any cycle requires two threads acquiring two locks in opposite
// orders, so rank-monotone acquisition makes deadlock between ranked
// locks impossible by construction — and a violation aborts immediately
// with the full held-lock chain, in the very first test run that
// executes the bad nesting, no contention required.
//
// The canonical rank hierarchy (outermost first):
//
//   300  sync-primitive guards (minihpx::mutex/cv/latch/barrier/sem)
//   350  future shared-state lock
//   400  scheduler descriptor freelist
//   450  trace recorder external lane     (emitted under rank-350 wakes)
//   500  per-worker thread_queue lock      (leaf: nothing nests inside)
//
// Rank 0 ("unranked") locks are tracked but exempt from order checks.
// try_lock acquisitions are pushed on the chain but not checked: a
// non-blocking acquisition cannot complete a deadlock cycle.
//
// Enabled automatically when NDEBUG is not defined, or explicitly with
// -DMINIHPX_ENABLE_LOCK_RANKS. The registry API itself is always
// compiled (tests drive it directly in release builds too); only the
// automatic hooks inside util::spinlock are debug-gated.
#pragma once

#include <cstdio>
#include <cstdlib>

#if defined(MINIHPX_ENABLE_LOCK_RANKS) || !defined(NDEBUG)
#define MINIHPX_LOCK_RANKS 1
#else
#define MINIHPX_LOCK_RANKS 0
#endif

namespace minihpx::util {

namespace lock_rank {

    inline constexpr unsigned unranked = 0;
    inline constexpr unsigned sync_guard = 300;
    inline constexpr unsigned future_state = 350;
    inline constexpr unsigned sched_freelist = 400;
    inline constexpr unsigned trace_external = 450;
    inline constexpr unsigned thread_queue = 500;

}    // namespace lock_rank

class lock_registry
{
public:
    static constexpr std::size_t max_depth = 16;

    struct held_lock
    {
        void const* lock = nullptr;
        unsigned rank = 0;
        char const* name = nullptr;
    };

    // Blocking acquisition *about to happen*: check the rank invariant
    // (before blocking, so a would-be deadlock reports instead of
    // hanging), then push onto this thread's chain.
    static void on_acquire(
        void const* lock, unsigned rank, char const* name) noexcept
    {
        chain& c = tls_chain();
        if (rank != lock_rank::unranked)
        {
            for (std::size_t i = 0; i < c.depth && i < max_depth; ++i)
            {
                held_lock const& h = c.entries[i];
                if (h.rank != lock_rank::unranked && h.rank >= rank)
                    report_inversion(c, lock, rank, name, h);
            }
        }
        push(c, lock, rank, name);
    }

    // Successful try_lock: record only (cannot deadlock).
    static void on_try_acquire(
        void const* lock, unsigned rank, char const* name) noexcept
    {
        push(tls_chain(), lock, rank, name);
    }

    static void on_release(void const* lock) noexcept
    {
        chain& c = tls_chain();
        // Scan top-down: releases are almost always LIFO, but
        // unique_lock allows out-of-order unlock.
        for (std::size_t i = c.depth; i-- > 0;)
        {
            if (i < max_depth && c.entries[i].lock == lock)
            {
                for (std::size_t j = i; j + 1 < c.depth && j + 1 < max_depth;
                     ++j)
                    c.entries[j] = c.entries[j + 1];
                --c.depth;
                return;
            }
        }
        // Releasing a lock that was never registered (e.g. locked while
        // the hooks were disabled) is ignored.
    }

    // Number of locks the calling thread currently holds (test hook).
    static std::size_t held_count() noexcept { return tls_chain().depth; }

private:
    struct chain
    {
        held_lock entries[max_depth];
        std::size_t depth = 0;
    };

    static chain& tls_chain() noexcept
    {
        thread_local chain c;
        return c;
    }

    static void push(
        chain& c, void const* lock, unsigned rank, char const* name) noexcept
    {
        if (c.depth < max_depth)
            c.entries[c.depth] = {lock, rank, name};
        ++c.depth;    // overflow beyond max_depth is counted, not stored
    }

    [[noreturn]] static void report_inversion(chain const& c,
        void const* lock, unsigned rank, char const* name,
        held_lock const& conflicting) noexcept
    {
        std::fprintf(stderr,
            "minihpx: LOCK RANK INVERSION: acquiring '%s' (rank %u, %p) "
            "while holding '%s' (rank %u, %p)\n",
            name ? name : "<unnamed>", rank, lock,
            conflicting.name ? conflicting.name : "<unnamed>",
            conflicting.rank, conflicting.lock);
        std::fprintf(stderr, "  held-lock chain of this thread (%zu):\n",
            c.depth);
        for (std::size_t i = 0; i < c.depth && i < max_depth; ++i)
        {
            std::fprintf(stderr, "    [%zu] rank %-4u %-24s %p\n", i,
                c.entries[i].rank,
                c.entries[i].name ? c.entries[i].name : "<unnamed>",
                c.entries[i].lock);
        }
        std::fprintf(stderr,
            "  attempted acquisition:\n    [.] rank %-4u %-24s %p\n", rank,
            name ? name : "<unnamed>", lock);
        std::fprintf(stderr,
            "  ranks must strictly increase along any acquisition chain "
            "(see util/lock_registry.hpp for the hierarchy)\n");
        std::abort();
    }
};

}    // namespace minihpx::util
