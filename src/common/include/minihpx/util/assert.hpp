// Lightweight assertion macro used throughout minihpx.
//
// Unlike <cassert>, MINIHPX_ASSERT stays active in release builds (the
// runtime is a scheduler: silent state-machine corruption is far more
// expensive than the cost of a predictable branch), prints the failing
// expression with source location, and aborts.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace minihpx::util {

[[noreturn]] inline void assertion_failure(char const* expr, char const* file,
                                           int line, char const* msg) noexcept
{
    std::fprintf(stderr, "minihpx: assertion '%s' failed at %s:%d%s%s\n", expr,
                 file, line, msg && *msg ? ": " : "", msg ? msg : "");
    std::fflush(stderr);
    std::abort();
}

}    // namespace minihpx::util

#define MINIHPX_ASSERT_MSG(expr, msg)                                         \
    ((expr) ? static_cast<void>(0)                                            \
            : ::minihpx::util::assertion_failure(#expr, __FILE__, __LINE__,   \
                                                 msg))

#define MINIHPX_ASSERT(expr) MINIHPX_ASSERT_MSG(expr, "")

// Marks a code path that must be unreachable.
#define MINIHPX_UNREACHABLE()                                                 \
    ::minihpx::util::assertion_failure("unreachable", __FILE__, __LINE__, "")
