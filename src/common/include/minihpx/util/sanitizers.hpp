// Sanitizer integration for a stackful user-level-thread runtime.
//
// Stackful coroutines break both ASan and TSan out of the box:
//
//   * ASan tracks one (bottom, size) stack extent per OS thread. A
//     swapcontext onto an mmap'd task stack makes every local variable
//     look like a wild out-of-stack access, and the fake-stack machinery
//     (detect_stack_use_after_return) corrupts outright. The fix is the
//     documented fiber protocol: __sanitizer_start_switch_fiber before
//     every switch (announcing the destination stack) and
//     __sanitizer_finish_switch_fiber as the first action on the
//     destination side.
//
//   * TSan tracks happens-before per OS thread. Two tasks multiplexed
//     on one worker would share a thread id (masking real races between
//     them), and a task migrating between workers after a suspend looks
//     like an unsynchronized cross-thread access to its entire stack.
//     The fix is the fiber API: one __tsan_create_fiber per task
//     context plus __tsan_switch_to_fiber around every switch. A
//     flags=0 switch also establishes synchronization between the two
//     fibers, which is exactly the semantics of a cooperative switch
//     (everything the scheduler did is visible to the task and vice
//     versa).
//
// This header detects the active sanitizers and exposes the hooks as
// no-op-when-disabled helpers so src/threads can instrument its switch
// paths unconditionally. It also provides happens-before annotation
// macros for documenting (and enforcing under TSan) the runtime's
// publication protocols. See docs/SANITIZERS.md for the full design.
#pragma once

#include <cstddef>

// ---------------------------------------------------------------- detection

#if defined(__SANITIZE_ADDRESS__)
#define MINIHPX_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MINIHPX_ASAN 1
#endif
#endif
#if !defined(MINIHPX_ASAN)
#define MINIHPX_ASAN 0
#endif

#if defined(__SANITIZE_THREAD__)
#define MINIHPX_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MINIHPX_TSAN 1
#endif
#endif
#if !defined(MINIHPX_TSAN)
#define MINIHPX_TSAN 0
#endif

#if MINIHPX_ASAN
#include <sanitizer/common_interface_defs.h>
#include <pthread.h>
#endif
#if MINIHPX_TSAN
#include <sanitizer/tsan_interface.h>
#endif

// ----------------------------------------------- happens-before annotations
//
// The runtime's publication protocols are all built on C++ atomics and
// locks that TSan models natively; these annotations add an explicit,
// greppable statement of each protocol and keep TSan correct even if an
// implementation is later weakened (e.g. a lock replaced by a seqlock).
// They compile to nothing outside TSan builds.

#if MINIHPX_TSAN
extern "C" {
void AnnotateHappensBefore(char const* file, int line,
    void const volatile* addr);
void AnnotateHappensAfter(char const* file, int line,
    void const volatile* addr);
}
#define MINIHPX_ANNOTATE_HAPPENS_BEFORE(addr)                                  \
    AnnotateHappensBefore(__FILE__, __LINE__, (addr))
#define MINIHPX_ANNOTATE_HAPPENS_AFTER(addr)                                   \
    AnnotateHappensAfter(__FILE__, __LINE__, (addr))
#else
#define MINIHPX_ANNOTATE_HAPPENS_BEFORE(addr) ((void) 0)
#define MINIHPX_ANNOTATE_HAPPENS_AFTER(addr) ((void) 0)
#endif

namespace minihpx::util::san {

// Per-execution-context sanitizer bookkeeping. Embedded in
// threads::ucontext_context; empty (and all helpers no-ops) in
// non-sanitized builds.
struct fiber_state
{
#if MINIHPX_ASAN
    // Fake-stack handle saved by __sanitizer_start_switch_fiber when
    // this context switches away; consumed by finish on resume.
    void* fake_stack = nullptr;
    void const* stack_bottom = nullptr;
    std::size_t stack_size = 0;
#endif
#if MINIHPX_TSAN
    void* tsan_fiber = nullptr;
    // Fibers obtained from __tsan_create_fiber must be destroyed;
    // native per-OS-thread fibers must not.
    bool tsan_owned = false;
#endif
};

// (Re)seed a context onto `stack` — called from create(). Recycled
// contexts destroy their previous TSan fiber first via
// notify_fiber_destroy.
inline void notify_fiber_create([[maybe_unused]] fiber_state& f,
    [[maybe_unused]] void* stack_base, [[maybe_unused]] std::size_t size,
    [[maybe_unused]] char const* name)
{
#if MINIHPX_ASAN
    f.stack_bottom = stack_base;
    f.stack_size = size;
    f.fake_stack = nullptr;
#endif
#if MINIHPX_TSAN
    f.tsan_fiber = __tsan_create_fiber(0);
    f.tsan_owned = true;
    if (name)
        __tsan_set_fiber_name(f.tsan_fiber, name);
#endif
}

// Release TSan resources of a context that will never run again
// (recycled or destroyed). Must not be called from the fiber itself.
inline void notify_fiber_destroy([[maybe_unused]] fiber_state& f)
{
#if MINIHPX_TSAN
    if (f.tsan_owned && f.tsan_fiber)
    {
        __tsan_destroy_fiber(f.tsan_fiber);
        f.tsan_fiber = nullptr;
        f.tsan_owned = false;
    }
#endif
}

// A context that was never create()d is a *native* context: it
// represents the OS thread (a worker's scheduler loop) itself. Its
// stack bounds and TSan fiber are captured lazily the first time it
// switches away — which necessarily happens before it can ever be a
// switch destination.
inline void ensure_native_identity([[maybe_unused]] fiber_state& f)
{
#if MINIHPX_ASAN
    if (f.stack_bottom == nullptr)
    {
        pthread_attr_t attr;
        if (pthread_getattr_np(pthread_self(), &attr) == 0)
        {
            void* bottom = nullptr;
            std::size_t size = 0;
            if (pthread_attr_getstack(&attr, &bottom, &size) == 0)
            {
                f.stack_bottom = bottom;
                f.stack_size = size;
            }
            pthread_attr_destroy(&attr);
        }
    }
#endif
#if MINIHPX_TSAN
    if (f.tsan_fiber == nullptr)
    {
        f.tsan_fiber = __tsan_get_current_fiber();
        f.tsan_owned = false;
    }
#endif
}

// Immediately before the real switch, on the outgoing context's stack.
// `from_exiting` marks a context that will never be resumed (a
// terminating task's final switch back to its scheduler): ASan then
// releases the fiber's fake-stack frames instead of preserving them.
inline void before_switch([[maybe_unused]] fiber_state& from,
    [[maybe_unused]] fiber_state const& to,
    [[maybe_unused]] bool from_exiting)
{
#if MINIHPX_ASAN
    __sanitizer_start_switch_fiber(from_exiting ? nullptr : &from.fake_stack,
        to.stack_bottom, to.stack_size);
#endif
#if MINIHPX_TSAN
    // flags=0: the switch synchronizes the two fibers, matching the
    // cooperative handoff semantics of the scheduler.
    __tsan_switch_to_fiber(to.tsan_fiber, 0);
#endif
}

// First action after the real switch returns, i.e. when `self` has been
// resumed by some other context switching into it.
inline void after_switch([[maybe_unused]] fiber_state& self)
{
#if MINIHPX_ASAN
    __sanitizer_finish_switch_fiber(self.fake_stack, nullptr, nullptr);
    self.fake_stack = nullptr;
#endif
}

// First action of a brand-new fiber's entry function (there is no saved
// fake stack to restore yet).
inline void finish_first_entry()
{
#if MINIHPX_ASAN
    __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
}

// True when a sanitizer that is incompatible with the raw assembly
// context switch is active (the asm path cannot announce stack bounds).
inline constexpr bool fiber_unsafe_sanitizer_active() noexcept
{
    return MINIHPX_ASAN != 0 || MINIHPX_TSAN != 0;
}

}    // namespace minihpx::util::san
