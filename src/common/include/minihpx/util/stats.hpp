// Sample statistics used by the benchmark harness and the
// statistics-counter family (/statistics{...}/...).
//
// The paper reports the *median* of 20 samples per experiment; the
// harness reproduces that protocol via sample_set.
#pragma once

#include <cstddef>
#include <vector>

namespace minihpx::util {

// Streaming accumulator: mean/variance via Welford, min/max, count.
// O(1) memory; suitable for use inside counters.
class running_stats
{
public:
    void add(double x) noexcept;
    void reset() noexcept { *this = running_stats{}; }

    std::size_t count() const noexcept { return count_; }
    double mean() const noexcept { return count_ ? mean_ : 0.0; }
    double variance() const noexcept;    // sample variance (n-1)
    double stddev() const noexcept;
    double min() const noexcept { return count_ ? min_ : 0.0; }
    double max() const noexcept { return count_ ? max_ : 0.0; }
    double sum() const noexcept { return sum_; }

    // Merge another accumulator into this one (parallel reduction).
    void merge(running_stats const& other) noexcept;

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

// Retaining sample set: exact median / percentiles over stored samples.
class sample_set
{
public:
    void add(double x) { samples_.push_back(x); }
    void reserve(std::size_t n) { samples_.reserve(n); }
    void clear() noexcept { samples_.clear(); }

    std::size_t size() const noexcept { return samples_.size(); }
    bool empty() const noexcept { return samples_.empty(); }

    double median() const;
    // p in [0, 100]; linear interpolation between closest ranks.
    double percentile(double p) const;
    double mean() const;
    double min() const;
    double max() const;
    double stddev() const;

    std::vector<double> const& samples() const noexcept { return samples_; }

private:
    std::vector<double> samples_;
};

}    // namespace minihpx::util
