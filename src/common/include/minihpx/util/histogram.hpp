// Log2-bucketed histogram.
//
// Backs the /threads{...}/time/duration-histogram style counters: task
// durations span 5+ orders of magnitude (sub-µs to ms), so linear
// buckets are useless. Buckets are powers of two of the base unit;
// updates are lock-free relaxed increments (pull-based counters
// aggregate at evaluate time, design choice #3 in DESIGN.md).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace minihpx::util {

template <std::size_t Buckets = 64>
class log2_histogram
{
public:
    static constexpr std::size_t bucket_count = Buckets;

    void add(std::uint64_t value) noexcept
    {
        buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
        total_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    static constexpr std::size_t bucket_index(std::uint64_t value) noexcept
    {
        if (value == 0)
            return 0;
        std::size_t const bit =
            63 - static_cast<std::size_t>(__builtin_clzll(value));
        return bit < Buckets ? bit : Buckets - 1;
    }

    // Lower bound of a bucket, in base units.
    static constexpr std::uint64_t bucket_floor(std::size_t index) noexcept
    {
        return index == 0 ? 0 : (1ULL << index);
    }

    std::uint64_t count(std::size_t index) const noexcept
    {
        return buckets_[index].load(std::memory_order_relaxed);
    }

    std::uint64_t total() const noexcept
    {
        return total_.load(std::memory_order_relaxed);
    }

    std::uint64_t sum() const noexcept
    {
        return sum_.load(std::memory_order_relaxed);
    }

    double mean() const noexcept
    {
        auto const n = total();
        return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
    }

    // Approximate quantile from bucket boundaries, q in [0,1].
    std::uint64_t approx_quantile(double q) const noexcept
    {
        std::uint64_t const n = total();
        if (n == 0)
            return 0;
        auto target = static_cast<std::uint64_t>(q * static_cast<double>(n));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < Buckets; ++i)
        {
            seen += count(i);
            if (seen > target)
                return bucket_floor(i);
        }
        return bucket_floor(Buckets - 1);
    }

    // Interpolated quantile, q in [0,1]: like approx_quantile but the
    // position inside the selected bucket is estimated linearly from
    // the rank, so p50/p95/p99 rollups don't snap to powers of two.
    // Error is bounded by the bucket width (a factor-of-2 band).
    std::uint64_t quantile(double q) const noexcept
    {
        std::uint64_t const n = total();
        if (n == 0)
            return 0;
        if (q < 0.0)
            q = 0.0;
        if (q > 1.0)
            q = 1.0;
        double const target = q * static_cast<double>(n - 1);
        double seen = 0.0;
        for (std::size_t i = 0; i < Buckets; ++i)
        {
            double const in_bucket = static_cast<double>(count(i));
            if (in_bucket > 0.0 && seen + in_bucket > target)
            {
                double const lo = static_cast<double>(bucket_floor(i));
                double const hi = i + 1 < Buckets ?
                    static_cast<double>(bucket_floor(i + 1)) :
                    lo * 2.0;
                // Rank of the target within this bucket, samples
                // assumed uniformly spread across [lo, hi).
                double const within = (target - seen + 0.5) / in_bucket;
                return static_cast<std::uint64_t>(lo + within * (hi - lo));
            }
            seen += in_bucket;
        }
        return bucket_floor(Buckets - 1);
    }

    // The three quantiles telemetry rollups stream (docs/TELEMETRY.md).
    struct quantile_summary
    {
        std::uint64_t p50 = 0;
        std::uint64_t p95 = 0;
        std::uint64_t p99 = 0;
    };

    quantile_summary summary() const noexcept
    {
        return {quantile(0.50), quantile(0.95), quantile(0.99)};
    }

    void reset() noexcept
    {
        for (auto& b : buckets_)
            b.store(0, std::memory_order_relaxed);
        total_.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
    }

private:
    std::array<std::atomic<std::uint64_t>, Buckets> buckets_{};
    std::atomic<std::uint64_t> total_{0};
    std::atomic<std::uint64_t> sum_{0};
};

}    // namespace minihpx::util
