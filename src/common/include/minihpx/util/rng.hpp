// Small deterministic PRNGs.
//
// The scheduler (steal-victim selection) and the simulator need fast,
// seedable randomness that is stable across platforms, so we avoid
// std::default_random_engine (implementation-defined) and use
// splitmix64 for seeding and xoshiro256** for the stream.
#pragma once

#include <cstdint>

namespace minihpx::util {

// splitmix64: used to expand a single seed into xoshiro state.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna; public-domain construction.
class xoshiro256ss
{
public:
    using result_type = std::uint64_t;

    explicit constexpr xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept
    {
        for (auto& word : state_)
            word = splitmix64_next(seed);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~0ULL; }

    constexpr result_type operator()() noexcept
    {
        std::uint64_t const result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t const t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    // Unbiased-enough bounded draw (multiply-shift); bound must be > 0.
    constexpr std::uint64_t below(std::uint64_t bound) noexcept
    {
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
    }

    // Uniform double in [0, 1).
    constexpr double uniform01() noexcept
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
};

}    // namespace minihpx::util
