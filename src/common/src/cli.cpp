#include <minihpx/util/cli.hpp>
#include <minihpx/util/strings.hpp>

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>

namespace minihpx::util {

cli_args::cli_args(int argc, char const* const* argv)
{
    if (argc > 0)
        program_ = argv[0];

    bool options_done = false;
    for (int i = 1; i < argc; ++i)
    {
        std::string_view arg = argv[i];
        if (options_done || !arg.starts_with("--"))
        {
            positionals_.emplace_back(arg);
            continue;
        }
        if (arg == "--")
        {
            options_done = true;
            continue;
        }
        arg.remove_prefix(2);
        // Only --name=value and bare --flag forms: a separate-token
        // value form would be ambiguous with positional arguments.
        if (auto eq = arg.find('='); eq != std::string_view::npos)
        {
            options_.emplace_back(std::string(arg.substr(0, eq)),
                                  std::string(arg.substr(eq + 1)));
        }
        else
        {
            options_.emplace_back(std::string(arg), std::string());
        }
    }
}

bool cli_args::has(std::string_view name) const
{
    for (auto const& [key, _] : options_)
        if (key == name)
            return true;
    return false;
}

std::optional<std::string> cli_args::value(std::string_view name) const
{
    std::optional<std::string> result;
    for (auto const& [key, val] : options_)
        if (key == name)
            result = val;
    return result;
}

std::string cli_args::value_or(std::string_view name,
                               std::string_view dflt) const
{
    auto v = value(name);
    return v ? *v : std::string(dflt);
}

std::int64_t cli_args::int_or(std::string_view name, std::int64_t dflt) const
{
    auto v = value(name);
    if (!v || v->empty())
        return dflt;
    return std::strtoll(v->c_str(), nullptr, 0);
}

double cli_args::double_or(std::string_view name, double dflt) const
{
    auto v = value(name);
    if (!v || v->empty())
        return dflt;
    return std::strtod(v->c_str(), nullptr);
}

bool cli_args::flag(std::string_view name) const
{
    auto v = value(name);
    if (!v)
        return false;
    return v->empty() || *v == "1" || iequals(*v, "true") ||
        iequals(*v, "yes") || iequals(*v, "on");
}

std::vector<std::string> cli_args::values(std::string_view name) const
{
    std::vector<std::string> out;
    for (auto const& [key, val] : options_)
        if (key == name)
            out.push_back(val);
    return out;
}

namespace {

    // Once per process per alias: repeated from_cli parses (tests,
    // multiple sessions) must not spam stderr.
    void warn_deprecated_once(char const* alias, char const* canonical)
    {
        static std::mutex mtx;
        static std::set<std::string> warned;
        std::lock_guard<std::mutex> lock(mtx);
        if (!warned.insert(alias).second)
            return;
        std::fprintf(stderr,
            "minihpx: warning: --%s is deprecated; use --%s\n", alias,
            canonical);
    }

}    // namespace

void option_table::apply(cli_args const& args) const
{
    auto apply_row = [&args](row const& r, char const* spelling) {
        if (r.store_string)
        {
            std::string const v = args.value_or(spelling, "");
            if (!r.store_string(v))
                throw std::runtime_error("minihpx: --" +
                    std::string(spelling) + "=" + v + " — expected " +
                    (r.expected ? r.expected : "a different value"));
        }
        else
        {
            r.store(args.int_or(spelling, 0));
        }
    };
    for (auto const& r : rows_)
    {
        if (args.has(r.name))
        {
            apply_row(r, r.name);
            continue;
        }
        if (r.deprecated_alias && args.has(r.deprecated_alias))
        {
            warn_deprecated_once(r.deprecated_alias, r.name);
            apply_row(r, r.deprecated_alias);
        }
    }
}

}    // namespace minihpx::util
