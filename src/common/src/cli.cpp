#include <minihpx/util/cli.hpp>
#include <minihpx/util/strings.hpp>

#include <cstdlib>

namespace minihpx::util {

cli_args::cli_args(int argc, char const* const* argv)
{
    if (argc > 0)
        program_ = argv[0];

    bool options_done = false;
    for (int i = 1; i < argc; ++i)
    {
        std::string_view arg = argv[i];
        if (options_done || !arg.starts_with("--"))
        {
            positionals_.emplace_back(arg);
            continue;
        }
        if (arg == "--")
        {
            options_done = true;
            continue;
        }
        arg.remove_prefix(2);
        // Only --name=value and bare --flag forms: a separate-token
        // value form would be ambiguous with positional arguments.
        if (auto eq = arg.find('='); eq != std::string_view::npos)
        {
            options_.emplace_back(std::string(arg.substr(0, eq)),
                                  std::string(arg.substr(eq + 1)));
        }
        else
        {
            options_.emplace_back(std::string(arg), std::string());
        }
    }
}

bool cli_args::has(std::string_view name) const
{
    for (auto const& [key, _] : options_)
        if (key == name)
            return true;
    return false;
}

std::optional<std::string> cli_args::value(std::string_view name) const
{
    std::optional<std::string> result;
    for (auto const& [key, val] : options_)
        if (key == name)
            result = val;
    return result;
}

std::string cli_args::value_or(std::string_view name,
                               std::string_view dflt) const
{
    auto v = value(name);
    return v ? *v : std::string(dflt);
}

std::int64_t cli_args::int_or(std::string_view name, std::int64_t dflt) const
{
    auto v = value(name);
    if (!v || v->empty())
        return dflt;
    return std::strtoll(v->c_str(), nullptr, 0);
}

double cli_args::double_or(std::string_view name, double dflt) const
{
    auto v = value(name);
    if (!v || v->empty())
        return dflt;
    return std::strtod(v->c_str(), nullptr);
}

bool cli_args::flag(std::string_view name) const
{
    auto v = value(name);
    if (!v)
        return false;
    return v->empty() || *v == "1" || iequals(*v, "true") ||
        iequals(*v, "yes") || iequals(*v, "on");
}

std::vector<std::string> cli_args::values(std::string_view name) const
{
    std::vector<std::string> out;
    for (auto const& [key, val] : options_)
        if (key == name)
            out.push_back(val);
    return out;
}

}    // namespace minihpx::util
