#include <minihpx/util/strings.hpp>

#include <cctype>
#include <cmath>
#include <cstdio>

namespace minihpx::util {

std::vector<std::string_view> split(std::string_view text, char delim)
{
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i)
    {
        if (i == text.size() || text[i] == delim)
        {
            out.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string_view trim(std::string_view text)
{
    while (!text.empty() &&
        std::isspace(static_cast<unsigned char>(text.front())))
        text.remove_prefix(1);
    while (!text.empty() &&
        std::isspace(static_cast<unsigned char>(text.back())))
        text.remove_suffix(1);
    return text;
}

bool iequals(std::string_view a, std::string_view b) noexcept
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
    {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

namespace {

    std::string scaled(double value, char const* const* units,
                       std::size_t nunits, double base)
    {
        std::size_t unit = 0;
        double v = value;
        while (std::fabs(v) >= base && unit + 1 < nunits)
        {
            v /= base;
            ++unit;
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[unit]);
        return buf;
    }

}    // namespace

std::string format_bytes(double bytes)
{
    static char const* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    return scaled(bytes, units, 5, 1024.0);
}

std::string format_bytes_per_sec(double bytes_per_sec)
{
    static char const* units[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
    return scaled(bytes_per_sec, units, 5, 1000.0);
}

std::string format_duration_ns(double ns)
{
    static char const* units[] = {"ns", "us", "ms", "s"};
    return scaled(ns, units, 4, 1000.0);
}

std::string fixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

}    // namespace minihpx::util
