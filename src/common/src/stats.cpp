#include <minihpx/util/stats.hpp>

#include <algorithm>
#include <cmath>

namespace minihpx::util {

void running_stats::add(double x) noexcept
{
    if (count_ == 0)
    {
        min_ = max_ = x;
    }
    else
    {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    double const delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double running_stats::variance() const noexcept
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double running_stats::stddev() const noexcept
{
    return std::sqrt(variance());
}

void running_stats::merge(running_stats const& other) noexcept
{
    if (other.count_ == 0)
        return;
    if (count_ == 0)
    {
        *this = other;
        return;
    }
    // Chan et al. parallel variance combination.
    double const delta = other.mean_ - mean_;
    std::size_t const n = count_ + other.count_;
    double const nd = static_cast<double>(n);
    m2_ += other.m2_ +
        delta * delta * static_cast<double>(count_) *
            static_cast<double>(other.count_) / nd;
    mean_ += delta * static_cast<double>(other.count_) / nd;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ = n;
}

namespace {

    // kth order statistic with linear interpolation (rank = p/100*(n-1)).
    double interpolated_rank(std::vector<double> sorted, double p)
    {
        if (sorted.empty())
            return 0.0;
        std::sort(sorted.begin(), sorted.end());
        if (sorted.size() == 1)
            return sorted.front();
        double const rank =
            p / 100.0 * static_cast<double>(sorted.size() - 1);
        auto const lo = static_cast<std::size_t>(rank);
        auto const hi = std::min(lo + 1, sorted.size() - 1);
        double const frac = rank - static_cast<double>(lo);
        return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
    }

}    // namespace

double sample_set::median() const
{
    return interpolated_rank(samples_, 50.0);
}

double sample_set::percentile(double p) const
{
    return interpolated_rank(samples_, p);
}

double sample_set::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : samples_)
        sum += x;
    return sum / static_cast<double>(samples_.size());
}

double sample_set::min() const
{
    return samples_.empty() ?
        0.0 :
        *std::min_element(samples_.begin(), samples_.end());
}

double sample_set::max() const
{
    return samples_.empty() ?
        0.0 :
        *std::max_element(samples_.begin(), samples_.end());
}

double sample_set::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    double const m = mean();
    double acc = 0.0;
    for (double x : samples_)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

}    // namespace minihpx::util
