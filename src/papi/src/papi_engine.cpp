#include <minihpx/papi/papi_engine.hpp>

#include <minihpx/memory_model.hpp>
#include <minihpx/perf/basic_counters.hpp>
#include <minihpx/runtime/scheduler.hpp>
#include <minihpx/util/assert.hpp>

#include <atomic>

namespace minihpx::papi {

namespace {

    std::atomic<papi_engine*> installed_engine{nullptr};

}    // namespace

papi_engine::papi_engine(unsigned num_workers, double ghz)
  : ghz_(ghz)
{
    per_worker_.reserve(num_workers + 1);
    for (unsigned i = 0; i < num_workers + 1; ++i)
        per_worker_.push_back(std::make_unique<pmu_slot>());
}

papi_engine::~papi_engine()
{
    uninstall();
}

void papi_engine::install()
{
    papi_engine* expected = nullptr;
    bool const ok = installed_engine.compare_exchange_strong(expected, this);
    MINIHPX_ASSERT_MSG(ok, "a papi_engine is already installed");
    set_work_sink(&papi_engine::sink);
}

void papi_engine::uninstall()
{
    papi_engine* expected = this;
    if (installed_engine.compare_exchange_strong(expected, nullptr))
        set_work_sink(nullptr);
}

papi_engine* papi_engine::installed() noexcept
{
    return installed_engine.load(std::memory_order_acquire);
}

void papi_engine::sink(work_annotation const& work)
{
    if (papi_engine* engine = installed())
        engine->record(scheduler::current_worker_id(), work);
}

void papi_engine::record(
    std::uint32_t w, work_annotation const& work) noexcept
{
    std::size_t const slot = w < per_worker_.size() - 1 ?
        w :
        per_worker_.size() - 1;    // overflow slot for non-workers
    auto& counts = per_worker_[slot]->counts;

    auto add = [&counts](event e, std::uint64_t n) {
        if (n)
            counts[static_cast<std::size_t>(e)].fetch_add(
                n, std::memory_order_relaxed);
    };

    std::uint64_t const rd_lines =
        (work.data_rd_bytes + cache_line_bytes - 1) / cache_line_bytes;
    std::uint64_t const rfo_lines =
        (work.rfo_bytes + cache_line_bytes - 1) / cache_line_bytes;
    std::uint64_t const code_lines =
        (work.code_rd_bytes + cache_line_bytes - 1) / cache_line_bytes;

    add(event::offcore_requests_all_data_rd, rd_lines);
    add(event::offcore_requests_demand_rfo, rfo_lines);
    add(event::offcore_requests_demand_code_rd, code_lines);
    add(event::tot_ins, work.instructions);
    add(event::tot_cyc,
        static_cast<std::uint64_t>(static_cast<double>(work.cpu_ns) * ghz_));
    add(event::l3_tcm, rd_lines + rfo_lines);

    // Footprint-priced locality events (no-ops for workloads that do
    // not annotate a footprint — traffic comes back all-zero misses).
    memory_traffic const mt = model_traffic(memory_model{}, work);
    add(event::dtlb_loads, mt.dtlb_loads);
    add(event::dtlb_misses, mt.dtlb_misses);
    add(event::llc_loads, mt.llc_loads);
    add(event::llc_misses, mt.llc_misses);

    // Stall model: ~60 cycles per off-core line that missed LLC, plus
    // ~30 cycles per modeled page walk.
    add(event::res_stl, (rd_lines + rfo_lines) * 60 + mt.dtlb_misses * 30);
}

std::uint64_t papi_engine::count(event e, std::uint32_t worker) const noexcept
{
    if (worker >= per_worker_.size())
        return 0;
    return per_worker_[worker]
        ->counts[static_cast<std::size_t>(e)]
        .load(std::memory_order_relaxed);
}

std::uint64_t papi_engine::total(event e) const noexcept
{
    std::uint64_t sum = 0;
    for (auto const& slot : per_worker_)
        sum += slot->counts[static_cast<std::size_t>(e)].load(
            std::memory_order_relaxed);
    return sum;
}

void papi_engine::register_counters(perf::counter_registry& registry)
{
    for (std::size_t i = 0; i < num_events; ++i)
    {
        auto const e = static_cast<event>(i);
        auto const& info = get_event_info(e);

        perf::counter_registry::type_info t;
        t.type_key = std::string("/papi/") + info.name;
        t.kind = perf::counter_kind::monotonically_increasing;
        t.helptext = info.description;
        t.instance_count = [this] {
            return static_cast<std::uint64_t>(num_workers());
        };
        t.create = [this, e](
                       perf::counter_path const& path) -> perf::counter_ptr {
            perf::value_source source;
            if (path.instance == "worker-thread" && path.instance_index >= 0)
            {
                if (path.instance_index >=
                    static_cast<std::int64_t>(num_workers()))
                    return nullptr;
                auto const idx =
                    static_cast<std::uint32_t>(path.instance_index);
                source = [this, e, idx] {
                    return static_cast<double>(count(e, idx));
                };
            }
            else if (path.instance == "total")
            {
                source = [this, e] {
                    return static_cast<double>(total(e));
                };
            }
            if (!source)
                return nullptr;
            perf::counter_info info_out;
            info_out.full_name = path.full_name();
            info_out.kind = perf::counter_kind::monotonically_increasing;
            return std::make_shared<perf::delta_counter>(
                std::move(info_out), std::move(source));
        };
        registry.register_type(std::move(t));
    }
}

void papi_engine::remove_counters(perf::counter_registry& registry)
{
    for (std::size_t i = 0; i < num_events; ++i)
    {
        auto const& info = get_event_info(static_cast<event>(i));
        registry.unregister_type(std::string("/papi/") + info.name);
    }
}

}    // namespace minihpx::papi
