#include <minihpx/papi/native.hpp>

#if __has_include(<papi.h>)
#include <papi.h>
#define MINIHPX_HAVE_NATIVE_PAPI 1
#else
#define MINIHPX_HAVE_NATIVE_PAPI 0
#endif

namespace minihpx::papi::native {

#if MINIHPX_HAVE_NATIVE_PAPI

namespace {

    bool init_library() noexcept
    {
        static bool const ok = [] {
            return PAPI_library_init(PAPI_VER_CURRENT) == PAPI_VER_CURRENT;
        }();
        return ok;
    }

}    // namespace

bool available() noexcept
{
    return init_library();
}

char const* backend() noexcept
{
    return available() ? "papi" : "model";
}

std::optional<int> begin(event e) noexcept
{
    if (!init_library())
        return std::nullopt;
    int set = PAPI_NULL;
    if (PAPI_create_eventset(&set) != PAPI_OK)
        return std::nullopt;
    int code = 0;
    if (PAPI_event_name_to_code(
            const_cast<char*>(get_event_info(e).papi_name), &code) !=
            PAPI_OK ||
        PAPI_add_event(set, code) != PAPI_OK ||
        PAPI_start(set) != PAPI_OK)
    {
        PAPI_cleanup_eventset(set);
        PAPI_destroy_eventset(&set);
        return std::nullopt;
    }
    return set;
}

std::optional<std::uint64_t> end(int handle) noexcept
{
    long long value = 0;
    int const rc = PAPI_stop(handle, &value);
    PAPI_cleanup_eventset(handle);
    PAPI_destroy_eventset(&handle);
    if (rc != PAPI_OK)
        return std::nullopt;
    return value < 0 ? 0 : static_cast<std::uint64_t>(value);
}

#else    // no <papi.h> on this machine: degrade to the model

bool available() noexcept
{
    return false;
}

char const* backend() noexcept
{
    return "model";
}

std::optional<int> begin(event) noexcept
{
    return std::nullopt;
}

std::optional<std::uint64_t> end(int) noexcept
{
    return std::nullopt;
}

#endif

}    // namespace minihpx::papi::native
