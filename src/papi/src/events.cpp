#include <minihpx/papi/events.hpp>

#include <minihpx/util/assert.hpp>

#include <array>

namespace minihpx::papi {

namespace {

    constexpr std::array<event_info, num_events> event_table{{
        {event::offcore_requests_all_data_rd, "OFFCORE_REQUESTS:ALL_DATA_RD",
            "OFFCORE_REQUESTS:ALL_DATA_RD",
            "off-core demand and prefetch data reads (cache lines)"},
        {event::offcore_requests_demand_code_rd,
            "OFFCORE_REQUESTS:DEMAND_CODE_RD",
            "OFFCORE_REQUESTS:DEMAND_CODE_RD",
            "off-core demand instruction fetches (cache lines)"},
        {event::offcore_requests_demand_rfo, "OFFCORE_REQUESTS:DEMAND_RFO",
            "OFFCORE_REQUESTS:DEMAND_RFO",
            "off-core demand reads-for-ownership (cache lines)"},
        {event::tot_ins, "PAPI_TOT_INS", "PAPI_TOT_INS",
            "instructions retired"},
        {event::tot_cyc, "PAPI_TOT_CYC", "PAPI_TOT_CYC",
            "core cycles (cpu_ns * nominal GHz)"},
        {event::l3_tcm, "PAPI_L3_TCM", "PAPI_L3_TCM",
            "last-level cache misses (modeled as data rd + rfo lines)"},
        {event::res_stl, "PAPI_RES_STL", "PAPI_RES_STL",
            "resource-stall cycles attributable to memory traffic"},
        {event::dtlb_loads, "dtlb/loads", "perf::DTLB-LOADS",
            "data-TLB lookups (modeled load/store count per footprint)"},
        {event::dtlb_misses, "dtlb/misses", "PAPI_TLB_DM",
            "data-TLB misses (modeled page walks; thrash past 512-entry "
            "STLB reach)"},
        {event::llc_loads, "llc/loads", "perf::LLC-LOADS",
            "last-level-cache lookups (offcore data rd + rfo lines)"},
        {event::llc_misses, "llc/misses", "perf::LLC-LOAD-MISSES",
            "last-level-cache misses (modeled DRAM fills; thrash past "
            "25 MB L3)"},
    }};

}    // namespace

event_info const& get_event_info(event e) noexcept
{
    auto const idx = static_cast<std::size_t>(e);
    MINIHPX_ASSERT(idx < num_events);
    return event_table[idx];
}

std::optional<event> find_event(std::string_view name) noexcept
{
    for (auto const& info : event_table)
    {
        if (name == info.name || name == info.papi_name)
            return info.id;
    }
    return std::nullopt;
}

}    // namespace minihpx::papi
