// Native PMU access through libpapi, when the build machine has it.
//
// The modeled counters (papi_engine) are always available and always
// deterministic; this shim is the bridge to *real* hardware readings
// on machines with <papi.h> and PMU permissions. It compiles — and
// cleanly reports unavailability — everywhere else: no libpapi at
// build time means backend() == "model" and begin() == nullopt, so
// callers (bench/matmul_tiling prints the source per row) degrade to
// the model without a single #ifdef on their side.
#pragma once

#include <minihpx/papi/events.hpp>

#include <cstdint>
#include <optional>

namespace minihpx::papi::native {

// True when libpapi is compiled in and initialized successfully.
bool available() noexcept;

// "papi" when native counting works, "model" otherwise.
char const* backend() noexcept;

// Scoped native counting of one event on the calling thread: begin()
// arms the event and returns an opaque handle — nullopt when native
// counting is unavailable or the event has no translation on this
// machine — and end() stops counting and returns the reading.
std::optional<int> begin(event e) noexcept;
std::optional<std::uint64_t> end(int handle) noexcept;

}    // namespace minihpx::papi::native
