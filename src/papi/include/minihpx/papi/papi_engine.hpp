// Virtual PMU: per-worker hardware-event state fed by work annotations.
//
// install() hooks minihpx::set_work_sink; every annotate_work() from a
// task increments the calling worker's event counts:
//   data_rd_bytes / 64  -> OFFCORE_REQUESTS:ALL_DATA_RD
//   rfo_bytes    / 64  -> OFFCORE_REQUESTS:DEMAND_RFO
//   code_rd_bytes/ 64  -> OFFCORE_REQUESTS:DEMAND_CODE_RD
//   instructions       -> PAPI_TOT_INS
//   cpu_ns * GHz       -> PAPI_TOT_CYC
// Counts accumulate monotonically; the counter framework's delta/reset
// machinery provides per-sample readings.
#pragma once

#include <minihpx/papi/events.hpp>
#include <minihpx/perf/registry.hpp>
#include <minihpx/work.hpp>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace minihpx::papi {

class papi_engine
{
public:
    // One slot per worker plus one overflow slot for annotations from
    // non-worker threads. `ghz` converts cpu_ns to cycles.
    explicit papi_engine(unsigned num_workers, double ghz = 2.5);
    ~papi_engine();

    papi_engine(papi_engine const&) = delete;
    papi_engine& operator=(papi_engine const&) = delete;

    // Route minihpx::annotate_work into this engine (one engine at a
    // time may be installed).
    void install();
    void uninstall();

    // Account one annotation to worker `w` (npos -> overflow slot).
    void record(std::uint32_t w, work_annotation const& work) noexcept;

    std::uint64_t count(event e, std::uint32_t worker) const noexcept;
    std::uint64_t total(event e) const noexcept;

    unsigned num_workers() const noexcept
    {
        return static_cast<unsigned>(per_worker_.size() - 1);
    }
    double ghz() const noexcept { return ghz_; }

    // Registers /papi{locality#0/worker-thread#N|total}/EVENT counter
    // types (one per modeled event) against this engine.
    void register_counters(perf::counter_registry& registry);
    static void remove_counters(perf::counter_registry& registry);

    // The engine annotate_work currently dispatches to (may be null).
    static papi_engine* installed() noexcept;

private:
    static void sink(work_annotation const& work);

    struct alignas(64) pmu_slot
    {
        std::array<std::atomic<std::uint64_t>, num_events> counts{};
    };

    std::vector<std::unique_ptr<pmu_slot>> per_worker_;    // [workers]+[1]
    double ghz_;
};

}    // namespace minihpx::papi
