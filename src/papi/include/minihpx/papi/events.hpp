// PAPI-like hardware event catalogue.
//
// The paper reads Ivy Bridge offcore PMU events through HPX's PAPI
// component to estimate memory bandwidth (§V-C):
//   bandwidth = (ALL_DATA_RD + DEMAND_CODE_RD + DEMAND_RFO) * 64B / t
// The container gives us no PMU, so these events are *modeled*: counts
// are derived from work_annotation traffic reported by the benchmarks
// (DESIGN.md substitution table). The event names, the counter paths
// (/papi{locality#0/...}/EVENT) and the derivation path to bandwidth
// are identical to the paper's.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace minihpx::papi {

enum class event : std::uint8_t
{
    offcore_requests_all_data_rd = 0,    // demand+prefetch data reads
    offcore_requests_demand_code_rd,     // instruction fetch misses
    offcore_requests_demand_rfo,         // read-for-ownership (stores)
    tot_ins,                             // PAPI_TOT_INS
    tot_cyc,                             // PAPI_TOT_CYC
    l3_tcm,                              // PAPI_L3_TCM (approx: data rd+rfo)
    res_stl,                             // PAPI_RES_STL (memory stalls)
    // Memory-locality events, modeled per task footprint by the
    // deterministic cache+TLB model (minihpx/memory_model.hpp). The
    // counter-path spellings use '/' (/papi{...}/dtlb/misses) so the
    // derived /arithmetics miss-rate counters read naturally.
    dtlb_loads,                          // data-TLB lookups (loads+stores)
    dtlb_misses,                         // data-TLB walks (PAPI_TLB_DM)
    llc_loads,                           // LLC lookups (offcore rd+rfo)
    llc_misses,                          // LLC load misses to DRAM
    event_count_,                        // sentinel
};

inline constexpr std::size_t num_events =
    static_cast<std::size_t>(event::event_count_);

struct event_info
{
    event id;
    char const* name;        // counter-path spelling (with ':')
    char const* papi_name;   // native PAPI spelling
    char const* description;
};

// Table of all modeled events, indexed by event id.
event_info const& get_event_info(event e) noexcept;

// Lookup by counter-path spelling ("OFFCORE_REQUESTS:ALL_DATA_RD").
std::optional<event> find_event(std::string_view name) noexcept;

// Cache line size used to convert bytes to offcore request counts.
inline constexpr std::uint64_t cache_line_bytes = 64;

}    // namespace minihpx::papi
