#include <minihpx/taskbench/kernel.hpp>

#include <chrono>

namespace minihpx::taskbench {

std::uint64_t spin_chunk(std::uint64_t x, std::uint64_t iters) noexcept
{
    if (x == 0)
        x = 0x2545f4914f6cdd1dull;
    for (std::uint64_t i = 0; i != iters; ++i)
    {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    return x;
}

namespace {

    std::uint64_t measure_iters_per_us() noexcept
    {
        using clock = std::chrono::steady_clock;
        // Warm up, then time a block large enough to swamp clock
        // resolution (~1 ms at a few iterations/ns).
        volatile std::uint64_t sink = spin_chunk(1, 10'000);
        constexpr std::uint64_t block = 2'000'000;
        auto const t0 = clock::now();
        sink = spin_chunk(sink, block);
        auto const t1 = clock::now();
        (void) sink;
        auto const ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
            t1 - t0)
                            .count();
        if (ns <= 0)
            return 1000;    // pathological clock; assume 1 iter/ns
        std::uint64_t const per_us =
            block * 1000ull / static_cast<std::uint64_t>(ns);
        return per_us == 0 ? 1 : per_us;
    }

}    // namespace

std::uint64_t spin_iters_per_us() noexcept
{
    static std::uint64_t const cached = measure_iters_per_us();
    return cached;
}

std::uint64_t spin_for_ns(std::uint64_t ns) noexcept
{
    if (ns == 0)
        return 0;
    std::uint64_t const iters = ns * spin_iters_per_us() / 1000ull;
    volatile std::uint64_t sink = spin_chunk(ns, iters ? iters : 1);
    (void) sink;
    return iters ? iters : 1;
}

}    // namespace minihpx::taskbench
