#include <minihpx/taskbench/graph.hpp>

#include <minihpx/util/assert.hpp>

#include <algorithm>

namespace minihpx::taskbench {

namespace {

    // floor(log2(v)) for v >= 1.
    unsigned log2_floor(unsigned v) noexcept
    {
        unsigned bits = 0;
        while (v >>= 1u)
            ++bits;
        return bits;
    }

    std::uint64_t splitmix64(std::uint64_t z) noexcept
    {
        z += 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    void push_unique(dep_list& deps, unsigned value) noexcept
    {
        for (unsigned i = 0; i != deps.count; ++i)
            if (deps.idx[i] == value)
                return;
        MINIHPX_ASSERT(deps.count < dep_list::max_deps);
        deps.idx[deps.count++] = value;
    }

}    // namespace

char const* graph_name(graph_type type) noexcept
{
    switch (type)
    {
    case graph_type::trivial:
        return "trivial";
    case graph_type::stencil_1d:
        return "stencil-1d";
    case graph_type::fft:
        return "fft";
    case graph_type::binary_tree:
        return "binary-tree";
    case graph_type::random_nearest:
        return "random-nearest";
    }
    return "unknown";
}

char const* graph_trace_label(graph_type type) noexcept
{
    switch (type)
    {
    case graph_type::trivial:
        return "taskbench/trivial";
    case graph_type::stencil_1d:
        return "taskbench/stencil-1d";
    case graph_type::fft:
        return "taskbench/fft";
    case graph_type::binary_tree:
        return "taskbench/binary-tree";
    case graph_type::random_nearest:
        return "taskbench/random-nearest";
    }
    return "taskbench/unknown";
}

char const* final_step_trace_label(graph_type type) noexcept
{
    switch (type)
    {
    case graph_type::trivial:
        return "taskbench/trivial@final";
    case graph_type::stencil_1d:
        return "taskbench/stencil-1d@final";
    case graph_type::fft:
        return "taskbench/fft@final";
    case graph_type::binary_tree:
        return "taskbench/binary-tree@final";
    case graph_type::random_nearest:
        return "taskbench/random-nearest@final";
    }
    return "taskbench/unknown@final";
}

std::optional<graph_type> parse_graph_type(std::string_view text) noexcept
{
    if (text == "trivial")
        return graph_type::trivial;
    if (text == "stencil-1d" || text == "stencil1d" || text == "stencil")
        return graph_type::stencil_1d;
    if (text == "fft")
        return graph_type::fft;
    if (text == "binary-tree" || text == "tree")
        return graph_type::binary_tree;
    if (text == "random-nearest" || text == "random")
        return graph_type::random_nearest;
    return std::nullopt;
}

std::vector<graph_type> const& all_graph_types()
{
    static std::vector<graph_type> const types = {
        graph_type::trivial,
        graph_type::stencil_1d,
        graph_type::fft,
        graph_type::binary_tree,
        graph_type::random_nearest,
    };
    return types;
}

std::optional<std::string> graph_spec::validate() const
{
    if (width == 0)
        return "taskbench: width must be >= 1";
    if (steps == 0)
        return "taskbench: steps must be >= 1";
    if (payload_words == 0)
        return "taskbench: payload-words must be >= 1";
    if (payload_words > 4096)
        return "taskbench: payload-words must be <= 4096 (32 KiB per "
               "point keeps the grid cacheable)";
    if (fan_in == 0)
        return "taskbench: fan-in must be >= 1";
    if (fan_in > dep_list::max_deps)
        return "taskbench: fan-in must be <= " +
            std::to_string(dep_list::max_deps);
    if (window == 0)
        return "taskbench: window must be >= 1";
    if (total_points() > 50'000'000ull)
        return "taskbench: width x steps exceeds the 50M-point budget";
    return std::nullopt;
}

std::uint64_t point_hash(
    std::uint64_t seed, std::uint64_t t, std::uint64_t x) noexcept
{
    return splitmix64(seed ^ (t * 0x9e3779b97f4a7c15ull) ^
        (x * 0xc2b2ae3d27d4eb4full));
}

dep_list dependencies(graph_spec const& spec, unsigned t, unsigned x) noexcept
{
    dep_list deps;
    if (t == 0 || spec.type == graph_type::trivial)
        return deps;

    unsigned const width = spec.width;
    switch (spec.type)
    {
    case graph_type::trivial:
        break;

    case graph_type::stencil_1d:
        if (x > 0)
            push_unique(deps, x - 1);
        push_unique(deps, x);
        if (x + 1 < width)
            push_unique(deps, x + 1);
        break;

    case graph_type::fft:
    {
        push_unique(deps, x);
        unsigned const levels = std::max(1u, log2_floor(width));
        unsigned const partner = x ^ (1u << ((t - 1) % levels));
        if (partner < width)
            push_unique(deps, partner);
        break;
    }

    case graph_type::binary_tree:
    {
        // Fan-in contraction toward index 0: interior points gather
        // their two children; points past the last parent slot carry
        // themselves forward so every (t, x) exists every step.
        unsigned long long const left =
            2ull * static_cast<unsigned long long>(x);
        if (left < width)
        {
            push_unique(deps, static_cast<unsigned>(left));
            if (left + 1 < width)
                push_unique(deps, static_cast<unsigned>(left + 1));
        }
        else
        {
            push_unique(deps, x);
        }
        break;
    }

    case graph_type::random_nearest:
    {
        unsigned const span = 2 * spec.window + 1;
        for (unsigned i = 0; i != spec.fan_in; ++i)
        {
            std::uint64_t const h =
                point_hash(spec.seed + i, t, x);
            long long const offset = static_cast<long long>(h % span) -
                static_cast<long long>(spec.window);
            long long dep = static_cast<long long>(x) + offset;
            dep = std::clamp<long long>(dep, 0, width - 1);
            push_unique(deps, static_cast<unsigned>(dep));
        }
        break;
    }
    }
    return deps;
}

std::uint64_t total_edges(graph_spec const& spec)
{
    std::uint64_t edges = 0;
    for (unsigned t = 0; t != spec.steps; ++t)
        for (unsigned x = 0; x != spec.width; ++x)
            edges += dependencies(spec, t, x).count;
    return edges;
}

}    // namespace minihpx::taskbench
