#include <minihpx/taskbench/counters.hpp>

#include <minihpx/perf/basic_counters.hpp>

#include <memory>
#include <string>
#include <utility>

namespace minihpx::taskbench {

stats& global_stats() noexcept
{
    static stats block;
    return block;
}

namespace {

    void register_monotonic(perf::counter_registry& registry,
        std::string key, std::string help, perf::value_source source)
    {
        if (registry.contains(key))
            return;
        auto const kind = perf::counter_kind::monotonically_increasing;
        perf::counter_registry::type_info t;
        t.type_key = key;
        t.kind = kind;
        t.helptext = std::move(help);
        t.create = [source = std::move(source), kind](
                       perf::counter_path const& path) -> perf::counter_ptr {
            perf::counter_info info;
            info.full_name = path.full_name();
            info.kind = kind;
            return std::make_shared<perf::delta_counter>(
                std::move(info), source);
        };
        registry.register_type(std::move(t));
    }

}    // namespace

void register_counters(perf::counter_registry& registry)
{
    register_monotonic(registry, "/taskbench/points/executed",
        "task-bench graph points whose task body has run",
        [] {
            return static_cast<double>(
                global_stats().points_executed.load(
                    std::memory_order_relaxed));
        });
    register_monotonic(registry, "/taskbench/deps/edges",
        "dependency edges waited on by completed task-bench graphs",
        [] {
            return static_cast<double>(
                global_stats().deps_edges.load(std::memory_order_relaxed));
        });
    register_monotonic(registry, "/taskbench/graphs/completed",
        "task-bench dependency graphs executed to completion",
        [] {
            return static_cast<double>(
                global_stats().graphs_completed.load(
                    std::memory_order_relaxed));
        });
}

}    // namespace minihpx::taskbench
