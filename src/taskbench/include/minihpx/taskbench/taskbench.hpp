// Umbrella header for the Task Bench workload family.
#pragma once

#include <minihpx/taskbench/counters.hpp>
#include <minihpx/taskbench/executor.hpp>
#include <minihpx/taskbench/graph.hpp>
#include <minihpx/taskbench/kernel.hpp>
