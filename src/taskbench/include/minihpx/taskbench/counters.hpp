// Task Bench self-observation counters, in the paper's intrinsic-
// counter idiom: the workload family reports on itself through the same
// registry every other subsystem uses, so telemetry sampling, derived
// /arithmetics composition, trace correlation and cross-locality
// federation all work on the new family with zero extra wiring.
//
//   /taskbench{locality#H/total}/points/executed    (mono)
//   /taskbench{locality#H/total}/deps/edges         (mono)
//   /taskbench{locality#H/total}/graphs/completed   (mono)
#pragma once

#include <minihpx/perf/registry.hpp>

#include <atomic>
#include <cstdint>

namespace minihpx::taskbench {

struct stats
{
    std::atomic<std::uint64_t> points_executed{0};
    std::atomic<std::uint64_t> deps_edges{0};
    std::atomic<std::uint64_t> graphs_completed{0};

    void reset() noexcept
    {
        points_executed = 0;
        deps_edges = 0;
        graphs_completed = 0;
    }
};

// Process-global tallies (all engines feed the same block: the counters
// describe the workload, not the backend executing it).
stats& global_stats() noexcept;

// Register the /taskbench counter types with `registry`. Idempotent;
// sources read global_stats(), so registration is process-lifetime
// (nothing to tear down). The executor calls this lazily on first use
// against the default registry.
void register_counters(
    perf::counter_registry& registry = perf::counter_registry::instance());

}    // namespace minihpx::taskbench
