// Calibrated spin kernel: the tunable "task granularity" knob.
//
// Task Bench's kernel burns a requested amount of CPU per point. A
// clock read per iteration would dominate at sub-microsecond
// granularity, so the kernel is iteration-calibrated instead: a one-time
// measurement converts ns -> xorshift iterations, and each task runs a
// fixed iteration count (exactly the Task Bench approach). The chaotic
// accumulator is forced into a volatile sink so the loop cannot be
// optimized away — and deliberately does NOT feed the payload
// checksum, which must be identical across engines including the
// compute-skipping simulator.
#pragma once

#include <cstdint>

namespace minihpx::taskbench {

// Iterations of the xorshift spin loop per microsecond, measured once
// per process (first call, ~1 ms) and cached.
std::uint64_t spin_iters_per_us() noexcept;

// Burn ~ns of CPU with the calibrated loop. Returns the iterations
// actually run (0 when ns == 0).
std::uint64_t spin_for_ns(std::uint64_t ns) noexcept;

// The raw loop (exposed for calibration and tests): runs `iters`
// xorshift64 rounds starting from `x` and returns the final state.
std::uint64_t spin_chunk(std::uint64_t x, std::uint64_t iters) noexcept;

}    // namespace minihpx::taskbench
