// Dependency-graph executor, templated over the Engine concept (v2).
//
// Execution is the futures + when_all port style from "Quantifying
// Overheads in Charm++ and HPX using Task Bench" (PAPERS.md): every
// point is one task; its inputs are expressed as an E::when_all gate
// over the producers' shared futures, and the body is attached with
// E::then — a dataflow continuation the engine spawns when the gate
// fires. Fan-out needs no copies of data: producers write their payload
// into a (steps x width x payload_words) grid slot that is theirs
// alone, and consumers read it strictly after the gate, so the only
// synchronization is the future graph itself.
//
// The payload checksum is a pure function of (seed, t, x, dependency
// payloads) — the spin kernel feeds a volatile sink, not the checksum —
// so minihpx, the std baseline, and the compute-skipping simulator must
// all produce the same value (pinned by tests/test_taskbench.cpp).
#pragma once

#include <minihpx/engine/engine.hpp>
#include <minihpx/taskbench/counters.hpp>
#include <minihpx/taskbench/graph.hpp>
#include <minihpx/taskbench/kernel.hpp>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace minihpx::taskbench {

struct run_result
{
    std::uint64_t points = 0;    // tasks executed (width x steps)
    std::uint64_t edges = 0;     // dependency edges waited on
    std::uint64_t checksum = 0;    // fold of the last timestep's payload
};

namespace detail {

    // One point's task body: recomputes its dependency list (bounded,
    // allocation-free), folds the producers' payloads, burns the
    // calibrated granularity, writes its own payload slot.
    template <typename E>
    void execute_point(
        graph_spec const& spec, unsigned t, unsigned x, std::uint64_t* grid)
    {
        E::trace_label(t + 1 == spec.steps ?
                final_step_trace_label(spec.type) :
                graph_trace_label(spec.type));
        E::annotate_work({.cpu_ns = spec.task_ns,
            .instructions = spec.task_ns > 1 ? spec.task_ns / 2 : 1});

        std::uint64_t acc = point_hash(spec.seed, t, x);
        dep_list const deps = dependencies(spec, t, x);
        if (t > 0)
        {
            std::uint64_t const* prev_row = grid +
                static_cast<std::uint64_t>(t - 1) * spec.width *
                    spec.payload_words;
            for (unsigned i = 0; i != deps.count; ++i)
                acc ^= prev_row[static_cast<std::uint64_t>(deps.idx[i]) *
                    spec.payload_words];
        }

        if (!E::skip_compute())
            spin_for_ns(spec.task_ns);

        std::uint64_t* slot = grid +
            (static_cast<std::uint64_t>(t) * spec.width + x) *
                spec.payload_words;
        for (unsigned w = 0; w != spec.payload_words; ++w)
            slot[w] = acc + w;

        global_stats().points_executed.fetch_add(
            1, std::memory_order_relaxed);
    }

    inline void ensure_counters_registered()
    {
        static std::once_flag once;
        std::call_once(once, [] { register_counters(); });
    }

}    // namespace detail

// Build and run one dependency graph on engine E. Timing is the
// caller's job (real engines: a steady_clock around this call; the
// simulator: sim_report.exec_time_s of the enclosing run). Must be
// called from wherever E::async is legal (inside the simulator for
// sim_engine; a live runtime for minihpx_engine).
template <typename E>
run_result run_graph(graph_spec const& spec)
{
    static_assert(minihpx::engine::is_engine_v<E>,
        "run_graph requires a conforming engine (see engine_traits)");

    if (auto err = spec.validate())
        throw std::invalid_argument(*err);
    detail::ensure_counters_registered();

    std::vector<std::uint64_t> grid(
        spec.total_points() * spec.payload_words);
    std::uint64_t* const data = grid.data();

    using shared = minihpx::engine::eshared_future<E, void>;
    std::vector<shared> prev, cur;
    prev.reserve(spec.width);
    cur.reserve(spec.width);
    std::vector<shared> gates;
    // Every point joins the final gate: graphs with reader-less points
    // (trivial everywhere; random-nearest wherever no draw lands on a
    // producer) would otherwise have tasks still running — and touching
    // the grid — after the last timestep completes.
    std::vector<shared> all;
    all.reserve(spec.total_points());
    std::uint64_t edges = 0;

    for (unsigned t = 0; t != spec.steps; ++t)
    {
        cur.clear();
        for (unsigned x = 0; x != spec.width; ++x)
        {
            auto body = [spec, t, x, data] {
                detail::execute_point<E>(spec, t, x, data);
            };
            dep_list const deps = dependencies(spec, t, x);
            minihpx::engine::efuture<E, void> fut;
            if (deps.count == 0)
            {
                fut = E::async(std::move(body));
            }
            else
            {
                gates.clear();
                gates.reserve(deps.count);
                for (unsigned i = 0; i != deps.count; ++i)
                    gates.push_back(prev[deps.idx[i]]);
                edges += deps.count;
                fut = E::then(E::when_all(gates), std::move(body));
            }
            cur.push_back(E::share(std::move(fut)));
            all.push_back(cur.back());
        }
        prev.swap(cur);
    }

    E::sync_wait(E::when_all(all));

    run_result result;
    result.points = spec.total_points();
    result.edges = edges;
    std::uint64_t const* last_row = data +
        static_cast<std::uint64_t>(spec.steps - 1) * spec.width *
            spec.payload_words;
    for (std::uint64_t i = 0;
        i != static_cast<std::uint64_t>(spec.width) * spec.payload_words;
        ++i)
    {
        // Avalanche each word before folding: adjacent payload words
        // differ only in low bits, and a plain XOR would cancel the
        // high bits pairwise.
        std::uint64_t v = last_row[i] + 0x9e3779b97f4a7c15ull * (i + 1);
        v ^= v >> 33;
        v *= 0xff51afd7ed558ccdull;
        v ^= v >> 33;
        result.checksum ^= v;
    }

    auto& st = global_stats();
    st.deps_edges.fetch_add(edges, std::memory_order_relaxed);
    st.graphs_completed.fetch_add(1, std::memory_order_relaxed);
    return result;
}

}    // namespace minihpx::taskbench
