// Task Bench parameterized dependency graphs.
//
// Following "Task Bench: A Parameterized Benchmark for Evaluating
// Parallel Runtime Performance" (see PAPERS.md), a workload is a grid
// of width x steps points; point (t, x) depends on a small set of
// points at timestep t-1 chosen by the graph type. The five types span
// the dependency patterns the Inncabs fork/join trees never touch:
//
//   trivial        no dependencies (embarrassingly parallel; pure
//                  spawn-throughput measurement)
//   stencil-1d     {x-1, x, x+1} clamped at the edges (nearest-neighbor
//                  exchange)
//   fft            {x, x ^ (1 << ((t-1) mod log2(width)))} — the FFT
//                  butterfly; distance doubles every timestep
//   binary-tree    {2x, 2x+1} where in range, else {x} — a repeated
//                  fan-in contraction toward index 0
//   random-nearest fan_in draws from the [x-window, x+window]
//                  neighborhood, chosen by a counter-based hash of
//                  (seed, t, x) — deterministic, no RNG state
//
// Dependencies are a pure function of (spec, t, x): executors recompute
// them wherever needed (graph build, task bodies, tests) with no
// allocation and byte-identical results across engines and runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace minihpx::taskbench {

enum class graph_type : std::uint8_t
{
    trivial,
    stencil_1d,
    fft,
    binary_tree,
    random_nearest,
};

// "trivial", "stencil-1d", "fft", "binary-tree", "random-nearest"
char const* graph_name(graph_type type) noexcept;

// Static-storage trace label ("taskbench/stencil-1d") for E::trace_label
// — the recorder stores the pointer, not a copy.
char const* graph_trace_label(graph_type type) noexcept;

// Static-storage label for the final timestep of a graph
// ("taskbench/fft@final"): the tail of the graph gets its own label so
// causal profiles can rank the finishing wave separately from the
// steady-state body.
char const* final_step_trace_label(graph_type type) noexcept;

std::optional<graph_type> parse_graph_type(std::string_view text) noexcept;

// All five types, in declaration order (sweep drivers iterate this).
std::vector<graph_type> const& all_graph_types();

struct graph_spec
{
    graph_type type = graph_type::stencil_1d;
    unsigned width = 16;      // points per timestep
    unsigned steps = 10;      // timesteps
    std::uint64_t task_ns = 1000;    // calibrated spin per point
    unsigned payload_words = 2;      // 8-byte words each point outputs
    unsigned fan_in = 3;             // random-nearest: deps per point
    unsigned window = 4;             // random-nearest: neighborhood radius
    std::uint64_t seed = 42;

    std::uint64_t total_points() const noexcept
    {
        return static_cast<std::uint64_t>(width) * steps;
    }

    // nullopt if well-formed, else a human-readable reason.
    std::optional<std::string> validate() const;
};

// Dependency list of one point: indices into timestep t-1. Bounded and
// stack-resident so task bodies can recompute their inputs without
// touching the heap.
struct dep_list
{
    static constexpr unsigned max_deps = 8;
    unsigned count = 0;
    unsigned idx[max_deps] = {};
};

// Deps of point (t, x); empty for t == 0 and for the trivial graph.
// Duplicate draws (random-nearest) are deduplicated.
dep_list dependencies(graph_spec const& spec, unsigned t, unsigned x) noexcept;

// Sum of dependencies(t, x).count over the whole grid.
std::uint64_t total_edges(graph_spec const& spec);

// Counter-based hash used for random-nearest draws and payload
// checksums (SplitMix64 over a mixed key). Exposed for tests.
std::uint64_t point_hash(
    std::uint64_t seed, std::uint64_t t, std::uint64_t x) noexcept;

}    // namespace minihpx::taskbench
