// Offline trace analysis: dynamic task graph metrics.
//
// From the event stream alone (spawn parent edges, resume wake edges,
// begin/suspend/end execution slices) this computes the TASKPROF-style
// quantities:
//
//   work        total execution time across all tasks (T_1)
//   span        the longest dependency-ordered chain of execution
//               (T_inf, the critical path) — computed by longest-path
//               over the DAG in one time-ordered sweep: every task
//               carries the length of the longest chain ending at its
//               current instant; spawn hands the parent's chain to the
//               child, a wake hands the waker's chain to the woken
//   parallelism work / span: the ceiling on useful workers
//   critical path  the task chain realizing the span, reported with
//               user annotate() labels
//   utilization per-worker busy fraction over time bins
//   what-if     rerun the same sweep with matching tasks' slice times
//               scaled by 1/K; predicted makespan = max(span',
//               work'/P) (Brent's bound) — "if tasks matching X were
//               K× faster, the run would take …"
//
// Input traces need detail >= sched (the default): without suspend /
// resume events, blocked time is indistinguishable from execution.
#pragma once

#include <minihpx/trace/format.hpp>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace minihpx::trace {

struct critical_step
{
    std::uint64_t task = 0;
    std::uint64_t parent = 0;
    std::string label;            // "" when never annotated
    std::uint64_t exec_ns = 0;    // total execution of this task
};

struct analysis_result
{
    std::uint64_t events = 0;
    std::uint64_t tasks = 0;          // distinct task ids seen
    std::uint64_t tasks_ended = 0;
    std::uint64_t workers = 0;        // distinct workers with slices
    std::uint64_t steals = 0;

    std::uint64_t t_first_ns = 0;     // first / last event timestamps
    std::uint64_t t_last_ns = 0;
    std::uint64_t makespan_ns = 0;    // t_last - t_first

    std::uint64_t work_ns = 0;
    std::uint64_t span_ns = 0;
    double parallelism = 0.0;         // work / span

    // Root-first chain of tasks realizing the span.
    std::vector<critical_step> critical_path;

    // Busy fraction per worker over the whole run, plus a binned
    // timeline (utilization[worker][bin], bins of bin_ns).
    std::vector<double> worker_busy;
    std::vector<std::vector<double>> utilization;
    std::uint64_t bin_ns = 0;
};

analysis_result analyze(trace_data const& data, unsigned util_bins = 20);

struct whatif_result
{
    double speedup_factor = 1.0;            // the K that was applied
    std::uint64_t matched_tasks = 0;
    std::uint64_t matched_exec_ns = 0;
    unsigned workers = 0;                   // the P used in the bound

    std::uint64_t baseline_makespan_ns = 0;   // max(span,  work /P)
    std::uint64_t projected_makespan_ns = 0;  // max(span', work'/P)
    double projected_speedup = 0.0;           // baseline / projected
};

// Tasks match when their label contains `label_substr` (labels come
// from this_task::annotate / sim_engine::trace_label). `workers` = 0
// uses the worker count observed in the trace.
whatif_result project_whatif(trace_data const& data,
    std::string_view label_substr, double speedup_factor,
    unsigned workers = 0);

}    // namespace minihpx::trace
