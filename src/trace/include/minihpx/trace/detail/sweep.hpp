// The longest-path sweep shared by trace::analyze, project_whatif and
// minihpx::causal.
//
// One time-ordered pass over a trace's events maintains, per task, the
// length of the longest dependency-ordered chain ending at that task's
// current instant: a spawn hands the parent's chain to the child, a
// wake hands the waker's chain to the woken, and execution slices
// extend the running task's chain. The maximum over all chains is the
// span (T_inf); the recorded chain nodes reconstruct the critical path.
//
// Two customization points let callers reuse the machinery without
// re-implementing the graph walk:
//
//   Rescale   double(trace_data const&, uint64_t label_id) — the
//             slice-time factor a task assumes the moment its label
//             becomes known (what-if projections scale matching labels;
//             plain analysis returns 1.0 everywhere).
//   Observer  on_charge / on_spawn callbacks (see sweep_observer) —
//             per-label attribution (causal profiles) hooks; the
//             default observer compiles to nothing.
#pragma once

#include <minihpx/trace/format.hpp>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <unordered_map>
#include <vector>

namespace minihpx::trace::detail {

struct task_state
{
    double path = 0.0;           // longest chain ending at this task now
    std::int64_t node = -1;      // chain node for `path` (see chain_node)
    std::uint64_t parent = 0;
    std::uint64_t last_t = 0;    // slice start / last charge point
    bool running = false;
    bool ended = false;
    std::uint64_t exec_ns = 0;     // unscaled execution total
    double scaled_exec = 0.0;      // scaled execution total
    std::uint64_t label_id = 0;    // last label (trace_data string id)
    double scale = 1.0;            // what-if factor (1 = unchanged)
};

struct slice
{
    std::uint32_t worker;
    std::uint64_t begin_ns;
    std::uint64_t end_ns;
};

// One entry per chain-extending edge (spawn, wake). A task can sit
// on the critical path more than once — a parent runs before the
// spawn and again after the join — so the chain is a list of
// *visits*, not a per-task predecessor pointer.
struct chain_node
{
    std::uint64_t task;
    std::int64_t pred;    // index into sweep_result::nodes, -1 = root
};

struct sweep_result
{
    std::unordered_map<std::uint64_t, task_state> tasks;
    std::vector<chain_node> nodes;
    std::vector<slice> slices;
    std::uint64_t steals = 0;
    std::uint64_t t_first = 0;
    std::uint64_t t_last = 0;
    double span = 0.0;
    std::int64_t span_node = -1;    // argmax chain endpoint
    double work_scaled = 0.0;
    std::uint64_t work_ns = 0;
};

// No-op observer: the default sweep records chains and totals only.
struct sweep_observer
{
    // `delta_ns` of execution was just charged to `task`, whose current
    // label is `label_id` (0 = unlabeled); `scaled` is delta * the
    // task's what-if factor.
    void on_charge(std::uint64_t /*task*/, std::uint64_t /*label_id*/,
        std::uint64_t /*delta_ns*/, double /*scaled*/) noexcept
    {
    }

    // `child` was spawned by `parent` while the parent's current label
    // was `parent_label` (0 for unlabeled parents and root tasks with
    // no recorded parent).
    void on_spawn(std::uint64_t /*child*/, std::uint64_t /*parent*/,
        std::uint64_t /*parent_label*/) noexcept
    {
    }
};

// Slices are opened by begin in push order; a close event finds the
// most recent open slice of its worker (a worker runs one task at a
// time, so this is the matching one).
inline void close_slice(
    std::vector<slice>& slices, std::uint32_t worker, std::uint64_t t)
{
    for (auto it = slices.rbegin(); it != slices.rend(); ++it)
    {
        if (it->worker != worker)
            continue;
        if (it->end_ns == it->begin_ns)
            it->end_ns = t;
        return;    // most recent slice of this worker decides
    }
}

// One time-ordered pass over the events, maintaining per-task
// longest-chain lengths. `rescale` assigns each task's slice-time
// factor the moment its label becomes known (what-if); the plain
// analysis pass keeps every factor at 1.
template <typename Rescale, typename Observer = sweep_observer>
sweep_result sweep(
    trace_data const& data, Rescale&& rescale, Observer&& observer = {})
{
    // Stable sort by timestamp: ties keep file order, which is the
    // causal emission order (exact under the sim's single lane).
    std::vector<std::uint32_t> order(data.events.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
        [&](std::uint32_t a, std::uint32_t b) {
            return data.events[a].t_ns < data.events[b].t_ns;
        });

    sweep_result r;
    if (!data.events.empty())
    {
        r.t_first = data.events[order.front()].t_ns;
        r.t_last = data.events[order.back()].t_ns;
    }

    auto charge = [&](task_state& ts, std::uint64_t id, std::uint64_t t) {
        if (!ts.running || t <= ts.last_t)
            return;
        std::uint64_t const d = t - ts.last_t;
        double const scaled = static_cast<double>(d) * ts.scale;
        ts.exec_ns += d;
        ts.scaled_exec += scaled;
        ts.path += scaled;
        ts.last_t = t;
        observer.on_charge(id, ts.label_id, d, scaled);
    };

    // Current chain node of a task, materializing one lazily for
    // tasks first seen as edge sources (the root, truncated traces).
    auto node_of = [&](task_state& ts, std::uint64_t id) {
        if (ts.node < 0)
        {
            ts.node = static_cast<std::int64_t>(r.nodes.size());
            r.nodes.push_back({id, -1});
        }
        return ts.node;
    };

    auto track_span = [&](task_state& ts, std::uint64_t id) {
        if (ts.path > r.span)
        {
            r.span = ts.path;
            r.span_node = node_of(ts, id);
        }
    };

    for (std::uint32_t idx : order)
    {
        event const& e = data.events[idx];
        task_state& ts = r.tasks[e.task];
        switch (static_cast<event_kind>(e.kind))
        {
        case event_kind::spawn:
        {
            ts.parent = e.aux;
            if (e.aux != 0)
            {
                // note: operator[] may rehash; re-fetch ts after.
                task_state& parent = r.tasks[e.aux];
                charge(parent, e.aux, e.t_ns);
                std::int64_t const pn = node_of(parent, e.aux);
                observer.on_spawn(e.task, e.aux, parent.label_id);
                task_state& child = r.tasks[e.task];
                child.path = parent.path;
                child.node = static_cast<std::int64_t>(r.nodes.size());
                r.nodes.push_back({e.task, pn});
            }
            else
            {
                observer.on_spawn(e.task, 0, 0);
            }
            break;
        }

        case event_kind::begin:
            ts.running = true;
            ts.last_t = e.t_ns;
            r.slices.push_back(
                {e.worker, e.t_ns, e.t_ns});    // end patched below
            break;

        case event_kind::end:
            charge(ts, e.task, e.t_ns);
            ts.running = false;
            ts.ended = true;
            close_slice(r.slices, e.worker, e.t_ns);
            track_span(ts, e.task);
            break;

        case event_kind::suspend:
        case event_kind::yield:
            charge(ts, e.task, e.t_ns);
            ts.running = false;
            close_slice(r.slices, e.worker, e.t_ns);
            track_span(ts, e.task);
            break;

        case event_kind::resume:
        {
            if (e.aux != 0)
            {
                task_state& waker = r.tasks[e.aux];
                charge(waker, e.aux, e.t_ns);
                std::int64_t const wn = node_of(waker, e.aux);
                task_state& woken = r.tasks[e.task];
                if (waker.path > woken.path)
                {
                    woken.path = waker.path;
                    woken.node = static_cast<std::int64_t>(r.nodes.size());
                    r.nodes.push_back({e.task, wn});
                }
            }
            break;
        }

        case event_kind::steal:
            ++r.steals;
            break;

        case event_kind::label:
            charge(ts, e.task, e.t_ns);
            ts.label_id = e.aux;
            ts.scale = rescale(data, ts.label_id);
            break;
        }
    }

    for (auto& [id, ts] : r.tasks)
    {
        // Truncated traces: tasks still running at the last event
        // contribute what they executed so far.
        charge(ts, id, r.t_last);
        track_span(ts, id);
        r.work_ns += ts.exec_ns;
        r.work_scaled += ts.scaled_exec;
    }
    return r;
}

// Distinct non-external workers with recorded slices (the P observed
// in the trace, used as the default Brent-bound worker count).
inline unsigned observed_workers(sweep_result const& r)
{
    std::vector<std::uint32_t> seen;
    for (auto const& s : r.slices)
    {
        if (s.worker != external_worker &&
            std::find(seen.begin(), seen.end(), s.worker) == seen.end())
            seen.push_back(s.worker);
    }
    return seen.empty() ? 1u : static_cast<unsigned>(seen.size());
}

}    // namespace minihpx::trace::detail
