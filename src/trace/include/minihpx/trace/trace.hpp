// Umbrella header for minihpx::trace.
//
//   #include <minihpx/trace/trace.hpp>
//
//   auto opts = minihpx::trace::trace_options::from_cli(args);
//   minihpx::trace::session trace(registry, opts);
//
// See docs/TRACING.md for the event model, file formats and the
// offline analysis (critical path, parallelism, what-if projection).
#pragma once

#include <minihpx/trace/analysis.hpp>
#include <minihpx/trace/event.hpp>
#include <minihpx/trace/format.hpp>
#include <minihpx/trace/recorder.hpp>
#include <minihpx/trace/session.hpp>
#include <minihpx/trace/sinks.hpp>
