// The .mhtrace binary format and its in-memory representation.
//
// Layout (all integers little-endian):
//
//   magic   8 bytes  "MHTRACE1"
//   clock   u8       0 = steady (real runtime), 1 = virtual (sim)
//   records ...      until the end marker:
//     tag u8 == 1: event   u16 kind, u32 worker, u64 t_ns, u64 task,
//                          u64 aux
//     tag u8 == 2: string  u32 id, u32 len, len bytes (UTF-8)
//     tag u8 == 3: end     u64 events, u32 strings — written exactly
//                          once, as the last record; the counts must
//                          match the records that precede it
//
// Label events carry a `char const*` in aux while in memory; the
// writer interns each distinct pointer into the string table (a def
// record precedes first use) and rewrites aux to the table id, so the
// file is self-contained and — given a deterministic event stream, as
// under minihpx::sim — byte-for-byte reproducible.
//
// The end marker is what makes truncation *detectable*: a stream cut
// mid-record fails its field reads, and a stream cut between records
// (the common case — the writer flushes in 64 KiB chunks) is missing
// the marker. Loaders refuse both instead of silently analyzing a
// partial trace.
#pragma once

#include <minihpx/trace/event.hpp>

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace minihpx::trace {

enum class clock_kind : std::uint8_t
{
    steady = 0,     // std::chrono::steady_clock nanoseconds
    virtual_ = 1,   // sim virtual nanoseconds
};

// A fully-loaded trace: label events' aux indexes `strings` (index 0
// is reserved for "no label"). This is the analysis layer's input.
struct trace_data
{
    clock_kind clock = clock_kind::steady;
    std::vector<event> events;
    std::vector<std::string> strings{std::string{}};

    char const* label(std::uint64_t id) const noexcept
    {
        return id < strings.size() ? strings[id].c_str() : "";
    }
};

class mhtrace_writer
{
public:
    mhtrace_writer(std::ostream& out, clock_kind clock);
    ~mhtrace_writer();    // finishes (end marker) and flushes

    // Streams one event; label aux (a char const*) is interned.
    // Records accumulate in an internal buffer (one ostream write per
    // ~64 KiB, not per event) — call flush() before reading the
    // stream back.
    void write(event const& e);
    void flush();

    // Write the end-of-stream marker and flush. Idempotent; no events
    // may be written afterwards. The destructor calls this, so the
    // stream is complete once the writer is gone.
    void finish();

    std::uint64_t events_written() const noexcept { return events_; }

private:
    std::uint32_t intern(std::uint64_t pointer_aux);

    std::ostream& out_;
    std::vector<char> buf_;
    std::unordered_map<std::uint64_t, std::uint32_t> interned_;
    std::uint32_t next_string_id_ = 1;
    std::uint64_t events_ = 0;
    bool finished_ = false;
};

// Parse a complete .mhtrace stream. Returns false (with *error set,
// when non-null) on malformed input: bad magic, a truncated record, a
// stream that ends without the end marker (truncation at a record
// boundary), record counts disagreeing with the marker, trailing data
// after the marker, or a label event referencing an undefined string.
bool load_mhtrace(std::istream& in, trace_data& out, std::string* error);
bool load_mhtrace_file(
    std::string const& path, trace_data& out, std::string* error);

}    // namespace minihpx::trace
