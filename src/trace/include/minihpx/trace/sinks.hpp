// Trace event sinks: where a session's drained events go.
//
// Sinks consume *in-memory* events (label aux still holds the static
// `char const*`); each sink interns strings the way its format needs.
// consume() runs on the session's drain thread (or the sim host
// thread) — never on a scheduler hot path — so buffered stream I/O is
// fine here.
#pragma once

#include <minihpx/trace/event.hpp>
#include <minihpx/trace/format.hpp>

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

namespace minihpx::trace {

class trace_sink
{
public:
    virtual ~trace_sink() = default;
    virtual void consume(event const& e) = 0;
    virtual void close() {}
};

// Streams the binary .mhtrace format to a file.
class mhtrace_file_sink : public trace_sink
{
public:
    mhtrace_file_sink(std::string path, clock_kind clock);

    bool ok() const noexcept { return static_cast<bool>(out_); }
    void consume(event const& e) override;
    void close() override;

private:
    std::ofstream out_;
    std::unique_ptr<mhtrace_writer> writer_;
};

// Streams Chrome trace_event JSON (open in Perfetto or
// chrome://tracing): one B/E duration pair per execution slice on
// tid = worker, instant events for spawn/steal/wake, labels applied
// to slice names once seen.
class chrome_sink : public trace_sink
{
public:
    explicit chrome_sink(std::string path);

    bool ok() const noexcept { return static_cast<bool>(out_); }
    void consume(event const& e) override;
    void close() override;

private:
    void begin_slice(std::uint32_t worker, event const& e);
    void end_slice(std::uint32_t worker, std::uint64_t t_ns);

    std::ofstream out_;
    bool closed_ = false;
    // tid -> task id of the currently open slice (0 = none).
    std::unordered_map<std::uint32_t, std::uint64_t> open_;
    // task -> last label seen (static storage).
    std::unordered_map<std::uint64_t, char const*> labels_;
};

// In-process subscription: a callback per event, on the drain thread.
class subscription_sink : public trace_sink
{
public:
    using callback = std::function<void(event const&)>;

    explicit subscription_sink(callback cb)
      : callback_(std::move(cb))
    {
    }

    void consume(event const& e) override { callback_(e); }

private:
    callback callback_;
};

// Accumulates a trace_data in memory (interning labels) — the bridge
// from a live session to the analysis layer without touching disk.
class memory_sink : public trace_sink
{
public:
    explicit memory_sink(clock_kind clock) { data_.clock = clock; }

    void consume(event const& e) override;

    trace_data const& data() const noexcept { return data_; }
    trace_data take() noexcept { return std::move(data_); }

private:
    trace_data data_;
    std::unordered_map<std::uint64_t, std::uint64_t> interned_;
};

}    // namespace minihpx::trace
