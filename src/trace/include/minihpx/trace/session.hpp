// Command-line-driven trace session: turns --mh: options into an
// installed recorder with sinks attached.
//
//   --mh:trace                       enable tracing
//   --mh:trace-destination=DEST      "mhtrace:PATH", "chrome:PATH", or
//                                    a bare PATH (.json/.chrome ->
//                                    Chrome JSON, else .mhtrace);
//                                    default trace.mhtrace
//   --mh:trace-detail=LEVEL          tasks | sched (default) | verbose
//   --mh:trace-ring=N                events per worker lane
//
// The real-runtime `session` installs a recorder into the active
// runtime's scheduler, drains the per-worker lanes on a background
// thread, and registers the tracer's self-observation counters:
//
//   /trace{locality#H/total}/tasks/spawned     (H = perf::this_locality(),
//   /trace{locality#H/total}/events/recorded    spelled via
//   /trace{locality#H/total}/events/dropped     perf::locality_prefix)
//   /trace{locality#H/total}/overhead-pct
//
// A runtime::at_shutdown hook quiesces the session (uninstall, final
// drain, flush) before worker teardown — same contract as
// telemetry::session. `sim_session` is the single-threaded simulator
// variant: one lane, virtual timestamps, inline overflow drain, and a
// byte-deterministic event stream.
#pragma once

#include <minihpx/perf/registry.hpp>
#include <minihpx/trace/recorder.hpp>
#include <minihpx/trace/sinks.hpp>
#include <minihpx/util/cli.hpp>

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace minihpx {
    class scheduler;
}

namespace minihpx::sim {
    class simulator;
}

namespace minihpx::trace {

struct trace_options
{
    bool enabled = false;
    std::string destination = "trace.mhtrace";
    detail_level detail = detail_level::sched;
    std::size_t ring_capacity = 1u << 15;    // events per lane
    double drain_interval_ms = 2.0;
    bool autostart = true;

    static trace_options from_cli(util::cli_args const& args);
};

// DEST -> sink ("" -> nullptr). Shared by session, sim_session and the
// driver; reports unwritable paths through `error`.
std::shared_ptr<trace_sink> make_destination_sink(
    std::string const& destination, clock_kind clock, std::string* error);

// "tasks" | "sched" | "verbose" -> detail_level; anything else warns on
// stderr and falls back to the default (sched).
detail_level parse_detail_or_default(std::string const& text);

class session
{
public:
    session(perf::counter_registry& registry, trace_options options);
    ~session();

    session(session const&) = delete;
    session& operator=(session const&) = delete;

    // False when tracing is disabled or no runtime was active.
    bool active() const noexcept { return recorder_ != nullptr; }
    recorder* get_recorder() noexcept { return recorder_.get(); }

    // Attach sinks before start() (autostart=false path) or from the
    // constructor via options.destination.
    void add_sink(std::shared_ptr<trace_sink> sink);
    void subscribe(subscription_sink::callback cb);

    void start();
    void stop();    // uninstall, final drain, flush, close

    // ---- self-observation (the /trace{...} counters) ------------------
    std::uint64_t events_recorded() const noexcept;
    std::uint64_t events_dropped() const noexcept;
    std::uint64_t tasks_spawned() const noexcept;
    // 100 * events * calibrated per-event cost / total worker time.
    double overhead_pct() const noexcept;

private:
    void drain_loop();
    void drain_all();
    void register_counters();
    void unregister_counters();

    trace_options options_;
    perf::counter_registry& registry_;
    scheduler* sched_ = nullptr;
    std::shared_ptr<recorder> recorder_;
    double per_event_ns_ = 0.0;

    std::mutex sinks_mutex_;
    std::vector<std::shared_ptr<trace_sink>> sinks_;

    std::thread drain_thread_;
    std::mutex drain_mutex_;
    std::condition_variable drain_cv_;
    bool drain_stop_ = false;
    bool running_ = false;
    bool stopped_ = false;
    bool counters_registered_ = false;

    void* hooked_runtime_ = nullptr;
    std::uint64_t shutdown_token_ = 0;
};

// Simulator-side session: lane 0 only (one host thread), virtual
// timestamps, and an overflow handler that drains inline instead of
// dropping — so the recorded stream is complete and deterministic.
class sim_session
{
public:
    sim_session(sim::simulator& sim, trace_options options);
    ~sim_session();

    sim_session(sim_session const&) = delete;
    sim_session& operator=(sim_session const&) = delete;

    bool active() const noexcept { return recorder_ != nullptr; }
    recorder* get_recorder() noexcept { return recorder_.get(); }

    void add_sink(std::shared_ptr<trace_sink> sink);
    void subscribe(subscription_sink::callback cb);

    // Drain the lane and flush/close the sinks; uninstalls the tracer.
    // Idempotent; also run by the destructor.
    void finish();

private:
    void drain();

    sim::simulator& sim_;
    std::unique_ptr<recorder> recorder_;
    std::vector<std::shared_ptr<trace_sink>> sinks_;
    bool finished_ = false;
};

}    // namespace minihpx::trace
