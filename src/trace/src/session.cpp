#include <minihpx/trace/session.hpp>

#include <minihpx/perf/basic_counters.hpp>
#include <minihpx/runtime/runtime.hpp>
#include <minihpx/runtime/scheduler.hpp>
#include <minihpx/sim/simulator.hpp>

#include <chrono>
#include <iostream>
#include <utility>

namespace minihpx::trace {

namespace {

    char const* const trace_counter_keys[] = {
        "/trace/tasks/spawned",
        "/trace/events/recorded",
        "/trace/events/dropped",
        "/trace/overhead-pct",
    };

    void register_trace_type(perf::counter_registry& registry,
        std::string key, perf::counter_kind kind, std::string unit,
        std::string help, perf::value_source source)
    {
        perf::counter_registry::type_info t;
        t.type_key = std::move(key);
        t.kind = kind;
        t.unit_of_measure = unit;
        t.helptext = std::move(help);
        t.create = [source = std::move(source), kind, unit](
                       perf::counter_path const& path) -> perf::counter_ptr {
            perf::counter_info info;
            info.full_name = path.full_name();
            info.kind = kind;
            info.unit_of_measure = unit;
            if (kind == perf::counter_kind::monotonically_increasing)
                return std::make_shared<perf::delta_counter>(
                    std::move(info), source);
            return std::make_shared<perf::gauge_counter>(
                std::move(info), source);
        };
        registry.register_type(std::move(t));
    }

    bool has_prefix(std::string const& s, std::string_view prefix)
    {
        return s.size() > prefix.size() &&
            s.compare(0, prefix.size(), prefix) == 0;
    }

    bool has_suffix(std::string const& s, std::string_view suffix)
    {
        return s.size() >= suffix.size() &&
            s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
    }

    // Measure the amortized cost of one hot-path emit so overhead-pct
    // can relate event volume to worker time without any timing on the
    // real hot path.
    double calibrate_per_event_ns()
    {
        // One full producer+consumer round trip per event, including
        // the timestamp read the real emit sites pay, drained in the
        // same batch size a healthy session uses — without the drain
        // half the ring saturates and the loop only measures the
        // drop path.
        constexpr std::size_t n = 16384;
        constexpr std::size_t batch = 1024;
        recorder probe(1, batch, detail_level::verbose);
        event e{};
        e.kind = static_cast<std::uint16_t>(event_kind::begin);
        auto const t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i != n; ++i)
        {
            e.t_ns = static_cast<std::uint64_t>(
                std::chrono::steady_clock::now()
                    .time_since_epoch()
                    .count());
            probe.emit(0, e);
            if (i % batch == batch - 1)
                probe.drain(0, [](event const&) {});
        }
        auto const t1 = std::chrono::steady_clock::now();
        return static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       t1 - t0)
                       .count()) /
            static_cast<double>(n);
    }

}    // namespace

detail_level parse_detail_or_default(std::string const& text)
{
    if (text == "tasks")
        return detail_level::tasks;
    if (text == "verbose")
        return detail_level::verbose;
    if (!text.empty() && text != "sched")
        std::cerr << "minihpx: unknown --mh:trace-detail '" << text
                  << "', using 'sched'\n";
    return detail_level::sched;
}

trace_options trace_options::from_cli(util::cli_args const& args)
{
    trace_options options;
    options.enabled = args.flag("mh:trace");
    options.destination =
        args.value_or("mh:trace-destination", options.destination);
    options.detail =
        parse_detail_or_default(args.value_or("mh:trace-detail", "sched"));
    options.ring_capacity = static_cast<std::size_t>(args.int_or(
        "mh:trace-ring", static_cast<std::int64_t>(options.ring_capacity)));
    return options;
}

std::shared_ptr<trace_sink> make_destination_sink(
    std::string const& destination, clock_kind clock, std::string* error)
{
    if (destination.empty())
        return nullptr;

    std::string path = destination;
    bool chrome = false;
    if (has_prefix(destination, "mhtrace:"))
        path = destination.substr(8);
    else if (has_prefix(destination, "chrome:"))
    {
        path = destination.substr(7);
        chrome = true;
    }
    else if (has_suffix(destination, ".json") ||
        has_suffix(destination, ".chrome"))
        chrome = true;

    if (chrome)
    {
        auto sink = std::make_shared<chrome_sink>(path);
        if (!sink->ok() && error)
            *error = "cannot open trace destination '" + path + "'";
        return sink->ok() ? sink : nullptr;
    }
    auto sink = std::make_shared<mhtrace_file_sink>(path, clock);
    if (!sink->ok() && error)
        *error = "cannot open trace destination '" + path + "'";
    return sink->ok() ? sink : nullptr;
}

// -------------------------------------------------------------- session

session::session(perf::counter_registry& registry, trace_options options)
  : options_(std::move(options))
  , registry_(registry)
{
    if (!options_.enabled)
        return;

    runtime* rt = runtime::get_ptr();
    if (!rt)
    {
        std::cerr << "minihpx: trace: no active runtime, tracing disabled\n";
        return;
    }
    sched_ = &rt->get_scheduler();

    per_event_ns_ = calibrate_per_event_ns();
    recorder_ = std::make_shared<recorder>(
        sched_->num_workers(), options_.ring_capacity, options_.detail);

    std::string error;
    if (auto sink = make_destination_sink(
            options_.destination, clock_kind::steady, &error))
        sinks_.push_back(std::move(sink));
    if (!error.empty())
        std::cerr << "minihpx: trace: " << error << '\n';

    register_counters();

    // Quiesce before the runtime tears down workers: uninstall the
    // recorder, drain what remains, flush the sinks.
    hooked_runtime_ = rt;
    shutdown_token_ = rt->at_shutdown([this] { stop(); });

    if (options_.autostart)
        start();
}

session::~session()
{
    stop();
    if (hooked_runtime_ && runtime::get_ptr() == hooked_runtime_)
        static_cast<runtime*>(hooked_runtime_)
            ->remove_shutdown_hook(shutdown_token_);
}

void session::add_sink(std::shared_ptr<trace_sink> sink)
{
    if (!sink)
        return;
    std::lock_guard<std::mutex> lock(sinks_mutex_);
    sinks_.push_back(std::move(sink));
}

void session::subscribe(subscription_sink::callback cb)
{
    add_sink(std::make_shared<subscription_sink>(std::move(cb)));
}

void session::start()
{
    if (!recorder_ || running_ || stopped_)
        return;
    running_ = true;
    sched_->set_tracer(recorder_);
    drain_thread_ = std::thread([this] { drain_loop(); });
}

void session::stop()
{
    if (!recorder_ || stopped_)
        return;
    stopped_ = true;

    if (running_)
    {
        // Uninstall first: workers stop emitting, then one final drain
        // collects everything already published.
        sched_->set_tracer(nullptr);
        {
            std::lock_guard<std::mutex> lock(drain_mutex_);
            drain_stop_ = true;
        }
        drain_cv_.notify_all();
        if (drain_thread_.joinable())
            drain_thread_.join();
        drain_all();
        running_ = false;
    }

    {
        std::lock_guard<std::mutex> lock(sinks_mutex_);
        for (auto const& sink : sinks_)
            sink->close();
    }
    unregister_counters();
}

void session::drain_loop()
{
    auto const interval =
        std::chrono::duration<double, std::milli>(options_.drain_interval_ms);
    std::unique_lock<std::mutex> lock(drain_mutex_);
    while (!drain_stop_)
    {
        drain_cv_.wait_for(lock, interval);
        if (drain_stop_)
            break;
        lock.unlock();
        drain_all();
        lock.lock();
    }
}

void session::drain_all()
{
    std::lock_guard<std::mutex> lock(sinks_mutex_);
    for (std::uint32_t lane = 0; lane != recorder_->lanes(); ++lane)
    {
        recorder_->drain(lane, [&](event const& e) {
            for (auto const& sink : sinks_)
                sink->consume(e);
        });
    }
}

std::uint64_t session::events_recorded() const noexcept
{
    return recorder_ ? recorder_->events_recorded() : 0;
}

std::uint64_t session::events_dropped() const noexcept
{
    return recorder_ ? recorder_->events_dropped() : 0;
}

std::uint64_t session::tasks_spawned() const noexcept
{
    return recorder_ ? recorder_->tasks_spawned() : 0;
}

double session::overhead_pct() const noexcept
{
    if (!recorder_ || !sched_)
        return 0.0;
    std::uint64_t const total = sched_->aggregate().total_time_ns;
    if (total == 0)
        return 0.0;
    return 100.0 *
        (static_cast<double>(recorder_->events_recorded()) * per_event_ns_) /
        static_cast<double>(total);
}

void session::register_counters()
{
    using perf::counter_kind;
    auto const mono = counter_kind::monotonically_increasing;

    register_trace_type(registry_, "/trace/tasks/spawned", mono, "",
        "tasks whose spawn event the tracer recorded",
        [this] { return static_cast<double>(tasks_spawned()); });
    register_trace_type(registry_, "/trace/events/recorded", mono, "",
        "trace events accepted into the per-worker rings",
        [this] { return static_cast<double>(events_recorded()); });
    register_trace_type(registry_, "/trace/events/dropped", mono, "",
        "trace events dropped because a ring was full",
        [this] { return static_cast<double>(events_dropped()); });
    register_trace_type(registry_, "/trace/overhead-pct", counter_kind::raw,
        "%", "estimated tracing overhead relative to total worker time",
        [this] { return overhead_pct(); });
    counters_registered_ = true;
}

void session::unregister_counters()
{
    if (!counters_registered_)
        return;
    counters_registered_ = false;
    for (char const* key : trace_counter_keys)
        registry_.unregister_type(key);
}

// ---------------------------------------------------------- sim_session

sim_session::sim_session(sim::simulator& sim, trace_options options)
  : sim_(sim)
{
    if (!options.enabled)
        return;

    recorder_ = std::make_unique<recorder>(
        1, options.ring_capacity, options.detail);
    // The simulator runs on one host thread, so a would-drop push can
    // simply drain inline: the stream stays complete *and* the drain
    // points are a deterministic function of the event sequence, which
    // keeps .mhtrace output byte-reproducible across runs.
    recorder_->set_overflow_handler([this] { drain(); });

    std::string error;
    if (auto sink = make_destination_sink(
            options.destination, clock_kind::virtual_, &error))
        sinks_.push_back(std::move(sink));
    if (!error.empty())
        std::cerr << "minihpx: trace: " << error << '\n';

    sim_.set_tracer(recorder_.get());
}

sim_session::~sim_session()
{
    finish();
}

void sim_session::add_sink(std::shared_ptr<trace_sink> sink)
{
    if (sink)
        sinks_.push_back(std::move(sink));
}

void sim_session::subscribe(subscription_sink::callback cb)
{
    add_sink(std::make_shared<subscription_sink>(std::move(cb)));
}

void sim_session::finish()
{
    if (finished_ || !recorder_)
        return;
    finished_ = true;
    sim_.set_tracer(nullptr);
    drain();
    for (auto const& sink : sinks_)
        sink->close();
}

void sim_session::drain()
{
    for (std::uint32_t lane = 0; lane != recorder_->lanes(); ++lane)
    {
        recorder_->drain(lane, [&](event const& e) {
            for (auto const& sink : sinks_)
                sink->consume(e);
        });
    }
}

}    // namespace minihpx::trace
