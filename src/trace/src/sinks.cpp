#include <minihpx/trace/sinks.hpp>

#include <minihpx/telemetry/sink.hpp>    // telemetry::json_escape

#include <cinttypes>
#include <cstdio>

namespace minihpx::trace {

// --------------------------------------------------- mhtrace_file_sink

mhtrace_file_sink::mhtrace_file_sink(std::string path, clock_kind clock)
  : out_(path, std::ios::binary | std::ios::trunc)
{
    if (out_)
        writer_ = std::make_unique<mhtrace_writer>(out_, clock);
}

void mhtrace_file_sink::consume(event const& e)
{
    if (writer_)
        writer_->write(e);
}

void mhtrace_file_sink::close()
{
    writer_.reset();    // flushes buffered records
    if (out_.is_open())
        out_.close();
}

// --------------------------------------------------------- chrome_sink

namespace {

    // Microsecond timestamps with ns precision (the trace_event unit).
    std::string chrome_ts(std::uint64_t t_ns)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", t_ns / 1000,
            static_cast<unsigned>(t_ns % 1000));
        return buf;
    }

    std::string worker_tid(std::uint32_t worker)
    {
        return worker == external_worker ? std::string("9999") :
                                           std::to_string(worker);
    }

}    // namespace

chrome_sink::chrome_sink(std::string path)
  : out_(path, std::ios::trunc)
{
    if (out_)
        out_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
             << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                "\"args\":{\"name\":\"minihpx\"}}";
}

void chrome_sink::begin_slice(std::uint32_t worker, event const& e)
{
    auto const it = labels_.find(e.task);
    std::string name = it != labels_.end() ?
        telemetry::json_escape(it->second) :
        "task#" + std::to_string(e.task);
    out_ << ",\n{\"name\":\"" << name << "\",\"ph\":\"B\",\"pid\":0,\"tid\":"
         << worker_tid(worker) << ",\"ts\":" << chrome_ts(e.t_ns)
         << ",\"args\":{\"task\":" << e.task << "}}";
    open_[worker] = e.task;
}

void chrome_sink::end_slice(std::uint32_t worker, std::uint64_t t_ns)
{
    auto const it = open_.find(worker);
    if (it == open_.end() || it->second == 0)
        return;
    out_ << ",\n{\"ph\":\"E\",\"pid\":0,\"tid\":" << worker_tid(worker)
         << ",\"ts\":" << chrome_ts(t_ns) << "}";
    it->second = 0;
}

void chrome_sink::consume(event const& e)
{
    if (!out_ || closed_)
        return;
    switch (static_cast<event_kind>(e.kind))
    {
    case event_kind::begin:
        // A lost end (detail filtering, drops) leaves a slice open on
        // this tid; close it at the new slice's start so B/E stay
        // balanced per thread.
        end_slice(e.worker, e.t_ns);
        begin_slice(e.worker, e);
        break;

    case event_kind::end:
    case event_kind::suspend:
    case event_kind::yield:
        end_slice(e.worker, e.t_ns);
        break;

    case event_kind::spawn:
        out_ << ",\n{\"name\":\"spawn\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
                "\"tid\":"
             << worker_tid(e.worker) << ",\"ts\":" << chrome_ts(e.t_ns)
             << ",\"args\":{\"task\":" << e.task << ",\"parent\":" << e.aux
             << "}}";
        break;

    case event_kind::steal:
        out_ << ",\n{\"name\":\"steal\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
                "\"tid\":"
             << worker_tid(e.worker) << ",\"ts\":" << chrome_ts(e.t_ns)
             << ",\"args\":{\"task\":" << e.task << ",\"victim\":" << e.aux
             << "}}";
        break;

    case event_kind::resume:
        out_ << ",\n{\"name\":\"wake\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
                "\"tid\":"
             << worker_tid(e.worker) << ",\"ts\":" << chrome_ts(e.t_ns)
             << ",\"args\":{\"task\":" << e.task << ",\"waker\":" << e.aux
             << "}}";
        break;

    case event_kind::label:
    {
        char const* label = reinterpret_cast<char const*>(
            static_cast<std::uintptr_t>(e.aux));
        if (label)
            labels_[e.task] = label;
        break;
    }
    }
}

void chrome_sink::close()
{
    if (!out_ || closed_)
        return;
    closed_ = true;
    out_ << "\n]}\n";
    out_.close();
}

// --------------------------------------------------------- memory_sink

void memory_sink::consume(event const& e)
{
    event copy = e;
    if (static_cast<event_kind>(e.kind) == event_kind::label && e.aux != 0)
    {
        auto const [it, inserted] =
            interned_.try_emplace(e.aux, data_.strings.size());
        if (inserted)
            data_.strings.emplace_back(reinterpret_cast<char const*>(
                static_cast<std::uintptr_t>(e.aux)));
        copy.aux = it->second;
    }
    data_.events.push_back(copy);
}

}    // namespace minihpx::trace
