#include <minihpx/trace/format.hpp>

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace minihpx::trace {

namespace {

    constexpr char magic[8] = {'M', 'H', 'T', 'R', 'A', 'C', 'E', '1'};
    constexpr std::uint8_t tag_event = 1;
    constexpr std::uint8_t tag_string = 2;
    constexpr std::uint8_t tag_end = 3;

    template <typename T>
    char* put_le(char* p, T v)
    {
        for (std::size_t i = 0; i < sizeof(T); ++i)
            *p++ = static_cast<char>((v >> (8 * i)) & 0xff);
        return p;
    }

    bool get_u8(std::istream& in, std::uint8_t& v)
    {
        int const c = in.get();
        if (c == std::char_traits<char>::eof())
            return false;
        v = static_cast<std::uint8_t>(c);
        return true;
    }

    template <typename T>
    bool get_le(std::istream& in, T& v)
    {
        unsigned char bytes[sizeof(T)];
        if (!in.read(reinterpret_cast<char*>(bytes), sizeof(T)))
            return false;
        v = 0;
        for (std::size_t i = 0; i < sizeof(T); ++i)
            v |= static_cast<T>(bytes[i]) << (8 * i);
        return true;
    }

    bool set_error(std::string* error, char const* message)
    {
        if (error)
            *error = message;
        return false;
    }

}    // namespace

namespace {
    // Flush threshold: one ostream write per this many bytes instead
    // of per record (the drain thread often shares a core with the
    // workers, so per-record stream overhead is run overhead).
    constexpr std::size_t writer_buffer_bytes = 64 * 1024;
}    // namespace

mhtrace_writer::mhtrace_writer(std::ostream& out, clock_kind clock)
  : out_(out)
{
    buf_.reserve(writer_buffer_bytes + 64);
    buf_.insert(buf_.end(), magic, magic + sizeof(magic));
    buf_.push_back(static_cast<char>(clock));
}

mhtrace_writer::~mhtrace_writer()
{
    finish();
}

void mhtrace_writer::finish()
{
    if (finished_)
        return;
    finished_ = true;
    buf_.push_back(static_cast<char>(tag_end));
    char rec[sizeof(events_) + sizeof(next_string_id_)];
    char* p = put_le(rec, events_);
    p = put_le(p, next_string_id_ - 1);    // string records written
    buf_.insert(buf_.end(), rec, rec + (p - rec));
    flush();
}

void mhtrace_writer::flush()
{
    if (!buf_.empty())
    {
        out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
        buf_.clear();
    }
}

std::uint32_t mhtrace_writer::intern(std::uint64_t pointer_aux)
{
    if (pointer_aux == 0)
        return 0;
    auto const [it, inserted] =
        interned_.try_emplace(pointer_aux, next_string_id_);
    if (inserted)
    {
        ++next_string_id_;
        char const* s = reinterpret_cast<char const*>(
            static_cast<std::uintptr_t>(pointer_aux));
        auto const len =
            static_cast<std::uint32_t>(std::strlen(s));
        buf_.push_back(static_cast<char>(tag_string));
        char rec[sizeof(it->second) + sizeof(len)];
        char* p = put_le(rec, it->second);
        p = put_le(p, len);
        buf_.insert(buf_.end(), rec, rec + (p - rec));
        buf_.insert(buf_.end(), s, s + len);
    }
    return it->second;
}

void mhtrace_writer::write(event const& e)
{
    std::uint64_t aux = e.aux;
    if (static_cast<event_kind>(e.kind) == event_kind::label)
        aux = intern(e.aux);
    // One buffered write per event: the drain thread shares a core
    // with the workers on small machines, so per-event stream overhead
    // is wall-clock overhead.
    char rec[1 + sizeof(e.kind) + sizeof(e.worker) + sizeof(e.t_ns) +
        sizeof(e.task) + sizeof(aux)];
    char* p = rec;
    *p++ = static_cast<char>(tag_event);
    p = put_le(p, e.kind);
    p = put_le(p, e.worker);
    p = put_le(p, e.t_ns);
    p = put_le(p, e.task);
    p = put_le(p, aux);
    buf_.insert(buf_.end(), rec, rec + (p - rec));
    if (buf_.size() >= writer_buffer_bytes)
        flush();
    ++events_;
}

bool load_mhtrace(std::istream& in, trace_data& out, std::string* error)
{
    char header[sizeof(magic)];
    if (!in.read(header, sizeof(header)) ||
        std::memcmp(header, magic, sizeof(magic)) != 0)
        return set_error(error, "not an .mhtrace file (bad magic)");
    std::uint8_t clock = 0;
    if (!get_u8(in, clock) || clock > 1)
        return set_error(error, "unsupported clock kind");
    out.clock = static_cast<clock_kind>(clock);
    out.events.clear();
    out.strings.assign(1, std::string{});

    std::uint64_t strings_read = 0;
    bool saw_end = false;
    std::uint8_t tag = 0;
    while (get_u8(in, tag))
    {
        if (tag == tag_event)
        {
            event e;
            if (!get_le(in, e.kind) || !get_le(in, e.worker) ||
                !get_le(in, e.t_ns) || !get_le(in, e.task) ||
                !get_le(in, e.aux))
                return set_error(error, "truncated event record");
            out.events.push_back(e);
        }
        else if (tag == tag_string)
        {
            std::uint32_t id = 0;
            std::uint32_t len = 0;
            if (!get_le(in, id) || !get_le(in, len))
                return set_error(error, "truncated string record");
            if (id == 0)
                return set_error(error, "string record redefines id 0");
            if (len > (1u << 20))
                return set_error(error, "string record too long");
            std::string s(len, '\0');
            if (len != 0 && !in.read(s.data(), len))
                return set_error(error, "truncated string record");
            if (id >= out.strings.size())
                out.strings.resize(id + 1);
            out.strings[id] = std::move(s);
            ++strings_read;
        }
        else if (tag == tag_end)
        {
            std::uint64_t events_declared = 0;
            std::uint32_t strings_declared = 0;
            if (!get_le(in, events_declared) ||
                !get_le(in, strings_declared))
                return set_error(error, "truncated end marker");
            if (events_declared != out.events.size() ||
                strings_declared != strings_read)
                return set_error(error,
                    "end marker disagrees with record counts "
                    "(corrupt or spliced trace)");
            if (in.get() != std::char_traits<char>::eof())
                return set_error(error, "data after end-of-stream marker");
            saw_end = true;
            break;
        }
        else
        {
            return set_error(error, "unknown record tag");
        }
    }
    if (!saw_end)
        return set_error(error,
            "truncated trace: stream ends without the end-of-stream "
            "marker (writer died mid-run or the file was cut)");
    // Label events must resolve inside the loaded string table — the
    // writer defines every string before its first use, so a dangling
    // reference means corruption, not a benign unlabeled task.
    for (event const& e : out.events)
    {
        if (static_cast<event_kind>(e.kind) == event_kind::label &&
            e.aux >= out.strings.size())
            return set_error(
                error, "label event references an undefined string");
    }
    return true;
}

bool load_mhtrace_file(
    std::string const& path, trace_data& out, std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return set_error(error, "cannot open trace file");
    return load_mhtrace(in, out, error);
}

}    // namespace minihpx::trace
