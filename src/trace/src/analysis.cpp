#include <minihpx/trace/analysis.hpp>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace minihpx::trace {

namespace {

    struct task_state
    {
        double path = 0.0;           // longest chain ending at this task now
        std::int64_t node = -1;      // chain node for `path` (see chain_node)
        std::uint64_t parent = 0;
        std::uint64_t last_t = 0;  // slice start / last charge point
        bool running = false;
        bool ended = false;
        std::uint64_t exec_ns = 0;     // unscaled execution total
        double scaled_exec = 0.0;      // scaled execution total
        std::uint64_t label_id = 0;    // last label (trace_data string id)
        double scale = 1.0;            // what-if factor (1 = unchanged)
    };

    struct slice
    {
        std::uint32_t worker;
        std::uint64_t begin_ns;
        std::uint64_t end_ns;
    };

    // One entry per chain-extending edge (spawn, wake). A task can sit
    // on the critical path more than once — a parent runs before the
    // spawn and again after the join — so the chain is a list of
    // *visits*, not a per-task predecessor pointer.
    struct chain_node
    {
        std::uint64_t task;
        std::int64_t pred;    // index into sweep_result::nodes, -1 = root
    };

    struct sweep_result
    {
        std::unordered_map<std::uint64_t, task_state> tasks;
        std::vector<chain_node> nodes;
        std::vector<slice> slices;
        std::uint64_t steals = 0;
        std::uint64_t t_first = 0;
        std::uint64_t t_last = 0;
        double span = 0.0;
        std::int64_t span_node = -1;    // argmax chain endpoint
        double work_scaled = 0.0;
        std::uint64_t work_ns = 0;
    };

    // Slices are opened by begin in push order; a close event finds the
    // most recent open slice of its worker (a worker runs one task at a
    // time, so this is the matching one).
    void close_slice(
        std::vector<slice>& slices, std::uint32_t worker, std::uint64_t t)
    {
        for (auto it = slices.rbegin(); it != slices.rend(); ++it)
        {
            if (it->worker != worker)
                continue;
            if (it->end_ns == it->begin_ns)
                it->end_ns = t;
            return;    // most recent slice of this worker decides
        }
    }

    // One time-ordered pass over the events, maintaining per-task
    // longest-chain lengths. `rescale` assigns each task's slice-time
    // factor the moment its label becomes known (what-if); the default
    // pass keeps every factor at 1.
    template <typename Rescale>
    sweep_result sweep(trace_data const& data, Rescale&& rescale)
    {
        // Stable sort by timestamp: ties keep file order, which is the
        // causal emission order (exact under the sim's single lane).
        std::vector<std::uint32_t> order(data.events.size());
        std::iota(order.begin(), order.end(), 0u);
        std::stable_sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
                return data.events[a].t_ns < data.events[b].t_ns;
            });

        sweep_result r;
        if (!data.events.empty())
        {
            r.t_first = data.events[order.front()].t_ns;
            r.t_last = data.events[order.back()].t_ns;
        }

        auto charge = [&](task_state& ts, std::uint64_t t) {
            if (!ts.running || t <= ts.last_t)
                return;
            std::uint64_t const d = t - ts.last_t;
            ts.exec_ns += d;
            ts.scaled_exec += static_cast<double>(d) * ts.scale;
            ts.path += static_cast<double>(d) * ts.scale;
            ts.last_t = t;
        };

        // Current chain node of a task, materializing one lazily for
        // tasks first seen as edge sources (the root, truncated traces).
        auto node_of = [&](task_state& ts, std::uint64_t id) {
            if (ts.node < 0)
            {
                ts.node = static_cast<std::int64_t>(r.nodes.size());
                r.nodes.push_back({id, -1});
            }
            return ts.node;
        };

        auto track_span = [&](task_state& ts, std::uint64_t id) {
            if (ts.path > r.span)
            {
                r.span = ts.path;
                r.span_node = node_of(ts, id);
            }
        };

        for (std::uint32_t idx : order)
        {
            event const& e = data.events[idx];
            task_state& ts = r.tasks[e.task];
            switch (static_cast<event_kind>(e.kind))
            {
            case event_kind::spawn:
            {
                ts.parent = e.aux;
                if (e.aux != 0)
                {
                    // note: operator[] may rehash; re-fetch ts after.
                    task_state& parent = r.tasks[e.aux];
                    charge(parent, e.t_ns);
                    std::int64_t const pn = node_of(parent, e.aux);
                    task_state& child = r.tasks[e.task];
                    child.path = parent.path;
                    child.node = static_cast<std::int64_t>(r.nodes.size());
                    r.nodes.push_back({e.task, pn});
                }
                break;
            }

            case event_kind::begin:
                ts.running = true;
                ts.last_t = e.t_ns;
                r.slices.push_back(
                    {e.worker, e.t_ns, e.t_ns});    // end patched below
                break;

            case event_kind::end:
                charge(ts, e.t_ns);
                ts.running = false;
                ts.ended = true;
                close_slice(r.slices, e.worker, e.t_ns);
                track_span(ts, e.task);
                break;

            case event_kind::suspend:
            case event_kind::yield:
                charge(ts, e.t_ns);
                ts.running = false;
                close_slice(r.slices, e.worker, e.t_ns);
                track_span(ts, e.task);
                break;

            case event_kind::resume:
            {
                if (e.aux != 0)
                {
                    task_state& waker = r.tasks[e.aux];
                    charge(waker, e.t_ns);
                    std::int64_t const wn = node_of(waker, e.aux);
                    task_state& woken = r.tasks[e.task];
                    if (waker.path > woken.path)
                    {
                        woken.path = waker.path;
                        woken.node =
                            static_cast<std::int64_t>(r.nodes.size());
                        r.nodes.push_back({e.task, wn});
                    }
                }
                break;
            }

            case event_kind::steal:
                ++r.steals;
                break;

            case event_kind::label:
                charge(ts, e.t_ns);
                ts.label_id = e.aux;
                ts.scale = rescale(data, ts.label_id);
                break;
            }
        }

        for (auto& [id, ts] : r.tasks)
        {
            // Truncated traces: tasks still running at the last event
            // contribute what they executed so far.
            charge(ts, r.t_last);
            track_span(ts, id);
            r.work_ns += ts.exec_ns;
            r.work_scaled += ts.scaled_exec;
        }
        return r;
    }

}    // namespace

analysis_result analyze(trace_data const& data, unsigned util_bins)
{
    analysis_result out;
    sweep_result r =
        sweep(data, [](trace_data const&, std::uint64_t) { return 1.0; });

    out.events = data.events.size();
    out.tasks = r.tasks.size();
    out.steals = r.steals;
    out.t_first_ns = r.t_first;
    out.t_last_ns = r.t_last;
    out.makespan_ns = r.t_last - r.t_first;
    out.work_ns = r.work_ns;
    out.span_ns = static_cast<std::uint64_t>(r.span);
    out.parallelism = out.span_ns ?
        static_cast<double>(out.work_ns) /
            static_cast<double>(out.span_ns) :
        0.0;
    for (auto const& [id, ts] : r.tasks)
        out.tasks_ended += ts.ended;

    // Critical path: walk chain nodes back from the span endpoint
    // (pred indexes are strictly decreasing, so this terminates). A
    // task appears once per visit — e.g. before a spawn and again
    // after the join — with consecutive repeats collapsed.
    for (std::int64_t cursor = r.span_node; cursor >= 0;
        cursor = r.nodes[static_cast<std::size_t>(cursor)].pred)
    {
        std::uint64_t const task =
            r.nodes[static_cast<std::size_t>(cursor)].task;
        if (!out.critical_path.empty() &&
            out.critical_path.back().task == task)
            continue;
        auto const it = r.tasks.find(task);
        if (it == r.tasks.end())
            break;
        critical_step step;
        step.task = task;
        step.parent = it->second.parent;
        step.label = data.label(it->second.label_id);
        step.exec_ns = it->second.exec_ns;
        out.critical_path.push_back(std::move(step));
    }
    std::reverse(out.critical_path.begin(), out.critical_path.end());

    // Per-worker utilization.
    std::uint32_t max_worker = 0;
    for (auto const& s : r.slices)
        if (s.worker != external_worker)
            max_worker = std::max(max_worker, s.worker);
    if (!r.slices.empty() && out.makespan_ns > 0)
    {
        std::size_t const n = static_cast<std::size_t>(max_worker) + 1;
        out.worker_busy.assign(n, 0.0);
        if (util_bins == 0)
            util_bins = 1;
        out.bin_ns = (out.makespan_ns + util_bins - 1) / util_bins;
        out.utilization.assign(n, std::vector<double>(util_bins, 0.0));
        for (auto const& s : r.slices)
        {
            if (s.worker == external_worker || s.end_ns <= s.begin_ns)
                continue;
            out.worker_busy[s.worker] +=
                static_cast<double>(s.end_ns - s.begin_ns);
            // Spread the slice over the bins it covers.
            std::uint64_t lo = s.begin_ns - out.t_first_ns;
            std::uint64_t const hi = s.end_ns - out.t_first_ns;
            while (lo < hi)
            {
                std::uint64_t const bin = lo / out.bin_ns;
                std::uint64_t const bin_end =
                    std::min(hi, (bin + 1) * out.bin_ns);
                if (bin < util_bins)
                    out.utilization[s.worker][bin] +=
                        static_cast<double>(bin_end - lo) /
                        static_cast<double>(out.bin_ns);
                lo = bin_end;
            }
        }
        for (double& busy : out.worker_busy)
            busy /= static_cast<double>(out.makespan_ns);
        out.workers = n;
    }
    return out;
}

whatif_result project_whatif(trace_data const& data,
    std::string_view label_substr, double speedup_factor, unsigned workers)
{
    whatif_result out;
    out.speedup_factor = speedup_factor <= 0.0 ? 1.0 : speedup_factor;

    sweep_result base =
        sweep(data, [](trace_data const&, std::uint64_t) { return 1.0; });

    double const factor = 1.0 / out.speedup_factor;
    auto matches = [&](trace_data const& d, std::uint64_t label_id) {
        if (label_id == 0 || label_id >= d.strings.size())
            return false;
        return d.strings[label_id].find(label_substr) != std::string::npos;
    };
    sweep_result what =
        sweep(data, [&](trace_data const& d, std::uint64_t label_id) {
            return matches(d, label_id) ? factor : 1.0;
        });

    for (auto const& [id, ts] : what.tasks)
    {
        if (ts.scale != 1.0)
        {
            ++out.matched_tasks;
            out.matched_exec_ns += ts.exec_ns;
        }
    }

    if (workers == 0)
    {
        std::unordered_set<std::uint32_t> seen;
        for (auto const& s : base.slices)
            if (s.worker != external_worker)
                seen.insert(s.worker);
        workers = seen.empty() ? 1u : static_cast<unsigned>(seen.size());
    }
    out.workers = workers;

    auto brent = [&](double span, double work) {
        return static_cast<std::uint64_t>(
            std::max(span, work / static_cast<double>(workers)));
    };
    out.baseline_makespan_ns =
        brent(base.span, static_cast<double>(base.work_ns));
    out.projected_makespan_ns = brent(what.span, what.work_scaled);
    out.projected_speedup = out.projected_makespan_ns ?
        static_cast<double>(out.baseline_makespan_ns) /
            static_cast<double>(out.projected_makespan_ns) :
        0.0;
    return out;
}

}    // namespace minihpx::trace
