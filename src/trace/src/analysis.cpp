#include <minihpx/trace/analysis.hpp>
#include <minihpx/trace/detail/sweep.hpp>

#include <algorithm>
#include <cmath>
#include <string_view>

namespace minihpx::trace {

using detail::sweep;
using detail::sweep_result;

analysis_result analyze(trace_data const& data, unsigned util_bins)
{
    analysis_result out;
    sweep_result r =
        sweep(data, [](trace_data const&, std::uint64_t) { return 1.0; });

    out.events = data.events.size();
    out.tasks = r.tasks.size();
    out.steals = r.steals;
    out.t_first_ns = r.t_first;
    out.t_last_ns = r.t_last;
    out.makespan_ns = r.t_last - r.t_first;
    out.work_ns = r.work_ns;
    out.span_ns = static_cast<std::uint64_t>(r.span);
    out.parallelism = out.span_ns ?
        static_cast<double>(out.work_ns) /
            static_cast<double>(out.span_ns) :
        0.0;
    for (auto const& [id, ts] : r.tasks)
        out.tasks_ended += ts.ended;

    // Critical path: walk chain nodes back from the span endpoint
    // (pred indexes are strictly decreasing, so this terminates). A
    // task appears once per visit — e.g. before a spawn and again
    // after the join — with consecutive repeats collapsed.
    for (std::int64_t cursor = r.span_node; cursor >= 0;
        cursor = r.nodes[static_cast<std::size_t>(cursor)].pred)
    {
        std::uint64_t const task =
            r.nodes[static_cast<std::size_t>(cursor)].task;
        if (!out.critical_path.empty() &&
            out.critical_path.back().task == task)
            continue;
        auto const it = r.tasks.find(task);
        if (it == r.tasks.end())
            break;
        critical_step step;
        step.task = task;
        step.parent = it->second.parent;
        step.label = data.label(it->second.label_id);
        step.exec_ns = it->second.exec_ns;
        out.critical_path.push_back(std::move(step));
    }
    std::reverse(out.critical_path.begin(), out.critical_path.end());

    // Per-worker utilization.
    std::uint32_t max_worker = 0;
    for (auto const& s : r.slices)
        if (s.worker != external_worker)
            max_worker = std::max(max_worker, s.worker);
    if (!r.slices.empty() && out.makespan_ns > 0)
    {
        std::size_t const n = static_cast<std::size_t>(max_worker) + 1;
        out.worker_busy.assign(n, 0.0);
        if (util_bins == 0)
            util_bins = 1;
        out.bin_ns = (out.makespan_ns + util_bins - 1) / util_bins;
        out.utilization.assign(n, std::vector<double>(util_bins, 0.0));
        for (auto const& s : r.slices)
        {
            if (s.worker == external_worker || s.end_ns <= s.begin_ns)
                continue;
            out.worker_busy[s.worker] +=
                static_cast<double>(s.end_ns - s.begin_ns);
            // Spread the slice over the bins it covers.
            std::uint64_t lo = s.begin_ns - out.t_first_ns;
            std::uint64_t const hi = s.end_ns - out.t_first_ns;
            while (lo < hi)
            {
                std::uint64_t const bin = lo / out.bin_ns;
                std::uint64_t const bin_end =
                    std::min(hi, (bin + 1) * out.bin_ns);
                if (bin < util_bins)
                    out.utilization[s.worker][bin] +=
                        static_cast<double>(bin_end - lo) /
                        static_cast<double>(out.bin_ns);
                lo = bin_end;
            }
        }
        for (double& busy : out.worker_busy)
            busy /= static_cast<double>(out.makespan_ns);
        out.workers = n;
    }
    return out;
}

whatif_result project_whatif(trace_data const& data,
    std::string_view label_substr, double speedup_factor, unsigned workers)
{
    whatif_result out;
    out.speedup_factor = speedup_factor <= 0.0 ? 1.0 : speedup_factor;

    sweep_result base =
        sweep(data, [](trace_data const&, std::uint64_t) { return 1.0; });

    double const factor = 1.0 / out.speedup_factor;
    auto matches = [&](trace_data const& d, std::uint64_t label_id) {
        if (label_id == 0 || label_id >= d.strings.size())
            return false;
        return d.strings[label_id].find(label_substr) != std::string::npos;
    };
    sweep_result what =
        sweep(data, [&](trace_data const& d, std::uint64_t label_id) {
            return matches(d, label_id) ? factor : 1.0;
        });

    for (auto const& [id, ts] : what.tasks)
    {
        if (ts.scale != 1.0)
        {
            ++out.matched_tasks;
            out.matched_exec_ns += ts.exec_ns;
        }
    }

    if (workers == 0)
        workers = detail::observed_workers(base);
    out.workers = workers;

    auto brent = [&](double span, double work) {
        return static_cast<std::uint64_t>(
            std::max(span, work / static_cast<double>(workers)));
    };
    out.baseline_makespan_ns =
        brent(base.span, static_cast<double>(base.work_ns));
    out.projected_makespan_ns = brent(what.span, what.work_scaled);
    out.projected_speedup = out.projected_makespan_ns ?
        static_cast<double>(out.baseline_makespan_ns) /
            static_cast<double>(out.projected_makespan_ns) :
        0.0;
    return out;
}

}    // namespace minihpx::trace
