#include <minihpx/baseline/std_engine.hpp>

namespace minihpx::baseline {

std_engine_stats& get_std_engine_stats() noexcept
{
    static std_engine_stats stats;
    return stats;
}

}    // namespace minihpx::baseline
