// The "C++11 Standard" baseline engine.
//
// Reproduces what the paper measures against: GCC libstdc++'s
// std::async, which "constructs, executes, and destroys an OS thread
// for every task" (§II). We wrap real std::thread-per-task execution
// behind the same Engine interface the Inncabs benchmarks use, with the
// instrumentation needed for Table I's "Baseline tasks" column and live
// OS-thread census (the paper observes 80k-97k live pthreads at the
// point of failure).
#pragma once

#include <minihpx/work.hpp>

#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace minihpx::baseline {

// Global tallies for the std engine (one experiment at a time).
struct std_engine_stats
{
    std::atomic<std::uint64_t> tasks_launched{0};
    std::atomic<std::int64_t> threads_live{0};
    std::atomic<std::int64_t> threads_live_peak{0};

    void reset() noexcept
    {
        tasks_launched = 0;
        threads_live = 0;
        threads_live_peak = 0;
    }
};

std_engine_stats& get_std_engine_stats() noexcept;

// Engine policy for benchmark templates. Matches minihpx_engine's
// static interface (see inncabs/engine.hpp).
struct std_engine
{
    template <typename T>
    using future = std::future<T>;
    using mutex = std::mutex;

    enum class launch : std::uint8_t
    {
        async,
        deferred,
        fork,    // no std equivalent; maps to async
        sync,
    };

    template <typename F, typename... Ts>
    static auto async(launch policy, F&& f, Ts&&... ts)
    {
        auto& stats = get_std_engine_stats();
        using R = std::invoke_result_t<std::decay_t<F>, std::decay_t<Ts>...>;

        if (policy == launch::deferred)
        {
            return std::async(std::launch::deferred, std::forward<F>(f),
                std::forward<Ts>(ts)...);
        }
        if (policy == launch::sync)
        {
            std::promise<R> p;
            auto fut = p.get_future();
            try
            {
                if constexpr (std::is_void_v<R>)
                {
                    std::forward<F>(f)(std::forward<Ts>(ts)...);
                    p.set_value();
                }
                else
                {
                    p.set_value(std::forward<F>(f)(std::forward<Ts>(ts)...));
                }
            }
            catch (...)
            {
                p.set_exception(std::current_exception());
            }
            return fut;
        }

        stats.tasks_launched.fetch_add(1, std::memory_order_relaxed);
        auto const live =
            stats.threads_live.fetch_add(1, std::memory_order_relaxed) + 1;
        auto peak = stats.threads_live_peak.load(std::memory_order_relaxed);
        while (live > peak &&
            !stats.threads_live_peak.compare_exchange_weak(peak, live))
        {
        }

        // thread-per-task, like libstdc++'s std::async(launch::async).
        return std::async(std::launch::async,
            [fn = std::forward<F>(f)](auto&&... args) mutable {
                struct live_guard
                {
                    ~live_guard()
                    {
                        get_std_engine_stats().threads_live.fetch_sub(
                            1, std::memory_order_relaxed);
                    }
                } guard;
                return fn(std::forward<decltype(args)>(args)...);
            },
            std::forward<Ts>(ts)...);
    }

    template <typename F, typename... Ts>
    static auto async(F&& f, Ts&&... ts)
    {
        return async(
            launch::async, std::forward<F>(f), std::forward<Ts>(ts)...);
    }

    // ---- dependency-graph surface (engine concept v2) ------------------
    // Thread-per-task semantics throughout: a dependency gate is a real
    // OS thread blocked on its inputs, exactly what a std::async port of
    // a dataflow graph costs. That price is the measurement.

    template <typename T>
    using shared_future = std::shared_future<T>;

    template <typename T>
    static std::shared_future<T> share(std::future<T>&& f)
    {
        return f.share();
    }

    template <typename T>
    static std::future<void> when_all(std::vector<std::shared_future<T>> deps)
    {
        if (deps.empty())
        {
            std::promise<void> p;
            p.set_value();
            return p.get_future();
        }
        return async(launch::async, [deps = std::move(deps)] {
            for (auto const& d : deps)
                d.wait();
        });
    }

    // Continuation: spawns `fn` as a new task once `gate` is ready.
    template <typename F>
    static auto then(std::future<void> gate, F&& fn)
    {
        return async(launch::async,
            [gate = std::move(gate), fn = std::forward<F>(fn)]() mutable {
                gate.wait();
                return fn();
            });
    }

    template <typename T>
    static T sync_wait(std::future<T> f)
    {
        return f.get();
    }

    static void annotate_work(work_annotation const& w) noexcept
    {
        minihpx::annotate_work(w);
    }

    // No tracer observes thread-per-task execution; labels vanish.
    static void trace_label(char const*) noexcept {}

    static bool skip_compute() noexcept { return false; }
    static constexpr char const* name() noexcept { return "std-c++11"; }
};

}    // namespace minihpx::baseline
