#include <inncabs/harness.hpp>
#include <inncabs/inncabs.hpp>

namespace inncabs {

namespace {

    // params is a dependent type, so it must be picked per concrete
    // benchmark instantiation (one per engine).
    template <typename BE>
    typename BE::params pick_params(input_scale scale)
    {
        using P = typename BE::params;
        switch (scale)
        {
        case input_scale::tiny:
            return P::tiny();
        case input_scale::paper:
            return P::paper();
        case input_scale::bench_default:
        default:
            return P::bench_default();
        }
    }

    template <template <typename> class B>
    benchmark_entry make_entry()
    {
        benchmark_entry entry;
        entry.name = B<sim_engine>::name;
        entry.run_minihpx = [](input_scale scale) {
            using BE = B<minihpx_engine>;
            return static_cast<double>(BE::run(pick_params<BE>(scale)));
        };
        entry.run_std = [](input_scale scale) {
            using BE = B<std_engine>;
            return static_cast<double>(BE::run(pick_params<BE>(scale)));
        };
        entry.run_serial = [](input_scale scale) {
            using BE = B<sim_engine>;
            return static_cast<double>(
                BE::run_serial(pick_params<BE>(scale)));
        };
        entry.run_sim_body = [](input_scale scale) {
            using BE = B<sim_engine>;
            return static_cast<double>(BE::run(pick_params<BE>(scale)));
        };
        return entry;
    }

}    // namespace

std::vector<benchmark_entry> const& suite()
{
    static std::vector<benchmark_entry> const entries = {
        make_entry<alignment_bench>(),
        make_entry<health_bench>(),
        make_entry<sparselu_bench>(),
        make_entry<fft_bench>(),
        make_entry<fib_bench>(),
        make_entry<pyramids_bench>(),
        make_entry<sort_bench>(),
        make_entry<strassen_bench>(),
        make_entry<floorplan_bench>(),
        make_entry<nqueens_bench>(),
        make_entry<qap_bench>(),
        make_entry<uts_bench>(),
        make_entry<intersim_bench>(),
        make_entry<round_bench>(),
        make_entry<matmul_bench>(),
    };
    return entries;
}

benchmark_entry const* find_benchmark(std::string_view name)
{
    for (auto const& entry : suite())
        if (entry.name == name)
            return &entry;
    return nullptr;
}

}    // namespace inncabs
