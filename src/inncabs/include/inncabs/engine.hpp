// Compatibility shim: the Engine concept the Inncabs suite was written
// against now lives in <minihpx/engine/engine.hpp> (shared with the
// Task Bench workload family and versioned there — see engine_traits).
// The inncabs:: aliases below keep every benchmark source compiling
// unchanged against all three engines.
#pragma once

#include <minihpx/engine/engine.hpp>

namespace inncabs {

using minihpx_engine = minihpx::engine::minihpx_engine;
using std_engine = minihpx::engine::std_engine;
using sim_engine = minihpx::engine::sim_engine;

template <typename E, typename T>
using efuture = minihpx::engine::efuture<E, T>;

}    // namespace inncabs
