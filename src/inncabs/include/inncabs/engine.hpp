// Engine adapters: one static interface, three runtimes.
//
// Every Inncabs benchmark is written once against this Engine concept:
//
//   E::template future<T>      future type
//   E::mutex                   lockable
//   E::launch                  {async, deferred, fork, sync}
//   E::async([policy,] f, xs...) -> future<R>
//   E::annotate_work(w)        cost-model + PMU feed
//   E::trace_label(lit)        label the running task in a trace
//   E::skip_compute()          sim may skip data-independent kernels
//   E::name()
//
// This mirrors the paper's porting story (Table II): moving a benchmark
// between std::async and HPX is a namespace swap, so the suite compiles
// against the real minihpx runtime, the real thread-per-task baseline,
// and the virtual-time simulator from the same source.
#pragma once

#include <minihpx/baseline/std_engine.hpp>
#include <minihpx/minihpx.hpp>
#include <minihpx/sim/engine.hpp>

#include <utility>

namespace inncabs {

// Real execution on the minihpx runtime (a runtime must be active).
struct minihpx_engine
{
    template <typename T>
    using future = minihpx::future<T>;
    using mutex = minihpx::mutex;

    enum class launch : std::uint8_t
    {
        async,
        deferred,
        fork,
        sync,
    };

    static constexpr minihpx::launch to_native(launch policy) noexcept
    {
        switch (policy)
        {
        case launch::deferred:
            return minihpx::launch::deferred;
        case launch::fork:
            return minihpx::launch::fork;
        case launch::sync:
            return minihpx::launch::sync;
        case launch::async:
        default:
            return minihpx::launch::async;
        }
    }

    template <typename F, typename... Ts>
    static auto async(launch policy, F&& f, Ts&&... ts)
    {
        return minihpx::async(to_native(policy), std::forward<F>(f),
            std::forward<Ts>(ts)...);
    }

    template <typename F, typename... Ts,
        typename =
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, launch>>>
    static auto async(F&& f, Ts&&... ts)
    {
        return minihpx::async(std::forward<F>(f), std::forward<Ts>(ts)...);
    }

    static void annotate_work(minihpx::work_annotation const& w) noexcept
    {
        minihpx::annotate_work(w);
    }

    // Label the running task for trace analysis (no-op unless a
    // trace::session is active). `label` must be a string literal /
    // static storage — the recorder stores the pointer, not a copy.
    static void trace_label(char const* label) noexcept
    {
        minihpx::this_task::annotate(label);
    }

    static bool skip_compute() noexcept { return false; }
    static constexpr char const* name() noexcept { return "minihpx"; }
};

// Real thread-per-task execution (paper's "C++11 Standard" baseline).
using std_engine = minihpx::baseline::std_engine;

// Virtual-time execution on the simulated Table III node.
using sim_engine = minihpx::sim::sim_engine;

// Convenience alias for benchmark code.
template <typename E, typename T>
using efuture = typename E::template future<T>;

}    // namespace inncabs
