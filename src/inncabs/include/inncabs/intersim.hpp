// Inncabs "Intersim": interconnection-network simulator — N ports
// exchange flits in synchronized rounds; each round spawns one task per
// port which locks its own and its partner's mailbox ("mult.
// mutex/task", Table V: ~3.46 us, very fine, co-dependent; 1.7e6 tasks
// in the paper; std degrades, HPX scales to 10 — Fig 7).
#pragma once

#include <inncabs/engine.hpp>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

namespace inncabs {

template <typename E>
struct intersim_bench
{
    static constexpr char const* name = "intersim";

    struct params
    {
        unsigned ports = 64;
        unsigned rounds = 32;    // tasks = ports * rounds

        static params tiny() { return {.ports = 8, .rounds = 4}; }
        static params bench_default() { return {.ports = 64, .rounds = 32}; }
        static params paper()
        {
            // The paper's run launches ~1.7e6 tasks (4096 ports x 415
            // rounds); 2048x200 (~4.1e5) keeps sweeps tractable with
            // the same per-task granularity and contention pattern.
            return {.ports = 1536, .rounds = 150};
        }
    };

    struct network
    {
        std::vector<std::unique_ptr<typename E::mutex>> mailbox;
        std::vector<std::uint64_t> flits;

        explicit network(unsigned n) : flits(n)
        {
            mailbox.reserve(n);
            for (unsigned i = 0; i < n; ++i)
            {
                flits[i] = i + 1;
                mailbox.push_back(std::make_unique<typename E::mutex>());
            }
        }
    };

    // Round-r partner of port i: a rotating pairing so the contention
    // pattern shifts every round.
    static unsigned partner_of(unsigned i, unsigned r, unsigned n) noexcept
    {
        unsigned const shift = (r % (n - 1)) + 1;
        return (i + shift) % n;
    }

    static std::uint64_t flit_payload(unsigned i, unsigned r) noexcept
    {
        return (static_cast<std::uint64_t>(i + 1) * 2654435761ull ^ r) &
            0xff;
    }

    static void port_task(network& net, unsigned i, unsigned r)
    {
        unsigned const n = static_cast<unsigned>(net.flits.size());
        unsigned const j = partner_of(i, r, n);
        E::annotate_work(
            {.cpu_ns = 2600, .data_rd_bytes = 256, .instructions = 3500});

        auto* first = net.mailbox[std::min(i, j)].get();
        auto* second = net.mailbox[std::max(i, j)].get();
        first->lock();
        second->lock();
        // Only the lower-indexed endpoint of a pair moves the flits, so
        // every mailbox is written by exactly one task per round and the
        // result is schedule-independent.
        if (i < j && partner_of(j, r, n) != i)
        {
            // One-directional push i -> j. The addend is derived from
            // (i, r) only — one writer per mailbox per round, so the
            // result is schedule-independent under any interleaving.
            net.flits[j] += flit_payload(i, r);
        }
        else if (i < j)
        {
            std::swap(net.flits[i], net.flits[j]);
        }
        second->unlock();
        first->unlock();
    }

    static std::uint64_t checksum(network const& net)
    {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < net.flits.size(); ++i)
            sum = sum * 1099511628211ull + net.flits[i];
        return sum;
    }

    static std::uint64_t run(params const& p)
    {
        network net(p.ports);
        for (unsigned r = 0; r < p.rounds; ++r)
        {
            std::vector<efuture<E, void>> round;
            round.reserve(p.ports);
            for (unsigned i = 0; i < p.ports; ++i)
                round.push_back(
                    E::async([&net, i, r] { port_task(net, i, r); }));
            for (auto& f : round)
                f.get();
        }
        return checksum(net);
    }

    static std::uint64_t run_serial(params const& p)
    {
        network net(p.ports);
        for (unsigned r = 0; r < p.rounds; ++r)
        {
            for (unsigned i = 0; i < p.ports; ++i)
            {
                unsigned const n = p.ports;
                unsigned const j = partner_of(i, r, n);
                if (i < j && partner_of(j, r, n) != i)
                    net.flits[j] += flit_payload(i, r);
                else if (i < j)
                    std::swap(net.flits[i], net.flits[j]);
            }
        }
        return checksum(net);
    }
};

}    // namespace inncabs
