// Inncabs "Health": hierarchical healthcare system simulation (BOTS
// lineage): a tree of villages, one task per village per timestep,
// patients flowing between local treatment and referral upward
// (Table V: ~1.02 us tasks, very fine, loop-like, huge task counts —
// 1.75e7 in the paper; std::async aborts).
#pragma once

#include <inncabs/engine.hpp>

#include <cstdint>
#include <memory>
#include <vector>

namespace inncabs {

template <typename E>
struct health_bench
{
    static constexpr char const* name = "health";

    struct params
    {
        unsigned levels = 4;        // village tree depth
        unsigned branching = 4;     // children per village
        unsigned timesteps = 50;
        std::uint64_t seed = 9;

        static params tiny()
        {
            return {.levels = 3, .branching = 2, .timesteps = 10};
        }
        static params bench_default()
        {
            return {.levels = 4, .branching = 4, .timesteps = 50};
        }
        static params paper()
        {
            // 5 levels x4 = 341 villages. The paper runs 51k steps
            // (1.75e7 tasks); we default to 1500 steps (~5.1e5 tasks)
            // to keep full table sweeps tractable — per-task behavior
            // and scaling shape are timestep-invariant.
            return {.levels = 5, .branching = 4, .timesteps = 800};
        }
    };

    struct village
    {
        std::vector<std::unique_ptr<village>> children;
        minihpx::util::xoshiro256ss rng;
        std::uint64_t waiting = 0;      // patients in local queue
        std::uint64_t treated = 0;      // cumulative
        std::uint64_t referred_up = 0;  // cumulative

        explicit village(std::uint64_t seed) : rng(seed) {}
    };

    static std::unique_ptr<village> make_tree(
        unsigned levels, unsigned branching, std::uint64_t seed)
    {
        auto v = std::make_unique<village>(seed);
        if (levels > 1)
        {
            for (unsigned c = 0; c < branching; ++c)
                v->children.push_back(make_tree(
                    levels - 1, branching, seed * 1315423911u + c + 1));
        }
        return v;
    }

    // One timestep for one village: new arrivals, local treatment, and
    // a referral fraction forwarded to the parent (returned).
    static std::uint64_t step_core(village& v)
    {
        std::uint64_t const arrivals = v.rng.below(4);    // 0..3
        v.waiting += arrivals;
        std::uint64_t const capacity = 2;
        std::uint64_t const seen = v.waiting < capacity ? v.waiting : capacity;
        v.waiting -= seen;
        std::uint64_t referred = 0;
        for (std::uint64_t i = 0; i < seen; ++i)
        {
            if (v.rng.below(10) < 3)    // 30% referred upward
                ++referred;
            else
                ++v.treated;
        }
        v.referred_up += referred;
        return referred;
    }

    static std::uint64_t step_village(village& v)
    {
        E::annotate_work(
            {.cpu_ns = 700, .data_rd_bytes = 192, .instructions = 900});
        return step_core(v);
    }

    // Task per village per timestep: children in parallel, then self.
    static std::uint64_t sim_step(village& v)
    {
        std::vector<efuture<E, std::uint64_t>> futures;
        futures.reserve(v.children.size());
        for (auto& child : v.children)
            futures.push_back(
                E::async([c = child.get()] { return sim_step(*c); }));
        std::uint64_t incoming = 0;
        for (auto& f : futures)
            incoming += f.get();
        v.waiting += incoming;
        return step_village(v);
    }

    static std::uint64_t sim_step_serial(village& v)
    {
        std::uint64_t incoming = 0;
        for (auto& child : v.children)
            incoming += sim_step_serial(*child);
        v.waiting += incoming;
        return step_core(v);
    }

    static std::uint64_t total_treated(village const& v)
    {
        std::uint64_t sum = v.treated;
        for (auto const& c : v.children)
            sum += total_treated(*c);
        return sum;
    }

    static std::uint64_t run(params const& p)
    {
        auto root = make_tree(p.levels, p.branching, p.seed);
        for (unsigned t = 0; t < p.timesteps; ++t)
            sim_step(*root);
        return total_treated(*root);
    }

    static std::uint64_t run_serial(params const& p)
    {
        auto root = make_tree(p.levels, p.branching, p.seed);
        for (unsigned t = 0; t < p.timesteps; ++t)
            sim_step_serial(*root);
        return total_treated(*root);
    }
};

}    // namespace inncabs
