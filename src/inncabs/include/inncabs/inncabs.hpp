// Umbrella header: the full Inncabs benchmark suite (paper Table V).
#pragma once

#include <inncabs/alignment.hpp>
#include <inncabs/engine.hpp>
#include <inncabs/fft.hpp>
#include <inncabs/fib.hpp>
#include <inncabs/floorplan.hpp>
#include <inncabs/health.hpp>
#include <inncabs/intersim.hpp>
#include <inncabs/matmul.hpp>
#include <inncabs/nqueens.hpp>
#include <inncabs/pyramids.hpp>
#include <inncabs/qap.hpp>
#include <inncabs/round.hpp>
#include <inncabs/sort.hpp>
#include <inncabs/sparselu.hpp>
#include <inncabs/strassen.hpp>
#include <inncabs/uts.hpp>
