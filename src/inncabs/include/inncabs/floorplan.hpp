// Inncabs "Floorplan": branch-and-bound placement of rectangular cells
// on a grid minimizing the bounding-box area; tasks per branch with an
// atomically-shared incumbent (Table V: ~4.6 us, very fine, recursive
// unbalanced, "atomic pruning").
//
// The paper notes this benchmark's quirk: queue ordering changes how
// fast pruning converges (HPX explored two orders of magnitude more
// nodes), so a fixed task budget was enforced for fair comparison. We
// expose the same `max_tasks` budget knob.
#pragma once

#include <inncabs/engine.hpp>

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace inncabs {

template <typename E>
struct floorplan_bench
{
    static constexpr char const* name = "floorplan";

    struct cell
    {
        int w, h;
    };

    struct params
    {
        std::vector<cell> cells{
            {2, 3}, {3, 2}, {1, 4}, {2, 2}, {4, 1}, {3, 3}};
        int grid = 8;                   // grid is grid x grid
        int task_depth = 3;             // spawn tasks above this depth
        std::uint64_t max_tasks = 0;    // 0 = unlimited (paper's cap knob)

        static params tiny()
        {
            return {.cells = {{2, 3}, {3, 2}, {1, 4}, {2, 2}},
                .grid = 6,
                .task_depth = 2};
        }
        static params bench_default() { return {}; }
        static params paper()
        {
            // The paper caps total tasks for fairness (ordering changes
            // pruning); we adopt the same budget knob.
            // Spawn at every node (what makes floorplan fine grained)
            // with the paper's fairness cap on total tasks. The budget
            // is kept below the thread-per-task failure threshold so
            // the std baseline completes, as it does in Table I; the
            // tradeoff is a coarser average grain (~16 us vs the
            // paper's 4.6 us) because the search tail runs serially
            // inside the last tasks (see EXPERIMENTS.md).
            return {.cells = {{2, 3}, {3, 2}, {1, 4}, {2, 2}, {4, 1},
                        {3, 3}},
                .grid = 8,
                .task_depth = 99,
                .max_tasks = 80000};
        }
    };

    struct shared_state
    {
        std::atomic<int> best_area{1 << 30};
        std::atomic<std::uint64_t> tasks_spawned{0};
        std::atomic<std::uint64_t> nodes{0};
    };

    // Occupancy bitset for up to 16x16 grids.
    using board = std::array<std::uint16_t, 16>;

    static bool place(board& b, int grid, cell c, int r, int col) noexcept
    {
        if (r + c.h > grid || col + c.w > grid)
            return false;
        std::uint16_t const mask =
            static_cast<std::uint16_t>(((1u << c.w) - 1u) << col);
        for (int i = r; i < r + c.h; ++i)
            if (b[static_cast<std::size_t>(i)] & mask)
                return false;
        for (int i = r; i < r + c.h; ++i)
            b[static_cast<std::size_t>(i)] |= mask;
        return true;
    }

    static void unplace(board& b, cell c, int r, int col) noexcept
    {
        std::uint16_t const mask =
            static_cast<std::uint16_t>(((1u << c.w) - 1u) << col);
        for (int i = r; i < r + c.h; ++i)
            b[static_cast<std::size_t>(i)] &=
                static_cast<std::uint16_t>(~mask);
    }

    static int bound_area(int max_r, int max_c) noexcept
    {
        return max_r * max_c;
    }

    static void search(params const& p, shared_state& state, board b,
        std::size_t index, int max_r, int max_c, int depth)
    {
        state.nodes.fetch_add(1, std::memory_order_relaxed);
        E::annotate_work(
            {.cpu_ns = 3200, .data_rd_bytes = 128, .instructions = 5000});

        if (bound_area(max_r, max_c) >=
            state.best_area.load(std::memory_order_relaxed))
            return;    // prune

        if (index == p.cells.size())
        {
            int const area = bound_area(max_r, max_c);
            int best = state.best_area.load(std::memory_order_relaxed);
            while (area < best &&
                !state.best_area.compare_exchange_weak(best, area))
            {
            }
            return;
        }

        cell const c = p.cells[index];
        std::vector<efuture<E, void>> futures;
        for (int r = 0; r < p.grid; ++r)
        {
            for (int col = 0; col < p.grid; ++col)
            {
                if (!place(b, p.grid, c, r, col))
                    continue;
                int const nmax_r = std::max(max_r, r + c.h);
                int const nmax_c = std::max(max_c, col + c.w);
                bool const budget_ok = p.max_tasks == 0 ||
                    state.tasks_spawned.load(std::memory_order_relaxed) <
                        p.max_tasks;
                if (depth < p.task_depth && budget_ok)
                {
                    state.tasks_spawned.fetch_add(
                        1, std::memory_order_relaxed);
                    board snapshot = b;
                    futures.push_back(E::async(
                        [&p, &state, snapshot, index, nmax_r, nmax_c,
                            depth]() mutable {
                            search(p, state, snapshot, index + 1, nmax_r,
                                nmax_c, depth + 1);
                        }));
                }
                else
                {
                    search(p, state, b, index + 1, nmax_r, nmax_c,
                        depth + 1);
                }
                unplace(b, c, r, col);
            }
        }
        for (auto& f : futures)
            f.get();
    }

    // Returns the optimal bounding area (order-independent: B&B always
    // converges to the optimum, so parallel == serial).
    static int run(params const& p)
    {
        shared_state state;
        search(p, state, board{}, 0, 0, 0, 0);
        return state.best_area.load();
    }

    static int run_serial(params const& p)
    {
        params serial = p;
        serial.task_depth = -1;    // never spawn
        shared_state state;
        search(serial, state, board{}, 0, 0, 0, 0);
        return state.best_area.load();
    }
};

}    // namespace inncabs
