// Inncabs "Fib": naive recursive Fibonacci, one task per call.
//
// The canonical very-fine-grained stress test (Table V: ~1.37 us avg
// task duration, "Recursive Balanced"). The std::async version fails
// on the paper's testbed — ~10^5 live pthreads exhaust memory.
#pragma once

#include <inncabs/engine.hpp>

#include <cstdint>

namespace inncabs {

template <typename E>
struct fib_bench
{
    static constexpr char const* name = "fib";

    struct params
    {
        int n = 23;
        // Compute attributed to one call's own body (Table V calibration:
        // body + runtime costs ~ 1.37 us on one core).
        std::uint64_t body_ns = 1100;

        static params tiny() { return {.n = 14}; }
        static params bench_default() { return {.n = 21}; }
        static params paper() { return {.n = 27}; }
    };

    static std::uint64_t run_serial_n(int n)
    {
        return n < 2 ? static_cast<std::uint64_t>(n) :
                       run_serial_n(n - 1) + run_serial_n(n - 2);
    }

    static std::uint64_t run_serial(params const& p)
    {
        return run_serial_n(p.n);
    }

    static std::uint64_t run_task(int n, std::uint64_t body_ns)
    {
        E::trace_label("fib");
        E::annotate_work({.cpu_ns = body_ns, .instructions = 120});
        if (n < 2)
            return static_cast<std::uint64_t>(n);
        auto left =
            E::async([n, body_ns] { return run_task(n - 1, body_ns); });
        std::uint64_t const right = run_task(n - 2, body_ns);
        return left.get() + right;
    }

    static std::uint64_t run(params const& p)
    {
        return run_task(p.n, p.body_ns);
    }
};

}    // namespace inncabs
