// Inncabs "Pyramids": space-time decomposition of a 1D 3-point Jacobi
// stencil (Table V: ~246 us tasks, moderate, recursive balanced; the
// one benchmark where the std version beats HPX at low core counts —
// Figs 2, 9, 14).
//
// Decomposition: time advances in slabs of `base_steps`; each slab cuts
// space into independent blocks. A task copies its block plus a
// base_steps-wide ghost halo, advances the copy base_steps timesteps
// locally, and writes back the (exact) interior — the classic
// overlapped/trapezoid scheme, so parallel and serial arithmetic agree
// bit-for-bit.
#pragma once

#include <inncabs/engine.hpp>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace inncabs {

template <typename E>
struct pyramids_bench
{
    static constexpr char const* name = "pyramids";

    struct params
    {
        std::size_t width = 1 << 14;    // grid points
        std::size_t steps = 128;        // timesteps (multiple of base)
        std::size_t base_steps = 32;    // slab height
        std::size_t block = 4096;       // cells per task

        static params tiny()
        {
            return {.width = 512, .steps = 16, .base_steps = 8,
                .block = 128};
        }
        static params bench_default()
        {
            return {.width = 1 << 14, .steps = 128, .base_steps = 32,
                .block = 4096};
        }
        static params paper()
        {
            // 1024 blocks x 109 slabs ~ 112k tasks of 4096x32 cells
            // (~246 us at 1.9 ns/cell, Table V).
            return {.width = 1 << 22, .steps = 3488, .base_steps = 32,
                .block = 4096};
        }
    };

    static std::vector<double> make_grid(std::size_t width)
    {
        std::vector<double> g(width);
        for (std::size_t i = 0; i < width; ++i)
            g[i] = static_cast<double>(i % 97) * 0.01;
        return g;
    }

    // One sweep over [1, n-1) of `src` into `dst` with clamped edges
    // handled by the caller's halo convention.
    static void sweep(std::vector<double> const& src,
        std::vector<double>& dst, std::size_t lo, std::size_t hi,
        std::size_t width)
    {
        for (std::size_t i = lo; i < hi; ++i)
        {
            double const left = i == 0 ? src[0] : src[i - 1];
            double const right =
                i + 1 == width ? src[width - 1] : src[i + 1];
            dst[i] = 0.25 * left + 0.5 * src[i] + 0.25 * right;
        }
    }

    static void annotate_block(std::size_t block_cells, std::size_t steps)
    {
        // ~1.9 ns per cell-update: 4096x32 -> ~249 us (Table V's 246
        // us). Time-blocking reuses the block in cache across the slab,
        // so off-core traffic is per *layer* (read block+halo, write
        // block back, with partial eviction), not per cell-update.
        std::size_t const cells = block_cells * steps;
        // The paper-scale grid (2^22 doubles = 32 MB) exceeds the 25 MB
        // shared L3, so the slab streams its block several times (halo
        // chain + partial eviction): ~6 lines of traffic per block
        // element per slab. This is what bends Fig 14's bandwidth curve
        // toward the socket ceiling and caps the speedup near 13.
        E::annotate_work({.cpu_ns = static_cast<std::uint64_t>(
                              static_cast<double>(cells) * 1.9),
            .data_rd_bytes = block_cells * 8 * 6,
            .rfo_bytes = block_cells * 8 * 6,
            .instructions = cells * 6});
    }

    // Advance block [lo, hi) of src by `steps` into dst[lo, hi), using
    // a private halo copy so all blocks of a slab are independent.
    static void block_task(std::vector<double> const& src,
        std::vector<double>& dst, std::size_t lo, std::size_t hi,
        std::size_t steps, std::size_t width)
    {
        annotate_block(hi - lo, steps);
        if (E::skip_compute())
            return;

        // Copy [glo, ghi) where the halo absorbs `steps` of shrinkage.
        std::size_t const glo = lo >= steps ? lo - steps : 0;
        std::size_t const ghi = std::min(width, hi + steps);
        std::size_t const n = ghi - glo;
        std::vector<double> cur(src.begin() + static_cast<std::ptrdiff_t>(glo),
            src.begin() + static_cast<std::ptrdiff_t>(ghi));
        std::vector<double> nxt(n);

        bool const at_left_edge = glo == 0;
        bool const at_right_edge = ghi == width;
        for (std::size_t s = 0; s < steps; ++s)
        {
            // Valid region shrinks from non-edge sides each step.
            std::size_t const vlo = at_left_edge ? 0 : s + 1;
            std::size_t const vhi = at_right_edge ? n : n - s - 1;
            for (std::size_t i = vlo; i < vhi; ++i)
            {
                double const left = i == 0 ? cur[0] : cur[i - 1];
                double const right = i + 1 == n ? cur[n - 1] : cur[i + 1];
                nxt[i] = 0.25 * left + 0.5 * cur[i] + 0.25 * right;
            }
            std::swap(cur, nxt);
        }
        std::copy(cur.begin() + static_cast<std::ptrdiff_t>(lo - glo),
            cur.begin() + static_cast<std::ptrdiff_t>(hi - glo),
            dst.begin() + static_cast<std::ptrdiff_t>(lo));
    }

    static double checksum(std::vector<double> const& g)
    {
        double sum = 0;
        for (std::size_t i = 0; i < g.size(); i += g.size() / 101 + 1)
            sum += g[i];
        return sum;
    }

    static double run(params const& p)
    {
        auto a = make_grid(p.width);
        std::vector<double> b(p.width);
        for (std::size_t t = 0; t < p.steps; t += p.base_steps)
        {
            std::size_t const slab =
                std::min(p.base_steps, p.steps - t);
            std::vector<efuture<E, void>> wave;
            for (std::size_t lo = 0; lo < p.width; lo += p.block)
            {
                std::size_t const hi = std::min(p.width, lo + p.block);
                wave.push_back(E::async([&a, &b, lo, hi, slab, &p] {
                    block_task(a, b, lo, hi, slab, p.width);
                }));
            }
            for (auto& f : wave)
                f.get();
            std::swap(a, b);
        }
        return E::skip_compute() ? 0.0 : checksum(a);
    }

    static double run_serial(params const& p)
    {
        auto a = make_grid(p.width);
        std::vector<double> b(p.width);
        for (std::size_t t = 0; t < p.steps; ++t)
        {
            sweep(a, b, 0, p.width, p.width);
            std::swap(a, b);
        }
        return checksum(a);
    }
};

}    // namespace inncabs
