// Inncabs "UTS": Unbalanced Tree Search — count the nodes of an
// implicitly defined random tree whose shape is derived from a
// splittable hash of each node id (Table V: ~1.37 us, very fine,
// recursive unbalanced; HPX scales to the socket boundary, std::async
// exhausts pthreads and fails — Figs 6, 12).
#pragma once

#include <inncabs/engine.hpp>

#include <cstdint>
#include <vector>

namespace inncabs {

template <typename E>
struct uts_bench
{
    static constexpr char const* name = "uts";

    struct params
    {
        // Geometric tree: each node has `max_children` children with
        // probability derived from its hash; expected branching <1
        // below the root levels bounds the tree.
        unsigned root_children = 64;
        unsigned max_children = 4;
        // Child probability in 1/1024 units (per candidate child).
        unsigned q = 230;    // 4*230/1024 ~ 0.9 expected children
        unsigned max_depth = 60;
        std::uint64_t seed = 0xfeed;

        static params tiny()
        {
            return {.root_children = 8, .q = 200, .seed = 0xfeed};
        }
        static params bench_default()
        {
            return {.root_children = 64, .q = 230};
        }
        static params paper()
        {
            // ~6e5 nodes: the breadth-first unfolding of the
            // thread-per-task model overruns the pthread limit, as the
            // paper observes (80k-97k live pthreads at failure).
            return {.root_children = 30000, .q = 246};
        }
    };

    // SHA-like splittable hash (the real UTS uses SHA-1; splitmix64 has
    // the property we need: child streams are independent).
    static std::uint64_t hash_node(std::uint64_t parent, unsigned child)
    {
        std::uint64_t x = parent ^ (0x9e3779b97f4a7c15ULL * (child + 1));
        return minihpx::util::splitmix64_next(x);
    }

    static std::uint64_t count_serial(
        std::uint64_t id, unsigned depth, params const& p)
    {
        std::uint64_t count = 1;
        if (depth >= p.max_depth)
            return count;
        for (unsigned c = 0; c < p.max_children; ++c)
        {
            std::uint64_t const h = hash_node(id, c);
            if ((h & 1023) < p.q)
                count += count_serial(h, depth + 1, p);
        }
        return count;
    }

    static std::uint64_t count_task(
        std::uint64_t id, unsigned depth, params const& p)
    {
        // Per-node work: one hash + bookkeeping (the real UTS computes
        // a SHA-1 per node, ~1 us — Table V's 1.37 us grain).
        E::annotate_work(
            {.cpu_ns = 950, .data_rd_bytes = 64, .instructions = 1500});
        std::uint64_t count = 1;
        if (depth >= p.max_depth)
            return count;
        std::vector<efuture<E, std::uint64_t>> futures;
        for (unsigned c = 0; c < p.max_children; ++c)
        {
            std::uint64_t const h = hash_node(id, c);
            if ((h & 1023) < p.q)
            {
                futures.push_back(E::async([h, depth, &p] {
                    return count_task(h, depth + 1, p);
                }));
            }
        }
        for (auto& f : futures)
            count += f.get();
        return count;
    }

    static std::uint64_t run(params const& p)
    {
        E::annotate_work({.cpu_ns = 500});
        std::uint64_t count = 1;
        std::vector<efuture<E, std::uint64_t>> roots;
        for (unsigned c = 0; c < p.root_children; ++c)
        {
            std::uint64_t const h = hash_node(p.seed, c);
            roots.push_back(
                E::async([h, &p] { return count_task(h, 1, p); }));
        }
        for (auto& f : roots)
            count += f.get();
        return count;
    }

    static std::uint64_t run_serial(params const& p)
    {
        std::uint64_t count = 1;
        for (unsigned c = 0; c < p.root_children; ++c)
            count += count_serial(hash_node(p.seed, c), 1, p);
        return count;
    }
};

}    // namespace inncabs
