// Inncabs "NQueens": count all N-queens placements; a task per branch
// down to a depth cutoff (Table V: ~28 us tasks, "fine", recursive
// unbalanced; std::async fails from pthread scheduling pressure, HPX
// scales to 20).
#pragma once

#include <inncabs/engine.hpp>

#include <cstdint>
#include <vector>

namespace inncabs {

template <typename E>
struct nqueens_bench
{
    static constexpr char const* name = "nqueens";

    struct params
    {
        int n = 10;
        int task_depth = 3;    // spawn tasks down to this row

        static params tiny() { return {.n = 7, .task_depth = 2}; }
        static params bench_default() { return {.n = 10, .task_depth = 3}; }
        static params paper() { return {.n = 13, .task_depth = 6}; }
    };

    static bool safe(std::vector<int> const& pos, int row, int col) noexcept
    {
        for (int r = 0; r < row; ++r)
        {
            int const c = pos[static_cast<std::size_t>(r)];
            if (c == col || c - col == row - r || col - c == row - r)
                return false;
        }
        return true;
    }

    static std::uint64_t solve_serial(std::vector<int>& pos, int row, int n)
    {
        if (row == n)
            return 1;
        std::uint64_t count = 0;
        for (int col = 0; col < n; ++col)
        {
            if (safe(pos, row, col))
            {
                pos[static_cast<std::size_t>(row)] = col;
                count += solve_serial(pos, row + 1, n);
            }
        }
        return count;
    }

    static std::uint64_t solve_task(
        std::vector<int> pos, int row, int n, int task_depth)
    {
        // Body cost: scanning N columns against `row` placed queens,
        // plus the serial subtree below the spawn frontier.
        if (row >= task_depth)
        {
            // Serial subtree leaf task: bulk of the 28 us grain.
            E::annotate_work({.cpu_ns = 24000,
                .data_rd_bytes = 256,
                .instructions = 40000});
            return solve_serial(pos, row, n);
        }
        E::annotate_work({.cpu_ns = 900, .instructions = 600});
        if (row == n)
            return 1;

        std::vector<efuture<E, std::uint64_t>> futures;
        for (int col = 0; col < n; ++col)
        {
            if (!safe(pos, row, col))
                continue;
            auto child = pos;
            child[static_cast<std::size_t>(row)] = col;
            futures.push_back(
                E::async([child = std::move(child), row, n, task_depth] {
                    return solve_task(child, row + 1, n, task_depth);
                }));
        }
        std::uint64_t count = 0;
        for (auto& f : futures)
            count += f.get();
        return count;
    }

    static std::uint64_t run(params const& p)
    {
        std::vector<int> pos(static_cast<std::size_t>(p.n), -1);
        return solve_task(std::move(pos), 0, p.n, p.task_depth);
    }

    static std::uint64_t run_serial(params const& p)
    {
        std::vector<int> pos(static_cast<std::size_t>(p.n), -1);
        return solve_serial(pos, 0, p.n);
    }
};

}    // namespace inncabs
