// Inncabs "Alignment": all-pairs protein sequence alignment scoring,
// one independent task per pair (Table V: ~2748 us tasks, coarse,
// loop-like, no synchronization; both runtimes scale to 20 — Figs 1,
// 8, 13). Note the paper's port detail: the original allocated its DP
// arrays on the task stack and overflowed HPX's default stacks; like
// the authors we allocate on the heap.
#pragma once

#include <inncabs/engine.hpp>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace inncabs {

template <typename E>
struct alignment_bench
{
    static constexpr char const* name = "alignment";

    struct params
    {
        std::size_t sequences = 25;    // tasks = n*(n-1)/2
        std::size_t length = 400;      // residues per sequence
        std::uint64_t seed = 5;

        static params tiny() { return {.sequences = 6, .length = 64}; }
        static params bench_default()
        {
            return {.sequences = 25, .length = 400};
        }
        static params paper()
        {
            // 100 sequences -> 4950 pairs; L=1000 lands ~2.7 ms/task.
            return {.sequences = 100, .length = 1000};
        }
    };

    static std::vector<std::string> make_sequences(params const& p)
    {
        static constexpr char alphabet[] = "ARNDCQEGHILKMFPSTWYV";
        minihpx::util::xoshiro256ss rng(p.seed);
        std::vector<std::string> seqs(p.sequences);
        for (auto& s : seqs)
        {
            s.resize(p.length);
            for (auto& c : s)
                c = alphabet[rng.below(20)];
        }
        return seqs;
    }

    // Needleman-Wunsch global alignment score, two-row DP on the heap.
    static int align_pair(std::string const& a, std::string const& b)
    {
        constexpr int gap = -4;
        std::vector<int> prev(b.size() + 1), curr(b.size() + 1);
        for (std::size_t j = 0; j <= b.size(); ++j)
            prev[j] = static_cast<int>(j) * gap;
        for (std::size_t i = 1; i <= a.size(); ++i)
        {
            curr[0] = static_cast<int>(i) * gap;
            for (std::size_t j = 1; j <= b.size(); ++j)
            {
                int const match = a[i - 1] == b[j - 1] ? 5 : -2;
                curr[j] = std::max({prev[j - 1] + match, prev[j] + gap,
                    curr[j - 1] + gap});
            }
            std::swap(prev, curr);
        }
        return prev[b.size()];
    }

    static void annotate_pair(std::size_t la, std::size_t lb)
    {
        double const cells =
            static_cast<double>(la) * static_cast<double>(lb);
        // ~2.7 ns/DP-cell -> 1000x1000 pair = ~2.7 ms (Table V). The DP
        // rows stream through cache; off-core traffic is a modest
        // fraction of the touched bytes.
        E::annotate_work(
            {.cpu_ns = static_cast<std::uint64_t>(cells * 2.7),
                .data_rd_bytes = static_cast<std::uint64_t>(cells * 0.5),
                .rfo_bytes = static_cast<std::uint64_t>(cells * 0.15),
                .instructions = static_cast<std::uint64_t>(cells * 14)});
    }

    static std::int64_t run(params const& p)
    {
        auto const seqs = make_sequences(p);
        std::vector<efuture<E, int>> futures;
        futures.reserve(p.sequences * (p.sequences - 1) / 2);
        for (std::size_t i = 0; i < seqs.size(); ++i)
        {
            for (std::size_t j = i + 1; j < seqs.size(); ++j)
            {
                futures.push_back(E::async([&seqs, i, j] {
                    annotate_pair(seqs[i].size(), seqs[j].size());
                    if (E::skip_compute())
                        return 0;
                    return align_pair(seqs[i], seqs[j]);
                }));
            }
        }
        std::int64_t total = 0;
        for (auto& f : futures)
            total += f.get();
        return total;
    }

    static std::int64_t run_serial(params const& p)
    {
        auto const seqs = make_sequences(p);
        std::int64_t total = 0;
        for (std::size_t i = 0; i < seqs.size(); ++i)
            for (std::size_t j = i + 1; j < seqs.size(); ++j)
                total += align_pair(seqs[i], seqs[j]);
        return total;
    }
};

}    // namespace inncabs
